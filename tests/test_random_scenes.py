"""End-to-end property tests over randomly generated scenes.

Hypothesis drives the *whole pipeline* (scene -> tree -> visibility ->
schemes -> search) on small random box scenes and asserts the
cross-cutting invariants that individual unit tests check in isolation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.naive import NaiveCellList
from repro.core.hdov_tree import HDoVConfig, build_environment
from repro.core.search import HDoVSearch
from repro.core.vpage import check_vpage_invariants
from repro.geometry.aabb import AABB
from repro.geometry.primitives import box_mesh
from repro.scene.objects import Scene, SceneObject
from repro.simplify.lod_chain import build_lod_chain
from repro.visibility.cells import CellGrid


def random_box_scene(seed: int, n: int) -> Scene:
    rng = np.random.default_rng(seed)
    scene = Scene()
    for i in range(n):
        center = np.array([rng.uniform(10, 190), rng.uniform(10, 190),
                           rng.uniform(2, 20)])
        extent = rng.uniform(2, 25, 3)
        mesh = box_mesh(center, extent)
        chain = build_lod_chain(mesh, num_levels=2, reduction=0.5)
        scene.add(SceneObject(i, chain, category="box"))
    return scene


@given(seed=st.integers(min_value=0, max_value=10 ** 6),
       n=st.integers(min_value=3, max_value=25))
@settings(max_examples=8, deadline=None)
def test_pipeline_invariants_on_random_scene(seed, n):
    scene = random_box_scene(seed, n)
    grid = CellGrid.covering(scene.bounds(), cell_size=100.0)
    env = build_environment(
        scene, grid, HDoVConfig(dov_resolution=8,
                                schemes=("indexed-vertical",)))

    env.tree.check_invariants()
    for cell_vp in env.cell_vpages:
        check_vpage_invariants(env.tree, cell_vp)

    search = HDoVSearch(env)
    naive = NaiveCellList(env)
    for cell_id in grid.cell_ids():
        visible = env.visibility.cell(cell_id).visible_ids()
        # eta = 0 equals both the table and the naive baseline.
        result = search.query_cell(cell_id, eta=0.0)
        assert result.object_ids() == visible
        assert naive.query_cell(cell_id).object_ids() == visible
        # Any eta covers every visible object.
        for eta in (0.01, 0.1):
            coarse = search.query_cell(cell_id, eta)
            assert set(visible) <= set(coarse.covered_object_ids())
            # DoVs of direct objects stay in (0, 1].
            for obj in coarse.objects:
                assert 0.0 < obj.dov <= 1.0


@given(seed=st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=5, deadline=None)
def test_schemes_agree_on_random_scene(seed):
    scene = random_box_scene(seed, 15)
    grid = CellGrid.covering(scene.bounds(), cell_size=120.0)
    env = build_environment(
        scene, grid,
        HDoVConfig(dov_resolution=8,
                   schemes=("horizontal", "vertical", "indexed-vertical")))
    searches = {name: HDoVSearch(env, name) for name in env.schemes}
    for cell_id in grid.cell_ids():
        answers = set()
        for search in searches.values():
            search.scheme.current_cell = None
            result = search.query_cell(cell_id, eta=0.02)
            answers.add((tuple(result.object_ids()),
                         tuple(sorted(i.node_offset
                                      for i in result.internals))))
        assert len(answers) == 1
