"""Chaos harness tests: survive, degrade, reproduce.

The PR 3 acceptance bar: under a seeded fault plan a recorded
walkthrough completes 100% of its frames with degradations recorded and
zero unhandled exceptions, and the same seed yields the identical
report.
"""

import json
import os

import pytest

from repro.cli import main
from repro.errors import StorageError
from repro.obs.chaos import run_chaos
from repro.storage import faults
from repro.storage.faults import FaultPlan, FaultRule


def test_chaos_survives_and_degrades():
    report = run_chaos(frames=20, plan="aggressive", seed=7)
    outcome = report["outcome"]
    assert outcome["completed"] is True
    assert outcome["error"] is None
    assert outcome["frames_survived"] == outcome["frames_total"] == 20
    resilience = report["resilience"]
    assert resilience["degraded_frames"] > 0
    assert resilience["frames_degraded_total"] > 0
    assert sum(resilience["retries"].values()) > 0
    assert report["faults"]["total_injected"] > 0
    # Degrading costs fidelity, never gains it.
    fidelity = report["fidelity"]
    assert fidelity["faulted"] <= fidelity["clean"]
    # The invariants block is what the CLI turns into an exit code.
    assert report["invariants"] == {"completed": True,
                                    "fidelity_not_improved": True,
                                    "ok": True}


def test_chaos_same_seed_identical_report():
    first = run_chaos(frames=10, plan="aggressive", seed=0)
    second = run_chaos(frames=10, plan="aggressive", seed=0)
    assert json.dumps(first, sort_keys=True) \
        == json.dumps(second, sort_keys=True)


def test_chaos_blackout_plan_gives_up_but_survives():
    report = run_chaos(plan="vpage-blackout", seed=0)
    assert report["outcome"]["completed"] is True
    resilience = report["resilience"]
    assert resilience["degraded_frames"] > 0
    assert sum(resilience["giveups"].values()) > 0


def test_chaos_compressed_build_survives():
    """Faults landing on packed delta records must degrade through the
    same ladder as raw pages — never decode silently wrong."""
    report = run_chaos(frames=20, plan="aggressive", seed=7,
                       compress=True)
    assert report["chaos"]["compress"] is True
    assert report["faults"]["total_injected"] > 0
    assert report["invariants"]["ok"] is True


def test_chaos_compressed_same_seed_identical_report():
    first = run_chaos(frames=10, plan="aggressive", seed=3, compress=True)
    second = run_chaos(frames=10, plan="aggressive", seed=3, compress=True)
    assert json.dumps(first, sort_keys=True) \
        == json.dumps(second, sort_keys=True)


def test_chaos_compressed_loop_session_survives():
    report = run_chaos(frames=20, plan="aggressive", seed=1, session=4,
                       compress=True)
    assert report["chaos"]["session"] == "session-4-loop"
    assert report["invariants"]["ok"] is True


def test_chaos_unknown_plan_raises_before_building():
    with pytest.raises(StorageError):
        run_chaos(plan="no-such-plan")


def test_chaos_node_store_fault_is_reported_not_raised(monkeypatch):
    """A plan the ladder cannot absorb (R-tree node loss) still yields
    a report — completed=False with the error named — not a crash."""
    kill_tree = FaultPlan("kill-tree", (
        FaultRule("read-error", match="tree", rate=1.0),
    ))
    monkeypatch.setitem(faults._NAMED_PLANS, "kill-tree", kill_tree)
    report = run_chaos(frames=5, plan="kill-tree", seed=0)
    outcome = report["outcome"]
    assert outcome["completed"] is False
    assert "TransientIOError" in outcome["error"]
    assert outcome["frames_survived"] < outcome["frames_total"]


# -- CLI ---------------------------------------------------------------------


def test_cli_chaos_writes_report(tmp_path, capsys):
    out = os.path.join(tmp_path, "chaos.json")
    code = main(["chaos", "--frames", "10", "--seed", "7",
                 "--output", out])
    assert code == 0
    with open(out) as fh:
        report = json.load(fh)
    assert report["outcome"]["completed"] is True
    assert "survived 10/10 frames" in capsys.readouterr().out


def test_cli_chaos_unknown_plan_is_usage_error(capsys):
    code = main(["chaos", "--plan", "no-such-plan"])
    assert code == 2
    assert "unknown fault plan" in capsys.readouterr().err


def test_cli_chaos_list_plans(capsys):
    code = main(["chaos", "--list-plans"])
    assert code == 0
    out = capsys.readouterr().out
    for name in ("aggressive", "slow-disk", "vpage-blackout"):
        assert name in out
