"""Rotation/transform helper tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError
from repro.geometry.primitives import box_mesh
from repro.geometry.transforms import (direction_to_heading,
                                       heading_to_direction, is_rotation,
                                       look_at_direction, rotate_mesh,
                                       rotation_about_axis, rotation_about_z)

angles = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)


def test_rotation_about_z_quarter_turn():
    rot = rotation_about_z(np.pi / 2)
    assert np.allclose(rot @ np.array([1.0, 0.0, 0.0]),
                       [0.0, 1.0, 0.0], atol=1e-12)
    assert np.allclose(rot @ np.array([0.0, 0.0, 1.0]),
                       [0.0, 0.0, 1.0])


@given(angles)
def test_rotation_about_z_is_rotation(angle):
    assert is_rotation(rotation_about_z(angle), tol=1e-9)


@given(angles)
@settings(max_examples=30)
def test_rotation_about_axis_matches_z_special_case(angle):
    general = rotation_about_axis((0, 0, 1), angle)
    assert np.allclose(general, rotation_about_z(angle), atol=1e-12)


@given(angles, st.tuples(st.floats(-1, 1), st.floats(-1, 1),
                         st.floats(-1, 1)).filter(
    lambda a: np.linalg.norm(a) > 1e-3))
@settings(max_examples=30)
def test_rotation_about_axis_preserves_axis(angle, axis):
    rot = rotation_about_axis(axis, angle)
    unit = np.asarray(axis) / np.linalg.norm(axis)
    assert np.allclose(rot @ unit, unit, atol=1e-9)
    assert is_rotation(rot, tol=1e-8)


def test_look_at_direction():
    d = look_at_direction((0, 0, 0), (3, 4, 0))
    assert np.allclose(d, [0.6, 0.8, 0.0])
    with pytest.raises(GeometryError):
        look_at_direction((1, 1, 1), (1, 1, 1))


@given(st.floats(min_value=-np.pi + 1e-6, max_value=np.pi - 1e-6))
def test_heading_roundtrip(heading):
    assert direction_to_heading(heading_to_direction(heading)) == \
        pytest.approx(heading, abs=1e-9)


def test_vertical_direction_has_no_heading():
    with pytest.raises(GeometryError):
        direction_to_heading((0, 0, 1))


def test_rotate_mesh_about_own_center_preserves_center():
    mesh = box_mesh((5, 5, 5), (2, 4, 6))
    rotated = rotate_mesh(mesh, rotation_about_z(0.7))
    assert np.allclose(rotated.aabb().center, mesh.aabb().center,
                       atol=1e-9)
    # Rigid: all pairwise distances preserved (spot check one edge).
    d_before = np.linalg.norm(mesh.vertices[0] - mesh.vertices[7])
    d_after = np.linalg.norm(rotated.vertices[0] - rotated.vertices[7])
    assert d_after == pytest.approx(d_before)


def test_rotate_mesh_about_external_pivot():
    mesh = box_mesh((1, 0, 0), (1, 1, 1))
    rotated = rotate_mesh(mesh, rotation_about_z(np.pi), center=(0, 0, 0))
    assert np.allclose(rotated.aabb().center, [-1, 0, 0], atol=1e-9)


def test_rotate_mesh_bad_matrix():
    mesh = box_mesh((0, 0, 0), (1, 1, 1))
    with pytest.raises(GeometryError):
        rotate_mesh(mesh, np.eye(4))


def test_is_rotation_rejects_scaling_and_reflection():
    assert not is_rotation(2.0 * np.eye(3))
    reflection = np.diag([1.0, 1.0, -1.0])
    assert not is_rotation(reflection)
    assert is_rotation(np.eye(3))
