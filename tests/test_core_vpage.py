"""V-page instantiation: the Section 3.2 attributes as invariants."""

import pytest

from repro.core.vpage import (CellVPages, check_vpage_invariants,
                              instantiate_cell)
from repro.errors import HDoVError
from repro.geometry.aabb import AABB
from repro.rtree.bulk import str_bulk_load
from repro.visibility.dov import CellVisibility


def grid_tree(n=30, max_entries=4):
    items = [(AABB((i * 2.0, 0, 0), (i * 2.0 + 1, 1, 1)), i)
             for i in range(n)]
    tree = str_bulk_load(items, max_entries=max_entries)
    for offset, node in enumerate(tree.iter_nodes_dfs()):
        node.node_offset = offset
    return tree


def test_leaf_ventries_mirror_object_dov():
    tree = grid_tree(8, max_entries=8)      # single leaf-root
    vis = CellVisibility(0, dov={0: 0.5, 3: 0.25})
    cell = instantiate_cell(tree, vis)
    ventries = cell.ventries(0)
    assert len(ventries) == 8
    by_oid = {e.object_id: ventries[i]
              for i, e in enumerate(tree.root.entries)}
    assert by_oid[0] == (0.5, 1)
    assert by_oid[3] == (0.25, 1)
    assert by_oid[1] == (0.0, 0)


def test_internal_entry_sums_children():
    tree = grid_tree(30)
    vis = CellVisibility(0, dov={0: 0.1, 1: 0.2, 29: 0.05})
    cell = instantiate_cell(tree, vis)
    check_vpage_invariants(tree, cell)
    root_entries = cell.ventries(tree.root.node_offset)
    total_dov = sum(d for d, _ in root_entries)
    assert total_dov == pytest.approx(0.35)
    total_nvo = sum(n for _, n in root_entries)
    assert total_nvo == 3


def test_invisible_nodes_have_no_vpage():
    tree = grid_tree(30)
    vis = CellVisibility(0, dov={0: 0.3})    # only object 0 visible
    cell = instantiate_cell(tree, vis)
    visible_offsets = set(cell.pages)
    # The root and the spine down to object 0's leaf are visible.
    assert tree.root.node_offset in visible_offsets
    # Every visible node has at least one visible entry (attribute 3).
    for offset in visible_offsets:
        assert any(d > 0 for d, _ in cell.ventries(offset))
    # Most nodes are invisible.
    total_nodes = sum(1 for _ in tree.iter_nodes_dfs())
    assert len(visible_offsets) < total_nodes


def test_all_hidden_cell_is_empty():
    tree = grid_tree(10)
    cell = instantiate_cell(tree, CellVisibility(0))
    assert cell.num_visible_nodes == 0


def test_dov_clamped_to_one():
    tree = grid_tree(8, max_entries=4)
    vis = CellVisibility(0, dov={i: 0.9 for i in range(8)})
    cell = instantiate_cell(tree, vis)
    check_vpage_invariants(tree, cell)
    for d, _n in cell.ventries(tree.root.node_offset):
        assert d <= 1.0


def test_visible_offsets_dfs_sorted():
    tree = grid_tree(30)
    vis = CellVisibility(0, dov={i: 0.01 for i in range(0, 30, 3)})
    cell = instantiate_cell(tree, vis)
    offsets = cell.visible_offsets_dfs()
    assert offsets == sorted(offsets)


def test_ventries_for_invisible_node_raises():
    tree = grid_tree(10)
    cell = instantiate_cell(tree, CellVisibility(0, dov={0: 0.5}))
    invisible = [n.node_offset for n in tree.iter_nodes_dfs()
                 if not cell.is_visible(n.node_offset)]
    assert invisible
    with pytest.raises(HDoVError):
        cell.ventries(invisible[0])


def test_unassigned_offsets_rejected():
    items = [(AABB((0, 0, 0), (1, 1, 1)), 0)]
    tree = str_bulk_load(items)
    with pytest.raises(HDoVError):
        instantiate_cell(tree, CellVisibility(0, dov={0: 0.5}))


def test_invariant_checker_detects_corruption():
    tree = grid_tree(30)
    vis = CellVisibility(0, dov={0: 0.1, 5: 0.2})
    cell = instantiate_cell(tree, vis)
    # Corrupt an internal entry's DoV.
    root_ventries = cell.pages[tree.root.node_offset]
    for i, (d, n) in enumerate(root_ventries):
        if d > 0:
            root_ventries[i] = (d + 0.05, n)
            break
    with pytest.raises(HDoVError):
        check_vpage_invariants(tree, cell)


def test_environment_cells_satisfy_invariants(env):
    for cell in env.cell_vpages[:10]:
        check_vpage_invariants(env.tree, cell)


def test_environment_eq7_bound(env):
    """N_vnode <= N_vobj * levels (paper eq. 7)."""
    levels = env.tree.height
    for cell_vp, cid in zip(env.cell_vpages, range(env.grid.num_cells)):
        n_vobj = env.visibility.cell(cid).num_visible
        assert cell_vp.num_visible_nodes <= max(n_vobj, 0) * levels + 1
