"""Fault injection, page integrity (CRC trailer) and retry-layer tests.

These exercise the PR 3 resilience stack bottom-up: the injector's
deterministic fault machinery, the CRC trailer that turns silent
corruption into :class:`PageCorruptError`, and the bounded retry at the
``pageio`` facade that absorbs :class:`TransientIOError`.
"""

import os

import pytest

from repro.errors import PageCorruptError, StorageError, TransientIOError
from repro.obs import names
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.storage import pageio
from repro.storage.disk import FREE_DISK, IOStats
from repro.storage.faults import (FaultInjector, FaultPlan, FaultRule,
                                  named_plan, plan_names)
from repro.storage.pagedfile import PagedFile
from repro.storage.retry import RetryPolicy


def make_file(name="vpages-test", **kwargs):
    """Small mem-backed file on a free disk model (clean ms ledger)."""
    return PagedFile(name, page_size=64, disk=FREE_DISK, stats=IOStats(),
                     **kwargs)


def plan(*rules):
    return FaultPlan("test-plan", tuple(rules))


# -- retry rung --------------------------------------------------------------


def test_transient_fault_absorbed_by_retry():
    with use_registry(MetricsRegistry()) as registry:
        pf = make_file()
        pid = pf.append_page(b"payload")
        injector = FaultInjector(
            plan(FaultRule("read-error", rate=1.0, times=1)), seed=0)
        injector.install(pf)
        try:
            data = pageio.read_page(pf, pid, component="test")
        finally:
            injector.uninstall()
        assert data.startswith(b"payload")
        assert injector.injected == {"read-error": 1}
        assert registry.value(names.PAGEIO_RETRIES, file=pf.name) == 1
        assert registry.value(names.PAGEIO_GIVEUPS, file=pf.name) == 0


def test_retry_exhaustion_raises_and_counts_giveup():
    with use_registry(MetricsRegistry()) as registry:
        pf = make_file()
        pid = pf.append_page(b"payload")
        injector = FaultInjector(
            plan(FaultRule("read-error", rate=1.0)), seed=0)
        injector.install(pf)
        try:
            with pytest.raises(TransientIOError):
                pageio.read_page(pf, pid, component="test",
                                 retry=RetryPolicy(max_attempts=3))
        finally:
            injector.uninstall()
        assert registry.value(names.PAGEIO_RETRIES, file=pf.name) == 2
        assert registry.value(names.PAGEIO_GIVEUPS, file=pf.name) == 1


def test_retry_backoff_charged_to_simulated_clock():
    with use_registry(MetricsRegistry()):
        pf = make_file()          # FREE_DISK: accesses cost 0 ms
        pid = pf.append_page(b"payload")
        pf.stats.reset()
        injector = FaultInjector(
            plan(FaultRule("read-error", rate=1.0, times=2)), seed=0)
        injector.install(pf)
        try:
            policy = RetryPolicy(max_attempts=3, base_backoff_ms=4.0,
                                 multiplier=2.0)
            pageio.read_page(pf, pid, component="test", retry=policy)
        finally:
            injector.uninstall()
        # Two retries: 4 ms + 8 ms of backoff, nothing else on FREE_DISK.
        assert pf.stats.simulated_ms == pytest.approx(12.0)


def test_append_page_retry_never_allocates_twice():
    """Regression guard for the facade contract: the allocation happens
    outside the retry loop, so a write that fails every attempt still
    leaves exactly one (unwritten) page behind."""
    with use_registry(MetricsRegistry()):
        pf = make_file()
        injector = FaultInjector(
            plan(FaultRule("write-error", rate=1.0)), seed=0)
        injector.install(pf)
        try:
            with pytest.raises(TransientIOError):
                pageio.append_page(pf, b"doomed", component="test")
        finally:
            injector.uninstall()
        assert pf.num_pages == 1


# -- integrity rung ----------------------------------------------------------


def test_bit_flip_detected_and_not_retried():
    with use_registry(MetricsRegistry()) as registry:
        pf = make_file()
        pid = pf.append_page(b"payload")
        injector = FaultInjector(
            plan(FaultRule("bit-flip", rate=1.0, times=1)), seed=0)
        injector.install(pf)
        try:
            with pytest.raises(PageCorruptError):
                pageio.read_page(pf, pid, component="test")
        finally:
            injector.uninstall()
        assert registry.value(names.PAGES_CORRUPT, file=pf.name) == 1
        # Corruption is permanent: no retry may have fired.
        assert registry.value(names.PAGEIO_RETRIES, file=pf.name) == 0


def test_torn_write_surfaces_on_next_read():
    with use_registry(MetricsRegistry()):
        pf = make_file()
        pid = pf.allocate()
        injector = FaultInjector(
            plan(FaultRule("torn-write", rate=1.0, times=1)), seed=0)
        injector.install(pf)
        try:
            # The write "succeeds" (classic power-loss shape) ...
            pf.write_page(pid, bytes(range(64)))
            # ... and the damage is only visible on the next read.
            with pytest.raises(PageCorruptError):
                pf.read_page(pid)
        finally:
            injector.uninstall()


def test_latency_rule_charges_only_the_clock():
    with use_registry(MetricsRegistry()):
        pf = make_file()
        pid = pf.append_page(b"payload")
        pf.stats.reset()
        injector = FaultInjector(
            plan(FaultRule("latency", rate=1.0, latency_ms=5.0)), seed=0)
        injector.install(pf)
        try:
            assert pf.read_page(pid).startswith(b"payload")
            assert pf.read_page(pid).startswith(b"payload")
        finally:
            injector.uninstall()
        assert pf.stats.simulated_ms == pytest.approx(10.0)
        assert injector.injected == {"latency": 2}


def test_fail_after_models_device_dropout():
    with use_registry(MetricsRegistry()):
        pf = make_file()
        pids = [pf.append_page(b"p%d" % i) for i in range(4)]
        injector = FaultInjector(
            plan(FaultRule("fail-after", after_ops=2)), seed=0)
        injector.install(pf)
        try:
            pf.read_page(pids[0])
            pf.read_page(pids[1])
            with pytest.raises(TransientIOError):
                pf.read_page(pids[2])
            # The device stays gone: every later access fails too.
            with pytest.raises(TransientIOError):
                pf.read_page(pids[3])
        finally:
            injector.uninstall()


def test_external_disk_corruption_detected(tmp_path):
    """The CRC trailer catches corruption nobody injected: flip a byte
    in the file on disk and the next read raises."""
    path = os.path.join(tmp_path, "vpages.bin")
    with use_registry(MetricsRegistry()):
        with PagedFile("vpages", page_size=64, path=path) as pf:
            pid = pf.append_page(b"payload")
        with open(path, "r+b") as fh:
            fh.seek(3)
            fh.write(b"\xff")
        with PagedFile("vpages", page_size=64, path=path) as pf:
            with pytest.raises(PageCorruptError):
                pf.read_page(pid)


def test_external_trailer_corruption_detected(tmp_path):
    path = os.path.join(tmp_path, "vpages.bin")
    with use_registry(MetricsRegistry()):
        with PagedFile("vpages", page_size=64, path=path) as pf:
            pid = pf.append_page(b"payload")
        with open(path, "r+b") as fh:
            fh.seek(64)                  # first trailer byte of page 0
            fh.write(b"\x00\x00\x00\x00\x00\x00\x00\x01")
        with PagedFile("vpages", page_size=64, path=path) as pf:
            with pytest.raises(PageCorruptError):
                pf.read_page(pid)


# -- determinism and wiring --------------------------------------------------


def _fault_trace(seed):
    """Outcome sequence of a fixed workload under a fixed plan."""
    with use_registry(MetricsRegistry()):
        pf = make_file()
        pids = [pf.append_page(b"page %d" % i) for i in range(24)]
        injector = FaultInjector(
            plan(FaultRule("read-error", rate=0.3),
                 FaultRule("bit-flip", rate=0.2)), seed=seed)
        injector.install(pf)
        trace = []
        try:
            for pid in pids:
                try:
                    pf.read_page(pid)
                    trace.append("ok")
                except TransientIOError:
                    trace.append("transient")
                except PageCorruptError:
                    trace.append("corrupt")
        finally:
            injector.uninstall()
        return trace, dict(injector.injected)


def test_same_seed_same_fault_sequence():
    assert _fault_trace(7) == _fault_trace(7)
    assert _fault_trace(1234) == _fault_trace(1234)


def test_match_selects_files_by_name_substring():
    with use_registry(MetricsRegistry()):
        tree = make_file(name="tree")
        vpages = make_file(name="vpages-dfs")
        tree_pid = tree.append_page(b"node")
        vpage_pid = vpages.append_page(b"vpage")
        injector = FaultInjector(
            plan(FaultRule("read-error", match="vpages", rate=1.0)), seed=0)
        injector.install(tree, vpages)
        try:
            assert tree.read_page(tree_pid).startswith(b"node")
            with pytest.raises(TransientIOError):
                vpages.read_page(vpage_pid)
        finally:
            injector.uninstall()


def test_second_injector_rejected_and_uninstall_restores():
    with use_registry(MetricsRegistry()):
        pf = make_file()
        pid = pf.append_page(b"payload")
        first = FaultInjector(
            plan(FaultRule("read-error", rate=1.0)), seed=0)
        second = FaultInjector(
            plan(FaultRule("read-error", rate=1.0)), seed=1)
        first.install(pf)
        try:
            first.install(pf)            # same injector: idempotent
            with pytest.raises(StorageError):
                second.install(pf)
        finally:
            first.uninstall()
        assert pf.faults is None
        assert pf.read_page(pid).startswith(b"payload")


# -- validation and named plans ----------------------------------------------


def test_invalid_rules_rejected():
    with pytest.raises(StorageError):
        FaultRule("gamma-ray")
    with pytest.raises(StorageError):
        FaultRule("read-error", rate=1.5)
    with pytest.raises(StorageError):
        FaultRule("fail-after", after_ops=-1)
    with pytest.raises(StorageError):
        FaultRule("latency", latency_ms=-2.0)
    with pytest.raises(StorageError):
        FaultRule("read-error", times=0)
    with pytest.raises(StorageError):
        FaultPlan("empty", ())


def test_named_plans_lookup():
    assert "aggressive" in plan_names()
    assert plan_names() == sorted(plan_names())
    for name in plan_names():
        assert named_plan(name).name == name
    with pytest.raises(StorageError):
        named_plan("no-such-plan")


def test_retry_policy_backoff_and_validation():
    policy = RetryPolicy(max_attempts=4, base_backoff_ms=2.0,
                         multiplier=3.0)
    assert policy.backoff_ms(1) == pytest.approx(2.0)
    assert policy.backoff_ms(2) == pytest.approx(6.0)
    assert policy.backoff_ms(3) == pytest.approx(18.0)
    with pytest.raises(StorageError):
        policy.backoff_ms(0)
    with pytest.raises(StorageError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(StorageError):
        RetryPolicy(base_backoff_ms=-1.0)
    with pytest.raises(StorageError):
        RetryPolicy(multiplier=0.5)


def test_happy_path_registers_no_resilience_series():
    """With no injector, a normal read/write round-trip must not create
    any retry/corruption series — the fault-free metric dump stays
    byte-identical to one from before the resilience layer existed."""
    with use_registry(MetricsRegistry()) as registry:
        pf = make_file()
        pid = pf.append_page(b"payload")
        pageio.read_page(pf, pid, component="test")
        for metric in (names.PAGEIO_RETRIES, names.PAGEIO_GIVEUPS,
                       names.PAGES_CORRUPT):
            assert registry.value(metric, file=pf.name) == 0.0
            assert not registry.series(metric)


# -- deterministic crash points (PR 8) ---------------------------------------


def test_crash_after_ops_counts_boundaries_and_raises():
    from repro.errors import SimulatedCrash

    with use_registry(MetricsRegistry()) as registry:
        pf = make_file()
        pid = pf.append_page(b"payload")
        injector = FaultInjector(seed=0)          # plan-less: crash-only
        injector.install(pf)
        injector.crash_after_ops(3)
        pf.read_page(pid)
        pf.read_page(pid)
        with pytest.raises(SimulatedCrash, match="boundary 3"):
            pf.read_page(pid)
        assert injector.crash_trace == [f"read:{pf.name}"] * 3
        assert injector.injected == {"crash": 1}
        assert registry.value(names.CRASHES_INJECTED) == 1
        injector.uninstall()


def test_crash_point_is_inert_until_armed():
    with use_registry(MetricsRegistry()) as registry:
        pf = make_file()
        pid = pf.append_page(b"payload")
        injector = FaultInjector(seed=0)
        injector.install(pf)
        for _ in range(10):
            pf.read_page(pid)
        assert injector.crash_trace == []
        assert injector.total_injected() == 0
        assert not registry.series(names.CRASHES_INJECTED)
        injector.crash_after_ops(5)
        injector.crash_after_ops(None)            # disarm again
        pf.read_page(pid)
        assert injector.crash_trace == []
        injector.uninstall()


def test_crash_after_ops_validation():
    injector = FaultInjector(seed=0)
    with pytest.raises(StorageError):
        injector.crash_after_ops(0)
    with pytest.raises(StorageError):
        injector.crash_after_ops(-2)


def test_simulated_crash_is_not_retried():
    """A crash is terminal by design: the retry layer must let it
    propagate instead of burning attempts against a dead process."""
    from repro.errors import SimulatedCrash

    with use_registry(MetricsRegistry()) as registry:
        pf = make_file()
        pid = pf.append_page(b"payload")
        injector = FaultInjector(seed=0)
        injector.install(pf)
        injector.crash_after_ops(1)
        with pytest.raises(SimulatedCrash):
            pageio.read_page(pf, pid, component="test")
        assert not isinstance(SimulatedCrash("x"), TransientIOError)
        assert registry.value(names.PAGEIO_RETRIES, file=pf.name) == 0
        injector.uninstall()


def test_crash_countdown_consumes_no_rng():
    """Arming the countdown must not perturb the plan's fault sequence:
    two injectors with the same plan and seed, one armed far beyond the
    workload, inject identical faults."""
    def run(arm):
        with use_registry(MetricsRegistry()):
            pf = make_file()
            pid = pf.append_page(b"payload")
            injector = FaultInjector(
                plan(FaultRule("read-error", rate=0.5)), seed=42)
            if arm:
                injector.crash_after_ops(10 ** 9)
            injector.install(pf)
            hits = []
            for _ in range(20):
                try:
                    pf.read_page(pid)
                    hits.append(0)
                except TransientIOError:
                    hits.append(1)
            injector.uninstall()
            return hits

    assert run(arm=False) == run(arm=True)
