"""Mesh simplification: QEM and vertex clustering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError
from repro.geometry.primitives import box_mesh, bunny_blob, icosphere
from repro.simplify.clustering import simplify_clustering
from repro.simplify.qem import simplify_qem


@pytest.mark.parametrize("simplify", [simplify_qem, simplify_clustering],
                         ids=["qem", "clustering"])
class TestSimplifiers:
    def test_respects_target(self, simplify):
        sphere = icosphere(subdivisions=2)          # 320 faces
        out = simplify(sphere, 80)
        assert 0 < out.num_faces <= 80

    def test_noop_when_under_target(self, simplify):
        box = box_mesh((0, 0, 0), (1, 1, 1))
        out = simplify(box, 50)
        assert out is box

    def test_invalid_target(self, simplify):
        with pytest.raises(GeometryError):
            simplify(icosphere(subdivisions=1), 0)

    def test_output_within_inflated_input_bounds(self, simplify):
        sphere = icosphere(subdivisions=2, radius=3.0, center=(5, 5, 5))
        out = simplify(sphere, 40)
        margin = sphere.aabb().diagonal * 0.05 + 1e-9
        assert sphere.aabb().inflated(margin).contains(out.aabb())

    def test_no_degenerate_faces(self, simplify):
        out = simplify(icosphere(subdivisions=2), 60)
        assert np.all(out.face_areas() > 0)

    def test_surface_area_roughly_preserved(self, simplify):
        sphere = icosphere(subdivisions=3)
        out = simplify(sphere, 150)
        assert out.surface_area() == pytest.approx(sphere.surface_area(),
                                                   rel=0.35)

    def test_deterministic(self, simplify):
        blob = bunny_blob(subdivisions=2, seed=3)
        a = simplify(blob, 70)
        b = simplify(blob, 70)
        assert a.num_faces == b.num_faces
        assert np.allclose(a.vertices, b.vertices)


def test_qem_extreme_target_returns_proxy_not_empty():
    sphere = icosphere(subdivisions=1)
    out = simplify_qem(sphere, 1)
    assert out.num_faces >= 1


def test_clustering_extreme_target_returns_proxy_not_empty():
    sphere = icosphere(subdivisions=1)
    out = simplify_clustering(sphere, 1)
    assert 1 <= out.num_faces <= 1


def test_qem_preserves_planar_patch_exactly():
    """Contracting edges of a flat grid keeps vertices in the plane."""
    n = 5
    xs, ys = np.meshgrid(np.arange(n, dtype=float),
                         np.arange(n, dtype=float))
    verts = np.stack([xs.ravel(), ys.ravel(), np.zeros(n * n)], axis=1)
    faces = []
    for i in range(n - 1):
        for j in range(n - 1):
            a = i * n + j
            faces.append((a, a + 1, a + n))
            faces.append((a + 1, a + n + 1, a + n))
    from repro.geometry.mesh import TriangleMesh
    grid = TriangleMesh(verts, np.array(faces))
    out = simplify_qem(grid, 8)
    assert out.num_faces <= 8
    assert np.allclose(out.vertices[:, 2], 0.0, atol=1e-6)


@given(sub=st.integers(min_value=1, max_value=2),
       ratio=st.floats(min_value=0.05, max_value=0.9))
@settings(max_examples=10, deadline=None)
def test_clustering_target_property(sub, ratio):
    sphere = icosphere(subdivisions=sub)
    target = max(int(sphere.num_faces * ratio), 1)
    out = simplify_clustering(sphere, target)
    assert 1 <= out.num_faces <= target
