"""TriangleMesh unit tests."""

import numpy as np
import pytest

from repro.constants import BYTES_PER_POLYGON
from repro.errors import GeometryError
from repro.geometry.mesh import TriangleMesh
from repro.geometry.primitives import box_mesh, icosphere


def unit_triangle():
    return TriangleMesh(np.array([(0, 0, 0), (1, 0, 0), (0, 1, 0)]),
                        np.array([[0, 1, 2]]))


def test_counts_and_bytes():
    mesh = unit_triangle()
    assert mesh.num_vertices == 3
    assert mesh.num_faces == 1
    assert mesh.num_polygons == 1
    assert mesh.byte_size == BYTES_PER_POLYGON


def test_bad_shapes_rejected():
    with pytest.raises(GeometryError):
        TriangleMesh(np.zeros((3, 2)), np.array([[0, 1, 2]]))
    with pytest.raises(GeometryError):
        TriangleMesh(np.zeros((3, 3)), np.array([[0, 1, 3]]))  # index OOR
    with pytest.raises(GeometryError):
        TriangleMesh(np.array([[np.nan, 0, 0]]), np.empty((0, 3), np.int64))


def test_empty_mesh():
    mesh = TriangleMesh.empty()
    assert mesh.num_faces == 0
    with pytest.raises(GeometryError):
        mesh.aabb()


def test_face_areas_and_surface():
    mesh = unit_triangle()
    assert mesh.face_areas()[0] == pytest.approx(0.5)
    assert mesh.surface_area() == pytest.approx(0.5)


def test_box_mesh_closed_surface():
    box = box_mesh((0, 0, 0), (2, 2, 2))
    assert box.num_faces == 12
    assert box.surface_area() == pytest.approx(6 * 4.0)
    assert np.allclose(box.aabb().lo, (-1, -1, -1))
    assert np.allclose(box.aabb().hi, (1, 1, 1))


def test_merge_rebases_indices():
    a = box_mesh((0, 0, 0), (1, 1, 1))
    b = box_mesh((5, 0, 0), (1, 1, 1))
    merged = TriangleMesh.merge([a, b])
    assert merged.num_faces == 24
    assert merged.num_vertices == 16
    assert merged.aabb().contains(a.aabb())
    assert merged.aabb().contains(b.aabb())


def test_merge_empty_list():
    assert TriangleMesh.merge([]).num_faces == 0


def test_translated_scaled():
    mesh = unit_triangle().translated((1, 1, 1))
    assert np.allclose(mesh.vertices[0], (1, 1, 1))
    scaled = unit_triangle().scaled(2.0)
    assert scaled.surface_area() == pytest.approx(2.0)


def test_drop_degenerate_faces():
    verts = np.array([(0, 0, 0), (1, 0, 0), (0, 1, 0), (2, 0, 0)])
    faces = np.array([(0, 1, 2), (0, 1, 1), (0, 1, 3)])  # last is collinear
    cleaned = TriangleMesh(verts, faces).drop_degenerate_faces()
    assert cleaned.num_faces == 1


def test_compacted_drops_orphans():
    verts = np.array([(0, 0, 0), (9, 9, 9), (1, 0, 0), (0, 1, 0)])
    faces = np.array([(0, 2, 3)])
    compact = TriangleMesh(verts, faces).compacted()
    assert compact.num_vertices == 3
    assert compact.num_faces == 1
    assert compact.surface_area() == pytest.approx(0.5)


def test_icosphere_face_count_and_radius():
    for sub in (0, 1, 2):
        sphere = icosphere(radius=2.0, subdivisions=sub)
        assert sphere.num_faces == 20 * 4 ** sub
        radii = np.linalg.norm(sphere.vertices, axis=1)
        assert np.allclose(radii, 2.0)


def test_icosphere_area_approaches_sphere():
    sphere = icosphere(radius=1.0, subdivisions=3)
    assert sphere.surface_area() == pytest.approx(4 * np.pi, rel=0.02)
