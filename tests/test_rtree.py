"""R-tree tests: splits, insertion invariants, queries vs brute force."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RTreeError
from repro.geometry.aabb import AABB
from repro.rtree.bulk import str_bulk_load
from repro.rtree.entry import Entry
from repro.rtree.split import (ang_tan_linear_split, get_split_algorithm,
                               guttman_linear_split)
from repro.rtree.tree import RTree


def random_boxes(n, seed=0, span=100.0, size=5.0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        lo = rng.uniform(0, span, 3)
        out.append(AABB(lo, lo + rng.uniform(0.1, size, 3)))
    return out


def brute_force(items, window):
    return sorted(oid for mbr, oid in items if mbr.intersects(window))


# -- splits -------------------------------------------------------------------

@pytest.mark.parametrize("split", [guttman_linear_split,
                                   ang_tan_linear_split],
                         ids=["guttman", "ang-tan"])
class TestSplits:
    def test_partition_is_complete(self, split):
        entries = [Entry(mbr=b, object_id=i)
                   for i, b in enumerate(random_boxes(20, seed=1))]
        a, b = split(entries, min_fill=4)
        ids = sorted(e.object_id for e in a + b)
        assert ids == list(range(20))

    def test_min_fill_respected(self, split):
        entries = [Entry(mbr=b, object_id=i)
                   for i, b in enumerate(random_boxes(9, seed=2))]
        a, b = split(entries, min_fill=3)
        assert len(a) >= 3 and len(b) >= 3

    def test_identical_boxes_still_split(self, split):
        same = AABB((0, 0, 0), (1, 1, 1))
        entries = [Entry(mbr=same, object_id=i) for i in range(8)]
        a, b = split(entries, min_fill=3)
        assert len(a) + len(b) == 8
        assert len(a) >= 3 and len(b) >= 3

    def test_too_few_entries_rejected(self, split):
        entries = [Entry(mbr=AABB((0, 0, 0), (1, 1, 1)), object_id=0)]
        with pytest.raises(RTreeError):
            split(entries, min_fill=1)

    def test_infeasible_min_fill_rejected(self, split):
        entries = [Entry(mbr=b, object_id=i)
                   for i, b in enumerate(random_boxes(4, seed=3))]
        with pytest.raises(RTreeError):
            split(entries, min_fill=3)


def test_get_split_algorithm():
    assert get_split_algorithm("guttman") is guttman_linear_split
    with pytest.raises(RTreeError):
        get_split_algorithm("quadratic")


def test_ang_tan_separates_two_clusters():
    left = [Entry(mbr=AABB((x, 0, 0), (x + 1, 1, 1)), object_id=x)
            for x in range(5)]
    right = [Entry(mbr=AABB((x + 100, 0, 0), (x + 101, 1, 1)),
                   object_id=x + 100) for x in range(5)]
    a, b = ang_tan_linear_split(left + right, min_fill=3)
    group_ids = [sorted(e.object_id for e in g) for g in (a, b)]
    assert sorted(group_ids) == [list(range(5)),
                                 [100, 101, 102, 103, 104]]


# -- insertion path --------------------------------------------------------

@pytest.mark.parametrize("split", ["guttman", "ang-tan"])
def test_insert_preserves_invariants(split):
    tree = RTree(max_entries=6, split=split)
    items = [(b, i) for i, b in enumerate(random_boxes(120, seed=4))]
    for mbr, oid in items:
        tree.insert(mbr, oid)
    tree.check_invariants()
    assert tree.size == 120
    assert sorted(tree.all_object_ids()) == list(range(120))
    assert tree.height >= 2


def test_window_query_matches_brute_force():
    tree = RTree(max_entries=6)
    items = [(b, i) for i, b in enumerate(random_boxes(150, seed=5))]
    for mbr, oid in items:
        tree.insert(mbr, oid)
    for seed in range(5):
        rng = np.random.default_rng(seed + 100)
        lo = rng.uniform(0, 80, 3)
        window = AABB(lo, lo + rng.uniform(5, 40, 3))
        assert sorted(tree.window_query(window)) == brute_force(items, window)


def test_point_query():
    tree = RTree()
    tree.insert(AABB((0, 0, 0), (10, 10, 10)), 1)
    tree.insert(AABB((20, 20, 20), (30, 30, 30)), 2)
    assert tree.point_query((5, 5, 5)) == [1]
    assert tree.point_query((50, 50, 50)) == []


def test_on_node_callback_counts_visits():
    tree = RTree(max_entries=4)
    for i, b in enumerate(random_boxes(50, seed=6)):
        tree.insert(b, i)
    visits = []
    tree.window_query(AABB((0, 0, 0), (100, 100, 100)),
                      on_node=visits.append)
    assert len(visits) == tree.num_nodes     # full-window visits all


def test_dfs_is_deterministic_preorder():
    tree = str_bulk_load([(b, i) for i, b in
                          enumerate(random_boxes(40, seed=7))],
                         max_entries=4)
    order1 = [id(n) for n in tree.iter_nodes_dfs()]
    order2 = [id(n) for n in tree.iter_nodes_dfs()]
    assert order1 == order2
    nodes = list(tree.iter_nodes_dfs())
    assert nodes[0] is tree.root


def test_constructor_validation():
    with pytest.raises(RTreeError):
        RTree(max_entries=2)
    with pytest.raises(RTreeError):
        RTree(min_fill=0.9)
    with pytest.raises(RTreeError):
        RTree(split="bogus")


# -- bulk loading ------------------------------------------------------------

def test_bulk_load_invariants_and_completeness():
    items = [(b, i) for i, b in enumerate(random_boxes(200, seed=8))]
    tree = str_bulk_load(items, max_entries=8)
    tree.check_invariants()
    assert tree.size == 200
    assert sorted(tree.all_object_ids()) == list(range(200))


def test_bulk_load_queries_match_brute_force():
    items = [(b, i) for i, b in enumerate(random_boxes(200, seed=9))]
    tree = str_bulk_load(items, max_entries=8)
    window = AABB((10, 10, 10), (60, 60, 60))
    assert sorted(tree.window_query(window)) == brute_force(items, window)


def test_bulk_load_empty_rejected():
    with pytest.raises(RTreeError):
        str_bulk_load([])


def test_bulk_load_single_item():
    tree = str_bulk_load([(AABB((0, 0, 0), (1, 1, 1)), 0)])
    assert tree.height == 1
    assert tree.window_query(AABB((0, 0, 0), (2, 2, 2))) == [0]


def test_bulk_load_then_insert():
    items = [(b, i) for i, b in enumerate(random_boxes(60, seed=10))]
    tree = str_bulk_load(items, max_entries=6)
    extra = AABB((200, 200, 200), (201, 201, 201))
    tree.insert(extra, 999)
    tree.check_invariants()
    assert 999 in tree.window_query(AABB((199, 199, 199), (202, 202, 202)))


@given(st.integers(min_value=1, max_value=60),
       st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=20, deadline=None)
def test_bulk_load_property(n, seed):
    items = [(b, i) for i, b in enumerate(random_boxes(n, seed=seed))]
    tree = str_bulk_load(items, max_entries=5)
    tree.check_invariants()
    everything = AABB((-1e6, -1e6, -1e6), (1e6, 1e6, 1e6))
    assert sorted(tree.window_query(everything)) == list(range(n))
