"""Report formatting, experiment config, and library constants."""

import dataclasses

import pytest

from repro import constants
from repro.errors import ExperimentError
from repro.experiments.config import (ETA_SWEEP, LARGE, MEDIUM, SMALL,
                                      build_experiment_environment,
                                      clear_environment_cache, get_scale)
from repro.experiments.report import format_series, format_table, mb


# -- report formatting --------------------------------------------------------

def test_format_table_alignment():
    out = format_table("Title", ["a", "long header"],
                       [[1, 2.5], [30, 0.001]])
    lines = out.splitlines()
    assert lines[0] == "Title"
    assert lines[1] == "=" * len("Title")
    assert "long header" in lines[2]
    widths = {len(line) for line in lines[2:]}
    assert len(widths) == 1          # all rows aligned


def test_format_table_number_styles():
    out = format_table("T", ["x"], [[1234567], [0.00005], [1.25], [0]])
    assert "1,234,567" in out
    assert "0.00005" in out
    assert "1.25" in out


def test_format_series():
    out = format_series("S", "eta", [0.0, 0.5],
                        [("a", [1.0, 2.0]), ("b", [3.0, 4.0])])
    assert "eta" in out
    assert "a" in out and "b" in out
    assert "4.00" in out


def test_mb():
    assert mb(1024 * 1024) == 1.0


# -- constants ------------------------------------------------------------

def test_paper_constants():
    assert constants.MAXDOV == 0.5
    assert constants.ETA_RANGE == (0.0, 0.008)
    assert constants.ETA_GRID[0] == 0.0
    assert constants.ETA_GRID[-1] == 0.008
    assert list(constants.ETA_GRID) == sorted(constants.ETA_GRID)


def test_sizes_positive():
    assert constants.PAGE_SIZE > 0
    assert constants.BYTES_PER_POLYGON > 0
    assert constants.SIZE_VENTRY == 8      # f32 DoV + u32 NVO


# -- experiment config ----------------------------------------------------------

def test_scales_are_ordered():
    assert SMALL.city.blocks_x < MEDIUM.city.blocks_x
    assert MEDIUM.city.blocks_x <= LARGE.city.blocks_x
    assert SMALL.session_frames < MEDIUM.session_frames


def test_eta_sweep_extends_paper_grid():
    assert ETA_SWEEP[0] == 0.0
    assert 0.008 in ETA_SWEEP
    assert ETA_SWEEP[-1] > 0.008
    assert list(ETA_SWEEP) == sorted(set(ETA_SWEEP))


def test_get_scale():
    assert get_scale("small") is SMALL
    with pytest.raises(ExperimentError):
        get_scale("huge")


def test_scales_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        SMALL.cell_size = 1.0      # type: ignore[misc]


def test_with_schemes_override():
    modified = SMALL.with_schemes(["horizontal"])
    assert modified.hdov.schemes == ("horizontal",)
    assert SMALL.hdov.schemes != ("horizontal",)   # original untouched


def test_environment_cache_reuses_and_clears():
    env_a = build_experiment_environment(SMALL)
    env_b = build_experiment_environment(SMALL)
    assert env_a is env_b
    clear_environment_cache()
    env_c = build_experiment_environment(SMALL)
    assert env_c is not env_a


def test_environment_cache_keyed_by_schemes():
    env_default = build_experiment_environment(SMALL)
    env_all = build_experiment_environment(
        SMALL, schemes=("horizontal", "vertical", "indexed-vertical"))
    assert env_default is not env_all
    assert set(env_all.schemes) == {"horizontal", "vertical",
                                    "indexed-vertical"}
