"""Solid angle utilities: analytic checks."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.aabb import AABB
from repro.geometry.solidangle import (FULL_SPHERE, aabb_solid_angle_upper_bound,
                                       dov_upper_bound, sphere_solid_angle,
                                       triangle_solid_angle)


def test_sphere_solid_angle_inside_is_full():
    assert sphere_solid_angle(0.5, 1.0) == pytest.approx(FULL_SPHERE)


def test_sphere_solid_angle_far_limit():
    # Far away: Omega ~ pi r^2 / d^2.
    omega = sphere_solid_angle(1000.0, 1.0)
    assert omega == pytest.approx(np.pi / 1000.0 ** 2, rel=1e-4)


def test_sphere_solid_angle_monotone_in_distance():
    values = [sphere_solid_angle(d, 1.0) for d in (2.0, 5.0, 10.0, 100.0)]
    assert values == sorted(values, reverse=True)


def test_sphere_solid_angle_invalid_radius():
    with pytest.raises(GeometryError):
        sphere_solid_angle(1.0, 0.0)


def test_aabb_upper_bound_dominates_exact_projection():
    box = AABB((10, -1, -1), (12, 1, 1))
    bound = aabb_solid_angle_upper_bound((0, 0, 0), box)
    # The box fits inside its bounding sphere, so the exact solid angle
    # of any face is below the bound; check against the subtended face.
    face_omega = 4 * (
        triangle_solid_angle((0, 0, 0), (10, -1, -1), (10, 1, -1),
                             (10, 1, 1)) / 2
    )
    assert bound >= face_omega * 0.99


def test_dov_upper_bound_in_unit_range():
    box = AABB((1, -1, -1), (2, 1, 1))
    assert 0.0 < dov_upper_bound((0, 0, 0), box) <= 1.0
    inside = dov_upper_bound((1.5, 0, 0), box)
    assert inside == 1.0


def test_triangle_solid_angle_octant():
    """A triangle spanning one octant's worth of the unit sphere: the
    spherical triangle with vertices on +x, +y, +z axes subtends exactly
    4*pi/8."""
    omega = triangle_solid_angle((0, 0, 0), (1, 0, 0), (0, 1, 0), (0, 0, 1))
    assert omega == pytest.approx(FULL_SPHERE / 8.0, rel=1e-9)


def test_triangle_solid_angle_far_limit():
    # Small far triangle: Omega ~ area / d^2.
    d = 500.0
    omega = triangle_solid_angle((0, 0, 0), (d, 0, 0), (d, 1, 0), (d, 0, 1))
    assert omega == pytest.approx(0.5 / d ** 2, rel=1e-3)


def test_triangle_vertex_at_viewpoint_rejected():
    with pytest.raises(GeometryError):
        triangle_solid_angle((0, 0, 0), (0, 0, 0), (1, 0, 0), (0, 1, 0))
