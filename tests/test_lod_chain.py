"""LoD chains and the eq. 5/6 selection layer."""

import pytest
from hypothesis import given, strategies as st

from repro.constants import MAXDOV
from repro.errors import GeometryError, HDoVError
from repro.geometry.primitives import icosphere
from repro.lod.selection import (internal_lod_fraction, leaf_lod_fraction,
                                 select_internal_lod, select_leaf_lod)
from repro.simplify.lod_chain import LODChain, build_lod_chain


@pytest.fixture(scope="module")
def chain():
    return build_lod_chain(icosphere(subdivisions=3), num_levels=3,
                           reduction=0.4, method="clustering")


def test_chain_is_monotone(chain):
    polys = chain.polygons()
    assert polys == sorted(polys, reverse=True)
    assert chain.finest.num_faces == 20 * 4 ** 3


def test_chain_reduction_achieved(chain):
    assert chain.coarsest.num_faces <= chain.finest.num_faces * 0.4


def test_chain_wrong_order_rejected():
    fine = icosphere(subdivisions=2)
    coarse = icosphere(subdivisions=1)
    with pytest.raises(GeometryError):
        LODChain([coarse, fine])
    with pytest.raises(GeometryError):
        LODChain([])


def test_interpolated_polygons_endpoints(chain):
    assert chain.interpolated_polygons(1.0) == chain.finest.num_faces
    assert chain.interpolated_polygons(0.0) == chain.coarsest.num_faces


def test_interpolated_polygons_midpoint(chain):
    mid = chain.interpolated_polygons(0.5)
    expected = (chain.finest.num_faces + chain.coarsest.num_faces) / 2
    assert mid == pytest.approx(expected, abs=1)


def test_level_for_fraction(chain):
    assert chain.level_for_fraction(1.0) == 0
    assert chain.level_for_fraction(0.0) == chain.num_levels - 1


def test_byte_sizes(chain):
    from repro.constants import BYTES_PER_POLYGON
    assert chain.byte_sizes() == [m.num_faces * BYTES_PER_POLYGON
                                  for m in chain.levels]


def test_build_chain_invalid_params():
    sphere = icosphere(subdivisions=1)
    with pytest.raises(GeometryError):
        build_lod_chain(sphere, num_levels=0)
    with pytest.raises(GeometryError):
        build_lod_chain(sphere, reduction=1.5)
    with pytest.raises(GeometryError):
        build_lod_chain(sphere, method="nope")


# -- equation 6 (leaf LoD) ----------------------------------------------------

def test_leaf_fraction_saturates_at_maxdov():
    assert leaf_lod_fraction(MAXDOV) == 1.0
    assert leaf_lod_fraction(0.9) == 1.0
    assert leaf_lod_fraction(MAXDOV / 2) == pytest.approx(0.5)
    assert leaf_lod_fraction(0.0) == 0.0


def test_leaf_fraction_negative_rejected():
    with pytest.raises(HDoVError):
        leaf_lod_fraction(-0.1)


def test_select_leaf_lod_monotone_in_dov(chain):
    polys = [select_leaf_lod(chain, d)
             for d in (0.0, 0.1, 0.25, 0.5, 0.9)]
    assert polys == sorted(polys)


# -- equation 5 (internal LoD) --------------------------------------------

def test_internal_fraction_at_threshold_is_full():
    assert internal_lod_fraction(0.004, 0.004) == 1.0
    assert internal_lod_fraction(0.002, 0.004) == pytest.approx(0.5)


def test_internal_fraction_domain():
    with pytest.raises(HDoVError):
        internal_lod_fraction(0.005, 0.004)   # DoV above eta
    with pytest.raises(HDoVError):
        internal_lod_fraction(0.0, 0.004)     # hidden entry
    with pytest.raises(HDoVError):
        internal_lod_fraction(0.001, 0.0)     # eta zero


def test_select_internal_lod_monotone(chain):
    eta = 0.01
    polys = [select_internal_lod(chain, d, eta)
             for d in (0.001, 0.004, 0.008, 0.01)]
    assert polys == sorted(polys)


@given(dov=st.floats(min_value=1e-6, max_value=1.0))
def test_leaf_fraction_in_unit_range(dov):
    assert 0.0 < leaf_lod_fraction(dov) <= 1.0


@given(eta=st.floats(min_value=1e-6, max_value=1.0), t=st.floats(0.001, 1.0))
def test_internal_fraction_in_unit_range(eta, t):
    dov = eta * t
    assert 0.0 < internal_lod_fraction(dov, eta) <= 1.0
