"""Tests for the ``repro lint`` rule suite (RPR001-RPR014).

Every registered rule must have at least one *triggering* and one
*non-triggering* fixture here — ``test_every_rule_has_fixtures`` fails
the suite if a new rule lands without them.  The fixtures deliberately
mirror the historical bug patterns each rule encodes (see DESIGN.md):
e.g. the RPR004 trigger is the exact ``time.time()`` pattern the seed's
``repro/cli.py`` shipped with before PR 2 fixed it.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (DRIVER_CODE, all_rules, lint_paths,
                            load_baseline, save_baseline)
from repro.cli import main as cli_main
from repro.errors import AnalysisError

REPO_SRC = Path(__file__).resolve().parents[1] / "src"

ALL_CODES = {"RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
             "RPR006", "RPR007", "RPR008", "RPR009", "RPR010",
             "RPR011", "RPR012", "RPR013", "RPR014"}


def write_module(root: Path, relpath: str, source: str) -> Path:
    """Write ``source`` at ``relpath``, creating the ``__init__.py``
    chain so the file gets a real dotted module name."""
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    directory = path.parent
    while directory != root:
        init = directory / "__init__.py"
        if not init.exists():
            init.write_text("")
        directory = directory.parent
    path.write_text(textwrap.dedent(source))
    return path


def lint_codes(tmp_path: Path, files) -> list:
    for relpath, source in files:
        write_module(tmp_path, relpath, source)
    result = lint_paths([str(tmp_path)])
    return [d.code for d in result.diagnostics]


# Each rule: fixtures that must trigger it and fixtures that must not.
# Unscoped rules use bare files; package-scoped rules (RPR001's storage
# exemption, RPR006's strict packages, RPR007's names module) build a
# miniature ``repro`` package tree.
FIXTURES = {
    "RPR001": {
        "bad": [("caller.py", """
            def load(pf, page_id):
                return pf.read_page(page_id)
            """)],
        "good": [("caller.py", """
            from repro.storage import pageio

            def load(pf, page_id):
                return pageio.read_page(pf, page_id, component="core")
            """)],
    },
    "RPR002": {
        "bad": [("metrics_user.py", """
            def bump(registry):
                registry.counter("reads_total").inc()
            """)],
        "good": [("metrics_user.py", """
            from repro.obs import names

            def bump(registry):
                registry.counter(names.PAGEDFILE_READS).inc()
            """)],
    },
    "RPR003": {
        "bad": [("pinner.py", """
            def hold(pool, pf):
                page = pool.get(pf, 1, pin=True)
                return page
            """)],
        "good": [("pinner.py", """
            def hold(pool, pf):
                try:
                    page = pool.get(pf, 1, pin=True)
                    return bytes(page)
                finally:
                    pool.unpin(pf, 1)

            def peek(pool, pf):
                return pool.get(pf, 1, pin=False)
            """)],
    },
    "RPR004": {
        # The seed's repro/cli.py pattern, verbatim (pre-PR-2).
        "bad": [("timer.py", """
            import time

            def run(runner, scale):
                started = time.time()
                result = runner(scale)
                elapsed = time.time() - started
                return result, elapsed
            """)],
        "good": [("timer.py", """
            import time

            def run(runner, scale):
                started = time.perf_counter()
                result = runner(scale)
                elapsed = time.perf_counter() - started
                return result, elapsed
            """)],
    },
    "RPR005": {
        "bad": [("compare.py", """
            def same_detail(dov, previous_dov):
                return dov == previous_dov
            """)],
        "good": [("compare.py", """
            import math

            def pruned(dov):
                return dov == 0.0

            def same_detail(dov, previous_dov):
                return math.isclose(dov, previous_dov)
            """)],
    },
    "RPR006": {
        "bad": [("repro/core/helpers.py", """
            def scale(value, factor):
                return value * factor
            """)],
        "good": [
            ("repro/core/helpers.py", """
                from typing import Tuple

                def scale(value: float, factor: float) -> float:
                    return value * factor

                def pair(value: float) -> Tuple[float, float]:
                    return (value, value)
                """),
            # The same unannotated code outside the strict packages is
            # not the ratchet's business.
            ("repro/experiments/helpers.py", """
                def scale(value, factor):
                    return value * factor
                """),
        ],
    },
    "RPR007": {
        "bad": [("repro/obs/names.py",
                 'UNUSED_TOTAL = "unused_total"\n')],
        "good": [
            ("repro/obs/names.py", 'USED_TOTAL = "used_total"\n'),
            ("repro/core/user.py", """
                from repro.obs import names

                ACTIVE = names.USED_TOTAL
                """),
        ],
    },
    "RPR008": {
        "bad": [("swallow.py", """
            def load(path):
                try:
                    with open(path) as fh:
                        return fh.read()
                except ValueError:
                    pass

            def load_any(path):
                try:
                    with open(path) as fh:
                        return fh.read()
                except:
                    return None
            """)],
        "good": [
            ("handler.py", """
                def load(path, log):
                    try:
                        with open(path) as fh:
                            return fh.read()
                    except ValueError as exc:
                        log.warning("bad file %s: %s", path, exc)
                        return None
                """),
            # The same swallow inside a designated fault-boundary
            # module is that module's job, not a violation.
            ("repro/storage/faults.py", """
                def absorb(op):
                    try:
                        return op()
                    except IOError:
                        pass
                    return None
                """),
        ],
    },
    "RPR009": {
        "bad": [("repro/serving/http/handlers.py", """
            from time import perf_counter

            def stamp_response(body):
                body["answered_at"] = perf_counter()
                return body
            """)],
        "good": [
            # The middleware is the sanctioned timing boundary.
            ("repro/serving/http/middleware.py", """
                from time import perf_counter

                def measure(op):
                    started = perf_counter()
                    result = op()
                    return result, perf_counter() - started
                """),
            # Clock-free handlers in the package are the point.
            ("repro/serving/http/handlers.py", """
                def stamp_response(body, elapsed_ms):
                    body["elapsed_ms"] = elapsed_ms
                    return body
                """),
            # The same clock call *outside* the package is RPR004's
            # business (perf_counter is fine there), not RPR009's.
            ("repro/serving/loadgen.py", """
                from time import perf_counter

                def elapsed(op):
                    started = perf_counter()
                    op()
                    return perf_counter() - started
                """),
        ],
    },
    "RPR010": {
        # A pagedfile-level class acquiring a bufferpool-level lock
        # while holding its own climbs the lattice — the deadlock shape
        # the witness would catch at runtime.
        "bad": [("locks.py", """
            import threading

            class Pool:
                LOCK_LEVEL = "bufferpool"

                def __init__(self):
                    self._lock = threading.RLock()

                def touch(self):
                    with self._lock:
                        pass

            class File:
                LOCK_LEVEL = "pagedfile"

                def __init__(self, pool):
                    self._lock = threading.RLock()
                    self._pool: "Pool" = pool

                def climb(self):
                    with self._lock:
                        self._pool.touch()
            """)],
        # The sanctioned direction: pool write-back into the file.
        "good": [("locks.py", """
            import threading

            class File:
                LOCK_LEVEL = "pagedfile"

                def __init__(self):
                    self._lock = threading.RLock()

                def touch(self):
                    with self._lock:
                        pass

            class Pool:
                LOCK_LEVEL = "bufferpool"

                def __init__(self, file):
                    self._lock = threading.RLock()
                    self._file: "File" = file

                def writeback(self):
                    with self._lock:
                        self._file.touch()
            """)],
    },
    "RPR011": {
        # The seed bug shape: reset() clears lock-guarded state bare.
        "bad": [("tracker.py", """
            import threading

            class Tracker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def reset(self):
                    self._count = 0
            """)],
        "good": [("tracker.py", """
            import threading

            class Tracker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def reset(self):
                    with self._lock:
                        self._count = 0
            """)],
    },
    "RPR012": {
        "bad": [("sink.py", """
            import os
            import threading

            class Sink:
                def __init__(self, fd):
                    self._lock = threading.Lock()
                    self._fd = fd

                def persist(self):
                    with self._lock:
                        os.fsync(self._fd)
            """)],
        "good": [("sink.py", """
            import os
            import threading

            class Sink:
                def __init__(self, fd):
                    self._lock = threading.Lock()
                    self._fd = fd

                def persist(self):
                    with self._lock:
                        fd = self._fd
                    os.fsync(fd)
            """)],
    },
    "RPR013": {
        "bad": [("reporter.py", """
            DETERMINISTIC_REPORT = True

            def report(keys):
                seen = {k for k in keys}
                return [k for k in seen]
            """)],
        "good": [("reporter.py", """
            DETERMINISTIC_REPORT = True

            def report(keys):
                seen = {k for k in keys}
                return [k for k in sorted(seen)]
            """)],
    },
    "RPR014": {
        # A scheme decoding V-page bytes itself hard-codes the raw
        # layout — the exact pattern PR 9 removed from the schemes.
        "bad": [("scheme.py", """
            from repro.storage.serializer import decode_vpage

            def ventries(scheme, data):
                return decode_vpage(data)
            """)],
        "good": [
            ("scheme.py", """
                def ventries(scheme, pointer, node_offset):
                    return scheme.codec.read(pointer, scheme, node_offset)
                """),
            # Inside the codec module itself the raw calls are the point.
            ("repro/storage/vpagecodec.py", """
                from repro.storage.serializer import (decode_vpage,
                                                      encode_vpage)

                def decode_page(data):
                    return decode_vpage(data)

                def encode_page(entries, page_size):
                    return encode_vpage(entries, page_size)
                """),
        ],
    },
}


def test_every_rule_has_fixtures():
    registered = {rule.code for rule in all_rules()}
    assert registered == ALL_CODES
    assert set(FIXTURES) == registered, (
        "every registered rule needs a triggering and a non-triggering "
        "fixture in FIXTURES")


@pytest.mark.parametrize("code", sorted(ALL_CODES))
def test_rule_triggers(code, tmp_path):
    codes = lint_codes(tmp_path, FIXTURES[code]["bad"])
    assert code in codes


@pytest.mark.parametrize("code", sorted(ALL_CODES))
def test_rule_stays_quiet(code, tmp_path):
    codes = lint_codes(tmp_path, FIXTURES[code]["good"])
    assert code not in codes


# -- rule-specific edges ----------------------------------------------------


def test_rpr001_allows_storage_package(tmp_path):
    codes = lint_codes(tmp_path, [("repro/storage/inner.py", """
        def load(pf, page_id):
            return pf.read_page(page_id)
        """)])
    assert "RPR001" not in codes


def test_rpr001_flags_private_attr_access(tmp_path):
    codes = lint_codes(tmp_path, [("poker.py", """
        def poke(pf):
            pf._fh.seek(0)
        """)])
    assert "RPR001" in codes


def test_rpr002_flags_computed_names(tmp_path):
    codes = lint_codes(tmp_path, [("metrics_user.py", """
        def bump(registry, which):
            registry.counter("prefix_" + which).inc()
        """)])
    assert "RPR002" in codes


def test_rpr003_accepts_context_manager(tmp_path):
    codes = lint_codes(tmp_path, [("pinner.py", """
        import contextlib

        def hold(pool, pf):
            with contextlib.closing(pool.get(pf, 1, pin=True)) as page:
                return bytes(page)
        """)])
    assert "RPR003" not in codes


def test_rpr004_ignores_unrelated_time_methods(tmp_path):
    codes = lint_codes(tmp_path, [("timer.py", """
        import time

        def pause():
            time.sleep(0.01)

        def stamp(clock):
            return clock.time()
        """)])
    assert "RPR004" not in codes


def test_rpr005_zero_guard_is_sanctioned(tmp_path):
    codes = lint_codes(tmp_path, [("compare.py", """
        def visible(entry_dov):
            return not (entry_dov == 0.0)

        def also_reversed(eta):
            return 0.0 != eta
        """)])
    assert "RPR005" not in codes


def test_rpr005_matches_segments_not_substrings(tmp_path):
    # "beta" and "metadata" contain "eta" as a substring but not as a
    # snake_case segment; they are ordinary values, not DoV thresholds.
    codes = lint_codes(tmp_path, [("config.py", """
        def unrelated(beta, metadata, other):
            return beta == other and metadata == other
        """)])
    assert "RPR005" not in codes


def test_rpr006_bare_generics_flagged(tmp_path):
    codes = lint_codes(tmp_path, [("repro/core/helpers.py", """
        from typing import List

        def heads(rows: List) -> list:
            return rows[:1]
        """)])
    assert codes.count("RPR006") == 2


def test_rpr008_flags_ellipsis_and_docstring_bodies(tmp_path):
    # "..." and a lone string are just pass in costume.
    codes = lint_codes(tmp_path, [("swallow.py", """
        def quiet(op):
            try:
                return op()
            except ValueError:
                ...

        def documented(op):
            try:
                return op()
            except KeyError:
                "tolerated"
            return None
        """)])
    assert codes.count("RPR008") == 2


def test_rpr008_bare_except_flagged_even_with_real_body(tmp_path):
    codes = lint_codes(tmp_path, [("swallow.py", """
        def load(op, log):
            try:
                return op()
            except:
                log.warning("failed")
                return None
        """)])
    assert "RPR008" in codes


def test_rpr008_reraise_and_transmute_are_fine(tmp_path):
    codes = lint_codes(tmp_path, [("handler.py", """
        def reraise(op):
            try:
                return op()
            except ValueError:
                raise

        def transmute(op):
            try:
                return op()
            except ValueError as exc:
                raise RuntimeError("wrapped") from exc
        """)])
    assert "RPR008" not in codes


def test_rpr008_retry_module_is_exempt(tmp_path):
    codes = lint_codes(tmp_path, [("repro/storage/retry.py", """
        def attempt(op):
            try:
                return op()
            except IOError:
                pass
            return None
        """)])
    assert "RPR008" not in codes


def test_rpr009_catches_aliased_module_clocks(tmp_path):
    codes = lint_codes(tmp_path, [("repro/serving/http/stats.py", """
        import time as clock

        def now_ms():
            return clock.monotonic() * 1000.0
        """)])
    assert "RPR009" in codes


def test_rpr009_ignores_non_clock_time_attrs(tmp_path):
    codes = lint_codes(tmp_path, [("repro/serving/http/server.py", """
        import time

        def backoff():
            time.sleep(0.01)
        """)])
    assert "RPR009" not in codes


def test_rpr010_unleveled_cycle_flagged(tmp_path):
    # Neither class declares a level, so the lattice check is blind —
    # the SCC detector still sees the A -> B -> A deadlock shape.
    codes = lint_codes(tmp_path, [("cycle.py", """
        import threading

        class Alpha:
            def __init__(self, beta):
                self._lock = threading.RLock()
                self._beta: "Beta" = beta

            def poke(self):
                with self._lock:
                    pass

            def cross(self):
                with self._lock:
                    self._beta.poke()

        class Beta:
            def __init__(self, alpha):
                self._lock = threading.RLock()
                self._alpha: "Alpha" = alpha

            def poke(self):
                with self._lock:
                    pass

            def cross(self):
                with self._lock:
                    self._alpha.poke()
        """)])
    assert "RPR010" in codes


def test_rpr010_same_class_reentrancy_ok(tmp_path):
    codes = lint_codes(tmp_path, [("reentrant.py", """
        import threading

        class Pool:
            LOCK_LEVEL = "bufferpool"

            def __init__(self):
                self._lock = threading.RLock()

            def inner(self):
                with self._lock:
                    pass

            def outer(self):
                with self._lock:
                    self.inner()
        """)])
    assert "RPR010" not in codes


def test_rpr010_bogus_level_flagged(tmp_path):
    codes = lint_codes(tmp_path, [("bogus.py", """
        import threading

        class Pool:
            LOCK_LEVEL = "not-a-level"

            def __init__(self):
                self._lock = threading.Lock()
        """)])
    assert "RPR010" in codes


def test_rpr010_same_level_acquisition_flagged(tmp_path):
    # Two distinct classes at the same level: neither may acquire the
    # other's lock while holding its own (strict descent only).
    codes = lint_codes(tmp_path, [("peers.py", """
        import threading

        class LeftPool:
            LOCK_LEVEL = "bufferpool"

            def __init__(self, peer):
                self._lock = threading.RLock()
                self._peer: "RightPool" = peer

            def steal(self):
                with self._lock:
                    self._peer.poke()

        class RightPool:
            LOCK_LEVEL = "bufferpool"

            def __init__(self):
                self._lock = threading.RLock()

            def poke(self):
                with self._lock:
                    pass
        """)])
    assert "RPR010" in codes


def test_rpr011_init_is_exempt(tmp_path):
    # Construction happens before the object is shared; only the
    # post-construction bare write is the race.
    codes = lint_codes(tmp_path, FIXTURES["RPR011"]["good"])
    assert "RPR011" not in codes


def test_rpr011_locked_helper_counts_as_guarded(tmp_path):
    # _apply only ever runs under the lock (its sole caller holds it),
    # so its writes are guarded — and the bare write in reset() is not.
    codes = lint_codes(tmp_path, [("tracker.py", """
        import threading

        class Tracker:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def bump(self):
                with self._lock:
                    self._apply()

            def _apply(self):
                self._count += 1

            def reset(self):
                self._count = 0
        """)])
    assert codes.count("RPR011") == 1


def test_rpr012_blocking_allowed_level_exempt(tmp_path):
    # A pagedfile-level lock exists to serialize physical I/O; blocking
    # under it is its job, not a violation.
    codes = lint_codes(tmp_path, [("sink.py", """
        import os
        import threading

        class FileLike:
            LOCK_LEVEL = "pagedfile"

            def __init__(self, fd):
                self._lock = threading.Lock()
                self._fd = fd

            def persist(self):
                with self._lock:
                    os.fsync(self._fd)
        """)])
    assert "RPR012" not in codes


def test_rpr013_unmarked_module_exempt(tmp_path):
    # The same unordered iteration outside a byte-deterministic module
    # is nobody's business.
    bad = FIXTURES["RPR013"]["bad"][0][1].replace(
        "DETERMINISTIC_REPORT = True", "")
    codes = lint_codes(tmp_path, [("reporter.py", bad)])
    assert "RPR013" not in codes


def test_rpr013_flags_fs_enumeration(tmp_path):
    codes = lint_codes(tmp_path, [("reporter.py", """
        import os

        DETERMINISTIC_REPORT = True

        def report(root):
            return [name for name in os.listdir(root)]
        """)])
    assert "RPR013" in codes


def test_rpr014_flags_attribute_calls(tmp_path):
    codes = lint_codes(tmp_path, [("poker.py", """
        from repro.storage import serializer

        def peek(data):
            return serializer.decode_vpage(data)
        """)])
    assert "RPR014" in codes


def test_rpr014_serializer_module_is_exempt(tmp_path):
    # The serializer owns the raw byte layout; its own definition and
    # self-use of encode_vpage/decode_vpage are not violations.
    codes = lint_codes(tmp_path, [("repro/storage/serializer.py", """
        def encode_vpage(entries, page_size):
            return b""

        def decode_vpage(data):
            return []

        def roundtrip(entries, page_size):
            return decode_vpage(encode_vpage(entries, page_size))
        """)])
    assert "RPR014" not in codes


# -- driver: file collection, RPR000, pragmas, baseline, CLI ----------------


def test_iter_python_files_dedupes_symlinked_dirs(tmp_path):
    from repro.analysis import iter_python_files

    real = tmp_path / "pkg"
    real.mkdir()
    (real / "mod.py").write_text("X = 1\n")
    link = tmp_path / "alias"
    link.symlink_to(real, target_is_directory=True)

    # The same file is reachable through pkg/, alias/, and directly;
    # realpath-keyed dedup lints it exactly once.
    files = iter_python_files([str(tmp_path)])
    assert len(files) == 1
    files = iter_python_files([str(real), str(link),
                               str(real / "mod.py"),
                               str(link / "mod.py")])
    assert len(files) == 1


def test_iter_python_files_dedupes_repeated_args(tmp_path):
    from repro.analysis import iter_python_files

    path = tmp_path / "mod.py"
    path.write_text("X = 1\n")
    unnormalised = str(tmp_path / "." / "mod.py")
    files = iter_python_files([str(path), str(path), unnormalised])
    assert files == [str(path)]


def test_iter_python_files_sorted_and_missing_raises(tmp_path):
    from repro.analysis import iter_python_files

    for name in ("b.py", "a.py", "c.py"):
        (tmp_path / name).write_text("X = 1\n")
    files = iter_python_files([str(tmp_path)])
    assert files == sorted(files)
    with pytest.raises(FileNotFoundError):
        iter_python_files([str(tmp_path / "missing")])


def test_syntax_error_is_a_violation(tmp_path):
    write_module(tmp_path, "broken.py", "def f(:\n")
    result = lint_paths([str(tmp_path)])
    assert [d.code for d in result.diagnostics] == [DRIVER_CODE]
    assert not result.ok


def test_driver_code_is_not_suppressible(tmp_path):
    write_module(tmp_path, "broken.py",
                 "# repro: ignore-file[RPR000]\ndef f(:\n")
    result = lint_paths([str(tmp_path)])
    assert [d.code for d in result.diagnostics] == [DRIVER_CODE]


def test_line_pragma_suppresses(tmp_path):
    write_module(tmp_path, "timer.py", textwrap.dedent("""
        import time

        def stamp():
            # Wall-clock wanted: this is a timestamp, not a duration.
            return time.time()  # repro: ignore[RPR004]
        """))
    result = lint_paths([str(tmp_path)])
    assert result.ok
    assert result.pragma_suppressed == 1


def test_file_pragma_suppresses(tmp_path):
    write_module(tmp_path, "timer.py", textwrap.dedent("""
        # repro: ignore-file[RPR004]
        import time

        def stamp():
            return time.time()
        """))
    assert lint_paths([str(tmp_path)]).ok


def test_pragma_for_other_code_does_not_suppress(tmp_path):
    write_module(tmp_path, "timer.py", textwrap.dedent("""
        import time

        def stamp():
            return time.time()  # repro: ignore[RPR001]
        """))
    result = lint_paths([str(tmp_path)])
    assert [d.code for d in result.diagnostics] == ["RPR004"]


def test_baseline_roundtrip(tmp_path):
    bad = FIXTURES["RPR004"]["bad"][0]
    write_module(tmp_path, bad[0], bad[1])
    baseline_file = tmp_path / "lint-baseline.json"

    first = lint_paths([str(tmp_path)])
    assert not first.ok
    save_baseline(str(baseline_file), first.before_baseline)
    assert load_baseline(str(baseline_file))

    second = lint_paths([str(tmp_path)],
                        baseline_path=str(baseline_file))
    assert second.ok
    assert second.baseline_suppressed == len(first.diagnostics)


def test_baseline_budget_is_per_occurrence(tmp_path):
    write_module(tmp_path, "timer.py", textwrap.dedent("""
        import time

        def stamp():
            return time.time()
        """))
    baseline_file = tmp_path / "lint-baseline.json"
    first = lint_paths([str(tmp_path)])
    save_baseline(str(baseline_file), first.before_baseline)

    # One *more* occurrence of the same baselined violation still fails.
    write_module(tmp_path, "timer.py", textwrap.dedent("""
        import time

        def stamp():
            return time.time()

        def stamp_again():
            return time.time()
        """))
    result = lint_paths([str(tmp_path)], baseline_path=str(baseline_file))
    assert not result.ok
    assert len(result.diagnostics) == 1


def test_malformed_baseline_raises(tmp_path):
    baseline_file = tmp_path / "lint-baseline.json"
    baseline_file.write_text(json.dumps({"version": 99}))
    with pytest.raises(AnalysisError):
        load_baseline(str(baseline_file))


def test_real_tree_is_clean():
    result = lint_paths([str(REPO_SRC)])
    assert result.ok, "\n".join(d.format() for d in result.diagnostics)


def test_cli_exit_codes(tmp_path, capsys):
    bad = write_module(tmp_path, "timer.py",
                       "import time\n\n\ndef f():\n    return time.time()\n")
    good = write_module(tmp_path, "clean.py", "X = 1\n")

    assert cli_main(["lint", str(good)]) == 0
    assert cli_main(["lint", str(bad)]) == 1
    assert cli_main(["lint", str(tmp_path / "missing.py")]) == 2
    out = capsys.readouterr().out
    assert "RPR004" in out


def test_cli_lists_rules(capsys):
    assert cli_main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    for code in sorted(ALL_CODES):
        assert code in out


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    write_module(tmp_path, "timer.py",
                 "import time\n\n\ndef f():\n    return time.time()\n")
    baseline_file = tmp_path / "lint-baseline.json"
    assert cli_main(["lint", str(tmp_path),
                     "--write-baseline", str(baseline_file)]) == 0
    assert cli_main(["lint", str(tmp_path),
                     "--baseline", str(baseline_file)]) == 0
    capsys.readouterr()


def test_cli_json_format(tmp_path, capsys):
    write_module(tmp_path, "timer.py",
                 "import time\n\n\ndef f():\n    return time.time()\n")
    assert cli_main(["lint", str(tmp_path), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["violations"][0]["code"] == "RPR004"
