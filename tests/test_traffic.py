"""Tests for the traffic harness (``repro.serving.loadgen``) and the
``repro traffic`` CLI command.

The load-bearing property: for a fixed seed the ``traffic`` and
``deterministic`` report sections are byte-identical across runs —
the virtual clock, the pre-drawn arrival/pattern randomness and the
strictly sequential dispatch leave no machine-dependent residue.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.errors import WalkthroughError
from repro.serving.loadgen import MIN_STEP_GAP_MS, run_traffic

ARGS = dict(sessions=30, seed=5, frames=6, arrival_rate=80.0,
            max_active=6, scale="small")


def deterministic_part(report):
    return {key: report[key] for key in ("traffic", "deterministic")}


@pytest.fixture(scope="module")
def report():
    return run_traffic(**ARGS)


def test_same_seed_byte_identical(report):
    again = run_traffic(**ARGS)
    first = json.dumps(deterministic_part(report), sort_keys=True)
    second = json.dumps(deterministic_part(again), sort_keys=True)
    assert first == second


def test_different_seed_differs(report):
    other = run_traffic(**{**ARGS, "seed": 6})
    assert (other["deterministic"]["sim_duration_ms"]
            != report["deterministic"]["sim_duration_ms"])


def test_accounting_balances(report):
    det = report["deterministic"]
    sessions = det["sessions"]
    assert sessions["offered"] == ARGS["sessions"]
    assert sessions["admitted"] + sessions["shed"] == sessions["offered"]
    assert sessions["completed"] == sessions["admitted"]
    assert sessions["shed_rate"] + sessions["serve_rate"] == 1.0
    assert det["frames"]["served"] \
        == sessions["admitted"] * ARGS["frames"]
    assert det["requests"]["unexpected"] == {}
    by_status = det["requests"]["by_status"]
    assert by_status["201"] == sessions["admitted"]
    assert by_status.get("503", 0) == sessions["shed"]
    # Every request the driver issued is accounted by the middleware.
    assert det["requests"]["total"] == sum(by_status.values())


def test_latency_percentiles_ordered(report):
    latency = report["deterministic"]["sim_frame_ms"]
    assert 0.0 < latency["p50"] <= latency["p95"] <= latency["p99"]
    assert latency["p99"] <= latency["max"]


def test_wall_clock_separated_from_deterministic(report):
    # Wall-clock values live only in their own section, so the CI diff
    # of the other sections can never absorb machine noise.
    assert "elapsed_s" in report["wall_clock"]
    assert "http_latency_ms" in report["wall_clock"]
    flat = json.dumps(deterministic_part(report))
    assert "elapsed_s" not in flat
    assert "wall" not in flat


def test_shed_rate_monotone_in_offered_load():
    rates = [run_traffic(**{**ARGS, "arrival_rate": rate})
             ["deterministic"]["sessions"]["shed_rate"]
             for rate in (10.0, 400.0)]
    assert rates[0] < rates[1]


def test_hot_fraction_extremes():
    all_hot = run_traffic(**{**ARGS, "sessions": 10, "hot_fraction": 1.0})
    none_hot = run_traffic(**{**ARGS, "sessions": 10,
                              "hot_fraction": 0.0})
    hot_sessions = all_hot["deterministic"]["sessions"]
    cold_sessions = none_hot["deterministic"]["sessions"]
    assert hot_sessions["hot"] == hot_sessions["admitted"]
    assert cold_sessions["hot"] == 0


def test_self_pacing_gap_floor():
    # A zero-cost frame still advances the virtual clock.
    assert MIN_STEP_GAP_MS > 0.0


def test_bad_arguments_rejected():
    with pytest.raises(WalkthroughError):
        run_traffic(sessions=0)
    with pytest.raises(WalkthroughError):
        run_traffic(arrival_rate=0.0)
    with pytest.raises(WalkthroughError):
        run_traffic(hot_fraction=1.5)


def test_cli_traffic_roundtrip(tmp_path, capsys):
    output = tmp_path / "traffic.json"
    code = cli_main(["traffic", "--sessions", "10", "--seed", "1",
                     "--frames", "4", "--deterministic-only",
                     "--output", str(output)])
    assert code == 0
    report = json.loads(output.read_text())
    assert set(report) == {"traffic", "deterministic"}
    assert report["traffic"]["sessions"] == 10
    assert capsys.readouterr().out.startswith(f"wrote {output}")


def test_cli_traffic_usage_error(capsys):
    assert cli_main(["traffic", "--sessions", "0"]) == 2
    assert "repro traffic:" in capsys.readouterr().err
