"""Delta search tests: temporal coherence and memory accounting."""

import pytest

from repro.core.delta import DeltaSearch
from repro.core.search import HDoVSearch
from repro.errors import HDoVError


def make_delta(env, keep_offscreen=True, eta_scheme="indexed-vertical"):
    search = HDoVSearch(env, eta_scheme, fetch_models=False)
    return DeltaSearch(search, keep_offscreen=keep_offscreen)


def busiest_cells(env, limit=4):
    return sorted(env.grid.cell_ids(),
                  key=lambda c: -env.visibility.cell(c).num_visible)[:limit]


def test_requires_fetch_models_false(env):
    with pytest.raises(HDoVError):
        DeltaSearch(HDoVSearch(env, "indexed-vertical", fetch_models=True))


def test_repeat_query_fetches_nothing(env):
    delta = make_delta(env)
    cell = busiest_cells(env)[0]
    delta.query_cell(cell, eta=0.0)
    env.reset_stats()
    delta.query_cell(cell, eta=0.0)
    assert env.heavy_stats.total_ios == 0       # all resident
    assert env.light_stats.total_ios > 0        # traversal still runs


def test_delta_result_matches_full_search(env):
    """Union semantics: a delta query returns the same answer set a
    from-scratch search would."""
    delta = make_delta(env)
    fresh = HDoVSearch(env, "indexed-vertical", fetch_models=False)
    cells = busiest_cells(env)
    for cell in cells:
        via_delta = delta.query_cell(cell, eta=0.002)
        fresh.scheme.current_cell = None
        direct = fresh.query_cell(cell, eta=0.002)
        assert via_delta.object_ids() == direct.object_ids()


def test_skip_counter_grows_on_overlap(env):
    delta = make_delta(env)
    cells = busiest_cells(env, limit=2)
    delta.query_cell(cells[0], eta=0.0)
    fetched_first = delta.fetches
    delta.query_cell(cells[0], eta=0.0)
    assert delta.fetches == fetched_first
    assert delta.skipped >= fetched_first


def test_resident_bytes_track_result(env):
    delta = make_delta(env, keep_offscreen=False)
    cell = busiest_cells(env)[0]
    result = delta.query_cell(cell, eta=0.0)
    assert delta.resident_count == result.num_results
    assert delta.resident_bytes == result.total_model_bytes


def test_evicting_mode_refetches_on_return(env):
    delta = make_delta(env, keep_offscreen=False)
    cells = busiest_cells(env, limit=2)
    delta.query_cell(cells[0], eta=0.0)
    first_fetches = delta.fetches
    delta.query_cell(cells[1], eta=0.0)
    delta.query_cell(cells[0], eta=0.0)     # must refetch dropped models
    assert delta.fetches > first_fetches


def test_caching_mode_free_on_return(env):
    delta = make_delta(env, keep_offscreen=True)
    cells = busiest_cells(env, limit=2)
    delta.query_cell(cells[0], eta=0.0)
    delta.query_cell(cells[1], eta=0.0)
    fetches = delta.fetches
    delta.query_cell(cells[0], eta=0.0)
    assert delta.fetches == fetches


def test_upgrade_fetches_when_detail_rises(env):
    """A resident coarse representation is refetched when a later query
    needs more detail (higher fraction)."""
    delta = make_delta(env)
    cell = busiest_cells(env)[0]
    # eta large: internal LoDs at low fractions and/or coarse retrieval.
    delta.query_cell(cell, eta=0.05)
    fetches_before = delta.fetches
    result = delta.query_cell(cell, eta=0.0)   # full detail now
    # Objects that were previously covered by internals must be fetched.
    assert delta.fetches > fetches_before
    assert result.object_ids() == \
        env.visibility.cell(cell).visible_ids()


def test_clear_resets_state(env):
    delta = make_delta(env)
    delta.query_cell(busiest_cells(env)[0], eta=0.0)
    delta.clear()
    assert delta.resident_bytes == 0
    assert delta.resident_count == 0
