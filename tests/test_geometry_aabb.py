"""AABB unit and property tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry.aabb import AABB, pack_aabbs, union_aabbs

coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   allow_infinity=False)


def boxes():
    return st.builds(
        lambda a, b: AABB(np.minimum(a, b), np.maximum(a, b)),
        st.tuples(coords, coords, coords).map(np.array),
        st.tuples(coords, coords, coords).map(np.array))


def test_basic_properties():
    box = AABB((0, 0, 0), (2, 4, 6))
    assert box.volume == pytest.approx(48.0)
    assert box.surface_area == pytest.approx(2 * (8 + 24 + 12))
    assert np.allclose(box.center, (1, 2, 3))
    assert np.allclose(box.extent, (2, 4, 6))
    assert box.diagonal == pytest.approx(np.sqrt(4 + 16 + 36))


def test_invalid_bounds_rejected():
    with pytest.raises(GeometryError):
        AABB((1, 0, 0), (0, 1, 1))


def test_from_points():
    pts = np.array([(0, 0, 0), (1, 5, -1), (2, 1, 3)])
    box = AABB.from_points(pts)
    assert np.allclose(box.lo, (0, 0, -1))
    assert np.allclose(box.hi, (2, 5, 3))


def test_from_points_empty_rejected():
    with pytest.raises(GeometryError):
        AABB.from_points(np.empty((0, 3)))


def test_from_center_extent():
    box = AABB.from_center_extent((1, 1, 1), (2, 2, 2))
    assert np.allclose(box.lo, (0, 0, 0))
    assert np.allclose(box.hi, (2, 2, 2))


def test_containment_and_intersection():
    outer = AABB((0, 0, 0), (10, 10, 10))
    inner = AABB((2, 2, 2), (3, 3, 3))
    disjoint = AABB((20, 20, 20), (30, 30, 30))
    assert outer.contains(inner)
    assert not inner.contains(outer)
    assert outer.intersects(inner)
    assert not outer.intersects(disjoint)
    assert outer.intersection(disjoint) is None
    overlap = outer.intersection(AABB((5, 5, 5), (15, 15, 15)))
    assert overlap == AABB((5, 5, 5), (10, 10, 10))


def test_touching_boxes_intersect():
    a = AABB((0, 0, 0), (1, 1, 1))
    b = AABB((1, 0, 0), (2, 1, 1))
    assert a.intersects(b)


def test_contains_point():
    box = AABB((0, 0, 0), (1, 1, 1))
    assert box.contains_point((0.5, 0.5, 0.5))
    assert box.contains_point((1, 1, 1))           # boundary closed
    assert not box.contains_point((1.01, 0.5, 0.5))


def test_corners():
    box = AABB((0, 0, 0), (1, 1, 1))
    corners = box.corners()
    assert corners.shape == (8, 3)
    assert {tuple(c) for c in corners} == {
        (x, y, z) for x in (0.0, 1.0) for y in (0.0, 1.0)
        for z in (0.0, 1.0)}


def test_enlargement_is_guttman_cost():
    box = AABB((0, 0, 0), (1, 1, 1))
    other = AABB((2, 0, 0), (3, 1, 1))
    assert box.enlargement(other) == pytest.approx(3.0 - 1.0)
    assert box.enlargement(box) == pytest.approx(0.0)


def test_min_distance_to_point():
    box = AABB((0, 0, 0), (1, 1, 1))
    assert box.min_distance_to_point((0.5, 0.5, 0.5)) == 0.0
    assert box.min_distance_to_point((2, 0.5, 0.5)) == pytest.approx(1.0)
    assert box.min_distance_to_point((2, 2, 0.5)) == pytest.approx(np.sqrt(2))


def test_inflated():
    box = AABB((0, 0, 0), (1, 1, 1))
    grown = box.inflated(1.0)
    assert np.allclose(grown.lo, (-1, -1, -1))
    with pytest.raises(GeometryError):
        box.inflated(-1.0)


def test_union_aabbs():
    a = AABB((0, 0, 0), (1, 1, 1))
    b = AABB((5, -1, 0), (6, 0, 2))
    u = union_aabbs([a, b])
    assert u.contains(a) and u.contains(b)
    with pytest.raises(GeometryError):
        union_aabbs([])


def test_pack_aabbs():
    a = AABB((0, 0, 0), (1, 2, 3))
    packed = pack_aabbs([a])
    assert packed.shape == (1, 6)
    assert np.allclose(packed[0], [0, 0, 0, 1, 2, 3])
    assert pack_aabbs([]).shape == (0, 6)


def test_immutability_and_hash():
    box = AABB((0, 0, 0), (1, 1, 1))
    with pytest.raises(ValueError):
        box.lo[0] = 5.0
    assert hash(box) == hash(AABB((0, 0, 0), (1, 1, 1)))
    assert box == AABB((0, 0, 0), (1, 1, 1))


@given(boxes(), boxes())
def test_union_contains_both(a, b):
    u = a.union(b)
    assert u.contains(a)
    assert u.contains(b)


@given(boxes(), boxes())
def test_intersection_symmetric_and_contained(a, b):
    inter = a.intersection(b)
    assert (inter is None) == (b.intersection(a) is None)
    if inter is not None:
        assert a.contains(inter)
        assert b.contains(inter)


@given(boxes(), boxes())
def test_enlargement_nonnegative(a, b):
    assert a.enlargement(b) >= -1e-6


@given(boxes())
def test_volume_surface_nonnegative(a):
    assert a.volume >= 0.0
    assert a.surface_area >= 0.0
