"""Multi-session serving tests: determinism, attribution, degradation.

The PR 5 acceptance bar: ``repro serve`` run twice with the same seed
and worker count yields byte-identical reports; the worker count never
changes a byte; a single unpooled session matches the sequential
``VisualSystem`` path exactly; the shared pool's hit rate grows with
the session count; and overload/admission/fault pressure degrades
service instead of deadlocking it.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.hdov_tree import build_environment
from repro.errors import WalkthroughError
from repro.experiments.config import get_scale
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.scene.city import generate_city
from repro.serving import run_serve
from repro.visibility.cells import CellGrid
from repro.walkthrough.session import make_session
from repro.walkthrough.visual import VisualSystem


@pytest.fixture(scope="module")
def serve_report():
    """One canonical run shared by the read-only assertions."""
    return run_serve(sessions=8, workers=4, seed=7, frames=12)


def test_serve_same_seed_byte_identical(serve_report):
    again = run_serve(sessions=8, workers=4, seed=7, frames=12)
    assert json.dumps(serve_report, sort_keys=False) \
        == json.dumps(again, sort_keys=False)


def test_serve_report_independent_of_worker_count(serve_report):
    solo = run_serve(sessions=8, workers=1, seed=7, frames=12)
    # The worker count is echoed in the config block but provably
    # cannot change any other byte of the report.
    assert solo["serve"]["workers"] == 1
    solo["serve"]["workers"] = serve_report["serve"]["workers"]
    assert json.dumps(solo, sort_keys=False) \
        == json.dumps(serve_report, sort_keys=False)


def test_serve_reconciliation_balances(serve_report):
    reconciliation = serve_report["reconciliation"]
    assert reconciliation["light_ios_balanced"] is True
    assert reconciliation["heavy_ios_balanced"] is True
    assert reconciliation["simulated_ms_balanced"] is True
    assert reconciliation["pool_balanced"] is True


def test_serve_report_shape(serve_report):
    assert serve_report["outcome"]["completed"] is True
    assert serve_report["outcome"]["error"] is None
    assert serve_report["outcome"]["frames_served"] == 8 * 12
    entries = serve_report["sessions"]
    assert [s["id"] for s in entries] == list(range(8))
    for entry in entries:
        assert entry["frames"] == 12
        assert len(entry["frame_times"]) == 12
        assert entry["queries"] >= 1
        assert entry["fidelity_mean"] == entry["fidelity_mean"]  # not NaN
    pool = serve_report["pool"]
    assert pool["hits"] + pool["misses"] > 0
    assert 0.0 <= pool["hit_rate"] <= 1.0


def test_serve_shared_pool_hit_rate_grows_with_sessions(serve_report):
    solo = run_serve(sessions=1, workers=1, seed=7, frames=12)
    assert serve_report["pool"]["hit_rate"] > solo["pool"]["hit_rate"]


def test_serve_unpooled_single_session_matches_sequential_path():
    """sessions=1, workers=1, pool off == the VisualSystem replay."""
    frames = 12
    served = run_serve(sessions=1, workers=1, seed=7, frames=frames,
                       pool_pages=0)
    assert served["pool"] is None

    experiment = get_scale("small")
    with use_registry(MetricsRegistry()):
        scene = generate_city(experiment.city)
        grid = CellGrid.covering(scene.bounds(), experiment.cell_size)
        env = build_environment(scene, grid, experiment.hdov)
        pattern = int(np.random.default_rng(7).integers(1, 4))
        path = make_session(pattern, scene.bounds(), num_frames=frames,
                            street_pitch=experiment.city.pitch)
        env.reset_stats()
        visual = VisualSystem(
            env, eta=0.001,
            cache_budget_bytes=experiment.visual_cache_budget_bytes)
        report = visual.run(path)

    entry = served["sessions"][0]
    assert entry["path"] == path.name
    assert entry["frame_times"] == [f.frame_ms for f in report.frames]
    assert entry["light"]["reads"] == env.light_stats.reads
    assert entry["light"]["seeks"] == env.light_stats.seeks
    assert entry["light"]["sequential_reads"] \
        == env.light_stats.sequential_reads
    assert entry["light"]["simulated_ms"] == env.light_stats.simulated_ms
    assert entry["heavy"]["reads"] == env.heavy_stats.reads
    assert entry["heavy"]["simulated_ms"] == env.heavy_stats.simulated_ms


def test_serve_overload_sheds_to_degraded_frames():
    report = run_serve(sessions=2, workers=1, seed=7, frames=12,
                       frame_budget_ms=10.0)
    assert report["outcome"]["completed"] is True
    shed = [s["overload_degraded"] for s in report["sessions"]]
    assert sum(shed) > 0
    # Shed frames answer from the root's internal LoD, so they are
    # recorded as degraded renders too.
    for entry in report["sessions"]:
        assert entry["degraded_frames"] >= entry["overload_degraded"]


def test_serve_admission_control_limits_concurrency():
    report = run_serve(sessions=4, workers=1, seed=7, frames=6,
                       max_active=2)
    assert report["outcome"]["completed"] is True
    assert report["serve"]["max_active"] == 2
    # Two slots over four sessions: the queue drains in two shifts.
    assert report["outcome"]["rounds"] == 12
    waits = [s["admission_wait_rounds"] for s in report["sessions"]]
    assert sum(waits) > 0
    # FIFO order: earlier ids never wait longer than later ids.
    assert waits == sorted(waits)
    assert report["outcome"]["frames_served"] == 4 * 6


def test_serve_under_faults_degrades_not_deadlocks():
    report = run_serve(sessions=4, workers=2, seed=7, frames=12,
                       plan="aggressive", fault_seed=3)
    assert report["outcome"]["completed"] is True
    assert report["faults"]["total_injected"] > 0
    assert report["faults"]["frames_degraded_total"] > 0
    assert sum(s["degraded_frames"] for s in report["sessions"]) > 0
    reconciliation = report["reconciliation"]
    assert reconciliation["light_ios_balanced"] is True
    assert reconciliation["heavy_ios_balanced"] is True


def test_serve_rejects_bad_arguments():
    with pytest.raises(WalkthroughError):
        run_serve(sessions=0)
    with pytest.raises(WalkthroughError):
        run_serve(sessions=1, workers=0)
    with pytest.raises(WalkthroughError):
        run_serve(sessions=1, max_active=0)
    with pytest.raises(WalkthroughError):
        run_serve(sessions=1, frame_budget_ms=0.0)
    with pytest.raises(WalkthroughError):
        run_serve(sessions=1, pool_pages=-1)


def test_serve_cli_writes_deterministic_report(tmp_path, capsys):
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    base = ["serve", "--sessions", "3", "--workers", "2", "--seed", "7",
            "--frames", "6"]
    assert main(base + ["--output", str(first)]) == 0
    assert main(base + ["--output", str(second)]) == 0
    capsys.readouterr()
    assert first.read_bytes() == second.read_bytes()
    report = json.loads(first.read_text())
    assert report["outcome"]["completed"] is True
    assert report["serve"]["sessions"] == 3


def test_serve_cli_usage_error(capsys):
    assert main(["serve", "--sessions", "0"]) == 2
    assert "repro serve" in capsys.readouterr().err


class _StubSession:
    """The minimal surface SessionScheduler drives, without an env."""

    def __init__(self, session_id, frames):
        self.session_id = session_id
        self._remaining = frames
        self.admission_wait_rounds = 0
        self.last_frame_ms = 0.0

    @property
    def done(self):
        return self._remaining <= 0

    def step(self, *, shed_load=False):
        self._remaining -= 1
        return None

    def install_fidelity(self, fidelity):
        raise AssertionError("stub sessions never score")


def test_scheduler_zeroes_active_gauge_after_run():
    """Regression: ``SessionScheduler.run`` left the active-sessions
    gauge at the last round's count, so post-run scrapes showed phantom
    active sessions."""
    from repro.obs import names
    from repro.serving import SessionScheduler

    with use_registry(MetricsRegistry()) as registry:
        sessions = [_StubSession(i, frames=2 + i) for i in range(3)]
        scheduler = SessionScheduler(sessions, workers=1)
        scheduler.run()
        assert scheduler.frames_served == sum(2 + i for i in range(3))
        assert registry.value(names.SERVING_ACTIVE_SESSIONS) == 0.0


def test_scheduler_zeroes_active_gauge_on_error():
    from repro.errors import ReproError
    from repro.obs import names
    from repro.serving import SessionScheduler

    class _ExplodingSession(_StubSession):
        def step(self, *, shed_load=False):
            raise ReproError("boom")

    with use_registry(MetricsRegistry()) as registry:
        scheduler = SessionScheduler([_ExplodingSession(0, frames=1)],
                                     workers=1)
        with pytest.raises(ReproError):
            scheduler.run()
        assert registry.value(names.SERVING_ACTIVE_SESSIONS) == 0.0
