"""Remaining small-surface coverage: config helpers, city geometry
properties, search-result helpers."""

import pytest

from repro.core.hdov_tree import HDoVConfig
from repro.core.search import RetrievedInternal, RetrievedObject, SearchResult
from repro.scene.city import CityParams
from repro.storage.disk import FREE_DISK


def test_city_params_geometry():
    params = CityParams(blocks_x=4, blocks_y=3, block_size=100.0,
                        street_width=20.0)
    assert params.pitch == 120.0
    assert params.width == 480.0
    assert params.depth == 360.0


def test_hdov_config_disk_round_trip():
    config = HDoVConfig(seek_ms=3.0, transfer_ms=0.5)
    disk = config.disk()
    assert disk.seek_ms == 3.0
    assert disk.transfer_ms == 0.5
    assert disk.access_cost(sequential=False) == 3.5
    assert disk.access_cost(sequential=True) == 0.5


def test_free_disk_charges_nothing():
    from repro.storage.disk import IOStats
    stats = IOStats()
    FREE_DISK.charge(stats, write=False, sequential=False, nbytes=100)
    assert stats.simulated_ms == 0.0
    assert stats.reads == 1


def test_search_result_helpers():
    result = SearchResult(cell_id=0, eta=0.01)
    result.objects.append(RetrievedObject(
        object_id=4, dov=0.1, fraction=0.2, polygons=100, bytes=4000))
    result.internals.append(RetrievedInternal(
        node_offset=2, dov=0.005, fraction=0.5, polygons=50, bytes=2000,
        covered_objects=(7, 8)))
    assert result.total_polygons == 150
    assert result.total_model_bytes == 6000
    assert result.num_results == 2
    assert result.object_ids() == [4]
    assert result.covered_object_ids() == [4, 7, 8]


def test_object_record_fraction_bytes(env):
    oid = env.scene.object_ids()[0]
    record = env.objects[oid]
    full = record.bytes_for_fraction(1.0)
    coarse = record.bytes_for_fraction(0.0)
    assert coarse <= full
    assert record.bytes_for_fraction(0.5) == pytest.approx(
        (full + coarse) / 2, abs=env.config.page_size)


def test_environment_totals(env):
    env.reset_stats()
    assert env.total_ios() == 0
    assert env.total_simulated_ms() == 0.0
    env.node_store.read_node(0)
    assert env.total_ios() == 1
    assert env.total_simulated_ms() > 0.0
