"""Trace recorder: nesting, attributes, summaries, the disabled default."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.trace import TraceRecorder, get_tracer, span, use_tracer


def test_nested_spans_record_depth_and_parent():
    tracer = TraceRecorder()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    outer, inner = tracer.records
    assert (outer.name, outer.depth, outer.parent) == ("outer", 0, None)
    assert (inner.name, inner.depth, inner.parent) == ("inner", 1, 0)
    assert outer.duration_ms >= inner.duration_ms


def test_self_time_excludes_children():
    tracer = TraceRecorder()
    with tracer.span("outer"):
        with tracer.span("child"):
            pass
    outer = tracer.records[0]
    assert outer.child_ms == pytest.approx(tracer.records[1].duration_ms)
    assert outer.self_ms == pytest.approx(
        outer.duration_ms - outer.child_ms)


def test_span_attrs_at_open_and_exit():
    tracer = TraceRecorder()
    with tracer.span("q", cell=3) as sp:
        sp.attrs["nodes"] = 7
    assert tracer.records[0].attrs == {"cell": 3, "nodes": 7}


def test_disabled_recorder_yields_none_and_stores_nothing():
    tracer = TraceRecorder(enabled=False)
    with tracer.span("x") as sp:
        assert sp is None
    assert tracer.records == []


def test_default_tracer_is_disabled():
    assert get_tracer().enabled is False
    with span("anything") as sp:
        assert sp is None


def test_use_tracer_scoping():
    with use_tracer() as tracer:
        assert get_tracer() is tracer
        with span("scoped"):
            pass
    assert [r.name for r in tracer.records] == ["scoped"]
    assert get_tracer().enabled is False


def test_summarize_aggregates_by_name():
    tracer = TraceRecorder()
    for _ in range(3):
        with tracer.span("frame"):
            with tracer.span("search"):
                pass
    summary = tracer.summarize()
    assert summary["frame"]["count"] == 3
    assert summary["search"]["count"] == 3
    assert summary["frame"]["total_ms"] >= summary["search"]["total_ms"]
    assert summary["frame"]["mean_ms"] == pytest.approx(
        summary["frame"]["total_ms"] / 3)


def test_max_spans_cap_counts_drops_and_keeps_parent_time():
    tracer = TraceRecorder(max_spans=1)
    with tracer.span("kept"):
        with tracer.span("dropped") as sp:
            assert sp is None
    assert len(tracer.records) == 1
    assert tracer.dropped == 1
    # The dropped child still contributed to the parent's child time.
    assert tracer.records[0].child_ms >= 0.0


def test_clear_rejects_open_spans():
    tracer = TraceRecorder()
    with pytest.raises(ObservabilityError):
        with tracer.span("open"):
            tracer.clear()
    tracer.clear()
    assert tracer.records == []


def test_to_dicts_roundtrips_json_fields():
    tracer = TraceRecorder()
    with tracer.span("a", cell=1):
        pass
    (record,) = tracer.to_dicts()
    assert record["name"] == "a"
    assert record["attrs"] == {"cell": 1}
    assert record["duration_ms"] >= 0.0
