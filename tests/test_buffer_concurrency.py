"""Buffer-pool concurrency tests: hammer, single-flight, failure paths.

The pool's contract under threads (DESIGN.md §10): every operation is
linearized on the pool lock, concurrent misses on one page coalesce
into a single disk read, hit/miss counters are exact (every get counts
exactly one hit or miss; every *completed* miss is exactly one disk
read), puts are never lost, and capacity is never exceeded.
"""

import threading
import time
from random import Random

from repro.errors import BufferPoolExhaustedError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskModel, IOStats
from repro.storage.pagedfile import PagedFile

PAGES = 24
HAMMER_THREADS = 8
HAMMER_OPS = 400


def page_bytes(page_id: int, page_size: int = 64) -> bytes:
    """What read_page returns: the stored payload, zero-padded."""
    return (bytes([page_id]) * 16).ljust(page_size, b"\x00")


def make_file(name: str = "conc", pages: int = PAGES) -> PagedFile:
    pf = PagedFile(name, page_size=64, disk=DiskModel(), stats=IOStats())
    for i in range(pages):
        pf.append_page(bytes([i]) * 16)
    pf.stats.reset()
    return pf


def run_threads(workers):
    """Start, join, and re-raise the first failure from any thread."""
    errors = []

    def guarded(fn):
        def body():
            try:
                fn()
            except Exception as exc:  # repro: ignore[RPR008]
                errors.append(exc)
        return body

    threads = [threading.Thread(target=guarded(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


def wait_until(predicate, timeout_s: float = 5.0) -> bool:
    deadline = time.perf_counter() + timeout_s
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


def test_hammer_exact_accounting_under_contention():
    """Random get/pin/unpin from many threads: counters stay exact."""
    pfile = make_file()
    pool = BufferPool(capacity=8)
    gets = [0] * HAMMER_THREADS
    exhausted = [0] * HAMMER_THREADS

    def worker(thread_id: int):
        def body():
            rng = Random(1000 + thread_id)
            for _ in range(HAMMER_OPS):
                page_id = rng.randrange(PAGES)
                pin = rng.random() < 0.25
                try:
                    data = pool.get(pfile, page_id, pin=pin)
                except BufferPoolExhaustedError:
                    # Only reachable when every frame is pinned by the
                    # other threads; counted so the accounting check
                    # below stays exact either way.
                    exhausted[thread_id] += 1
                    continue
                gets[thread_id] += 1
                assert data == page_bytes(page_id)
                if pin:
                    pool.unpin(pfile, page_id)
                assert pool.resident_pages <= pool.capacity
        return body

    run_threads([worker(i) for i in range(HAMMER_THREADS)])

    # Exact accounting: every get() — successful or exhausted — counts
    # exactly one hit or one miss; every completed miss issued exactly
    # one disk read (coalesced waiters count as hits and issue none;
    # an exhausted miss fails before reading).
    assert pool.hits + pool.misses == sum(gets) + sum(exhausted)
    assert pfile.stats.reads == pool.misses - sum(exhausted)
    assert pool.coalesced <= pool.hits
    assert pool.resident_pages <= pool.capacity
    # Every pin was matched by an unpin, so the pool clears cleanly.
    pool.clear()
    assert pool.resident_pages == 0


def test_hammer_no_lost_puts():
    """Concurrent writers on disjoint pages: every last put survives."""
    pfile = make_file(pages=HAMMER_THREADS * 3)
    pool = BufferPool(capacity=6)
    last_put = {}
    puts = [0] * HAMMER_THREADS

    def worker(thread_id: int):
        # Each thread owns three pages; interleaved gets on all pages
        # churn the LRU so puts are evicted and written back mid-run.
        own = [thread_id * 3 + k for k in range(3)]

        def body():
            rng = Random(thread_id)
            for op in range(HAMMER_OPS // 2):
                if rng.random() < 0.4:
                    page_id = rng.choice(own)
                    payload = bytes([thread_id, op % 256]) * 8
                    pool.put(pfile, page_id, payload)
                    last_put[(thread_id, page_id)] = payload
                    puts[thread_id] += 1
                else:
                    pool.get(pfile, rng.randrange(HAMMER_THREADS * 3))
        return body

    run_threads([worker(i) for i in range(HAMMER_THREADS)])
    # Snapshot before flush and verification issue their own I/O.
    assert pfile.stats.reads == pool.misses
    pool.flush()

    for (thread_id, page_id), payload in last_put.items():
        assert pfile.read_page(page_id) == payload.ljust(64, b"\x00"), \
            f"lost put: thread {thread_id} page {page_id}"
    # No double evictions: every eviction was triggered by exactly one
    # install (a miss or a put on a non-resident page).
    assert pool.resident_pages <= pool.capacity
    assert pool.evictions <= pool.misses + sum(puts)


def test_single_flight_coalesces_concurrent_misses():
    """N threads faulting one cold page pay exactly one disk read."""
    pfile = make_file()
    pool = BufferPool(capacity=8)
    release = threading.Event()
    started = threading.Event()
    reads = []

    def slow_reader(pf: PagedFile, page_id: int) -> bytes:
        started.set()
        assert release.wait(timeout=5.0)
        reads.append(page_id)
        return pf.read_page(page_id)

    results = []

    def fault():
        results.append(pool.get(pfile, 3, reader=slow_reader))

    threads = [threading.Thread(target=fault) for _ in range(4)]
    threads[0].start()
    assert started.wait(timeout=5.0)  # the owner is inside its read
    for t in threads[1:]:
        t.start()
    # Waiters count hit+coalesced *before* blocking on the latch, so
    # this observes all three of them parked behind the owner.
    assert wait_until(lambda: pool.coalesced == 3)
    release.set()
    for t in threads:
        t.join(timeout=5.0)

    assert results == [page_bytes(3)] * 4
    assert reads == [3]          # the reader ran exactly once
    assert pool.misses == 1
    assert pool.hits == 3
    assert pool.coalesced == 3
    assert pfile.stats.reads == 1


def test_failed_read_propagates_to_waiters_then_recovers():
    """An owner's read failure reaches every waiter; the latch clears."""
    pfile = make_file()
    pool = BufferPool(capacity=8)
    release = threading.Event()
    started = threading.Event()
    attempts = []

    def failing_reader(pf: PagedFile, page_id: int) -> bytes:
        attempts.append(page_id)
        started.set()
        assert release.wait(timeout=5.0)
        raise StorageError("injected read failure")

    outcomes = []

    def fault():
        try:
            pool.get(pfile, 5, reader=failing_reader)
            outcomes.append("ok")
        except StorageError:
            outcomes.append("error")

    threads = [threading.Thread(target=fault) for _ in range(3)]
    threads[0].start()
    assert started.wait(timeout=5.0)
    for t in threads[1:]:
        t.start()
    assert wait_until(lambda: pool.coalesced == 2)
    release.set()
    for t in threads:
        t.join(timeout=5.0)

    assert outcomes == ["error"] * 3
    assert attempts == [5]       # single-flight even on failure
    # The latch was cleared, so a later get retries and succeeds.
    assert pool.get(pfile, 5) == page_bytes(5)
    assert pool.misses == 2      # the failed flight and the retry


def test_exhausted_error_leaves_pinned_frames_intact():
    """All frames pinned: the faulting thread gets the typed error and
    no pinned frame is evicted out from under its holder."""
    pfile = make_file()
    pool = BufferPool(capacity=2)
    pool.get(pfile, 0, pin=True)
    pool.get(pfile, 1, pin=True)

    caught = []

    def fault():
        try:
            pool.get(pfile, 2)
        except BufferPoolExhaustedError as exc:
            caught.append(exc)

    run_threads([fault])
    assert len(caught) == 1
    assert pool.contains(pfile, 0) and pool.contains(pfile, 1)
    pool.unpin(pfile, 0)
    pool.unpin(pfile, 1)
    assert pool.get(pfile, 2) == page_bytes(2)
