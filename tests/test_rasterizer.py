"""Cube-map rasterizer tests: geometry sanity and cross-validation
against the ray-casting estimators."""

import numpy as np
import pytest

from repro.errors import VisibilityError
from repro.geometry.aabb import pack_aabbs
from repro.geometry.primitives import box_mesh, icosphere
from repro.geometry.solidangle import FULL_SPHERE, sphere_solid_angle
from repro.visibility.exact import MeshDoVEstimator
from repro.visibility.rasterizer import EMPTY, CubeMapRasterizer
from repro.visibility.raycast import RayCastDoVEstimator


def test_empty_scene_rejected():
    with pytest.raises(VisibilityError):
        CubeMapRasterizer([])
    with pytest.raises(VisibilityError):
        CubeMapRasterizer([box_mesh((0, 0, 0), (1, 1, 1))],
                          object_ids=[1, 2])
    with pytest.raises(VisibilityError):
        CubeMapRasterizer([box_mesh((0, 0, 0), (1, 1, 1))], resolution=0)


def test_far_viewpoint_sees_nothing_on_back_faces():
    # The box must subtend more than one pixel at this resolution.
    mesh = box_mesh((50, 0, 0), (10, 10, 10))
    raster = CubeMapRasterizer([mesh], resolution=16)
    buffers = raster.render_item_buffer((0.0, 0.0, 0.0))
    # Object strictly along +x: the -x face must be empty.
    assert (buffers[1] == EMPTY).all()
    # The +x face must contain some pixels of object row 0.
    assert (buffers[0] == 0).any()


def test_sphere_dov_matches_analytic():
    sphere = icosphere(radius=2.0, subdivisions=3, center=(10, 0, 0))
    raster = CubeMapRasterizer([sphere], resolution=48)
    dov = raster.dov_from_viewpoint((0, 0, 0))[0]
    analytic = sphere_solid_angle(10.0, 2.0) / FULL_SPHERE
    assert dov == pytest.approx(analytic, rel=0.08)


def test_matches_exact_ray_caster():
    """Rasterizer and triangle ray caster sample the same pixel-center
    directions, so their DoVs agree closely."""
    meshes = [box_mesh((12, 0, 0), (3, 3, 3)),
              box_mesh((0, 15, 0), (4, 4, 4)),
              icosphere(radius=2.0, subdivisions=2, center=(-10, -2, 1))]
    raster = CubeMapRasterizer(meshes, resolution=24)
    exact = MeshDoVEstimator(meshes, resolution=24)
    viewpoint = (0.0, 0.0, 0.5)
    a = raster.dov_from_viewpoint(viewpoint)
    b = exact.dov_from_viewpoint(viewpoint)
    assert set(a) == set(b)
    for oid in a:
        assert a[oid] == pytest.approx(b[oid], rel=0.1, abs=2e-3)


def test_occlusion_in_item_buffer():
    wall = box_mesh((5, 0, 0), (1, 30, 30))
    hidden = box_mesh((15, 0, 0), (2, 2, 2))
    raster = CubeMapRasterizer([wall, hidden], resolution=24)
    dov = raster.dov_from_viewpoint((0, 0, 0))
    assert 0 in dov
    assert 1 not in dov


def test_partial_occlusion_ordering():
    front = box_mesh((8, 0, 0), (2, 3, 3))
    back = box_mesh((16, 0, 0), (2, 12, 12))
    raster = CubeMapRasterizer([front, back], resolution=32)
    dov = raster.dov_from_viewpoint((0, 0, 0))
    alone = CubeMapRasterizer([back], resolution=32) \
        .dov_from_viewpoint((0, 0, 0))[0]
    assert 0 < dov[1] < alone            # partially blocked
    assert dov[0] > 0


def test_agrees_with_aabb_caster_for_boxes():
    meshes = [box_mesh((12, 3, 0), (4, 4, 4)),
              box_mesh((-9, 0, 2), (3, 5, 2))]
    raster = CubeMapRasterizer(meshes, resolution=32)
    boxes = RayCastDoVEstimator(pack_aabbs([m.aabb() for m in meshes]),
                                resolution=32)
    viewpoint = (0.0, 0.0, 0.0)
    a = raster.dov_from_viewpoint(viewpoint)
    b = boxes.dov_from_viewpoint(viewpoint)
    assert set(a) == set(b)
    for oid in a:
        assert a[oid] == pytest.approx(b[oid], rel=0.05, abs=1e-3)


def test_custom_object_ids():
    raster = CubeMapRasterizer([box_mesh((8, 0, 0), (2, 2, 2))],
                               object_ids=[77], resolution=8)
    assert set(raster.dov_from_viewpoint((0, 0, 0))) == {77}


def test_total_coverage_bounded():
    rng = np.random.default_rng(4)
    meshes = []
    for _ in range(12):
        center = rng.uniform(-30, 30, 3)
        meshes.append(box_mesh(center, rng.uniform(1, 6, 3)))
    raster = CubeMapRasterizer(meshes, resolution=16)
    dov = raster.dov_from_viewpoint((0, 0, 0))
    assert 0 < sum(dov.values()) <= 1.0 + 1e-9
