"""Three-way baseline comparison (VISUAL / REVIEW / LoD-R-tree)."""

import pytest

from repro.experiments.baseline_comparison import run_baseline_comparison
from repro.experiments.config import SMALL
from repro.walkthrough.lodrtree_driver import LodRTreeWalkthrough
from repro.walkthrough.session import make_session


@pytest.fixture(scope="module")
def comparison():
    return run_baseline_comparison(SMALL, eta=0.002)


def test_visual_fastest_everywhere(comparison):
    for number, per_system in comparison.rows.items():
        visual_ms = per_system["VISUAL"][0]
        assert visual_ms < per_system["REVIEW"][0]
        assert visual_ms < per_system["LoD-R-tree"][0]


def test_visual_best_fidelity(comparison):
    for per_system in comparison.rows.values():
        visual_fid = per_system["VISUAL"][1]
        assert visual_fid >= per_system["REVIEW"][1] - 1e-9
        assert visual_fid >= per_system["LoD-R-tree"][1] - 1e-9


def test_lod_rtree_degenerates_on_turning(comparison):
    """Section 2's claim: performance degenerates as the view changes.
    The LoD-R-tree's turning penalty exceeds both other systems'."""
    lod_penalty = comparison.turning_penalty("LoD-R-tree")
    assert lod_penalty > comparison.turning_penalty("VISUAL")
    assert lod_penalty > comparison.turning_penalty("REVIEW")
    assert lod_penalty > 1.0


def test_lod_rtree_fidelity_drops_when_turning(comparison):
    """Frustum-only retrieval cannot show what is behind the viewer."""
    fid_normal = comparison.rows[1]["LoD-R-tree"][1]
    fid_turning = comparison.rows[2]["LoD-R-tree"][1]
    assert fid_turning < fid_normal


def test_format_table(comparison):
    out = comparison.format_table()
    assert "session 2 (turning)" in out
    assert "LoD-R-tree" in out


def test_driver_produces_frames(env):
    session = make_session(1, env.scene.bounds(), num_frames=20,
                           street_pitch=120.0)
    driver = LodRTreeWalkthrough(env, depth=300.0)
    report = driver.run(session)
    assert len(report.frames) == 20
    queried = [f for f in report.frames if f.total_ios > 0]
    assert queried
