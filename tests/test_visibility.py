"""Visibility substrate: cells, DoV estimator, precompute pipeline."""

import numpy as np
import pytest

from repro.errors import VisibilityError
from repro.geometry.aabb import AABB, pack_aabbs
from repro.geometry.solidangle import FULL_SPHERE, sphere_solid_angle
from repro.visibility.cells import CellGrid
from repro.visibility.dov import (CellVisibility, VisibilityTable,
                                  aggregate_upward)
from repro.visibility.precompute import precompute_visibility
from repro.visibility.raycast import RayCastDoVEstimator


# -- cell grid --------------------------------------------------------------

def test_grid_covering_and_lookup():
    bounds = AABB((0, 0, 0), (100, 50, 30))
    grid = CellGrid.covering(bounds, cell_size=25.0)
    assert grid.cells_x == 4
    assert grid.cells_y == 2
    assert grid.num_cells == 8
    assert grid.cell_of_point((10, 10, 1.7)) == 0
    assert grid.cell_of_point((99, 49, 1.7)) == grid.num_cells - 1


def test_grid_clamps_out_of_range_points():
    grid = CellGrid.covering(AABB((0, 0, 0), (100, 100, 10)), 50.0)
    assert grid.cell_of_point((-5, -5, 0)) == 0
    assert grid.cell_of_point((500, 500, 0)) == grid.num_cells - 1


def test_cell_center_round_trip():
    grid = CellGrid.covering(AABB((0, 0, 0), (100, 100, 10)), 25.0)
    for cid in grid.cell_ids():
        assert grid.cell_of_point(grid.cell_center(cid)) == cid


def test_cell_box_at_eye_height():
    grid = CellGrid(origin=(0, 0), cell_size=10.0, cells_x=2, cells_y=2,
                    eye_height=1.5)
    box = grid.cell_box(0)
    assert box.lo[2] == box.hi[2] == 1.5


def test_sample_viewpoints_inside_cell():
    grid = CellGrid(origin=(0, 0), cell_size=10.0, cells_x=3, cells_y=3)
    points = grid.sample_viewpoints(4, samples=5, seed=1)
    assert len(points) == 5
    box = grid.cell_box(4)
    for p in points:
        assert box.lo[0] <= p[0] <= box.hi[0]
        assert box.lo[1] <= p[1] <= box.hi[1]


def test_neighbors():
    grid = CellGrid(origin=(0, 0), cell_size=10.0, cells_x=3, cells_y=3)
    assert sorted(grid.neighbors(4)) == [1, 3, 5, 7]   # center cell
    assert len(grid.neighbors(0)) == 2                  # corner


def test_grid_validation():
    with pytest.raises(VisibilityError):
        CellGrid(origin=(0, 0), cell_size=0.0, cells_x=1, cells_y=1)
    grid = CellGrid(origin=(0, 0), cell_size=1.0, cells_x=2, cells_y=2)
    with pytest.raises(VisibilityError):
        grid.cell_indices(99)


# -- DoV data model ------------------------------------------------------------

def test_cell_visibility_drops_zeros():
    cell = CellVisibility(0)
    cell.set(1, 0.5)
    cell.set(2, 0.0)
    assert cell.get(1) == 0.5
    assert cell.get(2) == 0.0
    assert cell.visible_ids() == [1]


def test_cell_visibility_rejects_out_of_range():
    cell = CellVisibility(0)
    with pytest.raises(VisibilityError):
        cell.set(1, 1.5)
    with pytest.raises(VisibilityError):
        CellVisibility(0, dov={1: -0.2})


def test_merge_max_is_conservative():
    cell = CellVisibility(0, dov={1: 0.3, 2: 0.1})
    cell.merge_max({1: 0.2, 2: 0.5, 3: 0.05})
    assert cell.get(1) == 0.3
    assert cell.get(2) == 0.5
    assert cell.get(3) == 0.05


def test_aggregate_upward_clamps():
    assert aggregate_upward([0.2, 0.3]) == pytest.approx(0.5)
    assert aggregate_upward([0.8, 0.9]) == 1.0
    with pytest.raises(VisibilityError):
        aggregate_upward([-0.5])


def test_visibility_table():
    table = VisibilityTable(4)
    table.put(CellVisibility(2, dov={5: 0.5}))
    assert table.cell(2).num_visible == 1
    assert table.cell(0).num_visible == 0       # implicit empty cell
    assert table.average_visible() == pytest.approx(0.25)
    with pytest.raises(VisibilityError):
        table.cell(9)


# -- ray-cast estimator ------------------------------------------------------

def test_single_box_dov_matches_analytic():
    """A lone cube's DoV should approximate its bounding-sphere solid
    angle; for a cube the projection is between the inscribed and
    circumscribed sphere bounds."""
    box = AABB((10, -1, -1), (12, 1, 1))
    est = RayCastDoVEstimator(pack_aabbs([box]), resolution=48)
    dov = est.dov_from_viewpoint((0, 0, 0))[0]
    outer = sphere_solid_angle(11.0, box.diagonal / 2) / FULL_SPHERE
    inner = sphere_solid_angle(11.0, 1.0) / FULL_SPHERE
    assert inner * 0.9 <= dov <= outer * 1.1


def test_occluder_blocks_object():
    occluder = AABB((5, -10, -10), (6, 10, 10))     # big wall
    hidden = AABB((20, -1, -1), (21, 1, 1))
    est = RayCastDoVEstimator(pack_aabbs([occluder, hidden]), resolution=24)
    dov = est.dov_from_viewpoint((0, 0, 0))
    assert 0 in dov
    assert 1 not in dov                              # fully occluded


def test_partial_occlusion_reduces_dov():
    target = AABB((20, -5, -5), (21, 5, 5))
    est_alone = RayCastDoVEstimator(pack_aabbs([target]), resolution=32)
    alone = est_alone.dov_from_viewpoint((0, 0, 0))[0]
    blocker = AABB((10, -1.2, -5), (11, 1.2, 5))    # blocks part of it
    est_both = RayCastDoVEstimator(pack_aabbs([blocker, target]),
                                   resolution=32)
    both = est_both.dov_from_viewpoint((0, 0, 0))
    assert 0 < both[1] < alone


def test_dovs_sum_to_at_most_one():
    rng = np.random.default_rng(2)
    boxes = []
    for _ in range(30):
        lo = rng.uniform(-50, 50, 3)
        boxes.append(AABB(lo, lo + rng.uniform(1, 10, 3)))
    est = RayCastDoVEstimator(pack_aabbs(boxes), resolution=16)
    dov = est.dov_from_viewpoint((0, 0, 0))
    assert 0 < sum(dov.values()) <= 1.0 + 1e-9
    assert all(0 < v <= 1.0 for v in dov.values())


def test_viewpoint_inside_box_sees_only_it():
    container = AABB((-1, -1, -1), (1, 1, 1))
    outside = AABB((5, -1, -1), (6, 1, 1))
    est = RayCastDoVEstimator(pack_aabbs([container, outside]),
                              resolution=16)
    dov = est.dov_from_viewpoint((0, 0, 0))
    assert dov[0] == pytest.approx(1.0)
    assert 1 not in dov


def test_region_dov_is_max_over_samples():
    box = AABB((10, -2, -2), (12, 2, 2))
    est = RayCastDoVEstimator(pack_aabbs([box]), resolution=32)
    near = est.dov_from_viewpoint((5, 0, 0))[0]
    far = est.dov_from_viewpoint((25, 0, 0))[0]
    assert near > far
    region = est.dov_from_region([(5, 0, 0), (25, 0, 0)])[0]
    assert region == pytest.approx(max(near, far))
    with pytest.raises(VisibilityError):
        est.dov_from_region([])


def test_custom_object_ids():
    box = AABB((5, -1, -1), (6, 1, 1))
    est = RayCastDoVEstimator(pack_aabbs([box]), object_ids=[42],
                              resolution=8)
    dov = est.dov_from_viewpoint((0, 0, 0))
    assert set(dov) == {42}


def test_estimator_validation():
    with pytest.raises(VisibilityError):
        RayCastDoVEstimator(np.zeros((2, 5)))
    with pytest.raises(VisibilityError):
        RayCastDoVEstimator(np.zeros((2, 6)), object_ids=[1])


# -- precompute pipeline -----------------------------------------------------

def test_precompute_produces_table(small_scene, small_grid):
    table = precompute_visibility(small_scene, small_grid, resolution=8)
    assert table.num_cells == small_grid.num_cells
    assert any(c.num_visible > 0 for c in table.cells())
    for cell in table.cells():
        for oid, dov in cell.dov.items():
            assert oid in small_scene
            assert 0 < dov <= 1.0


def test_precompute_min_dov_filters(small_scene, small_grid):
    loose = precompute_visibility(small_scene, small_grid, resolution=8)
    strict = precompute_visibility(small_scene, small_grid, resolution=8,
                                   min_dov=0.01)
    for cid in small_grid.cell_ids():
        assert strict.cell(cid).num_visible <= loose.cell(cid).num_visible
        for oid, dov in strict.cell(cid).dov.items():
            assert dov > 0.01


def test_precompute_empty_scene_rejected(small_grid):
    from repro.scene.objects import Scene
    with pytest.raises(VisibilityError):
        precompute_visibility(Scene(), small_grid)


def test_precompute_rejects_bad_parameters(small_scene, small_grid):
    # Regression: samples_per_cell < 1 used to be silently accepted and
    # produced empty viewpoint batches deep inside the kernel.
    with pytest.raises(VisibilityError):
        precompute_visibility(small_scene, small_grid, resolution=8,
                              samples_per_cell=0)
    with pytest.raises(VisibilityError):
        precompute_visibility(small_scene, small_grid, resolution=8,
                              min_dov=-0.1)
    with pytest.raises(VisibilityError):
        precompute_visibility(small_scene, small_grid, resolution=8,
                              batch_cells=0)
    with pytest.raises(VisibilityError):
        precompute_visibility(small_scene, small_grid, resolution=8,
                              workers=0)
    with pytest.raises(VisibilityError):
        precompute_visibility(small_scene, small_grid, resolution=8,
                              resume=True)           # resume needs a cache
