"""PagedFile and disk model tests."""

import os

import pytest

from repro.errors import PageNotFoundError, StorageError
from repro.storage.disk import DiskModel, IOStats
from repro.storage.pagedfile import PagedFile


def make_file(**kwargs):
    return PagedFile("test", page_size=256,
                     disk=DiskModel(seek_ms=10.0, transfer_ms=1.0,
                                    readahead_pages=1),
                     stats=IOStats(), **kwargs)


def test_allocate_and_roundtrip():
    pf = make_file()
    pid = pf.allocate()
    pf.write_page(pid, b"hello")
    data = pf.read_page(pid)
    assert data.startswith(b"hello")
    assert len(data) == 256


def test_append_page():
    pf = make_file()
    pid = pf.append_page(b"abc")
    assert pf.read_page(pid).startswith(b"abc")
    assert pf.num_pages == 1


def test_read_unallocated_page_raises():
    pf = make_file()
    with pytest.raises(PageNotFoundError):
        pf.read_page(0)


def test_oversized_write_rejected():
    pf = make_file()
    pid = pf.allocate()
    with pytest.raises(StorageError):
        pf.write_page(pid, bytes(257))


def test_allocate_many_contiguous():
    pf = make_file()
    first = pf.allocate_many(5)
    assert first == 0
    assert pf.num_pages == 5
    with pytest.raises(StorageError):
        pf.allocate_many(0)


def test_io_accounting_and_sequentiality():
    pf = make_file()
    pf.allocate_many(10)
    pf.stats.reset()
    pf.read_page(0)                    # cold: seek
    pf.read_page(1)                    # sequential
    pf.read_page(2)                    # sequential
    pf.read_page(9)                    # jump: seek
    assert pf.stats.reads == 4
    assert pf.stats.seeks == 2
    assert pf.stats.sequential_reads == 2
    assert pf.stats.simulated_ms == pytest.approx(2 * 11.0 + 2 * 1.0)


def test_backward_jump_is_seek():
    pf = make_file()
    pf.allocate_many(5)
    pf.stats.reset()
    pf.read_page(4)
    pf.read_page(3)
    assert pf.stats.seeks == 2


def test_readahead_window_counts_short_skips_as_sequential():
    pf = PagedFile("ra", page_size=256,
                   disk=DiskModel(seek_ms=10.0, transfer_ms=1.0,
                                  readahead_pages=4),
                   stats=IOStats())
    pf.allocate_many(20)
    pf.stats.reset()
    pf.read_page(0)     # seek
    pf.read_page(3)     # skip of 3 <= window: sequential
    pf.read_page(8)     # skip of 5 > window: seek
    assert pf.stats.seeks == 2
    assert pf.stats.sequential_reads == 1


def test_reset_head_forces_seek():
    pf = make_file()
    pf.allocate_many(3)
    pf.stats.reset()
    pf.read_page(0)
    pf.reset_head()
    pf.read_page(1)     # would be sequential without the reset
    assert pf.stats.seeks == 2


def test_read_run_sequential_after_first():
    pf = make_file()
    pf.allocate_many(6)
    for i in range(6):
        pf.write_page(i, bytes([i]) * 10)
    pf.stats.reset()
    data = pf.read_run(2, 3)
    assert len(data) == 3 * 256
    assert data[0] == 2
    assert pf.stats.seeks == 1
    assert pf.stats.sequential_reads == 2


def test_write_counts():
    pf = make_file()
    pid = pf.allocate()
    pf.stats.reset()
    pf.write_page(pid, b"x")
    assert pf.stats.writes == 1
    assert pf.stats.bytes_written == 256


def test_closed_file_rejects_access():
    pf = make_file()
    pid = pf.allocate()
    pf.close()
    with pytest.raises(StorageError):
        pf.read_page(pid)


def test_disk_backed_file_roundtrip(tmp_path):
    path = os.path.join(tmp_path, "pages.bin")
    with PagedFile("disk", page_size=128, path=path) as pf:
        pid = pf.append_page(b"persisted")
    with PagedFile("disk", page_size=128, path=path) as pf2:
        assert pf2.num_pages == 1
        assert pf2.read_page(pid).startswith(b"persisted")


def test_repeat_same_page_read_charges_no_seek():
    """Regression: re-reading the page under the head is a zero delta —
    the head does not move, so no fresh seek may be charged."""
    pf = make_file()
    pf.allocate_many(3)
    pf.stats.reset()
    pf.read_page(0)                    # cold: seek
    pf.read_page(0)                    # same page: no repositioning
    pf.read_page(0)
    assert pf.stats.seeks == 1
    assert pf.stats.sequential_reads == 2
    assert pf.stats.simulated_ms == pytest.approx(11.0 + 2 * 1.0)


def test_repeat_same_page_write_charges_no_seek():
    pf = make_file()
    pid = pf.allocate()
    pf.stats.reset()
    pf.write_page(pid, b"a")
    pf.write_page(pid, b"b")
    assert pf.stats.seeks == 1
    assert pf.stats.sequential_reads == 1


def test_lazy_allocation_reads_zeros():
    """Allocated-but-never-written pages read back as zeros (both
    backends) without any eager zero-fill write."""
    pf = make_file()
    pid = pf.allocate()
    assert pf.read_page(pid) == bytes(256)


def test_lazy_allocation_disk_backend(tmp_path):
    # Physical pages are page_size + 8: each disk page carries an
    # 8-byte integrity trailer (magic + CRC32).  Allocation must still
    # be a truncate (metadata only), never a data write.
    path = os.path.join(tmp_path, "lazy.bin")
    with PagedFile("lazy", page_size=128, path=path) as pf:
        first = pf.allocate_many(4)
        assert os.path.getsize(path) == 4 * (128 + 8)
        assert pf.read_page(first + 2) == bytes(128)
        pf.write_page(first + 1, b"x")
        assert pf.read_page(first + 1).startswith(b"x")


def test_append_page_writes_payload_once(tmp_path):
    """Regression: file-backed allocate used to write a zero page that
    append_page immediately overwrote — a double data write."""
    path = os.path.join(tmp_path, "once.bin")
    with PagedFile("once", page_size=128, path=path) as pf:
        writes = []
        original = pf._fh.write
        pf._fh.write = lambda data: (writes.append(len(data)),
                                     original(data))[1]
        pf.append_page(b"payload")
        # One write call of one physical page (payload + CRC trailer).
        assert writes == [128 + 8]


def test_close_flushes_fsyncs_and_is_idempotent(tmp_path, monkeypatch):
    """Regression: close() used to neither fsync nor tolerate a second
    call — an __exit__ after an explicit close() raised on the closed
    file handle, and a crash right after close() could lose pages that
    were still in the OS write-back cache."""
    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync",
                        lambda fd: (synced.append(fd), real_fsync(fd))[1])
    path = os.path.join(tmp_path, "durable.bin")
    pf = PagedFile("durable", page_size=128, path=path)
    with pf:
        pid = pf.append_page(b"must survive")
        pf.close()            # explicit close inside the with-block...
        pf.close()            # ...double close is a no-op...
    # ...and so is the __exit__ that follows.  Exactly one fsync fired.
    assert len(synced) == 1
    with PagedFile("durable", page_size=128, path=path) as again:
        assert again.read_page(pid).startswith(b"must survive")


# -- seek direction classification ------------------------------------------
#
# The layout rewriter's target metric: every non-sequential access is
# either a back seek (target below the head) or a forward seek (target
# at/above the head, or a cold/reset head).  The invariant
# ``seeks == back_seeks + forward_seeks`` must hold everywhere.


def check_split(stats):
    assert stats.seeks == stats.back_seeks + stats.forward_seeks


def test_seek_classification_matrix():
    """One file, every access shape the classifier distinguishes."""
    pf = PagedFile("matrix", page_size=256,
                   disk=DiskModel(seek_ms=10.0, transfer_ms=1.0,
                                  readahead_pages=4),
                   stats=IOStats())
    pf.allocate_many(30)
    pf.stats.reset()
    pf.read_page(10)    # cold head: forward seek
    pf.read_page(10)    # same page: sequential (zero delta)
    pf.read_page(11)    # +1: sequential
    pf.read_page(15)    # +4 == window edge: sequential
    pf.read_page(20)    # +5 > window: forward seek
    pf.read_page(19)    # -1: back seek (no backward read-ahead)
    pf.read_page(5)     # far backward: back seek
    pf.read_page(25)    # forward again: forward seek
    assert pf.stats.reads == 8
    assert pf.stats.sequential_reads == 3
    assert pf.stats.seeks == 5
    assert pf.stats.forward_seeks == 3
    assert pf.stats.back_seeks == 2
    check_split(pf.stats)


def test_cold_and_reset_heads_are_forward_seeks():
    pf = make_file()
    pf.allocate_many(5)
    pf.stats.reset()
    pf.read_page(4)     # cold: forward, even though 4 > nothing
    pf.reset_head()
    pf.read_page(0)     # after reset: forward, even though 0 < 4
    assert pf.stats.back_seeks == 0
    assert pf.stats.forward_seeks == 2
    check_split(pf.stats)


def test_writes_classify_direction_too():
    pf = make_file()
    pf.allocate_many(4)
    pf.stats.reset()
    pf.write_page(3, b"a")   # cold: forward seek
    pf.write_page(1, b"b")   # backward
    pf.read_page(2)          # +1: sequential (read-ahead window)
    pf.write_page(0, b"c")   # backward again
    assert pf.stats.sequential_reads == 1
    assert pf.stats.back_seeks == 2
    assert pf.stats.forward_seeks == 1
    check_split(pf.stats)


def test_cross_file_interleaving_keeps_heads_independent():
    """Each file has its own head: interleaved accesses on a second
    file never turn the first file's sequential scan into seeks."""
    stats = IOStats()
    disk = DiskModel(seek_ms=10.0, transfer_ms=1.0, readahead_pages=1)
    a = PagedFile("file-a", page_size=256, disk=disk, stats=stats)
    b = PagedFile("file-b", page_size=256, disk=disk, stats=stats)
    a.allocate_many(4)
    b.allocate_many(4)
    stats.reset()
    a.read_page(0)      # forward (cold a)
    b.read_page(3)      # forward (cold b)
    a.read_page(1)      # sequential on a despite b moving in between
    b.read_page(2)      # back seek on b
    a.read_page(2)      # sequential on a
    assert stats.sequential_reads == 2
    assert stats.back_seeks == 1
    assert stats.forward_seeks == 2
    check_split(stats)


def test_back_seek_costing_asymmetric():
    pf = PagedFile("asym", page_size=256,
                   disk=DiskModel(seek_ms=10.0, transfer_ms=1.0,
                                  readahead_pages=1, back_seek_ms=25.0),
                   stats=IOStats())
    pf.allocate_many(5)
    pf.stats.reset()
    pf.read_page(3)     # forward: 10 + 1
    pf.read_page(0)     # backward: 25 + 1
    assert pf.stats.simulated_ms == pytest.approx(11.0 + 26.0)


def test_back_seek_default_matches_seed_costing():
    """back_seek_ms=None re-prices nothing: totals equal the pre-split
    model where every seek cost seek_ms."""
    pf = make_file()
    pf.allocate_many(5)
    pf.stats.reset()
    pf.read_page(3)
    pf.read_page(0)
    pf.read_page(4)
    assert pf.stats.seeks == 3
    assert pf.stats.simulated_ms == pytest.approx(3 * 11.0)


def test_back_seek_ms_below_seek_ms_rejected():
    with pytest.raises(ValueError):
        DiskModel(seek_ms=8.0, back_seek_ms=4.0)
    # Equal is the boundary case and fine.
    DiskModel(seek_ms=8.0, back_seek_ms=8.0)


def test_iostats_delta():
    stats = IOStats()
    disk = DiskModel()
    disk.charge(stats, write=False, sequential=False, nbytes=100)
    snap = stats.snapshot()
    disk.charge(stats, write=True, sequential=True, nbytes=50)
    delta = stats.delta(snap)
    assert delta.reads == 0
    assert delta.writes == 1
    assert delta.bytes_written == 50
    assert delta.simulated_ms == pytest.approx(disk.transfer_ms)
