"""Camera and frustum tests."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.aabb import AABB
from repro.geometry.frustum import Camera, Frustum


def camera(**kwargs):
    defaults = dict(position=(0, 0, 0), direction=(1, 0, 0), up=(0, 0, 1),
                    fov_deg=90.0, aspect=1.0, near=0.1, far=100.0)
    defaults.update(kwargs)
    return Camera(**defaults)


def test_camera_validation():
    with pytest.raises(GeometryError):
        camera(fov_deg=0.0)
    with pytest.raises(GeometryError):
        camera(near=1.0, far=0.5)
    with pytest.raises(GeometryError):
        camera(direction=(0, 0, 1))  # parallel to up


def test_camera_right_vector():
    cam = camera()
    assert np.allclose(cam.right, (0, -1, 0))


def test_frustum_contains_points_on_axis():
    frustum = camera().frustum()
    assert frustum.contains_point((10, 0, 0))
    assert not frustum.contains_point((-10, 0, 0))      # behind camera
    assert not frustum.contains_point((0.05, 0, 0))     # before near plane
    assert not frustum.contains_point((200, 0, 0))      # beyond far plane


def test_frustum_fov_boundary():
    frustum = camera().frustum()        # 90 degrees: half-angle 45
    assert frustum.contains_point((10, 9.9, 0))
    assert not frustum.contains_point((10, 10.5, 0))
    assert frustum.contains_point((10, 0, 9.9))
    assert not frustum.contains_point((10, 0, 10.5))


def test_frustum_aabb_intersection():
    frustum = camera().frustum()
    inside = AABB((5, -1, -1), (6, 1, 1))
    behind = AABB((-6, -1, -1), (-5, 1, 1))
    off_side = AABB((5, 50, -1), (6, 52, 1))
    assert frustum.intersects_aabb(inside)
    assert not frustum.intersects_aabb(behind)
    assert not frustum.intersects_aabb(off_side)


def test_frustum_aabb_partial_overlap():
    frustum = camera().frustum()
    straddling = AABB((50, -200, -1), (60, 1, 1))
    assert frustum.intersects_aabb(straddling)


def test_bounding_aabb_covers_far_corners():
    cam = camera()
    box = cam.frustum().bounding_aabb(cam)
    # Far plane at 100 with 90-degree fov: corners at +-100 laterally.
    assert box.contains_point((99.9, 99.9, 99.9))
    assert box.contains_point((99.9, -99.9, -99.9))
    assert box.hi[0] >= 100.0 - 1e-9


def test_moved_to_preserves_intrinsics():
    cam = camera()
    moved = cam.moved_to((5, 5, 5), direction=(0, 1, 0))
    assert np.allclose(moved.position, (5, 5, 5))
    assert moved.fov_deg == cam.fov_deg
    assert moved.far == cam.far
