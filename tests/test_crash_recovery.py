"""Crash-matrix harness tests: determinism, atomicity, idempotence.

The harness itself is the property suite — it enumerates every I/O
boundary of the workload (and of recovery) and checks the atomicity
and idempotence invariants at each one.  These tests run it at a small
scale, assert it found no violations, and pin down the properties the
CI crash job relies on: byte-identical reports for a fixed seed, full
boundary coverage, a nonzero nested recovery sweep, and the
precompute-cache torn-tail contract.
"""

import json

import pytest

from repro.cli import main
from repro.obs.crash import run_crash_sweep

#: Small but complete: two transactions (one checkpoints), two writes
#: each, plus the cache sweep — every boundary kind still appears.
SMALL = dict(seed=0, pages=4, page_size=64, txns=2, writes_per_txn=2,
             cache_cells=3, cache_stride=11)


@pytest.fixture(scope="module")
def sweep():
    return run_crash_sweep(**SMALL)


def test_sweep_finds_no_violations(sweep):
    assert sweep["violations"] == []
    assert sweep["summary"]["ok"] is True
    assert sweep["summary"]["points"] == sweep["crash"]["boundaries"] > 0
    assert sweep["summary"]["recovery_points"] > 0
    assert sweep["summary"]["cache_points"] > 0


def test_sweep_report_is_byte_deterministic():
    first = json.dumps(run_crash_sweep(**SMALL), indent=2, sort_keys=True)
    second = json.dumps(run_crash_sweep(**SMALL), indent=2, sort_keys=True)
    assert first == second


def test_sweep_enumerates_every_boundary_kind(sweep):
    kinds = {label.split(":", 1)[0] for label in sweep["crash"]["labels"]}
    assert kinds == {"read", "write", "journal-commit", "journal-sync",
                     "checkpoint-write", "data-sync", "journal-reset"}


def test_every_point_is_atomic_and_idempotent(sweep):
    assert len(sweep["sweep"]) == sweep["crash"]["boundaries"]
    for entry in sweep["sweep"]:
        assert entry["atomic"], entry
        assert entry["idempotent"], entry
        assert entry["recovery_crash"]["converged"], entry
        # Recovered state never regresses below the durable commits...
        assert entry["recovered_state"] >= entry["durable_commits"]
        # ...and never invents a commit whose marker was never appended.
        assert entry["recovered_state"] <= entry["appended_commits"]


def test_recovery_replay_and_truncation_both_exercised(sweep):
    assert any(e["pages_replayed"] > 0 for e in sweep["sweep"])
    assert any(e["tail_truncated_bytes"] > 0 for e in sweep["sweep"])
    metrics = sweep["metrics"]
    assert metrics["recovery_pages_replayed_total"] > 0
    assert metrics["recovery_tail_truncations_total"] > 0
    assert metrics["journal_records_total"] > 0
    assert metrics["journal_commits_total"] > 0
    # One crash per sweep point plus one per nested recovery point.
    assert metrics["crashes_injected_total"] == \
        sweep["summary"]["points"] + sweep["summary"]["recovery_points"]


def test_cache_torn_tail_sweep(sweep):
    cache = sweep["cache"]
    assert cache["ok"] is True
    assert cache["cells"] == SMALL["cache_cells"]
    # Interior truncation points exist, so torn tails were observed.
    assert cache["torn_tails"] > 0


def test_cli_crash_writes_report_and_exits_zero(tmp_path, capsys):
    out = str(tmp_path / "crash.json")
    code = main(["crash", "--seed", "1", "--pages", "4", "--page-size",
                 "64", "--txns", "2", "--writes", "2", "--cache-cells",
                 "3", "--cache-stride", "11", "--output", out])
    assert code == 0
    report = json.load(open(out))
    assert report["summary"]["ok"] is True
    assert "wrote" in capsys.readouterr().out


def test_different_seed_different_payloads_same_invariants():
    other = run_crash_sweep(**dict(SMALL, seed=9))
    assert other["summary"]["ok"] is True
    assert other["crash"]["seed"] == 9
