"""Storage scheme tests: round trips, costs, paper storage formulas."""

import math

import pytest

from repro.constants import SIZE_INTEGER, SIZE_POINTER
from repro.core.schemes import (SCHEME_CLASSES, HorizontalScheme,
                                IndexedVerticalScheme, VerticalScheme)
from repro.core.vpage import CellVPages
from repro.errors import SchemeError
from repro.storage.disk import DiskModel, IOStats
from repro.storage.pagedfile import PagedFile

NUM_NODES = 12
PAGE_SIZE = 512


def synthetic_cells(num_cells=4):
    """Cells where node offset o is visible in cell c iff (o + c) % 3 == 0
    (sparse visibility, like real scenes); entry counts differ per node
    to exercise layout variety."""
    cells = []
    for c in range(num_cells):
        pages = {}
        for offset in range(NUM_NODES):
            if (offset + c) % 3 == 0:
                count = 1 + offset % 3
                pages[offset] = [(0.1 * (i + 1) / count, i + 1)
                                 for i in range(count)]
        cells.append(CellVPages(cell_id=c, pages=pages))
    return cells


def build_scheme(name, cells=None):
    cells = cells if cells is not None else synthetic_cells()
    stats = IOStats()
    disk = DiskModel(seek_ms=10.0, transfer_ms=1.0, readahead_pages=1)
    vpf = PagedFile(f"{name}-v", page_size=PAGE_SIZE, disk=disk, stats=stats)
    cls = SCHEME_CLASSES[name]
    if name == "horizontal":
        scheme = cls(vpf)
    else:
        idx = PagedFile(f"{name}-i", page_size=PAGE_SIZE, disk=disk,
                        stats=stats)
        scheme = cls(vpf, idx)
    scheme.build(NUM_NODES, cells)
    stats.reset()
    return scheme, stats, cells


@pytest.mark.parametrize("name", sorted(SCHEME_CLASSES))
class TestAllSchemes:
    def test_roundtrip_all_cells(self, name):
        scheme, _stats, cells = build_scheme(name)
        for cell in cells:
            scheme.flip_to_cell(cell.cell_id)
            for offset in range(NUM_NODES):
                expected = cell.pages.get(offset)
                got = scheme.ventries(offset)
                if expected is None:
                    assert got is None
                else:
                    assert got is not None
                    assert len(got) == len(expected)
                    for (dov, nvo), (gdov, gnvo) in zip(expected, got):
                        assert gnvo == nvo
                        assert gdov == pytest.approx(dov, abs=1e-6)

    def test_requires_flip_before_read(self, name):
        scheme, _stats, _cells = build_scheme(name)
        with pytest.raises(SchemeError):
            scheme.ventries(0)

    def test_rejects_bad_cell_and_offset(self, name):
        scheme, _stats, _cells = build_scheme(name)
        with pytest.raises(SchemeError):
            scheme.flip_to_cell(99)
        scheme.flip_to_cell(0)
        with pytest.raises(SchemeError):
            scheme.ventries(NUM_NODES + 5)

    def test_double_build_rejected(self, name):
        scheme, _stats, cells = build_scheme(name)
        with pytest.raises(SchemeError):
            scheme.build(NUM_NODES, cells)

    def test_flip_to_same_cell_free(self, name):
        scheme, stats, _cells = build_scheme(name)
        scheme.flip_to_cell(1)
        reads_after_first = stats.reads
        scheme.flip_to_cell(1)
        assert stats.reads == reads_after_first
        assert scheme.flips == 1


def test_horizontal_vpage_access_is_one_page():
    scheme, stats, cells = build_scheme("horizontal")
    scheme.flip_to_cell(0)
    assert stats.reads == 0                 # flip is free
    scheme.ventries(0)
    assert stats.reads == 1                 # one V-page access


def test_horizontal_storage_formula():
    scheme, _stats, cells = build_scheme("horizontal")
    breakdown = scheme.storage_breakdown()
    assert breakdown.vpage_bytes == PAGE_SIZE * NUM_NODES * len(cells)
    assert breakdown.index_bytes == 0


def test_vertical_storage_formula():
    scheme, _stats, cells = build_scheme("vertical")
    breakdown = scheme.storage_breakdown()
    n_vnode_total = sum(c.num_visible_nodes for c in cells)
    assert breakdown.vpage_bytes == PAGE_SIZE * n_vnode_total
    assert breakdown.index_bytes == SIZE_POINTER * NUM_NODES * len(cells)


def test_indexed_vertical_storage_formula():
    scheme, _stats, cells = build_scheme("indexed-vertical")
    breakdown = scheme.storage_breakdown()
    n_vnode_total = sum(c.num_visible_nodes for c in cells)
    assert breakdown.vpage_bytes == PAGE_SIZE * n_vnode_total
    assert breakdown.index_bytes == (
        (SIZE_POINTER + SIZE_INTEGER) * n_vnode_total)


def test_storage_ordering_matches_paper():
    """Horizontal >> vertical > indexed-vertical (Table 2's ordering)."""
    sizes = {}
    for name in SCHEME_CLASSES:
        scheme, _stats, _cells = build_scheme(name)
        sizes[name] = scheme.storage_breakdown().total_bytes
    assert sizes["horizontal"] > sizes["vertical"]
    assert sizes["vertical"] > sizes["indexed-vertical"]


def test_vertical_flip_cost_scales_with_nodes():
    """O(N_node) flip: many nodes -> multi-page segment reads."""
    big_nodes = 2000
    cells = [CellVPages(cell_id=c, pages={0: [(0.5, 1)]}) for c in range(2)]
    stats = IOStats()
    disk = DiskModel(readahead_pages=1)
    vpf = PagedFile("v", page_size=PAGE_SIZE, disk=disk, stats=stats)
    idx = PagedFile("i", page_size=PAGE_SIZE, disk=disk, stats=stats)
    scheme = VerticalScheme(vpf, idx)
    scheme.build(big_nodes, cells)
    stats.reset()
    scheme.flip_to_cell(0)
    expected_pages = math.ceil(big_nodes * SIZE_POINTER / PAGE_SIZE)
    assert stats.reads == expected_pages
    assert expected_pages > 1


def test_indexed_vertical_flip_cost_scales_with_visible():
    """O(N_vnode) flip: huge trees with few visible nodes flip in 1 page."""
    big_nodes = 2000
    cells = [CellVPages(cell_id=c, pages={0: [(0.5, 1)]}) for c in range(2)]
    stats = IOStats()
    vpf = PagedFile("v", page_size=PAGE_SIZE, disk=DiskModel(), stats=stats)
    idx = PagedFile("i", page_size=PAGE_SIZE, disk=DiskModel(), stats=stats)
    scheme = IndexedVerticalScheme(vpf, idx)
    scheme.build(big_nodes, cells)
    stats.reset()
    scheme.flip_to_cell(0)
    assert stats.reads == 1


def test_vertical_vpages_dfs_contiguous_per_cell():
    """V-pages of one cell occupy one contiguous ascending run."""
    scheme, stats, cells = build_scheme("vertical")
    scheme.flip_to_cell(2)
    stats.reset()
    for offset in cells[2].visible_offsets_dfs():
        scheme.ventries(offset)
    # First access seeks; the rest are +1-sequential.
    assert stats.sequential_reads == cells[2].num_visible_nodes - 1


def test_resident_bytes_ordering():
    """Vertical keeps N_node pointers resident; indexed only N_vnode."""
    vertical, _s1, cells = build_scheme("vertical")
    indexed, _s2, _c = build_scheme("indexed-vertical")
    horizontal, _s3, _c2 = build_scheme("horizontal")
    vertical.flip_to_cell(0)
    indexed.flip_to_cell(0)
    horizontal.flip_to_cell(0)
    assert vertical.resident_bytes() == SIZE_POINTER * NUM_NODES
    assert indexed.resident_bytes() == (
        (SIZE_POINTER + SIZE_INTEGER) * cells[0].num_visible_nodes)
    assert horizontal.resident_bytes() == 0


def test_empty_cells_rejected():
    for name in SCHEME_CLASSES:
        stats = IOStats()
        vpf = PagedFile("v", page_size=PAGE_SIZE, disk=DiskModel(),
                        stats=stats)
        cls = SCHEME_CLASSES[name]
        if name == "horizontal":
            scheme = cls(vpf)
        else:
            scheme = cls(vpf, PagedFile("i", page_size=PAGE_SIZE,
                                        disk=DiskModel(), stats=stats))
        with pytest.raises(SchemeError):
            scheme.build(NUM_NODES, [])
