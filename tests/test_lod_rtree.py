"""LoD-R-tree baseline tests: slab queries, direction-keyed cache, and
the view-change degeneration the HDoV paper describes."""

import numpy as np
import pytest

from repro.baselines.lod_rtree import LodRTreeSystem
from repro.errors import WalkthroughError
from repro.geometry.aabb import union_aabbs


def street_point(env):
    cell = max(env.grid.cell_ids(),
               key=lambda c: env.visibility.cell(c).num_visible)
    return env.grid.cell_center(cell)


def test_validation(env):
    with pytest.raises(WalkthroughError):
        LodRTreeSystem(env, depth=0.0)
    with pytest.raises(WalkthroughError):
        LodRTreeSystem(env, num_slabs=0)


def test_query_boxes_cover_frustum_depth(env):
    system = LodRTreeSystem(env, depth=300.0, num_slabs=3)
    point = street_point(env)
    boxes = system.query_boxes(point, (1, 0, 0))
    assert len(boxes) == 3
    cover = union_aabbs(boxes)
    assert cover.contains_point(point)
    assert cover.contains_point(point + np.array([299.0, 0.0, 0.0]))
    # Tighter near the viewer than far away.
    assert boxes[0].volume < boxes[-1].volume


def test_slab_boxes_much_smaller_than_review_box(env):
    """The slab decomposition's selling point: less dead volume than
    one big cube of the same reach."""
    system = LodRTreeSystem(env, depth=400.0, num_slabs=3)
    boxes = system.query_boxes(street_point(env), (1, 0, 0))
    slab_volume = sum(b.volume for b in boxes)
    # REVIEW must cover 400 m of reach in *every* direction: a cube of
    # side 800 m centered at the viewpoint.
    review_volume = 800.0 ** 3
    assert slab_volume < review_volume / 4


def test_query_returns_objects_in_boxes(env):
    system = LodRTreeSystem(env, depth=400.0, fetch_models=False)
    point = street_point(env)
    result = system.query(point, (1, 0, 0))
    boxes = result.boxes
    for oid in result.object_ids:
        mbr = env.objects[oid].chain.finest.aabb()
        assert any(box.intersects(mbr) for box in boxes)


def test_near_objects_finest_lod(env):
    system = LodRTreeSystem(env, depth=400.0, num_slabs=3,
                            fetch_models=False)
    point = street_point(env)
    result = system.query(point, (1, 0, 0))
    if not result.object_ids:
        pytest.skip("no objects in view")
    # Some object in the nearest slab gets fraction 1.0 => finest polys.
    finest_served = any(
        env.objects[oid].chain.finest.num_faces
        in [env.objects[oid].chain.interpolated_polygons(1.0)]
        for oid in result.object_ids)
    assert finest_served


def test_small_turn_keeps_cache(env):
    system = LodRTreeSystem(env, depth=300.0, requery_angle_deg=20.0,
                            fetch_models=False)
    point = street_point(env)
    _result, queried = system.frame(point, (1, 0, 0))
    assert queried
    small_turn = (np.cos(np.radians(5)), np.sin(np.radians(5)), 0)
    _result, queried = system.frame(point, small_turn)
    assert not queried


def test_large_turn_invalidates_cache(env):
    """The degeneration: turning the head re-queries and re-fetches."""
    system = LodRTreeSystem(env, depth=300.0, requery_angle_deg=20.0,
                            fetch_models=False)
    point = street_point(env)
    system.frame(point, (1, 0, 0))
    _result, queried = system.frame(point, (0, 1, 0))     # 90-degree turn
    assert queried
    assert system.queries_issued == 2


def test_turning_costs_more_than_for_review(env):
    """Replaying a turning pattern: the LoD-R-tree re-queries far more
    than REVIEW, whose box ignores the view direction."""
    from repro.baselines.review import ReviewSystem
    point = street_point(env)
    headings = np.linspace(0, 2 * np.pi, 24, endpoint=False)

    lod_rtree = LodRTreeSystem(env, depth=300.0, requery_angle_deg=20.0,
                               fetch_models=False)
    review = ReviewSystem(env, box_size=300.0, fetch_models=False)
    review_queries = 0
    for heading in headings:
        direction = (float(np.cos(heading)), float(np.sin(heading)), 0.0)
        lod_rtree.frame(point, direction)
        _r, queried = review.frame(point)
        review_queries += queried
    assert lod_rtree.queries_issued > review_queries


def test_complement_search_on_straight_motion(env):
    system = LodRTreeSystem(env, depth=300.0, requery_distance=5.0,
                            fetch_models=False)
    point = street_point(env)
    first = system.query(point, (1, 0, 0))
    second = system.query(point + np.array([6.0, 0, 0]), (1, 0, 0))
    # Overlapping slabs: most objects served from cache.
    assert len(second.fetched_ids) < len(second.object_ids) + 1
    assert system.cache_hits > 0
