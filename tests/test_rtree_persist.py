"""NodeStore persistence tests."""

import numpy as np
import pytest

from repro.errors import RTreeError
from repro.geometry.aabb import AABB
from repro.rtree.bulk import str_bulk_load
from repro.rtree.persist import KIND_INTERNAL, KIND_LEAF, NodeStore
from repro.storage.disk import DiskModel, IOStats
from repro.storage.pagedfile import PagedFile
from repro.storage.serializer import NIL


def random_items(n, seed=0):
    rng = np.random.default_rng(seed)
    items = []
    for i in range(n):
        lo = rng.uniform(0, 100, 3)
        items.append((AABB(lo, lo + rng.uniform(0.5, 5, 3)), i))
    return items


@pytest.fixture()
def store_and_tree():
    tree = str_bulk_load(random_items(60, seed=1), max_entries=5)
    pf = PagedFile("nodes", disk=DiskModel(), stats=IOStats())
    store = NodeStore(pf)
    store.write_tree(tree, lod_pointers={i: 1000 + i for i in range(60)})
    return store, tree


def test_offsets_are_dfs_preorder(store_and_tree):
    store, tree = store_and_tree
    offsets = [n.node_offset for n in tree.iter_nodes_dfs()]
    assert offsets == list(range(store.num_nodes))
    assert tree.root.node_offset == 0


def test_roundtrip_preserves_structure(store_and_tree):
    store, tree = store_and_tree
    for node in tree.iter_nodes_dfs():
        persisted = store.read_node(node.node_offset)
        assert persisted.is_leaf == node.is_leaf
        assert persisted.level == node.level
        assert len(persisted.entries) == node.num_entries
        for entry, (mbr, target, lod_ptr) in zip(node.entries,
                                                 persisted.entries):
            assert np.allclose(mbr.lo, entry.mbr.lo, rtol=1e-5, atol=1e-3)
            if entry.is_leaf_entry:
                assert target == entry.object_id
                assert lod_ptr == 1000 + entry.object_id
            else:
                assert target == entry.child.node_offset
                assert lod_ptr == NIL


def test_read_charges_one_page(store_and_tree):
    store, _tree = store_and_tree
    store.pfile.stats.reset()
    store.read_node(0)
    assert store.pfile.stats.reads == 1


def test_read_root(store_and_tree):
    store, tree = store_and_tree
    root = store.read_root()
    assert root.node_offset == 0
    assert root.kind == (KIND_LEAF if tree.root.is_leaf else KIND_INTERNAL)


def test_unknown_offset_rejected(store_and_tree):
    store, _tree = store_and_tree
    with pytest.raises(RTreeError):
        store.read_node(10_000)


def test_unwritten_store_rejects_root():
    pf = PagedFile("empty", disk=DiskModel(), stats=IOStats())
    with pytest.raises(RTreeError):
        NodeStore(pf).read_root()


def test_children_reachable_by_offset(store_and_tree):
    store, _tree = store_and_tree
    seen = set()
    stack = [0]
    while stack:
        offset = stack.pop()
        seen.add(offset)
        node = store.read_node(offset)
        if not node.is_leaf:
            stack.extend(target for _mbr, target, _ptr in node.entries)
    assert seen == set(range(store.num_nodes))
