"""Tests for the HTTP front-end (``repro.serving.http``).

Covers the session lifecycle over the async app, the error-to-status
ladder, the timing middleware's accounting, parity between the HTTP
path and the in-process ``SessionScheduler`` on the deterministic
report subset, health degradation under an injected fault plan, and
the real-socket server.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.obs import names
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.profile import _environment_files
from repro.serving import run_serve
from repro.serving.http import (HttpRequest, HttpServer, WalkthroughApp,
                                build_service, percentile)
from repro.serving.http.stats import latency_summary
from repro.storage.faults import FaultInjector, named_plan

SCALE = "small"
FRAMES = 8


def dispatch(app, method, path, body=None):
    return asyncio.run(app.dispatch(HttpRequest(method, path, body)))


@pytest.fixture(scope="module")
def app():
    with use_registry(MetricsRegistry()):
        service = build_service(scale=SCALE, frames=FRAMES, max_active=3)
        yield WalkthroughApp(service)


# -- lifecycle over the app -------------------------------------------------


def test_session_lifecycle(app):
    created = dispatch(app, "POST", "/sessions", {"pattern": 2})
    assert created.status == 201
    session_id = created.body["id"]
    assert created.body["pattern"] == 2
    assert created.body["frames"] == FRAMES

    listed = dispatch(app, "GET", "/sessions")
    assert session_id in [s["id"] for s in listed.body["sessions"]]

    for index in range(FRAMES):
        stepped = dispatch(app, "POST", f"/sessions/{session_id}/step")
        assert stepped.status == 200
        assert stepped.body["stepped"] is True
        assert stepped.body["frame_index"] == index
        assert stepped.body["frame_ms"] > 0
    assert stepped.body["done"] is True

    # Stepping a finished session is answered, not an error.
    extra = dispatch(app, "POST", f"/sessions/{session_id}/step")
    assert extra.status == 200
    assert extra.body["stepped"] is False

    closed = dispatch(app, "DELETE", f"/sessions/{session_id}")
    assert closed.status == 200
    assert closed.body["frames"] == FRAMES
    assert closed.body["done"] is True
    assert session_id not in app.service.sessions


def test_error_status_ladder(app):
    assert dispatch(app, "GET", "/sessions/99999").status == 404
    assert dispatch(app, "POST", "/sessions/99999/step").status == 404
    assert dispatch(app, "DELETE", "/sessions/99999").status == 404
    assert dispatch(app, "POST", "/sessions",
                    {"pattern": 7}).status == 400
    assert dispatch(app, "POST", "/sessions",
                    {"pattern": "one"}).status == 400
    assert dispatch(app, "POST", "/sessions",
                    {"pattern": 1, "frames": "x"}).status == 400
    assert dispatch(app, "GET", "/nope").status == 404


def test_overload_sheds_with_503(app):
    created = []
    try:
        while True:
            response = dispatch(app, "POST", "/sessions", {"pattern": 1})
            if response.status == 503:
                assert response.body["shed"] is True
                break
            created.append(response.body["id"])
            assert len(created) <= 3, "admission cap never enforced"
    finally:
        for session_id in created:
            dispatch(app, "DELETE", f"/sessions/{session_id}")
    assert app.service.sessions_shed >= 1


def test_middleware_assigns_request_ids_and_counts(app):
    before = app.collector.total_requests
    first = dispatch(app, "GET", "/healthz")
    second = dispatch(app, "GET", "/healthz")
    assert app.collector.total_requests == before + 2
    first_id = int(first.headers["x-request-id"])
    second_id = int(second.headers["x-request-id"])
    assert second_id == first_id + 1
    counts = app.collector.request_counts()
    assert counts["GET /healthz"]["requests"] >= 2
    assert counts["GET /healthz"]["errors"] == 0
    summary = app.collector.wall_latency()["GET /healthz"]
    assert summary["p50"] >= 0.0
    assert summary["max"] >= summary["p50"]


def test_stats_and_metrics_endpoints(app):
    stats = dispatch(app, "GET", "/stats")
    assert stats.status == 200
    assert stats.body["sessions_created"] == app.service.sessions_created
    assert "GET /healthz" in stats.body["http"]["requests"]
    metrics = dispatch(app, "GET", "/metrics")
    assert metrics.status == 200
    assert any(key.startswith(names.HTTP_REQUESTS)
               for key in metrics.body["metrics"])


# -- parity with the in-process scheduler -----------------------------------


def test_http_path_matches_scheduler_report():
    """Concurrent create/step over the shared pool must reproduce the
    ``SessionScheduler`` per-session reports field-for-field.

    The reference run serves N sessions through ``run_serve``; the HTTP
    side creates the same sessions (same seed-drawn patterns) and steps
    them in scheduler order — each round fanned out as concurrent
    dispatches, serialized only by the app's lock.  Everything in the
    deterministic per-session report must coincide.
    """
    sessions, seed, frames = 4, 3, 10
    reference = run_serve(sessions=sessions, workers=1, seed=seed,
                          scale=SCALE, frames=frames,
                          include_frame_times=False)
    expected = reference["sessions"]

    with use_registry(MetricsRegistry()):
        service = build_service(scale=SCALE, frames=frames,
                                evaluate_fidelity=True)
        app = WalkthroughApp(service)
        rng = np.random.default_rng(seed)
        patterns = [int(rng.integers(1, 4)) for _ in range(sessions)]

        async def drive():
            ids = []
            for pattern in patterns:
                response = await app.dispatch(HttpRequest(
                    "POST", "/sessions", {"pattern": pattern}))
                assert response.status == 201
                ids.append(response.body["id"])
            live = list(ids)
            while live:
                # One scheduler round: every live session steps, the
                # dispatches issued concurrently (the app's lock is
                # FIFO, so ascending-id order is preserved).
                responses = await asyncio.gather(*[
                    app.dispatch(HttpRequest(
                        "POST", f"/sessions/{sid}/step"))
                    for sid in live])
                for response in responses:
                    assert response.status == 200
                live = [sid for sid, r in zip(live, responses)
                        if not r.body["done"]]
            reports = []
            for sid in ids:
                closed = await app.dispatch(HttpRequest(
                    "DELETE", f"/sessions/{sid}"))
                assert closed.status == 200
                reports.append(closed.body)
            return reports

        actual = asyncio.run(drive())

    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        got = dict(got)
        assert got.pop("done") is True
        assert got == want


# -- health under faults ----------------------------------------------------


def test_health_degrades_under_faults_instead_of_erroring():
    with use_registry(MetricsRegistry()):
        service = build_service(scale=SCALE, frames=20)
        app = WalkthroughApp(service)
        assert dispatch(app, "GET", "/healthz").body["status"] == "ok"

        injector = FaultInjector(named_plan("aggressive"), seed=3)
        injector.install(*_environment_files(service.env))
        try:
            for pattern in (1, 2, 3):
                created = dispatch(app, "POST", "/sessions",
                                   {"pattern": pattern})
                assert created.status == 201
                session_id = created.body["id"]
                for _ in range(20):
                    stepped = dispatch(
                        app, "POST", f"/sessions/{session_id}/step")
                    # The promise under test: faults degrade fidelity,
                    # they never turn into HTTP errors.
                    assert stepped.status == 200
        finally:
            injector.uninstall()

        assert injector.total_injected() > 0
        health = dispatch(app, "GET", "/healthz")
        assert health.status == 200
        assert health.body["status"] == "degraded"
        assert (health.body["frames_degraded"] > 0
                or health.body["pages_corrupt"] > 0
                or health.body["io_giveups"] > 0)


# -- the real socket --------------------------------------------------------


def test_socket_server_round_trip():
    async def scenario():
        with use_registry(MetricsRegistry()):
            app = WalkthroughApp(build_service(scale=SCALE, frames=3))
            server = HttpServer(app)
            host, port = await server.start()
            try:
                async def call(raw: bytes) -> tuple:
                    reader, writer = await asyncio.open_connection(
                        host, port)
                    writer.write(raw)
                    await writer.drain()
                    data = await reader.read()
                    writer.close()
                    await writer.wait_closed()
                    head, _, payload = data.partition(b"\r\n\r\n")
                    status = int(head.split(b" ", 2)[1])
                    return status, json.loads(payload), head

                status, body, _head = await call(
                    b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
                assert status == 200
                assert body["status"] == "ok"

                payload = json.dumps({"pattern": 1}).encode()
                status, body, head = await call(
                    b"POST /sessions HTTP/1.1\r\n"
                    + f"content-length: {len(payload)}\r\n\r\n".encode()
                    + payload)
                assert status == 201
                assert b"x-request-id:" in head
                session_id = body["id"]

                status, body, _head = await call(
                    f"POST /sessions/{session_id}/step "
                    f"HTTP/1.1\r\n\r\n".encode())
                assert status == 200
                assert body["stepped"] is True

                # Malformed requests answer 400, never crash the server.
                status, body, _head = await call(b"BOGUS\r\n\r\n")
                assert status == 400
                status, body, _head = await call(
                    b"POST /sessions HTTP/1.1\r\n"
                    b"content-length: 3\r\n\r\nxxx")
                assert status == 400

                # The server survives all of the above and still serves.
                status, body, _head = await call(
                    b"GET /stats HTTP/1.1\r\n\r\n")
                assert status == 200
                assert body["sessions_created"] == 1
            finally:
                await server.stop()

    asyncio.run(scenario())


# -- percentile helpers -----------------------------------------------------


def test_percentile_nearest_rank():
    samples = [10.0, 20.0, 30.0, 40.0]
    assert percentile(samples, 0.0) == 10.0
    assert percentile(samples, 50.0) == 20.0
    assert percentile(samples, 75.0) == 30.0
    assert percentile(samples, 100.0) == 40.0
    assert percentile([], 50.0) == 0.0
    with pytest.raises(ValueError):
        percentile(samples, 101.0)


def test_latency_summary_shape():
    summary = latency_summary([5.0, 1.0, 3.0])
    assert summary["p50"] == 3.0
    assert summary["max"] == 5.0
    assert summary["mean"] == pytest.approx(3.0)
    assert set(summary) == {"p50", "p95", "p99", "mean", "max"}
