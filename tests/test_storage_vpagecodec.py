"""Packed delta V-page codec tests: round trips, delta designation,
corruption (bit flips, torn writes, truncation, bad headers, deep
reference chains) — nothing may ever decode silently wrong."""

import struct
import zlib

import pytest

from repro.errors import PageCorruptError, SchemeError
from repro.storage.disk import DiskModel, IOStats
from repro.storage.pagedfile import PagedFile
from repro.storage.vpagecodec import (PACKED_VERSION, PackedDeltaVPageCodec,
                                      RawVPageCodec, _encode_varint)

PAGE_SIZE = 256


class FileReader:
    """Minimal PageReader over a PagedFile (no scheme cache)."""

    def __init__(self, pf):
        self._pf = pf

    def vpage_page(self, page_id):
        return self._pf.read_page(page_id)


def make_file(name="packed-v"):
    return PagedFile(name, page_size=PAGE_SIZE,
                     disk=DiskModel(seek_ms=0.0, transfer_ms=0.0),
                     stats=IOStats())


def entries_for(cell_id, count=6):
    return [(round(0.1 + 0.05 * ((i + cell_id) % 7), 4), i + 1)
            for i in range(count)]


def build_stream(cells, neighbors=None):
    """Write one V-page per cell at node offset 0; returns
    (codec, file, {cell: pointer})."""
    pf = make_file()
    codec = PackedDeltaVPageCodec(PAGE_SIZE, neighbors or {},
                                  scheme="test")
    pointers = {}
    for cell_id, ventries in cells.items():
        codec.begin_cell(cell_id)
        pointers[cell_id] = codec.append(pf, cell_id, 0, ventries)
    codec.finish(pf)
    return codec, pf, pointers


def test_self_record_roundtrip():
    cells = {0: entries_for(0)}
    codec, pf, pointers = build_stream(cells)
    offset, got = codec.read(pointers[0], FileReader(pf))
    assert offset == 0
    assert got == [(pytest.approx(d), n) for d, n in cells[0]]
    assert codec.self_records == 1
    assert codec.delta_records == 0


def test_delta_record_roundtrip_exact():
    base = entries_for(0)
    changed = list(base)
    changed[2] = (0.9, 42)          # one entry differs
    cells = {0: base, 1: changed}
    codec, pf, pointers = build_stream(cells, neighbors={0: [1], 1: [0]})
    assert codec.delta_records == 1
    reader = FileReader(pf)
    _, got_base = codec.read(pointers[0], reader)
    _, got_delta = codec.read(pointers[1], reader)
    # f32 quantization applies identically to both paths, so the delta
    # decode is bit-identical to a self decode of the same entries.
    assert got_delta[2] == (pytest.approx(0.9), 42)
    assert got_delta[:2] == got_base[:2]
    assert got_delta[3:] == got_base[3:]


def test_delta_requires_matching_entry_count():
    cells = {0: entries_for(0, count=6), 1: entries_for(1, count=5)}
    codec, _pf, _ = build_stream(cells, neighbors={0: [1], 1: [0]})
    assert codec.delta_records == 0
    assert codec.self_records == 2


def test_delta_must_be_strictly_smaller():
    # Every entry differs: the diff list costs more than self-encoding,
    # so the writer falls back.
    base = entries_for(0)
    cells = {0: base, 1: [(0.99, n + 100) for _d, n in base]}
    codec, pf, pointers = build_stream(cells, neighbors={0: [1], 1: [0]})
    assert codec.delta_records == 0
    _, got = codec.read(pointers[1], FileReader(pf))
    assert got[0][1] == 101


def test_compression_stats_consistent():
    cells = {c: entries_for(c) for c in range(4)}
    codec, _pf, _ = build_stream(
        cells, neighbors={0: [1], 1: [0, 2], 2: [1, 3], 3: [2]})
    stats = codec.compression_stats()
    assert stats["records"] == 4
    assert stats["self_records"] + stats["delta_records"] == 4
    assert stats["encoded_bytes"] == codec.stream_length
    assert stats["raw_bytes"] == 4 * PAGE_SIZE
    assert 0.0 < stats["ratio"] < 1.0


def test_storage_bytes_page_rounded():
    cells = {0: entries_for(0)}
    codec, _pf, _ = build_stream(cells)
    assert codec.storage_vpage_bytes(PAGE_SIZE, 1) == PAGE_SIZE
    assert codec.stream_length < PAGE_SIZE


# -- writer misuse -----------------------------------------------------------


def test_append_without_begin_cell_rejected():
    pf = make_file()
    codec = PackedDeltaVPageCodec(PAGE_SIZE, {})
    with pytest.raises(SchemeError):
        codec.append(pf, 0, 0, entries_for(0))


def test_append_after_finish_rejected():
    codec, pf, _ = build_stream({0: entries_for(0)})
    with pytest.raises(SchemeError):
        codec.append(pf, 0, 1, entries_for(0))
    with pytest.raises(SchemeError):
        codec.finish(pf)


def test_tiny_page_size_rejected():
    with pytest.raises(SchemeError):
        PackedDeltaVPageCodec(8, {})


def test_invalid_entries_rejected_at_encode():
    pf = make_file()
    codec = PackedDeltaVPageCodec(PAGE_SIZE, {})
    codec.begin_cell(0)
    with pytest.raises(SchemeError):
        codec.append(pf, 0, 0, [(1.5, 1)])     # DoV out of [0, 1]
    with pytest.raises(SchemeError):
        codec.append(pf, 0, 0, [(0.5, -1)])    # negative NVO


def test_varint_rejects_negative():
    with pytest.raises(SchemeError):
        _encode_varint(-1)
    # u32 maximum round-trips through the encoder shape (5 bytes).
    assert len(_encode_varint(0xFFFFFFFF)) == 5
    assert _encode_varint(0) == b"\x00"


# -- corruption --------------------------------------------------------------


def corrupt_byte(pf, page_id, index):
    page = bytearray(pf.read_page(page_id))
    page[index] ^= 0xFF
    pf.write_page(page_id, bytes(page))


def test_bit_flip_raises_page_corrupt():
    codec, pf, pointers = build_stream({0: entries_for(0)})
    corrupt_byte(pf, 0, 6)          # inside the payload: CRC catches it
    with pytest.raises(PageCorruptError):
        codec.read(pointers[0], FileReader(pf))


def test_torn_write_raises_page_corrupt():
    # Zero the page from mid-record on (a torn write): the payload and
    # CRC are gone, so the CRC check fires — never silent garbage.
    codec, pf, pointers = build_stream(
        {c: entries_for(c) for c in range(3)})
    cut = pointers[2] + 4
    page = bytearray(pf.read_page(0))
    page[cut:] = bytes(len(page) - cut)
    pf.write_page(0, bytes(page))
    with pytest.raises(PageCorruptError):
        codec.read(pointers[2], FileReader(pf))


def test_pointer_outside_stream_raises():
    codec, pf, _ = build_stream({0: entries_for(0)})
    with pytest.raises(PageCorruptError):
        codec.read(codec.stream_length, FileReader(pf))
    with pytest.raises(PageCorruptError):
        codec.read(-1, FileReader(pf))


def test_truncated_stream_raises():
    # A record that starts 10 bytes before the end of the stream's last
    # page but needs more: the cursor hits the stream end mid-record.
    head = (bytes((PACKED_VERSION, 0)) + _encode_varint(0)
            + _encode_varint(6))
    pointer = PAGE_SIZE - 10
    page = bytes(pointer) + head + bytes(10 - len(head))
    pf = make_file("truncated")
    pf.allocate_many(1)
    pf.write_page(0, page)
    codec = PackedDeltaVPageCodec(PAGE_SIZE, {})
    codec.stream_length = PAGE_SIZE
    codec.first_page = 0
    with pytest.raises(PageCorruptError):
        codec.read(pointer, FileReader(pf))


def test_bad_version_raises():
    codec, pf, pointers = build_stream({0: entries_for(0)})
    page = bytearray(pf.read_page(0))
    page[pointers[0]] = PACKED_VERSION + 1
    pf.write_page(0, bytes(page))
    with pytest.raises(PageCorruptError):
        codec.read(pointers[0], FileReader(pf))


def _record(body):
    return body + struct.pack("<I", zlib.crc32(body))


def hand_stream(records):
    """Install hand-crafted records into a codec + file; returns
    (codec, file, [pointer per record])."""
    stream = b""
    pointers = []
    for body in records:
        pointers.append(len(stream))
        stream += _record(body)
    pf = make_file("hand")
    pages = (len(stream) + PAGE_SIZE - 1) // PAGE_SIZE
    pf.allocate_many(pages)
    for i in range(pages):
        pf.write_page(i, stream[i * PAGE_SIZE:(i + 1) * PAGE_SIZE])
    codec = PackedDeltaVPageCodec(PAGE_SIZE, {})
    codec.stream_length = len(stream)
    codec.first_page = 0
    return codec, pf, pointers


def test_unknown_flags_raise():
    body = bytes((PACKED_VERSION, 0x04)) + _encode_varint(0) \
        + _encode_varint(0)
    codec, pf, pointers = hand_stream([body])
    with pytest.raises(PageCorruptError):
        codec.read(pointers[0], FileReader(pf))


def test_reference_chain_deeper_than_one_raises():
    f32 = struct.Struct("<f")
    self_body = (bytes((PACKED_VERSION, 0)) + _encode_varint(0)
                 + _encode_varint(1) + f32.pack(0.5) + _encode_varint(1))
    rec_a = _record(self_body)
    # B: delta vs A with zero diffs (legal, depth 1).
    delta_b = (bytes((PACKED_VERSION, 1)) + _encode_varint(0)
               + _encode_varint(1) + _encode_varint(0)
               + _encode_varint(0))
    rec_b = _record(delta_b)
    # C: delta vs B — a chain of depth 2 the decoder must refuse.
    delta_c = (bytes((PACKED_VERSION, 1)) + _encode_varint(0)
               + _encode_varint(1) + _encode_varint(len(rec_a))
               + _encode_varint(0))
    codec, pf, pointers = hand_stream([self_body, delta_b, delta_c])
    reader = FileReader(pf)
    assert codec.read(pointers[1], reader) == (0, [(0.5, 1)])
    with pytest.raises(PageCorruptError):
        codec.read(pointers[2], reader)
    del rec_b


def test_implausible_entry_count_raises():
    body = (bytes((PACKED_VERSION, 0)) + _encode_varint(0)
            + _encode_varint(PAGE_SIZE + 1))
    codec, pf, pointers = hand_stream([body])
    with pytest.raises(PageCorruptError):
        codec.read(pointers[0], FileReader(pf))


def test_overlong_varint_raises():
    body = bytes((PACKED_VERSION, 0)) + b"\x80\x80\x80\x80\x80\x01"
    codec, pf, pointers = hand_stream([body])
    with pytest.raises(PageCorruptError):
        codec.read(pointers[0], FileReader(pf))


def test_decoded_out_of_range_entry_raises():
    # CRC-valid record whose DoV is > 1: the semantic check still fires.
    f32 = struct.Struct("<f")
    body = (bytes((PACKED_VERSION, 0)) + _encode_varint(3)
            + _encode_varint(1) + f32.pack(7.5) + _encode_varint(1))
    codec, pf, pointers = hand_stream([body])
    with pytest.raises(PageCorruptError):
        codec.read(pointers[0], FileReader(pf))


def test_raw_codec_stats_are_identity():
    stats = RawVPageCodec().compression_stats()
    assert stats["ratio"] == 1.0
    assert stats["records"] == 0
