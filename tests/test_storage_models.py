"""Model-based property tests for the storage layer.

Each test drives the real component with a random operation sequence
while maintaining a trivially-correct reference model (a dict), then
checks they agree.  This catches state-machine bugs that single-shot
unit tests miss (eviction bookkeeping, pin interactions, allocation
ordering).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskModel, IOStats
from repro.storage.pagedfile import PagedFile


def make_file(page_size=64):
    return PagedFile("model", page_size=page_size, disk=DiskModel(),
                     stats=IOStats())


# Operation encodings for the paged-file machine:
#   ("alloc",), ("write", slot, payload_byte), ("read", slot)
paged_ops = st.lists(
    st.one_of(
        st.tuples(st.just("alloc")),
        st.tuples(st.just("write"), st.integers(0, 30),
                  st.integers(0, 255)),
        st.tuples(st.just("read"), st.integers(0, 30)),
    ),
    min_size=1, max_size=60)


@given(paged_ops)
@settings(max_examples=60, deadline=None)
def test_paged_file_matches_dict_model(ops):
    pfile = make_file()
    model = {}
    for op in ops:
        if op[0] == "alloc":
            pid = pfile.allocate()
            model[pid] = bytes(pfile.page_size)
        elif op[0] == "write":
            _kind, slot, value = op
            if not model:
                continue
            pid = sorted(model)[slot % len(model)]
            payload = bytes([value]) * 8
            pfile.write_page(pid, payload)
            model[pid] = payload + bytes(pfile.page_size - len(payload))
        else:
            _kind, slot = op
            if not model:
                continue
            pid = sorted(model)[slot % len(model)]
            assert pfile.read_page(pid) == model[pid]
    assert pfile.num_pages == len(model)


# Buffer-pool machine: ("get", slot), ("put", slot, value), ("flush",)
pool_ops = st.lists(
    st.one_of(
        st.tuples(st.just("get"), st.integers(0, 9)),
        st.tuples(st.just("put"), st.integers(0, 9),
                  st.integers(0, 255)),
        st.tuples(st.just("flush")),
    ),
    min_size=1, max_size=80)


@given(pool_ops, st.integers(min_value=1, max_value=6))
@settings(max_examples=60, deadline=None)
def test_buffer_pool_matches_dict_model(ops, capacity):
    pfile = make_file()
    for i in range(10):
        pfile.write_page(pfile.allocate(), bytes([i]) * 8)
    pool = BufferPool(capacity)
    # The model: authoritative contents per page (what a reader must
    # observe through the pool, regardless of caching).
    model = {i: pfile.read_page(i) for i in range(10)}
    for op in ops:
        if op[0] == "get":
            _kind, slot = op
            assert pool.get(pfile, slot) == model[slot]
        elif op[0] == "put":
            _kind, slot, value = op
            payload = bytes([value]) * 8
            full = payload + bytes(pfile.page_size - len(payload))
            pool.put(pfile, slot, full)
            model[slot] = full
        else:
            pool.flush()
            for pid, content in model.items():
                # After a flush every page's durable copy matches.
                if pool.contains(pfile, pid):
                    assert pfile.read_page(pid) == content
    # Final coherence: flush everything and compare durable state.
    pool.flush()
    for pid, content in model.items():
        observed = pool.get(pfile, pid)
        assert observed == content
    assert pool.resident_pages <= capacity


@given(st.lists(st.integers(0, 9), min_size=1, max_size=50),
       st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_buffer_pool_capacity_never_exceeded(accesses, capacity):
    pfile = make_file()
    for i in range(10):
        pfile.write_page(pfile.allocate(), bytes([i]))
    pool = BufferPool(capacity)
    for page_id in accesses:
        pool.get(pfile, page_id)
        assert pool.resident_pages <= capacity
    # Hits + misses account for every access.
    assert pool.hits + pool.misses == len(accesses)


@given(st.lists(st.integers(0, 5), min_size=2, max_size=40))
@settings(max_examples=40, deadline=None)
def test_buffer_pool_lru_recency_model(accesses):
    """The resident set always equals the most recent distinct pages."""
    pfile = make_file()
    for i in range(6):
        pfile.write_page(pfile.allocate(), bytes([i]))
    capacity = 3
    pool = BufferPool(capacity)
    recency = []
    for page_id in accesses:
        pool.get(pfile, page_id)
        if page_id in recency:
            recency.remove(page_id)
        recency.append(page_id)
        expected = set(recency[-capacity:])
        resident = {pid for pid in range(6) if pool.contains(pfile, pid)}
        assert resident == expected
