"""Figure-3 traversal semantics over the shared small environment."""

import pytest

from repro.baselines.naive import NaiveCellList
from repro.core.search import HDoVSearch
from repro.errors import HDoVError


def interesting_cells(env, limit=6):
    """Cells with the largest visible sets (street viewpoints)."""
    cells = sorted(env.grid.cell_ids(),
                   key=lambda c: -env.visibility.cell(c).num_visible)
    return cells[:limit]


@pytest.fixture(scope="module")
def naive(small_env):
    return NaiveCellList(small_env)


def test_eta_zero_equals_naive_object_set(env, naive):
    """The degeneration of Figure 7: eta = 0 retrieves exactly the
    naive (cell, list-of-objects) answer."""
    search = HDoVSearch(env, "indexed-vertical")
    for cell_id in interesting_cells(env):
        hdov = search.query_cell(cell_id, eta=0.0)
        base = naive.query_cell(cell_id)
        assert hdov.object_ids() == base.object_ids()
        assert not hdov.internals


def test_eta_zero_objects_match_visibility_table(env):
    search = HDoVSearch(env, "indexed-vertical")
    for cell_id in interesting_cells(env):
        result = search.query_cell(cell_id, eta=0.0)
        assert result.object_ids() == \
            env.visibility.cell(cell_id).visible_ids()


def test_all_schemes_agree(env):
    searches = {name: HDoVSearch(env, name) for name in env.schemes}
    for cell_id in interesting_cells(env, limit=4):
        results = {}
        for name, search in searches.items():
            search.scheme.current_cell = None
            results[name] = search.query_cell(cell_id, eta=0.002)
        reference = results["indexed-vertical"]
        for name, result in results.items():
            assert result.object_ids() == reference.object_ids(), name
            assert ([i.node_offset for i in result.internals]
                    == [i.node_offset for i in reference.internals]), name


def test_covered_objects_superset_of_visible(env):
    """Raising eta never loses coverage: every visible object is either
    retrieved directly or covered by an internal LoD."""
    search = HDoVSearch(env, "indexed-vertical")
    for cell_id in interesting_cells(env):
        visible = set(env.visibility.cell(cell_id).visible_ids())
        for eta in (0.0, 0.001, 0.01, 0.05):
            result = search.query_cell(cell_id, eta)
            covered = set(result.covered_object_ids())
            assert visible <= covered


def test_internal_terminations_only_above_zero_eta(env):
    search = HDoVSearch(env, "indexed-vertical")
    for cell_id in interesting_cells(env):
        assert not search.query_cell(cell_id, 0.0).internals


def test_internal_dov_below_eta(env):
    search = HDoVSearch(env, "indexed-vertical")
    eta = 0.05
    for cell_id in interesting_cells(env):
        result = search.query_cell(cell_id, eta)
        for internal in result.internals:
            assert 0.0 < internal.dov <= eta
            assert 0.0 < internal.fraction <= 1.0


def test_object_fractions_follow_eq6(env):
    from repro.constants import MAXDOV
    search = HDoVSearch(env, "indexed-vertical")
    cell_id = interesting_cells(env)[0]
    result = search.query_cell(cell_id, 0.0)
    truth = env.visibility.cell(cell_id)
    for obj in result.objects:
        expected = min(truth.get(obj.object_id) / MAXDOV, 1.0)
        assert obj.fraction == pytest.approx(expected)


def test_direct_objects_decrease_with_eta(env):
    """Larger eta terminates more branches, so fewer direct objects."""
    search = HDoVSearch(env, "indexed-vertical")
    for cell_id in interesting_cells(env):
        counts = [len(search.query_cell(cell_id, eta).objects)
                  for eta in (0.0, 0.004, 0.02, 0.1)]
        assert counts == sorted(counts, reverse=True)


def test_light_io_decreases_with_eta(env):
    search = HDoVSearch(env, "indexed-vertical")
    cells = interesting_cells(env)

    def light_ios(eta):
        env.reset_stats()
        for cell_id in cells:
            search.scheme.current_cell = None
            search.query_cell(cell_id, eta)
        return env.light_stats.total_ios

    baseline = light_ios(0.0)
    coarse = light_ios(0.05)
    assert coarse <= baseline


def test_fetch_models_false_skips_heavy_io(env):
    search = HDoVSearch(env, "indexed-vertical", fetch_models=False)
    env.reset_stats()
    search.query_cell(interesting_cells(env)[0], 0.0)
    assert env.heavy_stats.total_ios == 0
    assert env.light_stats.total_ios > 0


def test_negative_eta_rejected(env):
    search = HDoVSearch(env, "indexed-vertical")
    with pytest.raises(HDoVError):
        search.query_cell(0, -0.1)


def test_query_point_resolves_cell(env):
    search = HDoVSearch(env, "indexed-vertical")
    point = env.grid.cell_center(interesting_cells(env)[0])
    result = search.query_point(point, 0.0)
    assert result.cell_id == env.grid.cell_of_point(point)


def test_flip_flag(env):
    search = HDoVSearch(env, "indexed-vertical")
    cells = interesting_cells(env)
    search.scheme.current_cell = None
    first = search.query_cell(cells[0], 0.0)
    second = search.query_cell(cells[0], 0.0)
    third = search.query_cell(cells[1], 0.0)
    assert first.flipped
    assert not second.flipped
    assert third.flipped


def test_nvo_heuristic_off_terminates_at_least_as_much(env):
    with_h = HDoVSearch(env, "indexed-vertical")
    without_h = HDoVSearch(env, "indexed-vertical", use_nvo_heuristic=False)
    for cell_id in interesting_cells(env):
        eta = 0.02
        with_count = len(with_h.query_cell(cell_id, eta).internals)
        without_count = len(without_h.query_cell(cell_id, eta).internals)
        assert without_count >= with_count


def test_result_totals_consistent(env):
    search = HDoVSearch(env, "indexed-vertical")
    result = search.query_cell(interesting_cells(env)[0], 0.01)
    assert result.total_polygons == (
        sum(o.polygons for o in result.objects)
        + sum(i.polygons for i in result.internals))
    assert result.num_results == len(result.objects) + len(result.internals)


def test_fully_hidden_cell_reports_zero_vpages_read(env):
    """Regression: a fully-hidden cell (the root has no V-page) used to
    report one phantom V-page read — the counter was bumped before the
    absence was discovered.  Only actual reads may count."""
    search = HDoVSearch(env, "indexed-vertical")
    cell_id = interesting_cells(env)[0]
    search.query_cell(cell_id, 0.0)
    # Simulate a fully-hidden cell: the flipped-in segment has no
    # visible nodes at all, so even the root's V-page lookup misses.
    search.scheme._current_pairs = {}
    try:
        result = search.query_cell(cell_id, 0.0)
    finally:
        # Force the next flip to reload the real segment (the scheme is
        # shared by the session-scoped environment).
        search.scheme.current_cell = None
    assert result.vpages_read == 0
    assert result.num_results == 0
    assert result.nodes_read == 1          # the root node itself was read


def test_decision_counters_partition_entries(env):
    """Every V-entry of every visited node is exactly one of: pruned,
    retrieved (leaf), terminated, or recursed."""
    search = HDoVSearch(env, "indexed-vertical")
    for cell_id in interesting_cells(env, limit=3):
        result = search.query_cell(cell_id, 0.002)
        assert result.recursed == result.nodes_read - 1  # root not recursed
        assert result.terminated == len(result.internals)
        assert result.pruned >= 0
        total_entries = (result.pruned + len(result.objects)
                         + result.terminated + result.recursed)
        assert total_entries > 0
