"""End-to-end layout runner tests: the four-variant replay over the
small scale must hold every structural guarantee the benchmark gates
on, byte-identically across runs — plus the packed build's
search-equivalence and corruption-degradation contracts over the
shared small environment."""

import json
import os

import pytest

from repro.cli import main
from repro.core.search import HDoVSearch
from repro.errors import ExperimentError
from repro.obs.layout import run_layout

FRAMES = 40


@pytest.fixture(scope="module")
def report():
    return run_layout(scale="small", frames=FRAMES)


def test_layout_all_checks_pass(report):
    assert report["ok"] is True
    for name in ("vertical", "indexed-vertical"):
        checks = report["schemes"][name]["checks"]
        assert all(checks.values()), (name, checks)


def test_layout_digests_agree_across_variants(report):
    for scheme_report in report["schemes"].values():
        digests = {scheme_report[v]["selection_digest"]
                   for v in ("baseline", "rewritten", "compressed",
                             "compressed_rewritten")}
        assert len(digests) == 1


def test_layout_improvements_are_strict(report):
    for scheme_report in report["schemes"].values():
        base = scheme_report["baseline"]
        rewritten = scheme_report["rewritten"]
        compressed = scheme_report["compressed"]
        assert rewritten["light"]["back_seeks"] \
            < base["light"]["back_seeks"]
        assert compressed["light"]["bytes_read"] \
            < base["light"]["bytes_read"]
        # Models are heavy I/O and a pure function of the selections:
        # exactly equal bytes proves the selections never changed.
        assert compressed["heavy"]["bytes_read"] \
            == base["heavy"]["bytes_read"]
        compression = compressed["compression"]
        assert compression["ratio"] < 1.0
        assert compression["delta_records"] > 0


def test_layout_report_is_byte_deterministic(report):
    again = run_layout(scale="small", frames=FRAMES)
    assert json.dumps(report, sort_keys=True) \
        == json.dumps(again, sort_keys=True)


def test_layout_rejects_unsupported_scheme():
    with pytest.raises(ExperimentError):
        run_layout(scale="small", frames=4, schemes=("horizontal",))


# -- CLI ---------------------------------------------------------------------


def test_cli_layout_writes_report(tmp_path, capsys):
    out = os.path.join(tmp_path, "layout.json")
    code = main(["layout", "--frames", str(FRAMES), "--output", out])
    assert code == 0
    with open(out) as fh:
        written = json.load(fh)
    assert written["ok"] is True
    assert "back_seeks before/after" in capsys.readouterr().out


def test_cli_layout_bad_scheme_is_usage_error(capsys):
    code = main(["layout", "--frames", "4", "--schemes", "horizontal"])
    assert code == 2
    assert "layout" in capsys.readouterr().err


# -- packed environment: search equivalence and corruption -------------------


def interesting_cells(env, limit=4):
    cells = sorted(env.grid.cell_ids(),
                   key=lambda c: -env.visibility.cell(c).num_visible)
    return cells[:limit]


@pytest.mark.parametrize("scheme_name", ["vertical", "indexed-vertical"])
def test_packed_env_selects_identically_to_raw(env, env_packed,
                                               scheme_name):
    raw_search = HDoVSearch(env, scheme_name)
    packed_search = HDoVSearch(env_packed, scheme_name)
    for eta in (0.0, 0.002):
        for cell_id in interesting_cells(env):
            env.scheme(scheme_name).current_cell = None
            env_packed.scheme(scheme_name).current_cell = None
            raw = raw_search.query_cell(cell_id, eta)
            packed = packed_search.query_cell(cell_id, eta)
            assert packed.object_ids() == raw.object_ids()
            assert [(i.node_offset, i.fraction) for i in packed.internals] \
                == [(i.node_offset, i.fraction) for i in raw.internals]


def test_packed_env_reads_fewer_vpage_bytes(env, env_packed):
    name = "vertical"
    for e in (env, env_packed):
        e.scheme(name).reset_runtime_state()
        e.reset_stats()
    cells = interesting_cells(env, limit=6)
    for cell_id in cells:
        HDoVSearch(env, name).query_cell(cell_id, 0.001)
        HDoVSearch(env_packed, name).query_cell(cell_id, 0.001)
    assert env_packed.light_stats.bytes_read < env.light_stats.bytes_read
    assert env_packed.heavy_stats.bytes_read == env.heavy_stats.bytes_read


def test_corrupt_compressed_page_degrades_never_garbage(env_packed):
    """Flip bits across the packed stream's first page: every affected
    query must either degrade (PageCorruptError absorbed by the search
    ladder) or answer identically — silent wrong answers are the one
    forbidden outcome."""
    scheme = env_packed.scheme("vertical")
    search = HDoVSearch(env_packed, "vertical")
    cells = interesting_cells(env_packed, limit=4)
    clean = {}
    for cell_id in cells:
        scheme.current_cell = None
        result = search.query_cell(cell_id, 0.002)
        clean[cell_id] = (result.object_ids(),
                          [(i.node_offset, i.fraction)
                           for i in result.internals])
    original = bytes(scheme.vpage_file.read_page(0))
    page = bytearray(original)
    for i in range(0, len(page), 7):
        page[i] ^= 0x55
    try:
        scheme.vpage_file.write_page(0, bytes(page))
        scheme.reset_runtime_state()
        degraded_somewhere = False
        for cell_id in cells:
            scheme.current_cell = None
            result = search.query_cell(cell_id, 0.002)   # must not raise
            if result.degraded:
                degraded_somewhere = True
            else:
                got = (result.object_ids(),
                       [(i.node_offset, i.fraction)
                        for i in result.internals])
                assert got == clean[cell_id]
        assert degraded_somewhere
    finally:
        scheme.vpage_file.write_page(0, original)
        scheme.reset_runtime_state()
