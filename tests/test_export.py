"""CSV export tests."""

import csv

import pytest

from repro.errors import ExperimentError
from repro.experiments.export import (export_figure7, export_figure8,
                                      export_figure9, export_frame_trace,
                                      export_table3, write_csv)
from repro.experiments.figure7_search_time import Figure7Result
from repro.experiments.figure8_io import Figure8Result
from repro.experiments.figure9_scalability import Figure9Result
from repro.experiments.table3_frametime import Table3Result, Table3Row


def read_back(path):
    with open(path, newline="", encoding="utf-8") as handle:
        return list(csv.reader(handle))


def test_write_csv_roundtrip(tmp_path):
    path = str(tmp_path / "data.csv")
    count = write_csv(path, ["a", "b"], [[1, 2.5], ["x", "y"]])
    assert count == 2
    rows = read_back(path)
    assert rows[0] == ["a", "b"]
    assert rows[1] == ["1", "2.5"]


def test_write_csv_missing_directory(tmp_path):
    with pytest.raises(ExperimentError):
        write_csv(str(tmp_path / "nope" / "data.csv"), ["a"], [])


def test_export_figure7(tmp_path):
    result = Figure7Result(
        etas=[0.0, 0.001],
        search_ms={"horizontal": [10.0, 9.0], "vertical": [5.0, 4.0],
                   "indexed-vertical": [5.0, 4.0]},
        naive_ms=6.0, num_queries=3)
    path = str(tmp_path / "fig7.csv")
    assert export_figure7(result, path) == 2
    rows = read_back(path)
    assert rows[0][0] == "eta"
    assert "naive" in rows[0]
    assert rows[1][0] == "0.0"


def test_export_figure8(tmp_path):
    result = Figure8Result(etas=[0.0], total_ios=[10.0], light_ios=[4.0],
                           heavy_ios=[6.0], naive_total=8.0,
                           naive_light=2.0, num_queries=1)
    path = str(tmp_path / "fig8.csv")
    assert export_figure8(result, path) == 1
    rows = read_back(path)
    assert rows[1] == ["0.0", "10.0", "4.0", "6.0", "8.0", "2.0"]


def test_export_figure9(tmp_path):
    result = Figure9Result(names=["a"], nominal_mb=[400],
                           num_objects=[10], num_nodes=[3],
                           search_ms=[1.5], ios=[2.0], eta=0.001,
                           num_queries=5)
    path = str(tmp_path / "fig9.csv")
    assert export_figure9(result, path) == 1
    assert read_back(path)[1][0] == "400"


def test_export_table3(tmp_path):
    result = Table3Result(rows=[
        Table3Row("0", 10.0, 2.0, 1.0),
        Table3Row("REVIEW(400m)", 50.0, 9.0, 0.9),
    ], num_frames=100)
    path = str(tmp_path / "table3.csv")
    assert export_table3(result, path) == 2
    rows = read_back(path)
    assert rows[2][0] == "REVIEW(400m)"


def test_export_frame_trace(env, tmp_path):
    from repro.walkthrough.session import make_session
    from repro.walkthrough.visual import VisualSystem
    session = make_session(1, env.scene.bounds(), num_frames=10,
                           street_pitch=120.0)
    report = VisualSystem(env, eta=0.001,
                          evaluate_fidelity=False).run(session)
    path = str(tmp_path / "trace.csv")
    assert export_frame_trace(report, path) == 10
    rows = read_back(path)
    assert rows[0][0] == "frame"
    assert len(rows) == 11
