"""Serializer round-trip tests, including property-based ones."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.constants import PAGE_SIZE
from repro.errors import SerializationError
from repro.geometry.aabb import AABB
from repro.storage import serializer as ser


def box(lo, hi):
    return AABB(np.asarray(lo, float), np.asarray(hi, float))


def test_mbr_roundtrip():
    original = box((0.5, -2.0, 3.0), (1.5, 0.0, 9.0))
    decoded = ser.decode_mbr(ser.encode_mbr(original))
    assert np.allclose(decoded.lo, original.lo, atol=1e-6)
    assert np.allclose(decoded.hi, original.hi, atol=1e-6)


def test_node_roundtrip():
    entries = [(box((0, 0, 0), (1, 1, 1)), 7, 99),
               (box((2, 2, 2), (3, 3, 3)), 8, ser.NIL)]
    data = ser.encode_node(1, 2, 42, entries, PAGE_SIZE)
    kind, level, offset, decoded = ser.decode_node(data)
    assert (kind, level, offset) == (1, 2, 42)
    assert len(decoded) == 2
    assert decoded[0][1] == 7
    assert decoded[0][2] == 99
    assert decoded[1][2] == ser.NIL
    assert np.allclose(decoded[1][0].lo, (2, 2, 2), atol=1e-6)


def test_node_overflow_rejected():
    entries = [(box((0, 0, 0), (1, 1, 1)), 0, 0)] * 200
    with pytest.raises(SerializationError):
        ser.encode_node(0, 0, 0, entries, 256)


def test_node_truncated_rejected():
    with pytest.raises(SerializationError):
        ser.decode_node(b"\x00")


def test_vpage_roundtrip():
    ventries = [(0.25, 3), (0.0, 0), (1.0, 17)]
    data = ser.encode_vpage(5, ventries, PAGE_SIZE)
    offset, decoded = ser.decode_vpage(data)
    assert offset == 5
    assert decoded[1] == (0.0, 0)
    assert decoded[2][1] == 17
    assert decoded[0][0] == pytest.approx(0.25)


def test_vpage_rejects_bad_dov():
    with pytest.raises(SerializationError):
        ser.encode_vpage(0, [(1.5, 1)], PAGE_SIZE)
    with pytest.raises(SerializationError):
        ser.encode_vpage(0, [(-0.1, 1)], PAGE_SIZE)


def test_index_pairs_roundtrip():
    pairs = [(0, 10), (5, 20), (9, ser.NIL)]
    data = ser.encode_index_pairs(pairs)
    assert ser.decode_index_pairs(data, 3) == pairs
    with pytest.raises(SerializationError):
        ser.decode_index_pairs(data, 10)


def test_pointer_array_roundtrip():
    pointers = [1, ser.NIL, 3, 0]
    data = ser.encode_pointer_array(pointers)
    assert ser.decode_pointer_array(data, 4) == pointers
    with pytest.raises(SerializationError):
        ser.decode_pointer_array(data, 8)


finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


@given(st.lists(st.tuples(
    st.tuples(finite, finite, finite),
    st.tuples(finite, finite, finite),
    st.integers(0, 2 ** 32 - 1),
    st.integers(0, 2 ** 32 - 1)), min_size=0, max_size=20))
def test_node_roundtrip_property(raw_entries):
    entries = []
    for a, b, child, ptr in raw_entries:
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        entries.append((AABB(lo, hi), child, ptr))
    data = ser.encode_node(0, 3, 11, entries, PAGE_SIZE)
    _kind, _level, _offset, decoded = ser.decode_node(data)
    assert len(decoded) == len(entries)
    for (mbr, child, ptr), (dmbr, dchild, dptr) in zip(entries, decoded):
        assert dchild == child
        assert dptr == ptr
        assert np.allclose(dmbr.lo, mbr.lo, rtol=1e-5, atol=1e-2)


@given(st.lists(st.tuples(st.floats(0.0, 1.0), st.integers(0, 10 ** 6)),
                min_size=0, max_size=50))
def test_vpage_roundtrip_property(ventries):
    data = ser.encode_vpage(1, ventries, PAGE_SIZE)
    _offset, decoded = ser.decode_vpage(data)
    assert len(decoded) == len(ventries)
    for (dov, nvo), (ddov, dnvo) in zip(ventries, decoded):
        assert dnvo == nvo
        assert ddov == pytest.approx(dov, abs=1e-6)
