"""CLI and visibility persistence tests."""

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.errors import VisibilityError
from repro.visibility.dov import CellVisibility, VisibilityTable
from repro.visibility.persist import load_visibility, save_visibility


# -- visibility persistence ----------------------------------------------------

def test_roundtrip(tmp_path):
    table = VisibilityTable(5)
    table.put(CellVisibility(0, dov={3: 0.5, 7: 0.001}))
    table.put(CellVisibility(4, dov={1: 1.0}))
    path = str(tmp_path / "vis.npz")
    save_visibility(table, path)
    loaded = load_visibility(path)
    assert loaded.num_cells == 5
    assert loaded.cell(0).dov == pytest.approx(table.cell(0).dov)
    assert loaded.cell(4).dov == pytest.approx(table.cell(4).dov)
    assert loaded.cell(2).num_visible == 0


def test_roundtrip_empty_table(tmp_path):
    table = VisibilityTable(3)
    path = str(tmp_path / "empty.npz")
    save_visibility(table, path)
    loaded = load_visibility(path)
    assert loaded.num_cells == 3
    assert all(c.num_visible == 0 for c in loaded.cells())


def test_roundtrip_real_table(env, tmp_path):
    path = str(tmp_path / "real.npz")
    save_visibility(env.visibility, path)
    loaded = load_visibility(path)
    assert loaded.num_cells == env.visibility.num_cells
    for cid in range(loaded.num_cells):
        assert loaded.cell(cid).dov == pytest.approx(
            env.visibility.cell(cid).dov)


def test_bad_version_rejected(tmp_path):
    path = str(tmp_path / "bad.npz")
    np.savez(path, version=np.int64(99), num_cells=np.int64(1),
             cell_ids=np.array([], dtype=np.int64),
             object_ids=np.array([], dtype=np.int64),
             dovs=np.array([], dtype=np.float64))
    with pytest.raises(VisibilityError):
        load_visibility(path)


def test_loaded_table_builds_environment(small_scene, small_grid, env,
                                         tmp_path):
    """A persisted table can seed a new environment build."""
    from repro.core.hdov_tree import HDoVConfig, build_environment
    path = str(tmp_path / "seed.npz")
    save_visibility(env.visibility, path)
    table = load_visibility(path)
    rebuilt = build_environment(
        small_scene, small_grid,
        HDoVConfig(schemes=("indexed-vertical",)), visibility=table)
    from repro.core.search import HDoVSearch
    search = HDoVSearch(rebuilt)
    busiest = max(env.grid.cell_ids(),
                  key=lambda c: env.visibility.cell(c).num_visible)
    assert search.query_cell(busiest, 0.0).object_ids() == \
        env.visibility.cell(busiest).visible_ids()


# -- CLI ------------------------------------------------------------------

def test_parser_rejects_missing_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "nonsense"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_small_experiment(capsys):
    assert main(["run", "ablation-flip", "--scale", "small"]) == 0
    out = capsys.readouterr().out
    assert "vertical flip I/Os" in out
    assert "completed in" in out


def test_run_table2_small(capsys):
    assert main(["run", "table2", "--scale", "small"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
