"""CLI and visibility persistence tests."""

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.errors import VisibilityError
from repro.visibility.dov import CellVisibility, VisibilityTable
from repro.visibility.persist import load_visibility, save_visibility


# -- visibility persistence ----------------------------------------------------

def test_roundtrip(tmp_path):
    table = VisibilityTable(5)
    table.put(CellVisibility(0, dov={3: 0.5, 7: 0.001}))
    table.put(CellVisibility(4, dov={1: 1.0}))
    path = str(tmp_path / "vis.npz")
    save_visibility(table, path)
    loaded = load_visibility(path)
    assert loaded.num_cells == 5
    assert loaded.cell(0).dov == pytest.approx(table.cell(0).dov)
    assert loaded.cell(4).dov == pytest.approx(table.cell(4).dov)
    assert loaded.cell(2).num_visible == 0


def test_roundtrip_empty_table(tmp_path):
    table = VisibilityTable(3)
    path = str(tmp_path / "empty.npz")
    save_visibility(table, path)
    loaded = load_visibility(path)
    assert loaded.num_cells == 3
    assert all(c.num_visible == 0 for c in loaded.cells())


def test_roundtrip_real_table(env, tmp_path):
    path = str(tmp_path / "real.npz")
    save_visibility(env.visibility, path)
    loaded = load_visibility(path)
    assert loaded.num_cells == env.visibility.num_cells
    for cid in range(loaded.num_cells):
        assert loaded.cell(cid).dov == pytest.approx(
            env.visibility.cell(cid).dov)


def _savez_visibility(path, **overrides):
    """A well-formed current-version archive, with fields overridable."""
    fields = dict(magic=np.asarray("repro-visibility"),
                  version=np.int64(2), num_cells=np.int64(1),
                  cell_ids=np.array([], dtype=np.int64),
                  object_ids=np.array([], dtype=np.int64),
                  dovs=np.array([], dtype=np.float64))
    fields.update(overrides)
    np.savez(path, **{k: v for k, v in fields.items() if v is not None})


def test_bad_version_rejected(tmp_path):
    # Magic is present and correct, so this exercises the *version*
    # check, not the missing-keys path.
    path = str(tmp_path / "bad.npz")
    _savez_visibility(path, version=np.int64(99))
    with pytest.raises(VisibilityError, match="version 99"):
        load_visibility(path)


def test_missing_magic_rejected(tmp_path):
    path = str(tmp_path / "nomagic.npz")
    _savez_visibility(path, magic=None)
    with pytest.raises(VisibilityError, match="nomagic"):
        load_visibility(path)


def test_wrong_magic_rejected(tmp_path):
    path = str(tmp_path / "alien.npz")
    _savez_visibility(path, magic=np.asarray("some-other-format"))
    with pytest.raises(VisibilityError, match="alien"):
        load_visibility(path)


def test_truncated_file_rejected(tmp_path):
    """A partially written archive (crash mid-save) raises a
    VisibilityError naming the path, not a zipfile internal."""
    path = str(tmp_path / "truncated.npz")
    _savez_visibility(path)
    with open(path, "rb") as fh:
        whole = fh.read()
    with open(path, "wb") as fh:
        fh.write(whole[: len(whole) // 3])
    with pytest.raises(VisibilityError, match="truncated"):
        load_visibility(path)


def test_garbage_file_rejected(tmp_path):
    path = str(tmp_path / "garbage.npz")
    with open(path, "wb") as fh:
        fh.write(b"this is not a zip archive at all")
    with pytest.raises(VisibilityError, match="garbage"):
        load_visibility(path)


def test_ragged_arrays_rejected(tmp_path):
    path = str(tmp_path / "ragged.npz")
    _savez_visibility(path, cell_ids=np.array([0, 0], dtype=np.int64),
                      object_ids=np.array([1], dtype=np.int64),
                      dovs=np.array([0.5], dtype=np.float64))
    with pytest.raises(VisibilityError, match="ragged"):
        load_visibility(path)


def test_loaded_table_builds_environment(small_scene, small_grid, env,
                                         tmp_path):
    """A persisted table can seed a new environment build."""
    from repro.core.hdov_tree import HDoVConfig, build_environment
    path = str(tmp_path / "seed.npz")
    save_visibility(env.visibility, path)
    table = load_visibility(path)
    rebuilt = build_environment(
        small_scene, small_grid,
        HDoVConfig(schemes=("indexed-vertical",)), visibility=table)
    from repro.core.search import HDoVSearch
    search = HDoVSearch(rebuilt)
    busiest = max(env.grid.cell_ids(),
                  key=lambda c: env.visibility.cell(c).num_visible)
    assert search.query_cell(busiest, 0.0).object_ids() == \
        env.visibility.cell(busiest).visible_ids()


# -- CLI ------------------------------------------------------------------

def test_parser_rejects_missing_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "nonsense"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_small_experiment(capsys):
    assert main(["run", "ablation-flip", "--scale", "small"]) == 0
    out = capsys.readouterr().out
    assert "vertical flip I/Os" in out
    assert "completed in" in out


def test_run_table2_small(capsys):
    assert main(["run", "table2", "--scale", "small"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
