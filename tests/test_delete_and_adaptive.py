"""R-tree deletion and adaptive-eta control."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WalkthroughError
from repro.geometry.aabb import AABB
from repro.rtree.delete import delete, delete_by_id
from repro.rtree.tree import RTree
from repro.walkthrough.adaptive import AdaptiveVisualSystem, EtaController
from repro.walkthrough.session import make_session


def random_items(n, seed=0):
    rng = np.random.default_rng(seed)
    items = []
    for i in range(n):
        lo = rng.uniform(0, 100, 3)
        items.append((AABB(lo, lo + rng.uniform(0.5, 5, 3)), i))
    return items


def build(items, max_entries=5):
    tree = RTree(max_entries=max_entries)
    for mbr, oid in items:
        tree.insert(mbr, oid)
    return tree


# -- deletion --------------------------------------------------------------

def test_delete_removes_entry():
    items = random_items(50, seed=1)
    tree = build(items)
    mbr, oid = items[13]
    assert delete(tree, mbr, oid)
    assert tree.size == 49
    assert oid not in tree.window_query(mbr)
    tree.check_invariants()


def test_delete_missing_returns_false():
    items = random_items(10, seed=2)
    tree = build(items)
    assert not delete(tree, AABB((500, 500, 500), (501, 501, 501)), 999)
    assert tree.size == 10


def test_delete_all_one_by_one():
    items = random_items(40, seed=3)
    tree = build(items)
    for mbr, oid in items:
        assert delete(tree, mbr, oid)
    assert tree.size == 0
    everything = AABB((-1e6, -1e6, -1e6), (1e6, 1e6, 1e6))
    assert tree.window_query(everything) == []


def test_delete_condense_preserves_remaining():
    """Deleting enough entries to underflow nodes must not lose others."""
    items = random_items(60, seed=4)
    tree = build(items, max_entries=4)
    removed = set()
    for mbr, oid in items[::2]:
        assert delete(tree, mbr, oid)
        removed.add(oid)
    tree.check_invariants()
    everything = AABB((-1e6, -1e6, -1e6), (1e6, 1e6, 1e6))
    remaining = sorted(tree.window_query(everything))
    assert remaining == sorted(oid for _m, oid in items
                               if oid not in removed)


def test_delete_shortens_root():
    items = random_items(30, seed=5)
    tree = build(items, max_entries=4)
    height_before = tree.height
    for mbr, oid in items[:25]:
        delete(tree, mbr, oid)
    tree.check_invariants()
    assert tree.height <= height_before


def test_delete_by_id():
    items = random_items(20, seed=6)
    tree = build(items)
    assert delete_by_id(tree, 7)
    assert not delete_by_id(tree, 7)
    assert tree.size == 19


@given(st.integers(min_value=0, max_value=10 ** 6),
       st.integers(min_value=5, max_value=40))
@settings(max_examples=15, deadline=None)
def test_delete_property(seed, n):
    items = random_items(n, seed=seed)
    tree = build(items, max_entries=4)
    rng = np.random.default_rng(seed + 1)
    order = rng.permutation(n)
    kill = set(order[:n // 2].tolist())
    for index in order[:n // 2]:
        mbr, oid = items[index]
        assert delete(tree, mbr, oid)
    tree.check_invariants()
    everything = AABB((-1e6, -1e6, -1e6), (1e6, 1e6, 1e6))
    assert sorted(tree.window_query(everything)) == sorted(
        oid for i, (_m, oid) in enumerate(items) if i not in kill)


# -- adaptive eta ---------------------------------------------------------

def test_controller_validation():
    with pytest.raises(WalkthroughError):
        EtaController(target_ms=0.0)
    with pytest.raises(WalkthroughError):
        EtaController(target_ms=10.0, eta_min=0.1, eta_max=0.01)
    with pytest.raises(WalkthroughError):
        EtaController(target_ms=10.0, gain=0.0)


def test_controller_raises_eta_when_slow():
    controller = EtaController(target_ms=10.0)
    assert controller.update(0.001, 30.0) > 0.001


def test_controller_lowers_eta_when_fast():
    controller = EtaController(target_ms=10.0)
    assert controller.update(0.001, 2.0) < 0.001


def test_controller_dead_band():
    controller = EtaController(target_ms=10.0, dead_band=0.2)
    assert controller.update(0.001, 11.0) == 0.001


def test_controller_clamps():
    controller = EtaController(target_ms=10.0, eta_min=1e-4, eta_max=0.01)
    eta = 0.01
    for _ in range(20):
        eta = controller.update(eta, 1000.0)
    assert eta == 0.01
    for _ in range(50):
        eta = controller.update(eta, 0.001)
    assert eta == pytest.approx(1e-4)


def test_adaptive_system_tracks_target(env):
    session = make_session(1, env.scene.bounds(), num_frames=40,
                           street_pitch=120.0)
    # A deliberately tight target forces eta upward.
    controller = EtaController(target_ms=5.0, eta_max=0.1)
    system = AdaptiveVisualSystem(env, controller, initial_eta=0.0001)
    report = system.run(session)
    assert len(report.frames) == 40
    assert len(system.eta_trace) == 40
    assert system.eta_trace[-1] > system.eta_trace[0]   # adapted upward


def test_adaptive_system_stays_fine_when_target_loose(env):
    session = make_session(1, env.scene.bounds(), num_frames=30,
                           street_pitch=120.0)
    controller = EtaController(target_ms=10_000.0)
    system = AdaptiveVisualSystem(env, controller, initial_eta=0.001)
    system.run(session)
    assert min(system.eta_trace) < 0.001 or \
        system.eta_trace[-1] <= 0.001
