"""The ``repro profile`` runner: report shape, reconciliation, CLI."""

import json

import pytest

from repro.cli import main
from repro.obs.profile import run_profile


@pytest.fixture(scope="module")
def report():
    return run_profile(scale="small", session=1, frames=20, eta=0.001)


def test_reconciles_per_file_counters_with_iostats(report):
    """The acceptance check: registry per-file I/O counters must agree
    *exactly* with the environment's IOStats totals."""
    assert report["io"]["reconciled"] is True
    light = report["io"]["totals"]["light"]
    heavy = report["io"]["totals"]["heavy"]
    per_file = report["io"]["files"]
    light_files = [n for n in per_file if n != "models"]
    assert sum(per_file[n]["reads"] for n in light_files) == light["reads"]
    assert sum(per_file[n]["seeks"] for n in light_files) == light["seeks"]
    assert per_file["models"]["reads"] == heavy["reads"]
    assert per_file["models"]["bytes_read"] == heavy["bytes_read"]


def test_phases_cover_build_and_walkthrough(report):
    phases = report["phases"]
    for name in ("build", "walkthrough", "frame", "search", "flip_to_cell"):
        assert name in phases, f"missing phase {name!r}"
        assert phases[name]["wall_ms"] >= 0.0
    assert phases["frame"]["count"] == 20
    assert phases["search"]["count"] == report["frames"]["queried"]


def test_search_decision_counters(report):
    search = report["search"]
    assert search["queries"] == report["frames"]["queried"]
    assert search["nodes_read"] >= search["queries"]  # >= one root each
    # Every traversal decision is one of prune/terminate/recurse, and a
    # city viewpoint always prunes something.
    assert search["pruned"] > 0
    assert search["recursed"] + search["terminated"] >= 0


def test_report_is_json_serialisable(report):
    text = json.dumps(report)
    assert "reconciled" in text


def test_cli_profile_writes_report(tmp_path, capsys):
    out = tmp_path / "profile.json"
    code = main(["profile", "--scale", "small", "--frames", "10",
                 "--output", str(out)])
    assert code == 0
    captured = capsys.readouterr()
    assert "reconciled=True" in captured.out
    data = json.loads(out.read_text())
    assert data["io"]["reconciled"] is True
    assert data["profile"]["frames"] == 10


def test_include_spans_embeds_records():
    report = run_profile(scale="small", session=2, frames=6,
                         include_spans=True)
    names = {s["name"] for s in report["spans"]}
    assert {"build", "walkthrough", "frame"} <= names
    frame_spans = [s for s in report["spans"] if s["name"] == "frame"]
    assert len(frame_spans) == 6
    # Frames that queried carry the light/heavy I/O split.
    queried = [s for s in frame_spans if s["attrs"].get("queried")]
    assert queried
    assert all("light_ios" in s["attrs"] and "heavy_ios" in s["attrs"]
               for s in queried)
