"""Scheme prefetch buffer and the motion-predicting prefetcher."""

import numpy as np
import pytest

from repro.errors import SchemeError, WalkthroughError
from repro.obs import names
from repro.obs.metrics import get_registry
from repro.walkthrough.prefetch import CellPrefetcher


def busiest_cells(env, limit=3):
    return sorted(env.grid.cell_ids(),
                  key=lambda c: -env.visibility.cell(c).num_visible)[:limit]


@pytest.mark.parametrize("scheme_name", ["vertical", "indexed-vertical"])
def test_prefetched_flip_is_free(env, scheme_name):
    scheme = env.scheme(scheme_name)
    cells = busiest_cells(env)
    scheme.flip_to_cell(cells[0])
    env.reset_stats()
    scheme.prefetch_cell(cells[1])
    prefetch_reads = env.light_stats.reads
    assert prefetch_reads > 0                  # the work happens now
    env.reset_stats()
    scheme.flip_to_cell(cells[1])
    assert env.light_stats.reads == 0          # ... so the flip is free
    assert scheme.prefetched_flips >= 1


@pytest.mark.parametrize("scheme_name", ["vertical", "indexed-vertical"])
def test_prefetch_preserves_current_cell_reads(env, scheme_name):
    """Prefetching must not corrupt reads against the current cell."""
    scheme = env.scheme(scheme_name)
    cells = busiest_cells(env)
    scheme.flip_to_cell(cells[0])
    expected = {offset: scheme.ventries(offset)
                for offset in env.cell_vpages[cells[0]].pages}
    scheme.prefetch_cell(cells[1])
    for offset, ventries in expected.items():
        assert scheme.ventries(offset) == ventries


def test_prefetch_then_flip_reads_right_data(env):
    scheme = env.scheme("indexed-vertical")
    cells = busiest_cells(env)
    scheme.flip_to_cell(cells[0])
    scheme.prefetch_cell(cells[1])
    scheme.flip_to_cell(cells[1])
    for offset in env.cell_vpages[cells[1]].pages:
        got = scheme.ventries(offset)
        expected = env.cell_vpages[cells[1]].ventries(offset)
        assert got is not None
        for (dov, nvo), (edov, envo) in zip(got, expected):
            assert nvo == envo
            assert dov == pytest.approx(edov, abs=1e-6)


def test_unused_prefetch_is_harmless(env):
    scheme = env.scheme("indexed-vertical")
    cells = busiest_cells(env)
    scheme.flip_to_cell(cells[0])
    scheme.prefetch_cell(cells[1])
    scheme.flip_to_cell(cells[2])       # went elsewhere
    assert scheme.current_cell == cells[2]
    scheme.drop_prefetches()


def test_prefetcher_predicts_along_velocity(env):
    scheme = env.scheme("indexed-vertical")
    prefetcher = CellPrefetcher(env, scheme, trigger_fraction=1.0)
    grid = env.grid
    start = grid.cell_center(busiest_cells(env)[0])
    # First observation: no velocity yet.
    assert prefetcher.observe(start) is None
    # Move straight along +x: prediction lands in the +x neighbor once
    # close enough to the boundary.
    step = np.array([grid.cell_size * 0.6, 0.0, 0.0])
    predicted = prefetcher.observe(start + step)
    if predicted is not None:
        assert predicted != grid.cell_of_point(start + step)
    # Standing still predicts nothing.
    assert prefetcher.observe(start + step) is None


def test_prefetcher_end_to_end_smooths_crossing(env):
    """A predicted crossing pays its flip early; the crossing frame's
    I/O is smaller than without prefetching."""
    scheme = env.scheme("indexed-vertical")
    grid = env.grid
    cells = busiest_cells(env)
    position = grid.cell_center(cells[0])
    # Pick the +x neighbor as the crossing target.
    target = grid.cell_of_point(position
                                + np.array([grid.cell_size, 0.0, 0.0]))
    if target == cells[0]:
        pytest.skip("cell at grid edge")

    # Without prefetch: the crossing flip pays reads.
    scheme.current_cell = None
    scheme.flip_to_cell(cells[0])
    env.reset_stats()
    scheme.flip_to_cell(target)
    cold_reads = env.light_stats.reads

    # With prefetch: warmed beforehand, crossing free.
    scheme.flip_to_cell(cells[0])
    prefetcher = CellPrefetcher(env, scheme, trigger_fraction=1.0)
    prefetcher.observe(position)
    prefetcher.observe(position + np.array([grid.cell_size * 0.45, 0, 0]))
    env.reset_stats()
    scheme.flip_to_cell(target)
    warm_reads = env.light_stats.reads
    assert warm_reads <= cold_reads


def test_prefetch_cell_reports_whether_it_did_work(env):
    scheme = env.scheme("indexed-vertical")
    scheme.drop_prefetches()
    cells = busiest_cells(env)
    scheme.flip_to_cell(cells[0])
    assert scheme.prefetch_cell(cells[0]) is False   # already current
    assert scheme.prefetch_cell(cells[1]) is True    # real work
    assert scheme.prefetch_cell(cells[1]) is False   # already warm
    scheme.drop_prefetches()


def test_observe_counts_only_effective_prefetches(env):
    """Regression: ``CellPrefetcher.observe`` bumped ``prefetches`` even
    when ``prefetch_cell`` no-opped (target already warm), so the
    prefetcher's counter disagreed with scheme_prefetches_total."""
    scheme = env.scheme("indexed-vertical")
    scheme.drop_prefetches()
    grid = env.grid
    start = grid.cell_center(busiest_cells(env)[0])
    step = np.array([grid.cell_size * 0.05, 0.0, 0.0])
    prefetcher = CellPrefetcher(env, scheme, trigger_fraction=1.0)
    metric_before = get_registry().value(names.SCHEME_PREFETCHES,
                                         scheme=scheme.name)
    # Creep toward the +x boundary: every observation after the first
    # predicts the same neighbor, but only the first prefetch is work.
    predictions = [prefetcher.observe(start + i * step) for i in range(5)]
    issued = get_registry().value(names.SCHEME_PREFETCHES,
                                  scheme=scheme.name) - metric_before
    assert prefetcher.prefetches == issued
    if any(p is not None for p in predictions):
        assert issued >= 1
        # The same warm target was predicted repeatedly, yet counted once.
        targets = {p for p in predictions if p is not None}
        assert prefetcher.prefetches == len(targets)
    scheme.drop_prefetches()


@pytest.mark.parametrize("scheme_name", ["vertical", "indexed-vertical"])
def test_warm_buffer_is_capped(env, scheme_name):
    """Regression: the warm buffer grew without bound — a warm entry for
    a cell the viewer never flips to was kept forever."""
    scheme = env.scheme(scheme_name)
    scheme.drop_prefetches()
    cells = busiest_cells(env, limit=4)
    assert len(cells) >= 4
    assert scheme.warm_capacity == 2
    scheme.flip_to_cell(cells[0])
    evicted_before = get_registry().value(names.SCHEME_WARM_EVICTIONS,
                                          scheme=scheme_name)
    assert scheme.prefetch_cell(cells[1]) is True
    assert scheme.prefetch_cell(cells[2]) is True
    assert scheme.prefetch_cell(cells[3]) is True
    assert len(scheme._warm) == 2
    assert cells[1] not in scheme._warm            # oldest went first
    assert cells[2] in scheme._warm
    assert cells[3] in scheme._warm
    evicted = get_registry().value(names.SCHEME_WARM_EVICTIONS,
                                   scheme=scheme_name) - evicted_before
    assert evicted == 1
    scheme.drop_prefetches()


@pytest.mark.parametrize("scheme_name", ["vertical", "indexed-vertical"])
def test_warm_entries_count_toward_resident_bytes(env, scheme_name):
    """Regression: warm-entry bytes were invisible to the scheme's
    resident-memory accounting."""
    scheme = env.scheme(scheme_name)
    scheme.drop_prefetches()
    cells = busiest_cells(env)
    scheme.flip_to_cell(cells[0])
    base = scheme.resident_bytes()
    assert scheme.warm_bytes() == 0
    scheme.prefetch_cell(cells[1])
    assert scheme.warm_bytes() > 0
    assert scheme.resident_bytes() == base + scheme.warm_bytes()
    scheme.drop_prefetches()
    assert scheme.resident_bytes() == base


def test_warm_capacity_validation(env):
    scheme = env.scheme("indexed-vertical")
    with pytest.raises(SchemeError):
        type(scheme)(scheme.vpage_file, scheme.index_file,
                     warm_capacity=0)


def test_prefetcher_validation(env):
    with pytest.raises(WalkthroughError):
        CellPrefetcher(env, env.scheme("indexed-vertical"),
                       trigger_fraction=0.0)


def test_vertical_motion_does_not_change_prediction(env):
    """Regression: speed was computed from the horizontal velocity but
    normalised the full 3D velocity, so vertical motion inflated the
    lookahead step.  The prediction must depend only on the horizontal
    motion: adding a vertical component changes nothing."""
    scheme = env.scheme("indexed-vertical")
    grid = env.grid
    start = grid.cell_center(busiest_cells(env)[0])
    step = np.array([grid.cell_size * 0.3, 0.0, 0.0])
    climb = np.array([0.0, 0.0, grid.cell_size * 5.0])

    planar = CellPrefetcher(env, scheme, trigger_fraction=0.5)
    assert planar.predict_next_cell(start) is None    # no velocity yet
    planar._last_position = start.copy()
    flat_prediction = planar.predict_next_cell(start + step)

    climbing = CellPrefetcher(env, scheme, trigger_fraction=0.5)
    climbing._last_position = start.copy()
    climbing_prediction = climbing.predict_next_cell(start + step + climb)

    assert climbing_prediction == flat_prediction


def test_pure_vertical_motion_predicts_nothing(env):
    scheme = env.scheme("indexed-vertical")
    grid = env.grid
    start = grid.cell_center(busiest_cells(env)[0])
    prefetcher = CellPrefetcher(env, scheme, trigger_fraction=1.0)
    prefetcher._last_position = start.copy()
    up = start + np.array([0.0, 0.0, grid.cell_size * 3.0])
    assert prefetcher.predict_next_cell(up) is None
