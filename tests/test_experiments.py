"""Experiment drivers at SMALL scale: they run, and the paper's
qualitative shapes hold."""

import math

import pytest

from repro.experiments import (run_figure7, run_figure8, run_figure10a,
                               run_figure10b, run_figure11, run_figure12,
                               run_memory_comparison, run_table2, run_table3)
from repro.experiments.ablations import (run_flip_scaling, run_nvo_ablation,
                                         run_split_ablation)
from repro.experiments.config import SMALL, build_experiment_environment
from repro.experiments.figure9_scalability import run_figure9
from repro.scene.datasets import DatasetSpec

ETAS = (0.0, 0.002, 0.01, 0.05)


@pytest.fixture(scope="module", autouse=True)
def _shared_env():
    # Prime the cache once so each driver below reuses it.
    build_experiment_environment(SMALL)
    build_experiment_environment(
        SMALL, schemes=("horizontal", "vertical", "indexed-vertical"))
    yield


def test_table2_ordering():
    result = run_table2(SMALL)
    sizes = {name: b.total_bytes for name, b in result.breakdowns.items()}
    assert sizes["horizontal"] > sizes["vertical"] >= \
        sizes["indexed-vertical"]
    assert result.horizontal_over_indexed > 1.5
    assert "Table 2" in result.format_table()


def test_figure7_shapes():
    result = run_figure7(SMALL, etas=ETAS)
    for name, series in result.search_ms.items():
        # Monotone non-increasing within tolerance.
        assert series[-1] <= series[0] + 1e-9, name
    # Horizontal is the slowest scheme at eta = 0.
    assert result.search_ms["horizontal"][0] >= \
        result.search_ms["indexed-vertical"][0]
    assert result.naive_ms > 0
    assert "Figure 7" in result.format_table()


def test_figure8_shapes():
    result = run_figure8(SMALL, etas=ETAS)
    # eta = 0: heavy I/O identical to naive (same object set).
    assert result.heavy_ios[0] == pytest.approx(
        result.naive_total - result.naive_light, rel=1e-6)
    # Light-weight I/O above naive at eta = 0 (extra internal nodes).
    assert result.light_ios[0] > result.naive_light
    # Light-weight I/O falls with eta.
    assert result.light_ios[-1] < result.light_ios[0]
    # Total I/O falls overall across the sweep.
    assert result.total_ios[-1] < result.total_ios[0]
    assert "Figure 8(a)" in result.format_table()


def test_figure9_near_flat():
    specs = (DatasetSpec("s1", 100, blocks_x=4, blocks_y=4),
             DatasetSpec("s2", 200, blocks_x=6, blocks_y=5))
    result = run_figure9(specs, num_queries=8, dov_resolution=8,
                         cell_size=150.0)
    assert result.num_objects[1] > result.num_objects[0]
    # Traversal cost grows sublinearly with object count.
    growth = result.search_ms[1] / max(result.search_ms[0], 1e-9)
    object_growth = result.num_objects[1] / result.num_objects[0]
    assert growth < object_growth
    assert "Figure 9(a)" in result.format_table()


def test_figure10a_visual_beats_review():
    result = run_figure10a(SMALL, eta=0.002)
    visual, review = result.series
    assert visual.stats.mean_ms < review.stats.mean_ms
    assert visual.report.avg_fidelity() >= review.report.avg_fidelity()
    assert "Figure 10(a)" in result.format_table()


def test_figure10b_larger_eta_not_slower():
    result = run_figure10b(SMALL, eta_fast=0.02, eta_fine=0.0005)
    fast, fine = result.series
    assert fast.stats.mean_ms <= fine.stats.mean_ms * 1.05


def test_figure11_fidelity_ordering():
    result = run_figure11(SMALL, eta=0.002, review_box=120.0)
    by_name = {r.system: r for r in result.rows}
    original = by_name["original models"]
    review = next(r for r in result.rows if r.system.startswith("REVIEW"))
    visual = next(r for r in result.rows if r.system.startswith("VISUAL"))
    assert original.avg_fidelity == 1.0
    assert review.avg_missed_objects > 0       # shortsightedness
    assert visual.avg_missed_objects == 0      # HDoV covers all visible
    assert visual.avg_fidelity > review.avg_fidelity
    assert "Figure 11" in result.format_table()


def test_figure12_visual_queries_cheaper():
    # 360 m is the comparable-fidelity box at this scene scale (the
    # paper's 400 m on its larger environment).
    result = run_figure12(SMALL, eta=0.002, review_box=360.0)
    for number in (1, 2, 3):
        visual_ms, review_ms = result.search_ms[number]
        assert visual_ms < review_ms
        visual_io, review_io = result.ios[number]
        assert visual_io < review_io
    assert "Figure 12(a)" in result.format_table()


def test_table3_shapes():
    result = run_table3(SMALL, etas=(0.0, 0.002, 0.02))
    visual_rows = result.visual_rows()
    assert visual_rows[-1].mean_ms <= visual_rows[0].mean_ms * 1.05
    review = result.review_row()
    assert review is not None
    assert review.mean_ms > visual_rows[-1].mean_ms
    assert not math.isnan(review.fidelity)
    assert "Table 3" in result.format_table()


def test_memory_comparison():
    result = run_memory_comparison(SMALL, etas=(0.002,), review_box=240.0)
    assert result.review_peak() > result.visual_peak()
    assert "Memory usage" in result.format_table()


def test_nvo_ablation_runs():
    result = run_nvo_ablation(SMALL, eta=0.02)
    assert result.with_heuristic[0] > 0
    assert result.without_heuristic[0] > 0
    assert "NVO" in result.format_table()


def test_split_ablation_valid_trees():
    result = run_split_ablation(SMALL)
    assert len(result.rows) == 2
    assert {row[0] for row in result.rows} == {"ang-tan", "guttman"}


def test_flip_scaling_asymptotics():
    result = run_flip_scaling(node_counts=(512, 8192), visible_per_cell=16,
                              num_cells=2)
    assert result.vertical_flip_ios[-1] > result.vertical_flip_ios[0]
    assert result.indexed_flip_ios[0] == result.indexed_flip_ios[-1] == 1
