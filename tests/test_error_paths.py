"""Error-path contracts: the exact exception, from the exact layer.

PR 3's degradation ladder only works if every layer fails with the
advertised type: :class:`PageNotFoundError` for bad ids,
:class:`StorageError` for closed files, :class:`SchemeError` for scheme
misuse — and the search layer survives V-page failures by degrading
while an unreadable R-tree node stays fatal.
"""

import os

import pytest

from repro.core.schemes import SCHEME_CLASSES
from repro.core.search import HDoVSearch
from repro.core.vpage import CellVPages
from repro.errors import (PageNotFoundError, SchemeError, StorageError,
                          TransientIOError)
from repro.storage.faults import FaultInjector, FaultPlan, FaultRule
from repro.storage.pagedfile import PagedFile


# -- PagedFile: out-of-range ids ---------------------------------------------


@pytest.mark.parametrize("backend", ["mem", "disk"])
def test_out_of_range_page_ids_raise(backend, tmp_path):
    path = (os.path.join(tmp_path, "f.bin") if backend == "disk" else None)
    with PagedFile("f", page_size=64, path=path) as pf:
        pf.allocate_many(3)
        for bad in (-1, 3, 99):
            with pytest.raises(PageNotFoundError):
                pf.read_page(bad)
            with pytest.raises(PageNotFoundError):
                pf.write_page(bad, b"x")


# -- PagedFile: use after close ----------------------------------------------


@pytest.mark.parametrize("backend", ["mem", "disk"])
def test_closed_file_use_raises_storage_error(backend, tmp_path):
    path = (os.path.join(tmp_path, "f.bin") if backend == "disk" else None)
    pf = PagedFile("f", page_size=64, path=path)
    pid = pf.append_page(b"data")
    pf.close()
    with pytest.raises(StorageError):
        pf.read_page(pid)
    with pytest.raises(StorageError):
        pf.write_page(pid, b"x")
    with pytest.raises(StorageError):
        pf.allocate()
    with pytest.raises(StorageError):
        pf.append_page(b"x")


# -- Schemes: misuse raises SchemeError across all three ---------------------


def _build_scheme(name):
    cells = [CellVPages(cell_id=c,
                        pages={o: [(0.2, 3)] for o in range(8)
                               if (o + c) % 2 == 0})
             for c in range(3)]
    vpf = PagedFile(f"vpages-{name}", page_size=256)
    cls = SCHEME_CLASSES[name]
    if name == "horizontal":
        scheme = cls(vpf)
    else:
        scheme = cls(vpf, PagedFile(f"vindex-{name}", page_size=256))
    scheme.build(8, cells)
    return scheme


@pytest.mark.parametrize("name", sorted(SCHEME_CLASSES))
def test_scheme_misuse_raises_scheme_error(name):
    scheme = _build_scheme(name)
    with pytest.raises(SchemeError):
        scheme.flip_to_cell(42)            # unknown cell
    with pytest.raises(SchemeError):
        scheme.ventries(0)                 # read before any flip
    scheme.flip_to_cell(0)
    with pytest.raises(SchemeError):
        scheme.ventries(1000)              # out-of-range node offset
    # After the failed calls the scheme still answers normally.
    assert scheme.ventries(0) is not None


# -- Search: degrade on V-page loss, die on node loss ------------------------


def _busiest_cell(env):
    return max(env.grid.cell_ids(),
               key=lambda c: env.visibility.cell(c).num_visible)


def _rules(*matches):
    return FaultPlan("kill", tuple(FaultRule("read-error", match=m, rate=1.0)
                                   for m in matches))


def test_vpage_loss_degrades_but_answers(env):
    """Unreadable V-pages (data + index) degrade the whole query to the
    root's internal LoD: complete coverage, coarser answer, no raise."""
    scheme = "indexed-vertical"
    search = HDoVSearch(env, scheme)
    search.scheme.current_cell = None
    cell_id = _busiest_cell(env)
    injector = FaultInjector(
        _rules(f"vpages-{scheme}", f"vindex-{scheme}"), seed=0)
    injector.install(env.schemes[scheme].vpage_file,
                     env.schemes[scheme].index_file)
    try:
        result = search.query_cell(cell_id, eta=0.002)
    finally:
        injector.uninstall()
        search.scheme.current_cell = None
        search.scheme.drop_prefetches()
    assert result.degraded >= 1
    visible = set(env.visibility.cell(cell_id).visible_ids())
    assert visible <= set(result.covered_object_ids())


def test_vpage_data_loss_degrades_per_subtree(env):
    """With only the V-page *data* file down, the flip (index) still
    succeeds and each affected subtree degrades individually."""
    scheme = "indexed-vertical"
    search = HDoVSearch(env, scheme)
    search.scheme.current_cell = None
    cell_id = _busiest_cell(env)
    injector = FaultInjector(_rules(f"vpages-{scheme}"), seed=0)
    injector.install(env.schemes[scheme].vpage_file)
    try:
        result = search.query_cell(cell_id, eta=0.002)
    finally:
        injector.uninstall()
        search.scheme.current_cell = None
        search.scheme.drop_prefetches()
    assert result.degraded >= 1
    visible = set(env.visibility.cell(cell_id).visible_ids())
    assert visible <= set(result.covered_object_ids())


def test_node_store_loss_is_fatal(env):
    """The bottom of the ladder: without the R-tree node there is no
    entry list and no internal-LoD pointer, so the error propagates."""
    search = HDoVSearch(env, "indexed-vertical")
    search.scheme.current_cell = None
    injector = FaultInjector(_rules("tree"), seed=0)
    injector.install(env.node_store.pfile)
    try:
        with pytest.raises(TransientIOError):
            search.query_cell(_busiest_cell(env), eta=0.002)
    finally:
        injector.uninstall()
        search.scheme.current_cell = None
        search.scheme.drop_prefetches()
