"""Scene objects, city generator, dataset series."""

import numpy as np
import pytest

from repro.errors import ExperimentError, GeometryError
from repro.geometry.primitives import bunny_blob, ground_plane, tower_mesh
from repro.scene.city import CityParams, generate_city
from repro.scene.datasets import DATASET_SERIES, build_dataset
from repro.scene.objects import Scene, SceneObject
from repro.simplify.lod_chain import build_lod_chain


# -- primitives used by the generator ----------------------------------------

def test_tower_mesh_tiers():
    tower = tower_mesh((0, 0, 0), (10, 10), height=30.0, tiers=3)
    assert tower.num_faces == 36
    box = tower.aabb()
    assert box.lo[2] == pytest.approx(0.0)
    assert box.hi[2] == pytest.approx(30.0)
    with pytest.raises(GeometryError):
        tower_mesh((0, 0, 0), (10, 10), height=0.0)
    with pytest.raises(GeometryError):
        tower_mesh((0, 0, 0), (10, 10), height=10.0, tiers=0)


def test_bunny_blob_deterministic_and_bounded():
    a = bunny_blob(radius=2.0, subdivisions=2, seed=9)
    b = bunny_blob(radius=2.0, subdivisions=2, seed=9)
    assert np.allclose(a.vertices, b.vertices)
    c = bunny_blob(radius=2.0, subdivisions=2, seed=10)
    assert not np.allclose(a.vertices, c.vertices)
    radii = np.linalg.norm(a.vertices, axis=1)
    assert radii.max() <= 2.0 * 1.3
    assert radii.min() >= 2.0 * 0.5
    with pytest.raises(GeometryError):
        bunny_blob(bumpiness=1.5)


def test_ground_plane():
    plane = ground_plane((0, 0), (10, 5), z=1.0)
    assert plane.num_faces == 2
    assert plane.surface_area() == pytest.approx(50.0)
    with pytest.raises(GeometryError):
        ground_plane((0, 0), (0, 5))


# -- Scene --------------------------------------------------------------------

def make_object(oid, center=(0, 0, 0)):
    mesh = bunny_blob(radius=1.0, subdivisions=1, seed=oid, center=center)
    return SceneObject(oid, build_lod_chain(mesh, num_levels=2,
                                            reduction=0.5))


def test_scene_add_get_iter():
    scene = Scene([make_object(0), make_object(1, (10, 0, 0))])
    assert len(scene) == 2
    assert scene.get(1).object_id == 1
    assert 0 in scene and 5 not in scene
    assert scene.object_ids() == [0, 1]


def test_scene_duplicate_id_rejected():
    scene = Scene([make_object(0)])
    with pytest.raises(GeometryError):
        scene.add(make_object(0))


def test_scene_unknown_id():
    with pytest.raises(GeometryError):
        Scene().get(3)


def test_scene_bounds_and_packed():
    scene = Scene([make_object(0), make_object(1, (50, 0, 0))])
    bounds = scene.bounds()
    assert bounds.contains(scene.get(0).mbr)
    assert bounds.contains(scene.get(1).mbr)
    packed = scene.packed_mbrs()
    assert packed.shape == (2, 6)
    with pytest.raises(GeometryError):
        Scene().bounds()


def test_scene_totals():
    scene = Scene([make_object(0)])
    obj = scene.get(0)
    assert scene.total_polygons() == obj.num_polygons
    assert scene.total_bytes() == obj.byte_size
    assert obj.byte_size == sum(obj.lods.byte_sizes())


# -- city generator ---------------------------------------------------------

def test_city_deterministic():
    params = CityParams(blocks_x=4, blocks_y=4, seed=3)
    a = generate_city(params)
    b = generate_city(params)
    assert a.object_ids() == b.object_ids()
    assert a.total_polygons() == b.total_polygons()


def test_city_object_mix():
    scene = generate_city(CityParams(blocks_x=6, blocks_y=6, seed=1,
                                     building_fraction=0.5))
    categories = {o.category for o in scene}
    assert categories == {"building", "bunny"}


def test_city_objects_within_footprint():
    params = CityParams(blocks_x=4, blocks_y=4, seed=2)
    scene = generate_city(params)
    for obj in scene:
        box = obj.mbr
        assert box.lo[0] >= -params.block_size
        assert box.hi[0] <= params.width + params.block_size
        assert box.lo[2] >= -1.0


def test_city_extreme_fractions():
    all_buildings = generate_city(CityParams(blocks_x=3, blocks_y=3,
                                             seed=1, building_fraction=1.0))
    assert all(o.category == "building" for o in all_buildings)
    all_bunnies = generate_city(CityParams(blocks_x=3, blocks_y=3, seed=1,
                                           building_fraction=0.0))
    assert all(o.category == "bunny" for o in all_bunnies)


def test_city_params_validation():
    with pytest.raises(GeometryError):
        CityParams(blocks_x=0)
    with pytest.raises(GeometryError):
        CityParams(building_fraction=1.5)
    with pytest.raises(GeometryError):
        CityParams(min_height=50.0, max_height=10.0)


def test_city_lod_levels_propagate():
    scene = generate_city(CityParams(blocks_x=3, blocks_y=3, seed=1,
                                     lod_levels=3))
    assert all(o.lods.num_levels == 3 for o in scene)


# -- dataset series ------------------------------------------------------------

def test_dataset_series_object_counts_scale():
    # Build only the grid sizes (not the scenes) to keep the test fast.
    areas = [spec.blocks_x * spec.blocks_y for spec in DATASET_SERIES]
    assert areas == sorted(areas)
    nominals = [spec.nominal_mb for spec in DATASET_SERIES]
    assert nominals == [400, 800, 1200, 1600]


def test_build_dataset_by_name():
    scene = build_dataset("city-400MB")
    assert len(scene) > 0
    with pytest.raises(ExperimentError):
        build_dataset("city-9000MB")
