"""Incremental environment updates (object removal)."""

import pytest

from repro.core.hdov_tree import HDoVConfig, build_environment
from repro.core.search import HDoVSearch
from repro.core.update import affected_cells, remove_object
from repro.core.vpage import check_vpage_invariants
from repro.errors import HDoVError
from repro.scene.city import CityParams, generate_city
from repro.visibility.cells import CellGrid


@pytest.fixture()
def fresh_env():
    """A private small environment (updates mutate it)."""
    scene = generate_city(CityParams(blocks_x=4, blocks_y=4, seed=23,
                                     bunnies_per_block=3,
                                     building_fraction=0.5,
                                     bunny_subdivisions=2))
    grid = CellGrid.covering(scene.bounds(), cell_size=120.0)
    return build_environment(scene, grid,
                             HDoVConfig(dov_resolution=12,
                                        schemes=("indexed-vertical",)))


def most_visible_object(env):
    counts = {}
    for cell_id in env.grid.cell_ids():
        for oid in env.visibility.cell(cell_id).visible_ids():
            counts[oid] = counts.get(oid, 0) + 1
    return max(counts, key=counts.get)


def test_affected_cells_are_where_visible(fresh_env):
    oid = most_visible_object(fresh_env)
    cells = affected_cells(fresh_env, oid)
    assert cells
    for cell_id in cells:
        assert fresh_env.visibility.cell(cell_id).get(oid) > 0
    for cell_id in fresh_env.grid.cell_ids():
        if cell_id not in cells:
            assert fresh_env.visibility.cell(cell_id).get(oid) == 0


def test_remove_object_disappears_from_queries(fresh_env):
    env = fresh_env
    oid = most_visible_object(env)
    touched = remove_object(env, oid)
    assert touched
    search = HDoVSearch(env)
    for cell_id in env.grid.cell_ids():
        result = search.query_cell(cell_id, eta=0.0)
        assert oid not in result.object_ids()


def test_remove_object_can_reveal_occluded(fresh_env):
    """Removing a big occluder can only grow other objects' DoV."""
    env = fresh_env
    oid = most_visible_object(env)
    cells = affected_cells(env, oid)
    before = {cell_id: dict(env.visibility.cell(cell_id).dov)
              for cell_id in cells}
    remove_object(env, oid)
    for cell_id in cells:
        after = env.visibility.cell(cell_id).dov
        for other, old_value in before[cell_id].items():
            if other == oid:
                continue
            # Occlusion can only decrease (DoV rise) when an object
            # disappears; allow tiny sampling jitter.
            assert after.get(other, 0.0) >= old_value - 1e-9


def test_remove_object_updated_cells_match_table(fresh_env):
    env = fresh_env
    oid = most_visible_object(env)
    remove_object(env, oid)
    search = HDoVSearch(env)
    for cell_id in env.grid.cell_ids():
        result = search.query_cell(cell_id, eta=0.0)
        assert result.object_ids() == \
            env.visibility.cell(cell_id).visible_ids()


def test_remove_object_preserves_vpage_invariants(fresh_env):
    env = fresh_env
    oid = most_visible_object(env)
    remove_object(env, oid)
    for cell_vp in env.cell_vpages:
        check_vpage_invariants(env.tree, cell_vp)


def test_remove_object_tree_valid(fresh_env):
    env = fresh_env
    oid = most_visible_object(env)
    remove_object(env, oid)
    env.tree.check_invariants()
    assert env.node_store.num_nodes == env.tree.num_nodes


def test_remove_two_objects(fresh_env):
    env = fresh_env
    first = most_visible_object(env)
    remove_object(env, first)
    second = most_visible_object(env)
    remove_object(env, second)
    search = HDoVSearch(env)
    busiest = max(env.grid.cell_ids(),
                  key=lambda c: env.visibility.cell(c).num_visible)
    ids = search.query_cell(busiest, eta=0.0).object_ids()
    assert first not in ids and second not in ids


def test_remove_unknown_object(fresh_env):
    with pytest.raises(HDoVError):
        remove_object(fresh_env, 10 ** 6)


def test_remove_requires_indexed_vertical(small_scene, small_grid):
    env = build_environment(
        small_scene, small_grid,
        HDoVConfig(dov_resolution=8, schemes=("vertical",)))
    with pytest.raises(HDoVError):
        remove_object(env, 0, scheme_name="vertical")
