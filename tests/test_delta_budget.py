"""DeltaSearch cache-budget behaviour, incl. property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.delta import DeltaSearch
from repro.core.search import HDoVSearch
from repro.errors import HDoVError


def busiest_cells(env, limit=6):
    return sorted(env.grid.cell_ids(),
                  key=lambda c: -env.visibility.cell(c).num_visible)[:limit]


def make_delta(env, budget):
    search = HDoVSearch(env, "indexed-vertical", fetch_models=False)
    return DeltaSearch(search, keep_offscreen=True,
                       cache_budget_bytes=budget)


def test_negative_budget_rejected(env):
    with pytest.raises(HDoVError):
        make_delta(env, -1)


def test_current_result_never_evicted(env):
    """Even a zero budget keeps the current answer resident (only
    off-screen entries are evictable)."""
    delta = make_delta(env, 0)
    cell = busiest_cells(env)[0]
    result = delta.query_cell(cell, eta=0.0)
    assert delta.resident_count == result.num_results
    assert delta.resident_bytes == result.total_model_bytes


def test_budget_bounds_offscreen_growth(env):
    cells = busiest_cells(env)
    budget = 50_000
    delta = make_delta(env, budget)
    peak_current = 0
    for cell in cells:
        result = delta.query_cell(cell, eta=0.0)
        peak_current = max(peak_current, result.total_model_bytes)
        # Resident never exceeds budget plus the un-evictable current
        # answer set.
        assert delta.resident_bytes <= budget + result.total_model_bytes
    assert delta.evictions > 0 or delta.resident_bytes <= budget


def test_unbounded_budget_never_evicts(env):
    delta = make_delta(env, None)
    for cell in busiest_cells(env):
        delta.query_cell(cell, eta=0.0)
    assert delta.evictions == 0


def test_tight_budget_forces_refetch_on_return(env):
    """With a tight budget, revisiting an evicted cell re-fetches it;
    with an unbounded cache the revisit is free."""
    cells = busiest_cells(env, limit=2)

    bounded = make_delta(env, 0)           # nothing survives off-screen
    bounded.query_cell(cells[0], eta=0.0)
    after_first = bounded.fetches
    bounded.query_cell(cells[1], eta=0.0)
    bounded.query_cell(cells[0], eta=0.0)  # must refetch
    assert bounded.fetches > after_first + 1

    unbounded = make_delta(env, None)
    unbounded.query_cell(cells[0], eta=0.0)
    unbounded.query_cell(cells[1], eta=0.0)
    fetches = unbounded.fetches
    unbounded.query_cell(cells[0], eta=0.0)
    assert unbounded.fetches == fetches    # revisit free


@given(budget=st.integers(min_value=0, max_value=500_000))
@settings(max_examples=10, deadline=None)
def test_budget_invariant_property(small_env, budget):
    small_env.reset_stats()
    delta = make_delta(small_env, budget)
    cells = busiest_cells(small_env)
    for cell in cells:
        result = delta.query_cell(cell, eta=0.0)
        # The budget bounds the *off-screen* bytes; entries serving the
        # current answer are never evicted (and may be resident at finer
        # detail than this query required).
        live_objects = {o.object_id for o in result.objects}
        live_internals = {i.node_offset for i in result.internals}
        offscreen = (
            sum(r.bytes for oid, r in delta._objects.items()
                if oid not in live_objects)
            + sum(r.bytes for off, r in delta._internals.items()
                  if off not in live_internals))
        assert offscreen <= budget
        # Correctness never degrades: the answer always matches the
        # visibility table.
        assert result.object_ids() == \
            small_env.visibility.cell(cell).visible_ids()
