"""Internal LoD generation tests."""

import pytest

from repro.errors import HDoVError
from repro.lod.internal import build_internal_lods
from repro.rtree.bulk import str_bulk_load


@pytest.fixture(scope="module")
def tree_and_lods(small_scene):
    tree = str_bulk_load([(o.mbr, o.object_id) for o in small_scene],
                         max_entries=6)
    for offset, node in enumerate(tree.iter_nodes_dfs()):
        node.node_offset = offset
    lods = build_internal_lods(tree, small_scene, ratio_s=0.3, levels=2)
    return tree, lods


def test_every_node_has_internal_lod(tree_and_lods):
    tree, lods = tree_and_lods
    offsets = {n.node_offset for n in tree.iter_nodes_dfs()}
    assert set(lods) == offsets


def test_ratio_s_achieved(tree_and_lods):
    _tree, lods = tree_and_lods
    for lod in lods.values():
        # Small nodes hit the 4-face floor; otherwise s must be met
        # approximately (clustering may undershoot the target).
        if lod.chain.finest.num_faces > 8:
            assert lod.ratio_s <= 0.45


def test_chains_have_two_levels(tree_and_lods):
    _tree, lods = tree_and_lods
    for lod in lods.values():
        assert lod.chain.num_levels == 2
        assert lod.chain.coarsest.num_faces <= lod.chain.finest.num_faces


def test_internal_lod_occupies_node_region(tree_and_lods, small_scene):
    tree, lods = tree_and_lods
    for node in tree.iter_nodes_dfs():
        lod = lods[node.node_offset]
        node_box = node.mbr()
        margin = node_box.diagonal * 0.1 + 1.0
        assert node_box.inflated(margin).contains(lod.chain.finest.aabb())


def test_higher_levels_aggregate_children(tree_and_lods):
    """A parent's internal LoD is no finer than the sum of its children's
    highest internal LoDs times s (with slack for the 4-face floor)."""
    tree, lods = tree_and_lods
    for node in tree.iter_nodes_dfs():
        if node.is_leaf:
            continue
        child_sum = sum(lods[c.node_offset].chain.finest.num_faces
                        for c in node.children())
        parent_faces = lods[node.node_offset].chain.finest.num_faces
        assert parent_faces <= max(child_sum * 0.45, 8)


def test_unpersisted_tree_rejected(small_scene):
    tree = str_bulk_load([(o.mbr, o.object_id) for o in small_scene],
                         max_entries=6)
    with pytest.raises(HDoVError):
        build_internal_lods(tree, small_scene)


def test_invalid_params(small_scene, tree_and_lods):
    tree, _lods = tree_and_lods
    with pytest.raises(HDoVError):
        build_internal_lods(tree, small_scene, ratio_s=0.0)
    with pytest.raises(HDoVError):
        build_internal_lods(tree, small_scene, levels=0)
