"""Replacement policies and speculative-read semantics (PR 10).

Three layers: the policy objects alone (ordering contracts), the pool
with a policy plugged in (scan resistance, pathological pinned
capacity, prefetch attribution), and ``run_serve`` end to end (policy
swap is a no-op at infinite capacity; prefetch keeps the reconciliation
exact).
"""

import json

import pytest

from repro.concurrency import LockOrderWitness, installed
from repro.errors import BufferPoolError, BufferPoolExhaustedError
from repro.serving import run_serve
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskModel, IOStats
from repro.storage.pagedfile import PagedFile
from repro.storage.replacement import (LRUPolicy, TwoQPolicy, make_policy)


@pytest.fixture()
def pfile():
    pf = PagedFile("repl", page_size=64, disk=DiskModel(), stats=IOStats())
    for i in range(24):
        pf.append_page(bytes([i]) * 8)
    pf.stats.reset()
    return pf


# -- policy objects ----------------------------------------------------------


def test_make_policy_resolution():
    assert make_policy("lru", 4, "p").name == "lru"
    assert make_policy("2q", 4, "p").name == "2q"
    instance = LRUPolicy()
    assert make_policy(instance, 4, "p") is instance
    with pytest.raises(BufferPoolError):
        make_policy("clock", 4, "p")


def test_twoq_parameter_validation():
    with pytest.raises(BufferPoolError):
        TwoQPolicy(0)
    with pytest.raises(BufferPoolError):
        TwoQPolicy(4, kin_fraction=1.0)
    with pytest.raises(BufferPoolError):
        TwoQPolicy(4, kout_fraction=0.0)


def test_lru_policy_ordering():
    policy = LRUPolicy()
    for key in ((0, 0), (0, 1), (0, 2)):
        policy.on_insert(key)
    policy.on_access((0, 0))            # 0 becomes most recent
    assert list(policy.victims()) == [(0, 1), (0, 2), (0, 0)]
    policy.on_evict((0, 1))
    assert policy.keys() == [(0, 2), (0, 0)]
    assert policy.stats() == {}
    policy.clear()
    assert policy.keys() == []


def test_twoq_first_touch_stays_in_fifo():
    policy = TwoQPolicy(4)              # kin=1, kout=2
    policy.on_insert((0, 0))
    policy.on_insert((0, 1))
    # Accessing a FIFO resident must NOT reorder it: a correlated
    # burst right after first read is not evidence of reuse.
    policy.on_access((0, 0))
    assert list(policy.victims())[0] == (0, 0)


def test_twoq_ghost_promotion():
    policy = TwoQPolicy(4)
    policy.on_insert((0, 0))
    policy.on_evict((0, 0))             # falls out of the FIFO -> ghost
    policy.on_insert((0, 0))            # re-read: proven re-reference
    assert policy.stats() == {"ghost_hits": 1, "promotions": 1}
    # Promoted pages live in Am; with the FIFO empty the victim scan
    # still reaches them (every resident key must be yielded).
    assert (0, 0) in list(policy.victims())


def test_twoq_evict_untracked_key_is_typed_error():
    policy = TwoQPolicy(4)
    with pytest.raises(BufferPoolError):
        policy.on_evict((9, 9))


# -- pool + policy -----------------------------------------------------------


def scan(pool, pfile, pages):
    for page_id in pages:
        pool.get(pfile, page_id)


def test_twoq_scan_resistance(pfile):
    """A cold scan churns the FIFO but cannot flush the proven-hot page."""
    pool = BufferPool(capacity=4, policy="2q")
    scan(pool, pfile, (0, 1, 2, 3, 4))   # page 0 falls to the ghost list
    pool.get(pfile, 0)                   # re-read -> promoted to Am
    scan(pool, pfile, range(10, 20))     # a 10-page cold scan
    assert pool.contains(pfile, 0)       # the hot page survived
    assert not pool.contains(pfile, 10)  # early scan pages did not
    assert pool.policy.stats()["ghost_hits"] >= 1

    # The same trace under LRU loses the hot page to the scan.
    lru = BufferPool(capacity=4, policy="lru")
    scan(lru, pfile, (0, 1, 2, 3, 4))
    lru.get(pfile, 0)
    scan(lru, pfile, range(10, 20))
    assert not lru.contains(pfile, 0)


def test_pathological_pinned_capacity_under_witness():
    """Pool smaller than the pinned working set: typed exhaustion, no
    deadlock, and every acquisition clean under the lock-order witness."""
    with installed(LockOrderWitness()) as witness:
        pf = PagedFile("pin", page_size=64, disk=DiskModel(),
                       stats=IOStats())
        for i in range(4):
            pf.append_page(bytes([i]) * 8)
        pool = BufferPool(capacity=2, policy="2q")
        pool.get(pf, 0, pin=True)
        pool.get(pf, 1, pin=True)
        with pytest.raises(BufferPoolExhaustedError):
            pool.get(pf, 2)
        # Speculation is best-effort: a fully pinned pool declines
        # instead of raising.
        assert pool.prefetch(pf, 3) is False
        pool.unpin(pf, 0)
        pool.unpin(pf, 1)
    assert witness.violations() == []


def test_prefetch_counters_are_not_demand_counters(pfile):
    pool = BufferPool(capacity=4)
    assert pool.prefetch(pfile, 0) is True
    assert pool.prefetch(pfile, 0) is False      # already resident
    assert pool.prefetch_stats() == {"issued": 1, "useful": 0,
                                     "wasted": 0}
    assert pool.hits == 0 and pool.misses == 0   # no demand traffic
    # peek reads the speculative bytes without consuming them.
    assert pool.peek(pfile, 0) is not None
    assert pool.peek(pfile, 9) is None
    assert pool.prefetch_stats()["useful"] == 0
    # The first demand read consumes the prefetch: a hit, once.
    pool.get(pfile, 0)
    pool.get(pfile, 0)
    assert pool.hits == 2
    assert pool.prefetch_stats()["useful"] == 1


def test_unconsumed_prefetch_counts_wasted_on_eviction(pfile):
    pool = BufferPool(capacity=1)
    assert pool.prefetch(pfile, 0) is True
    pool.get(pfile, 1)                   # evicts the unread speculation
    assert pool.prefetch_stats() == {"issued": 1, "useful": 0,
                                     "wasted": 1}
    # Demand accounting saw one miss (page 1) and nothing else.
    assert pool.misses == 1 and pool.hits == 0


def test_put_clears_speculation_without_usefulness(pfile):
    pool = BufferPool(capacity=4)
    assert pool.prefetch(pfile, 0) is True
    pool.put(pfile, 0, b"fresh")         # overwrite, not a demand read
    pool.get(pfile, 0)
    assert pool.prefetch_stats()["useful"] == 0
    pool.clear()


# -- run_serve end to end ----------------------------------------------------


def canonical(report):
    report["serve"].pop("policy")
    report["pool"].pop("policy")
    report["pool"].pop("policy_stats")
    return json.dumps(report, sort_keys=True)


def test_policy_swap_is_noop_at_infinite_capacity():
    """With no eviction pressure the policies cannot diverge: the two
    reports must be byte-identical once the policy labels are popped."""
    reports = [run_serve(sessions=3, workers=1, seed=7, frames=6,
                         pool_pages=4096, policy=policy,
                         include_frame_times=False)
               for policy in ("lru", "2q")]
    assert reports[1]["pool"]["policy_stats"] == {"ghost_hits": 0,
                                                  "promotions": 0}
    assert canonical(reports[0]) == canonical(reports[1])


def test_serve_with_prefetch_reconciles_exactly():
    report = run_serve(sessions=6, workers=2, seed=7, frames=12,
                       pool_pages=28, policy="2q", prefetch=True,
                       include_frame_times=False)
    assert report["outcome"]["completed"] is True
    assert report["serve"]["prefetch"] is True
    prefetch = report["prefetch"]
    assert prefetch["pool"]["issued"] > 0
    rec = report["reconciliation"]
    assert rec["light_ios_balanced"] is True
    assert rec["heavy_ios_balanced"] is True
    assert rec["simulated_ms_balanced"] is True
    assert rec["pool_balanced"] is True
    # Speculative reads are charged to the prefetcher's own ledger —
    # light I/O (index segments + V-pages), never the models blob.
    assert rec["prefetch_light"]["reads"] > 0
    assert rec["prefetch_heavy"]["reads"] == 0
    # Wasted speculation is its own counter, not session demand I/O:
    # every issue is eventually consumed, evicted as wasted, or still
    # resident — never folded into a session's hit/miss ledger.
    stats = report["pool"]["prefetch"]
    assert stats["useful"] + stats["wasted"] <= stats["issued"]
    assert stats["wasted"] > 0
    assert rec["prefetch_light"]["reads"] == report["prefetch"][
        "index_pages_issued"] + report["prefetch"]["vpages_issued"]


def test_prefetch_off_by_default_keeps_reports_identical():
    baseline = run_serve(sessions=2, workers=1, seed=7, frames=6,
                         include_frame_times=False)
    explicit = run_serve(sessions=2, workers=1, seed=7, frames=6,
                         policy="lru", prefetch=False,
                         include_frame_times=False)
    assert baseline["serve"]["prefetch"] is False
    assert baseline["prefetch"] is None
    assert json.dumps(baseline, sort_keys=True) \
        == json.dumps(explicit, sort_keys=True)
