"""Ray casting kernels: unit tests and property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.aabb import AABB, pack_aabbs
from repro.geometry.rays import (NO_HIT, cube_map_solid_angles, nearest_hits,
                                 ray_aabb_intersect, rays_vs_aabbs,
                                 rays_vs_triangles, sphere_direction_grid)
from repro.geometry.slab import (group_rays_by_octant, slab_entry_matrix,
                                 slab_nearest)


def test_direction_grid_shape_and_unit_length():
    dirs = sphere_direction_grid(8)
    assert dirs.shape == (6 * 64, 3)
    assert np.allclose(np.linalg.norm(dirs, axis=1), 1.0)


def test_direction_grid_covers_all_octants():
    dirs = sphere_direction_grid(4)
    signs = {tuple(s) for s in np.sign(dirs).astype(int)}
    assert len(signs) == 8


def test_solid_angles_sum_to_full_sphere():
    # Texel-center quadrature converges O(1/resolution^2).
    for resolution, tolerance in ((4, 2e-2), (8, 5e-3), (16, 1.5e-3),
                                  (32, 4e-4)):
        omegas = cube_map_solid_angles(resolution)
        assert omegas.sum() == pytest.approx(4 * np.pi, rel=tolerance)


def test_ray_hits_box_straight_on():
    t = ray_aabb_intersect((0, 0, 0), (1, 0, 0), (5, -1, -1), (6, 1, 1))
    assert t == pytest.approx(5.0)


def test_ray_misses_box():
    assert ray_aabb_intersect((0, 0, 0), (0, 0, 1), (5, -1, -1),
                              (6, 1, 1)) is None


def test_ray_behind_box_misses():
    assert ray_aabb_intersect((10, 0, 0), (1, 0, 0), (5, -1, -1),
                              (6, 1, 1)) is None


def test_ray_origin_inside_box_hits_at_zero():
    t = ray_aabb_intersect((5.5, 0, 0), (1, 0, 0), (5, -1, -1), (6, 1, 1))
    assert t == pytest.approx(0.0)


def test_axis_parallel_ray_inside_slab():
    # Direction has a zero component; origin within that slab.
    t = ray_aabb_intersect((0, 0, 0), (1, 0, 0), (2, -1, -1), (3, 1, 1))
    assert t == pytest.approx(2.0)


def test_axis_parallel_ray_outside_slab_misses():
    t = ray_aabb_intersect((0, 5, 0), (1, 0, 0), (2, -1, -1), (3, 1, 1))
    assert t is None


def test_nearest_hits_prefers_closer_box():
    boxes = pack_aabbs([AABB((5, -1, -1), (6, 1, 1)),
                        AABB((2, -1, -1), (3, 1, 1))])
    ids, ts = nearest_hits((0, 0, 0), np.array([[1.0, 0.0, 0.0]]), boxes)
    assert ids[0] == 1
    assert ts[0] == pytest.approx(2.0)


def test_nearest_hits_miss_is_minus_one():
    boxes = pack_aabbs([AABB((5, -1, -1), (6, 1, 1))])
    ids, ts = nearest_hits((0, 0, 0), np.array([[0.0, 0.0, 1.0]]), boxes)
    assert ids[0] == -1
    assert ts[0] == NO_HIT


def test_nearest_hits_no_boxes():
    ids, ts = nearest_hits((0, 0, 0), np.array([[1.0, 0.0, 0.0]]),
                           np.empty((0, 6)))
    assert ids[0] == -1


def test_rays_vs_triangles_hit_and_miss():
    tri = np.array([[(1, -1, -1), (1, 1, -1), (1, 0, 1)]], dtype=float)
    dirs = np.array([[1.0, 0.0, 0.0], [0.0, 0.0, -1.0]])
    t = rays_vs_triangles((0, 0, 0), dirs, tri)
    assert t[0, 0] == pytest.approx(1.0)
    assert t[1, 0] == NO_HIT


def test_rays_vs_triangles_backface_still_hits():
    # Moller-Trumbore without culling hits both orientations.
    tri = np.array([[(1, -1, -1), (1, 0, 1), (1, 1, -1)]], dtype=float)
    t = rays_vs_triangles((0, 0, 0), np.array([[1.0, 0.0, 0.0]]), tri)
    assert t[0, 0] == pytest.approx(1.0)


unit_dirs = st.tuples(
    st.floats(-1, 1), st.floats(-1, 1), st.floats(-1, 1)
).filter(lambda d: np.linalg.norm(d) > 1e-3).map(
    lambda d: np.asarray(d) / np.linalg.norm(d))


@given(direction=unit_dirs,
       scale=st.floats(min_value=0.1, max_value=100.0))
@settings(max_examples=50, deadline=None)
def test_ray_through_box_center_always_hits(direction, scale):
    """A ray aimed at a box's center from outside must hit it."""
    center = direction * (scale + 10.0)
    box = AABB.from_center_extent(center, (scale, scale, scale))
    t = ray_aabb_intersect((0, 0, 0), direction, box.lo, box.hi)
    assert t is not None
    assert 0 < t <= scale + 10.0


@given(direction=unit_dirs)
@settings(max_examples=30, deadline=None)
def test_entry_distance_lower_bounds_center_distance(direction):
    box = AABB.from_center_extent(direction * 20.0, (2, 2, 2))
    t = ray_aabb_intersect((0, 0, 0), direction, box.lo, box.hi)
    assert t is not None
    assert t <= 20.0
    assert t >= 20.0 - box.diagonal


def test_vectorized_matches_scalar():
    rng = np.random.default_rng(5)
    boxes = []
    for _ in range(20):
        lo = rng.uniform(-10, 10, 3)
        boxes.append(AABB(lo, lo + rng.uniform(0.5, 5.0, 3)))
    packed = pack_aabbs(boxes)
    dirs = sphere_direction_grid(4)
    origin = np.array([0.0, 0.0, 0.0])
    t = rays_vs_aabbs(origin, dirs, packed)
    for i in range(0, len(dirs), 7):
        for j in range(len(boxes)):
            scalar = ray_aabb_intersect(origin, dirs[i], boxes[j].lo,
                                        boxes[j].hi)
            if scalar is None:
                assert t[i, j] == NO_HIT
            else:
                assert t[i, j] == pytest.approx(scalar, abs=1e-9)


# -- shared slab kernel ------------------------------------------------------

finite_coords = st.floats(min_value=-50.0, max_value=50.0)

box_strategy = st.tuples(
    st.tuples(finite_coords, finite_coords, finite_coords),
    st.tuples(st.floats(0.0, 20.0), st.floats(0.0, 20.0),
              st.floats(0.0, 20.0)),
).map(lambda t: (np.asarray(t[0]), np.asarray(t[0]) + np.asarray(t[1])))

# Raw (possibly axis-parallel, even degenerate-component) directions: the
# slab kernel must agree with the scalar reference for zero components too.
raw_dirs = st.tuples(
    st.sampled_from([-1.0, -0.3, 0.0, 0.3, 1.0]) | st.floats(-1, 1),
    st.sampled_from([-1.0, -0.3, 0.0, 0.3, 1.0]) | st.floats(-1, 1),
    st.sampled_from([-1.0, -0.3, 0.0, 0.3, 1.0]) | st.floats(-1, 1),
).filter(lambda d: np.linalg.norm(d) > 1e-6).map(np.asarray)


@given(boxes=st.lists(box_strategy, min_size=1, max_size=6),
       origin=st.tuples(finite_coords, finite_coords, finite_coords),
       directions=st.lists(raw_dirs, min_size=1, max_size=8))
@settings(max_examples=120, deadline=None)
def test_slab_kernel_matches_scalar_reference(boxes, origin, directions):
    """Property: the shared slab kernel agrees with ray_aabb_intersect
    for every (ray, box) pair, including axis-parallel rays, origins
    inside boxes, and zero-extent boxes."""
    origin = np.asarray(origin, dtype=float)
    dirs = np.asarray(directions, dtype=float)
    lo = np.array([b[0] for b in boxes])
    hi = np.array([b[1] for b in boxes])
    t = slab_entry_matrix(origin, dirs, lo, hi)
    assert t.shape == (len(dirs), len(boxes))
    for i in range(len(dirs)):
        for j in range(len(boxes)):
            scalar = ray_aabb_intersect(origin, dirs[i], lo[j], hi[j])
            if scalar is None:
                assert t[i, j] == NO_HIT
            else:
                assert t[i, j] == scalar        # bit-identical, both float64


@given(boxes=st.lists(box_strategy, min_size=1, max_size=5),
       origins=st.lists(st.tuples(finite_coords, finite_coords,
                                  finite_coords),
                        min_size=1, max_size=4),
       directions=st.lists(raw_dirs, min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_slab_nearest_matches_per_origin_matrix(boxes, origins, directions):
    """Property: the origin-batched nearest-hit kernel equals running the
    entry matrix one origin at a time and taking the argmin."""
    dirs = np.asarray(directions, dtype=float)
    lo = np.array([b[0] for b in boxes])
    hi = np.array([b[1] for b in boxes])
    origins = np.asarray(origins, dtype=float)
    ids, ts = slab_nearest(origins, dirs, lo, hi)
    assert ids.shape == ts.shape == (len(origins), len(dirs))
    for v, origin in enumerate(origins):
        t = slab_entry_matrix(origin, dirs, lo, hi)
        for r in range(len(dirs)):
            hits = t[r]
            if np.all(hits == NO_HIT):
                assert ids[v, r] == -1
                assert ts[v, r] == NO_HIT
            else:
                assert ids[v, r] == int(np.argmin(hits))
                assert ts[v, r] == hits.min()


def test_octant_groups_partition_all_rays():
    dirs = sphere_direction_grid(4).astype(np.float32)
    groups = group_rays_by_octant(dirs)
    seen = np.concatenate([idx for idx, _rows in groups])
    assert sorted(seen.tolist()) == list(range(len(dirs)))
    for idx, rows in groups:
        assert np.array_equal(dirs[idx], rows)
        signs = rows > 0
        assert np.all(signs == signs[0])        # sign-homogeneous group
