"""Write-ahead journal, recovery and atomic-write tests (PR 8).

Bottom-up over the crash-consistency stack: the WAL's on-disk format
and framing, group commit and the written/durable split, the
deterministic power-loss model, recovery's replay/truncate/refuse
triage, idempotence, and the shared atomic whole-file writer.
"""

import os
import zlib

import pytest

from repro.errors import (JournalCorruptError, SimulatedCrash,
                          StorageError)
from repro.obs import names
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.storage import journal as wal
from repro.storage.atomic import atomic_write_bytes, atomic_write_text
from repro.storage.disk import FREE_DISK, IOStats
from repro.storage.faults import FaultInjector, FaultPlan, FaultRule
from repro.storage.journal import WriteAheadJournal, journal_path
from repro.storage.pagedfile import PagedFile
from repro.storage.recovery import scan_journal

PAGE = 64


def page(fill):
    return bytes([fill]) * PAGE


def make_file(tmp_path, name="wal-test", **kwargs):
    return PagedFile(name, page_size=PAGE, disk=FREE_DISK, stats=IOStats(),
                     path=str(tmp_path / f"{name}.pages"), journal=True,
                     **kwargs)


def frame(payload):
    return wal.RECORD.pack(wal.RECORD_MAGIC, len(payload),
                           zlib.crc32(payload)) + payload


def image_record(page_id, data):
    return frame(wal.PAGE_IMAGE.pack(wal.KIND_PAGE_IMAGE, page_id,
                                     zlib.crc32(data)) + data)


def commit_record(seqno=1, covered=1):
    return frame(wal.COMMIT.pack(wal.KIND_COMMIT, seqno, covered))


def header():
    return wal.HEADER.pack(wal.HEADER_MAGIC, wal.FORMAT_VERSION, PAGE)


# -- journal format and framing ----------------------------------------------


def test_journal_on_disk_layout(tmp_path):
    with use_registry(MetricsRegistry()) as registry:
        path = str(tmp_path / "j.wal")
        journal = WriteAheadJournal(path, page_size=PAGE, name="j")
        journal.append_page_image(3, page(0xAB), zlib.crc32(page(0xAB)))
        journal.append_commit_marker()
        journal.sync()
        journal.close()
        raw = open(path, "rb").read()
        assert raw == (header() + image_record(3, page(0xAB))
                       + commit_record(seqno=1, covered=1))
        assert registry.value(names.JOURNAL_RECORDS, file="j") == 2
        assert registry.value(names.JOURNAL_COMMITS, file="j") == 1


def test_group_commit_one_marker_per_batch(tmp_path):
    with use_registry(MetricsRegistry()):
        journal = WriteAheadJournal(str(tmp_path / "j.wal"),
                                    page_size=PAGE, name="j")
        for pid in range(3):
            journal.append_page_image(pid, page(pid), zlib.crc32(page(pid)))
        assert journal.uncommitted_records == 3
        seqno = journal.append_commit_marker()
        assert seqno == 1
        assert journal.uncommitted_records == 0
        assert journal.append_commit_marker() == 2   # next batch
        committed, records, commits, tail = scan_journal(
            _reread(journal), path=journal.path, page_size=PAGE)
        assert records == 5 and commits == 2 and tail == 0
        assert sorted(committed) == [0, 1, 2]
        journal.close()


def _reread(journal):
    with open(journal.path, "rb") as fh:
        return fh.read()


def test_written_durable_split_and_power_loss(tmp_path):
    with use_registry(MetricsRegistry()):
        journal = WriteAheadJournal(str(tmp_path / "j.wal"),
                                    page_size=PAGE, name="j")
        durable = journal.durable_length
        assert durable == wal.HEADER.size == journal.written_length
        journal.append_page_image(0, page(1), zlib.crc32(page(1)))
        journal.append_page_image(1, page(2), zlib.crc32(page(2)))
        written = journal.written_length
        assert journal.durable_length == durable < written
        # Power loss keeps the durable prefix plus half the volatile tail.
        journal.simulate_power_loss()
        assert journal.closed
        kept = os.path.getsize(journal.path)
        assert kept == durable + (written - durable) // 2


def test_sync_advances_durable(tmp_path):
    with use_registry(MetricsRegistry()):
        journal = WriteAheadJournal(str(tmp_path / "j.wal"),
                                    page_size=PAGE, name="j")
        journal.append_page_image(0, page(7), zlib.crc32(page(7)))
        journal.sync()
        assert journal.durable_length == journal.written_length
        journal.simulate_power_loss()
        # Everything synced survives in full.
        committed, records, commits, tail = scan_journal(
            open(journal.path, "rb").read(), path=journal.path,
            page_size=PAGE)
        assert records == 1 and tail == 0


def test_journal_rejects_wrong_page_size_and_bad_header(tmp_path):
    with use_registry(MetricsRegistry()):
        path = str(tmp_path / "j.wal")
        WriteAheadJournal(path, page_size=PAGE, name="j").close()
        with pytest.raises(StorageError, match="page size"):
            WriteAheadJournal(path, page_size=PAGE * 2, name="j")
        with open(path, "r+b") as fh:
            fh.write(b"NOTAWAL!")
        with pytest.raises(StorageError, match="not a journal"):
            WriteAheadJournal(path, page_size=PAGE, name="j")
        short = str(tmp_path / "short.wal")
        with open(short, "wb") as fh:
            fh.write(b"abc")
        with pytest.raises(StorageError, match="shorter than"):
            WriteAheadJournal(short, page_size=PAGE, name="j")
        with pytest.raises(StorageError):
            WriteAheadJournal(str(tmp_path / "x.wal"), page_size=0,
                              name="j")


def test_closed_journal_refuses_appends(tmp_path):
    with use_registry(MetricsRegistry()):
        journal = WriteAheadJournal(str(tmp_path / "j.wal"),
                                    page_size=PAGE, name="j")
        journal.close()
        journal.close()                     # idempotent
        with pytest.raises(StorageError, match="closed"):
            journal.append_page_image(0, page(0), 0)
        with pytest.raises(StorageError, match="exactly"):
            WriteAheadJournal(str(tmp_path / "k.wal"), page_size=PAGE,
                              name="k").append_page_image(0, b"short", 0)


# -- scan triage: replay, truncate, refuse -----------------------------------


def test_scan_truncates_torn_tail():
    raw = header() + image_record(0, page(1)) + commit_record() \
        + image_record(1, page(2))[:20]
    committed, records, commits, tail = scan_journal(
        raw, path="j.wal", page_size=PAGE)
    assert sorted(committed) == [0] and commits == 1
    assert tail == 20


def test_scan_refuses_interior_corruption():
    intact = image_record(0, page(1))
    rotted = bytearray(intact)
    rotted[wal.RECORD.size + 10] ^= 0x40     # flip a payload bit
    raw = header() + bytes(rotted) + commit_record()
    with pytest.raises(JournalCorruptError, match="intact records after"):
        scan_journal(raw, path="j.wal", page_size=PAGE)


def test_scan_rejects_malformed_records():
    bad_kind = frame(bytes([9]) + bytes(8))
    with pytest.raises(JournalCorruptError, match="unknown"):
        scan_journal(header() + bad_kind, path="j", page_size=PAGE)
    short_image = frame(wal.PAGE_IMAGE.pack(wal.KIND_PAGE_IMAGE, 0, 0))
    with pytest.raises(JournalCorruptError, match="page-image"):
        scan_journal(header() + short_image, path="j", page_size=PAGE)
    with pytest.raises(StorageError, match="shorter"):
        scan_journal(b"", path="j", page_size=PAGE)


def test_uncommitted_images_are_discarded():
    raw = header() + image_record(0, page(1)) + commit_record() \
        + image_record(1, page(2))
    committed, records, commits, tail = scan_journal(
        raw, path="j.wal", page_size=PAGE)
    assert sorted(committed) == [0]
    assert records == 3 and commits == 1 and tail == 0


# -- PagedFile integration ---------------------------------------------------


def test_overlay_serves_journaled_writes_before_checkpoint(tmp_path):
    with use_registry(MetricsRegistry()):
        pf = make_file(tmp_path)
        pf.allocate_many(2)
        pf.write_page(0, page(0x5A))
        assert pf.read_page(0) == page(0x5A)
        # The data file itself is untouched until checkpoint.
        data_path = str(tmp_path / "wal-test.pages")
        size = os.path.getsize(data_path)
        on_disk = open(data_path, "rb").read()
        assert page(0x5A) not in on_disk
        pf.commit()
        pf.checkpoint()
        assert page(0x5A) in open(data_path, "rb").read()
        assert os.path.getsize(data_path) == size
        pf.close()


def test_recovery_replays_committed_and_drops_uncommitted(tmp_path):
    with use_registry(MetricsRegistry()) as registry:
        pf = make_file(tmp_path)
        pf.allocate_many(3)
        pf.write_page(0, page(0x11))
        pf.write_page(1, page(0x22))
        pf.commit()
        pf.write_page(2, page(0x33))     # never committed
        pf.crash()
        pf2 = make_file(tmp_path)
        report = pf2.last_recovery
        assert report is not None
        assert report.commits_applied == 1
        assert report.pages_replayed == 2
        assert pf2.read_page(0) == page(0x11)
        assert pf2.read_page(1) == page(0x22)
        assert pf2.read_page(2) == bytes(PAGE)
        assert registry.value(names.RECOVERY_PAGES_REPLAYED,
                              file="wal-test") == 2
        pf2.close()


def test_recovery_of_recovered_file_is_noop(tmp_path):
    with use_registry(MetricsRegistry()):
        pf = make_file(tmp_path)
        pf.allocate()
        pf.write_page(0, page(0x77))
        pf.commit()
        pf.crash()
        pf2 = make_file(tmp_path)
        pf2.close()
        before = (open(str(tmp_path / "wal-test.pages"), "rb").read(),
                  open(journal_path(str(tmp_path / "wal-test.pages")),
                       "rb").read())
        pf3 = make_file(tmp_path)
        assert pf3.last_recovery is None       # journal already empty
        pf3.close()
        after = (open(str(tmp_path / "wal-test.pages"), "rb").read(),
                 open(journal_path(str(tmp_path / "wal-test.pages")),
                      "rb").read())
        assert after == before


def test_clean_close_checkpoints_so_reopen_skips_recovery(tmp_path):
    with use_registry(MetricsRegistry()):
        pf = make_file(tmp_path)
        pf.allocate()
        pf.write_page(0, page(0x42))
        pf.close()                          # checkpoint + reset inside
        pf2 = make_file(tmp_path)
        assert pf2.last_recovery is None
        assert pf2.read_page(0) == page(0x42)
        pf2.close()


def test_journal_bit_rot_detected_on_recovery(tmp_path):
    with use_registry(MetricsRegistry()):
        pf = make_file(tmp_path)
        injector = FaultInjector(
            FaultPlan("wal-rot", (
                FaultRule("bit-flip", match=".wal", times=1),)),
            seed=3)
        injector.install(pf)
        pf.allocate_many(2)
        pf.write_page(0, page(0x10))     # this record's bytes rot
        pf.write_page(1, page(0x20))     # intact record after it
        pf.commit()                      # durable: survives power loss
        injector.uninstall()
        pf.crash()
        with pytest.raises(JournalCorruptError, match="refusing"):
            make_file(tmp_path)


def test_crash_during_recovery_then_recover_again(tmp_path):
    with use_registry(MetricsRegistry()):
        pf = make_file(tmp_path)
        pf.allocate_many(2)
        pf.write_page(0, page(0x0A))
        pf.write_page(1, page(0x0B))
        pf.commit()
        pf.crash()
        # Kill recovery at its very first boundary...
        injector = FaultInjector(seed=0)
        injector.crash_after_ops(1)
        with pytest.raises(SimulatedCrash):
            make_file(tmp_path, faults=injector)
        assert injector.crash_trace == ["recovery-scan:wal-test"]
        # ...and the next clean open still converges.
        pf2 = make_file(tmp_path)
        assert pf2.read_page(0) == page(0x0A)
        assert pf2.read_page(1) == page(0x0B)
        assert pf2.last_recovery is not None
        pf2.close()


def test_journal_requires_disk_backing_and_journal_only_apis(tmp_path):
    with use_registry(MetricsRegistry()):
        with pytest.raises(StorageError, match="journaling requires"):
            PagedFile("mem-only", page_size=PAGE, journal=True)
        plain = PagedFile("plain", page_size=PAGE)
        with pytest.raises(StorageError, match="not a journaled"):
            plain.commit()
        with pytest.raises(StorageError, match="not a journaled"):
            plain.checkpoint()
        plain.close()


def test_commit_without_pending_writes_is_free(tmp_path):
    with use_registry(MetricsRegistry()) as registry:
        pf = make_file(tmp_path)
        pf.commit()
        pf.checkpoint()
        assert registry.value(names.JOURNAL_COMMITS, file="wal-test") == 0
        pf.close()


# -- atomic whole-file replacement -------------------------------------------


def test_atomic_write_bytes_replaces_and_leaves_no_temps(tmp_path):
    target = str(tmp_path / "out.bin")
    atomic_write_bytes(target, b"first")
    atomic_write_bytes(target, b"second")
    assert open(target, "rb").read() == b"second"
    leftovers = [p for p in sorted(os.listdir(str(tmp_path)))
                 if p != "out.bin"]
    assert leftovers == []


def test_atomic_write_text_roundtrip(tmp_path):
    target = str(tmp_path / "out.json")
    atomic_write_text(target, "{\"k\": 1}\n")
    assert open(target, encoding="utf-8").read() == "{\"k\": 1}\n"
