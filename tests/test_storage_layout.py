"""Layout rewriter tests: affinity graph, tour order, and raw/packed
rewrites over every scheme — V-pages must read back identically from
the permuted file, and a trace-aligned tour must cut back seeks."""

import pytest

from repro.core.schemes import SCHEME_CLASSES
from repro.core.vpage import CellVPages
from repro.errors import StorageError
from repro.storage.disk import DiskModel, IOStats
from repro.storage.layout import (TRACE_EDGE_WEIGHT, affinity_graph,
                                  rewrite_scheme, tour_order)
from repro.storage.pagedfile import PagedFile
from repro.storage.vpagecodec import PackedDeltaVPageCodec

NUM_NODES = 12
PAGE_SIZE = 512


def line_neighbors(num_cells):
    """A 1-D grid: cell c adjacent to c-1 and c+1."""
    return {c: [n for n in (c - 1, c + 1) if 0 <= n < num_cells]
            for c in range(num_cells)}


def synthetic_cells(num_cells):
    cells = []
    for c in range(num_cells):
        pages = {}
        for offset in range(NUM_NODES):
            if (offset + c) % 3 == 0:
                count = 1 + offset % 3
                pages[offset] = [(0.1 * (i + 1) / count, i + 1)
                                 for i in range(count)]
        cells.append(CellVPages(cell_id=c, pages=pages))
    return cells


def build_scheme(name, num_cells=4, packed=False):
    cells = synthetic_cells(num_cells)
    stats = IOStats()
    disk = DiskModel(seek_ms=10.0, transfer_ms=1.0, readahead_pages=1)
    vpf = PagedFile(f"{name}-v", page_size=PAGE_SIZE, disk=disk,
                    stats=stats)
    codec = PackedDeltaVPageCodec(
        PAGE_SIZE, line_neighbors(num_cells),
        scheme=name) if packed else None
    cls = SCHEME_CLASSES[name]
    if name == "horizontal":
        scheme = cls(vpf)
    else:
        idx = PagedFile(f"{name}-i", page_size=PAGE_SIZE, disk=disk,
                        stats=stats)
        scheme = cls(vpf, idx, codec=codec)
    scheme.build(NUM_NODES, cells)
    stats.reset()
    return scheme, stats, cells


def read_everything(scheme, cells):
    """All V-entries of every cell, as plain data."""
    out = {}
    for cell in cells:
        scheme.flip_to_cell(cell.cell_id)
        out[cell.cell_id] = {offset: scheme.ventries(offset)
                             for offset in sorted(cell.pages)}
    return out


# -- affinity graph ----------------------------------------------------------


def test_affinity_prior_covers_grid_edges():
    weights = affinity_graph([], line_neighbors(4))
    assert weights == {(0, 1): 1, (1, 2): 1, (2, 3): 1}


def test_affinity_trace_weighs_observed_flips():
    weights = affinity_graph([0, 0, 1, 1, 0, 3], line_neighbors(4))
    # 0->1 and 1->0: two flips; same-cell frames contribute nothing;
    # 0->3 is not grid-adjacent but still becomes an edge.
    assert weights[(0, 1)] == 1 + 2 * TRACE_EDGE_WEIGHT
    assert weights[(0, 3)] == TRACE_EDGE_WEIGHT
    assert weights[(1, 2)] == 1


# -- tour order --------------------------------------------------------------


def test_tour_is_deterministic_permutation():
    cells = list(range(6))
    weights = affinity_graph([0, 2, 4, 5, 3, 1], line_neighbors(6))
    tour = tour_order(cells, weights)
    assert sorted(tour) == cells
    assert tour == tour_order(cells, weights)


def test_tour_follows_heaviest_edges():
    # The trace 0-2-4-5-3-1 dominates the grid prior, so the tour is
    # exactly the trace order.
    weights = affinity_graph([0, 2, 4, 5, 3, 1], line_neighbors(6))
    assert tour_order(list(range(6)), weights) == [0, 2, 4, 5, 3, 1]


def test_tour_appends_isolated_cells():
    # No edges at all: ascending ids.
    assert tour_order([3, 1, 2], {}) == [1, 2, 3]


# -- rewrites ----------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(SCHEME_CLASSES))
def test_raw_rewrite_preserves_every_vpage(name):
    scheme, _stats, cells = build_scheme(name, num_cells=4)
    before = read_everything(scheme, cells)
    report = rewrite_scheme(scheme, [2, 0, 3, 1])
    assert report.cells == 4
    assert report.pages_moved > 0
    assert read_everything(scheme, cells) == before


@pytest.mark.parametrize("name", ["vertical", "indexed-vertical"])
def test_packed_rewrite_preserves_every_vpage(name):
    scheme, _stats, cells = build_scheme(name, num_cells=4, packed=True)
    old_codec = scheme.codec
    before = read_everything(scheme, cells)
    report = rewrite_scheme(scheme, [3, 1, 2, 0])
    assert scheme.codec is not old_codec       # fresh codec installed
    assert scheme.codec.records == old_codec.records
    assert report.pointers_remapped == old_codec.records
    assert read_everything(scheme, cells) == before


@pytest.mark.parametrize("name", sorted(SCHEME_CLASSES))
def test_rewrite_to_current_order_moves_nothing(name):
    # Rewriting into the order the file is already in is a no-op
    # permutation; a second identical rewrite is idempotent.
    scheme, _stats, cells = build_scheme(name, num_cells=4)
    rewrite_scheme(scheme, [1, 3, 0, 2])
    report = rewrite_scheme(scheme, [1, 3, 0, 2])
    assert report.pages_moved == 0
    assert read_everything(scheme, cells) == read_everything(scheme, cells)


def test_repeated_rewrites_compose(name="horizontal"):
    # The horizontal scheme keeps its remap in memory; two rewrites must
    # compose, not stack stale indirections.
    scheme, _stats, cells = build_scheme(name, num_cells=4)
    before = read_everything(scheme, cells)
    rewrite_scheme(scheme, [3, 2, 1, 0])
    rewrite_scheme(scheme, [0, 1, 2, 3])
    rewrite_scheme(scheme, [2, 0, 3, 1])
    assert read_everything(scheme, cells) == before


def test_duplicate_pointer_rejected(monkeypatch):
    scheme, _stats, _cells = build_scheme("vertical", num_cells=2)
    monkeypatch.setattr(scheme, "cell_pointers",
                        lambda cell_id: [(0, 5), (3, 5)])
    with pytest.raises(StorageError):
        rewrite_scheme(scheme, [0, 1])


def test_trace_aligned_tour_cuts_back_seeks():
    """The whole point, in miniature: replaying the trace that shaped
    the tour produces strictly fewer back seeks after the rewrite."""
    trace = [0, 2, 4, 5, 3, 1]

    def replay(scheme, stats, cells):
        by_id = {cell.cell_id: cell for cell in cells}
        scheme.reset_runtime_state()
        stats.reset()
        for cell_id in trace:
            scheme.flip_to_cell(cell_id)
            for offset in sorted(by_id[cell_id].pages):
                scheme.ventries(offset)
        assert stats.seeks == stats.back_seeks + stats.forward_seeks
        return stats.back_seeks

    scheme, stats, cells = build_scheme("vertical", num_cells=6)
    baseline = replay(scheme, stats, cells)
    tour = tour_order([c.cell_id for c in cells],
                      affinity_graph(trace, line_neighbors(6)))
    rewrite_scheme(scheme, tour)
    rewritten = replay(scheme, stats, cells)
    assert rewritten < baseline
