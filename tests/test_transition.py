"""Tests for the deterministic cell-transition model (PR 10).

The model must reproduce the historical velocity-only heuristic exactly
when it has seen no transitions (the zero-knowledge special case the
``CellPrefetcher`` refactor relies on), and its Markov counts must take
over — deterministically, with integer arithmetic and smallest-id tie
breaks — once observation outweighs the velocity prior.
"""

import numpy as np
import pytest

from repro.errors import WalkthroughError
from repro.visibility.cells import CellGrid
from repro.walkthrough.transition import CellTransitionModel


@pytest.fixture()
def grid():
    # 4x4 cells of 10 m; cell_id = ix * 4 + iy.
    return CellGrid(origin=(0.0, 0.0), cell_size=10.0, cells_x=4,
                    cells_y=4)


@pytest.fixture()
def model(grid):
    return CellTransitionModel(grid)


CENTER = 5          # cell (1, 1): all four neighbors exist
EAST, WEST, NORTH, SOUTH = 9, 1, 6, 4


def test_parameter_validation(grid):
    with pytest.raises(WalkthroughError):
        CellTransitionModel(grid, velocity_weight=0)
    with pytest.raises(WalkthroughError):
        CellTransitionModel(grid, trigger_fraction=0.0)
    with pytest.raises(WalkthroughError):
        CellTransitionModel(grid, trigger_fraction=2.5)


def test_record_transition_counts(model):
    model.record_transition(CENTER, EAST)
    model.record_transition(CENTER, EAST)
    model.record_transition(CENTER, NORTH)
    assert model.transition_count(CENTER, EAST) == 2
    assert model.transition_count(CENTER, NORTH) == 1
    assert model.transition_count(CENTER, WEST) == 0
    assert model.transitions == 3


def test_self_loop_is_ignored(model):
    model.record_transition(CENTER, CENTER)
    assert model.transition_count(CENTER, CENTER) == 0
    assert model.transitions == 0


def test_velocity_cell_needs_history_and_motion(grid, model):
    center = grid.cell_center(CENTER)
    assert model.velocity_cell(center, None) is None
    assert model.velocity_cell(center, center.copy()) is None
    # Vertical-only motion has zero planar speed: no prediction.
    below = center - np.array([0.0, 0.0, 1.0])
    assert model.velocity_cell(center, below) is None


def test_velocity_cell_extrapolates_planar_motion(grid, model):
    center = grid.cell_center(CENTER)
    last = center - np.array([1.0, 0.0, 0.0])
    # Lookahead = cell_size * 0.5 = 5 m along +x: crosses into EAST.
    assert model.velocity_cell(center, last) == EAST
    # A short lookahead stays inside the current cell: None.
    tight = CellTransitionModel(grid, trigger_fraction=0.1)
    assert tight.velocity_cell(center, last) is None


def test_empty_model_is_velocity_only(model):
    # No counts: only the velocity cell scores, so it wins...
    assert model.predict(CENTER, EAST) == EAST
    # ... and without a velocity cell nothing scores above zero.
    assert model.predict(CENTER, None) is None
    assert model.predictions == 1


def test_markov_counts_override_velocity_prior(grid, model):
    # Observation equal to the prior loses the tie unless it sorts
    # first; strictly above the prior, it wins outright.
    for _ in range(model.velocity_weight + 1):
        model.record_transition(CENTER, NORTH)
    assert model.predict(CENTER, EAST) == NORTH
    # A single observation cannot beat the prior.
    fresh = CellTransitionModel(grid)
    fresh.record_transition(CENTER, NORTH)
    assert fresh.predict(CENTER, EAST) == EAST


def test_tie_breaks_toward_smallest_cell_id(model):
    model.record_transition(CENTER, NORTH)
    model.record_transition(CENTER, SOUTH)
    # NORTH=6 and SOUTH=4 tie on count; the smaller id wins, every run.
    assert model.predict(CENTER, None) == SOUTH


def test_stationary_viewer_still_predicts_from_history(grid, model):
    # A viewer pausing at a junction keeps the learned route: velocity
    # contributes nothing, the Markov row decides alone.
    model.record_transition(CENTER, EAST)
    center = grid.cell_center(CENTER)
    assert model.predict_from_motion(center, center.copy()) == EAST


def test_predict_from_motion_blends_both_signals(grid, model):
    center = grid.cell_center(CENTER)
    last = center - np.array([1.0, 0.0, 0.0])
    # Velocity says EAST; four observations of NORTH out-vote it.
    assert model.predict_from_motion(center, last) == EAST
    for _ in range(model.velocity_weight + 1):
        model.record_transition(CENTER, NORTH)
    assert model.predict_from_motion(center, last) == NORTH
