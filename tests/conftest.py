"""Shared fixtures: a small deterministic city environment.

The environment build (city generation, LoD chains, DoV precompute,
three storage schemes) takes a few seconds, so it is session-scoped and
shared; tests that mutate stats must reset them (``env.reset_stats()``)
rather than rely on absolute counter values.
"""

from __future__ import annotations

import pytest

from repro.core.hdov_tree import HDoVConfig, build_environment
from repro.scene.city import CityParams, generate_city
from repro.visibility.cells import CellGrid

SMALL_CITY = CityParams(blocks_x=5, blocks_y=5, seed=13,
                        bunnies_per_block=3, building_fraction=0.45,
                        min_height=20.0, max_height=80.0,
                        bunny_subdivisions=2)


@pytest.fixture(scope="session")
def small_scene():
    return generate_city(SMALL_CITY)


@pytest.fixture(scope="session")
def small_grid(small_scene):
    return CellGrid.covering(small_scene.bounds(), cell_size=120.0)


@pytest.fixture(scope="session")
def small_env(small_scene, small_grid):
    """Environment with all three schemes over the small city."""
    config = HDoVConfig(
        dov_resolution=16,
        schemes=("horizontal", "vertical", "indexed-vertical"),
    )
    return build_environment(small_scene, small_grid, config)


@pytest.fixture(scope="session")
def small_env_packed(small_scene, small_grid):
    """The same environment built with delta-compressed V-pages."""
    config = HDoVConfig(
        dov_resolution=16,
        schemes=("vertical", "indexed-vertical"),
        compress_vpages=True,
    )
    return build_environment(small_scene, small_grid, config)


@pytest.fixture()
def env(small_env):
    """Per-test view of the shared environment with clean stats."""
    small_env.reset_stats()
    for scheme in small_env.schemes.values():
        scheme.reset_io_head()
    return small_env


@pytest.fixture()
def env_packed(small_env_packed):
    small_env_packed.reset_stats()
    for scheme in small_env_packed.schemes.values():
        scheme.reset_runtime_state()
    return small_env_packed
