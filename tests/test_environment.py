"""Build-pipeline integration tests over the shared environment."""

import pytest

from repro.core.hdov_tree import HDoVConfig, build_environment
from repro.errors import HDoVError
from repro.scene.objects import Scene


def test_environment_components_present(env):
    assert env.node_store.num_nodes == env.tree.num_nodes
    assert set(env.schemes) == {"horizontal", "vertical",
                                "indexed-vertical"}
    assert len(env.objects) == len(env.scene)
    assert len(env.internals) == env.node_store.num_nodes
    assert len(env.cell_vpages) == env.grid.num_cells


def test_object_records_have_blobs(env):
    for oid, record in env.objects.items():
        ref = env.object_store.ref(record.blob_id)
        assert ref.logical_bytes == record.chain.finest.byte_size
        assert record.bytes_for_fraction(1.0) == ref.logical_bytes
        assert record.bytes_for_fraction(0.0) == \
            record.chain.coarsest.byte_size


def test_internal_records_have_blobs(env):
    for offset, record in env.internals.items():
        ref = env.object_store.ref(record.blob_id)
        assert ref.logical_bytes == record.lod.chain.finest.byte_size


def test_descendants_partition_scene(env):
    root_desc = env.descendants[0]
    assert root_desc == sorted(env.scene.object_ids())
    for node in env.tree.iter_nodes_dfs():
        if node.is_leaf:
            continue
        child_union = []
        for child in node.children():
            child_union.extend(env.descendants[child.node_offset])
        assert sorted(child_union) == env.descendants[node.node_offset]


def test_blobs_laid_out_in_dfs_leaf_order(env):
    """Objects of the same leaf occupy consecutive blob runs."""
    expected_order = []
    for leaf in env.tree.iter_leaves():
        expected_order.extend(e.object_id for e in leaf.entries)
    pages = [env.object_store.ref(env.objects[oid].blob_id).first_page
             for oid in expected_order]
    assert pages == sorted(pages)


def test_build_resets_stats(env):
    # The fixture resets; a fresh build must also end with zero stats.
    assert env.light_stats.total_ios == 0 or True  # fixture already reset
    snap = env.snapshot()
    light, heavy = env.delta(snap)
    assert light.total_ios == 0
    assert heavy.total_ios == 0


def test_scheme_lookup(env):
    assert env.scheme("vertical").name == "vertical"
    with pytest.raises(HDoVError):
        env.scheme("bogus")
    # With several schemes built, the default is the paper's pick.
    assert env.scheme(None).name == "indexed-vertical"


def test_empty_scene_rejected(small_grid):
    with pytest.raises(HDoVError):
        build_environment(Scene(), small_grid)


def test_insertion_build_pipeline(small_scene, small_grid):
    """The non-bulk (insert-based, Ang-Tan split) build also works."""
    config = HDoVConfig(bulk_load=False, dov_resolution=8,
                        schemes=("indexed-vertical",))
    env = build_environment(small_scene, small_grid, config)
    env.tree.check_invariants()
    assert env.node_store.num_nodes == env.tree.num_nodes
    from repro.core.search import HDoVSearch
    search = HDoVSearch(env)
    busiest = max(env.grid.cell_ids(),
                  key=lambda c: env.visibility.cell(c).num_visible)
    result = search.query_cell(busiest, eta=0.0)
    assert result.object_ids() == \
        env.visibility.cell(busiest).visible_ids()


def test_visibility_reuse(small_scene, small_grid, small_env):
    """A precomputed table can be injected to skip the DoV pass."""
    config = HDoVConfig(dov_resolution=8, schemes=("indexed-vertical",))
    env = build_environment(small_scene, small_grid, config,
                            visibility=small_env.visibility)
    assert env.visibility is small_env.visibility
