"""Compaction after updates, and scene/visibility statistics."""

import pytest

from repro.core.compaction import compact_indexed_vertical
from repro.core.hdov_tree import HDoVConfig, build_environment
from repro.core.search import HDoVSearch
from repro.core.update import remove_object
from repro.errors import GeometryError, HDoVError
from repro.scene.city import CityParams, generate_city
from repro.scene.objects import Scene
from repro.scene.stats import scene_stats, visibility_stats
from repro.visibility.cells import CellGrid


@pytest.fixture()
def fresh_env():
    scene = generate_city(CityParams(blocks_x=4, blocks_y=4, seed=29,
                                     bunnies_per_block=3,
                                     building_fraction=0.5,
                                     bunny_subdivisions=2))
    grid = CellGrid.covering(scene.bounds(), cell_size=120.0)
    return build_environment(scene, grid,
                             HDoVConfig(dov_resolution=12,
                                        schemes=("indexed-vertical",)))


def most_visible(env):
    counts = {}
    for cell_id in env.grid.cell_ids():
        for oid in env.visibility.cell(cell_id).visible_ids():
            counts[oid] = counts.get(oid, 0) + 1
    return max(counts, key=counts.get)


# -- compaction --------------------------------------------------------------

def test_compaction_reclaims_update_garbage(fresh_env):
    env = fresh_env
    remove_object(env, most_visible(env))
    scheme = env.scheme("indexed-vertical")
    bloated = scheme.vpage_file.byte_size + scheme.index_file.byte_size
    report = compact_indexed_vertical(env)
    assert report.reclaimed_bytes > 0
    assert 0.0 < report.garbage_fraction < 1.0
    new_scheme = env.scheme("indexed-vertical")
    compacted = (new_scheme.vpage_file.byte_size
                 + new_scheme.index_file.byte_size)
    assert compacted < bloated


def test_compaction_preserves_answers(fresh_env):
    env = fresh_env
    remove_object(env, most_visible(env))
    search = HDoVSearch(env)
    before = {cell_id: search.query_cell(cell_id, 0.0).object_ids()
              for cell_id in env.grid.cell_ids()}
    compact_indexed_vertical(env)
    search = HDoVSearch(env)       # rebind to the new scheme
    for cell_id, expected in before.items():
        search.scheme.current_cell = None
        assert search.query_cell(cell_id, 0.0).object_ids() == expected


def test_compaction_without_garbage_is_stable(fresh_env):
    env = fresh_env
    report = compact_indexed_vertical(env)
    # Fresh environments carry no garbage; sizes are unchanged.
    assert report.vpage_bytes_after == report.vpage_bytes_before
    assert report.garbage_fraction == pytest.approx(0.0, abs=1e-6)


def test_compaction_requires_indexed_vertical(small_scene, small_grid):
    env = build_environment(
        small_scene, small_grid,
        HDoVConfig(dov_resolution=8, schemes=("horizontal",)))
    with pytest.raises(HDoVError):
        compact_indexed_vertical(env, scheme_name="horizontal")


# -- statistics --------------------------------------------------------------

def test_scene_stats(small_scene):
    stats = scene_stats(small_scene)
    assert stats.num_objects == len(small_scene)
    assert stats.total_polygons == small_scene.total_polygons()
    assert set(stats.categories) <= {"building", "bunny"}
    assert sum(stats.categories.values()) == stats.num_objects
    q = stats.polygon_quantiles
    assert q == sorted(q)
    assert q[0] >= 1
    report = stats.format_report()
    assert "objects:" in report and "polygons:" in report


def test_scene_stats_empty_rejected():
    with pytest.raises(GeometryError):
        scene_stats(Scene())


def test_visibility_stats(small_env):
    stats = visibility_stats(small_env.visibility, len(small_env.scene))
    assert stats.num_cells == small_env.grid.num_cells
    assert 0.0 < stats.visibility_density < 1.0
    assert stats.dov_quantiles[0] > 0.0        # stored DoVs are positive
    assert stats.dov_quantiles[-1] <= 1.0
    assert stats.visible_quantiles == sorted(stats.visible_quantiles)
    assert "DoV values" in stats.format_report()


def test_visibility_stats_validation(small_env):
    with pytest.raises(GeometryError):
        visibility_stats(small_env.visibility, 0)
