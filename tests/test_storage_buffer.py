"""Buffer pool tests: LRU order, pinning, write-back."""

import pytest

from repro.errors import BufferPoolError, BufferPoolExhaustedError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskModel, IOStats
from repro.storage.pagedfile import PagedFile


@pytest.fixture()
def pfile():
    pf = PagedFile("buf", page_size=64, disk=DiskModel(), stats=IOStats())
    for i in range(10):
        pf.append_page(bytes([i]) * 8)
    pf.stats.reset()
    return pf


def test_hit_and_miss_counting(pfile):
    pool = BufferPool(capacity=4)
    pool.get(pfile, 0)
    pool.get(pfile, 0)
    assert pool.hits == 1
    assert pool.misses == 1
    assert pfile.stats.reads == 1        # second access served from pool


def test_lru_eviction_order(pfile):
    pool = BufferPool(capacity=2)
    pool.get(pfile, 0)
    pool.get(pfile, 1)
    pool.get(pfile, 0)      # page 0 is now most recent
    pool.get(pfile, 2)      # evicts page 1 (least recent)
    assert pool.contains(pfile, 0)
    assert not pool.contains(pfile, 1)
    assert pool.contains(pfile, 2)
    assert pool.evictions == 1


def test_pinned_pages_survive_eviction(pfile):
    pool = BufferPool(capacity=2)
    pool.get(pfile, 0, pin=True)
    pool.get(pfile, 1)
    pool.get(pfile, 2)       # must evict page 1, not pinned page 0
    assert pool.contains(pfile, 0)
    pool.unpin(pfile, 0)


def test_all_pinned_raises_typed_exhausted_error(pfile):
    pool = BufferPool(capacity=2)
    pool.get(pfile, 0, pin=True)
    pool.get(pfile, 1, pin=True)
    with pytest.raises(BufferPoolExhaustedError):
        pool.get(pfile, 2)
    # The typed error is a BufferPoolError, so existing handlers that
    # catch the base class keep working.
    assert issubclass(BufferPoolExhaustedError, BufferPoolError)
    # The failed get still counted its miss but installed nothing.
    assert pool.resident_pages == 2
    pool.unpin(pfile, 0)
    assert pool.get(pfile, 2) == (bytes([2]) * 8).ljust(64, b"\x00")


def test_unpin_underflow(pfile):
    pool = BufferPool(capacity=2)
    pool.get(pfile, 0)
    with pytest.raises(BufferPoolError):
        pool.unpin(pfile, 0)


def test_put_and_writeback_on_eviction(pfile):
    pool = BufferPool(capacity=1)
    pool.put(pfile, 3, b"dirty")
    pool.get(pfile, 4)       # evicts dirty page 3 -> write-back
    assert pfile.read_page(3).startswith(b"dirty")


def test_read_your_writes(pfile):
    pool = BufferPool(capacity=2)
    pool.put(pfile, 5, b"fresh")
    assert pool.get(pfile, 5).startswith(b"fresh")
    # Underlying file not yet updated until flush/eviction.
    assert pfile.read_page(5)[0] == 5


def test_flush_writes_dirty_frames(pfile):
    pool = BufferPool(capacity=4)
    pool.put(pfile, 6, b"flushed")
    pool.flush()
    assert pfile.read_page(6).startswith(b"flushed")
    # Frame stays resident after flush.
    assert pool.contains(pfile, 6)


def test_clear_rejects_pinned(pfile):
    pool = BufferPool(capacity=2)
    pool.get(pfile, 0, pin=True)
    with pytest.raises(BufferPoolError):
        pool.clear()
    pool.unpin(pfile, 0)
    pool.clear()
    assert pool.resident_pages == 0


def test_capacity_validation():
    with pytest.raises(BufferPoolError):
        BufferPool(capacity=0)


def test_hit_rate(pfile):
    pool = BufferPool(capacity=4)
    assert pool.hit_rate == 0.0
    pool.get(pfile, 0)
    pool.get(pfile, 0)
    pool.get(pfile, 0)
    assert pool.hit_rate == pytest.approx(2 / 3)


def test_two_files_one_pool(pfile):
    other = PagedFile("other", page_size=64, disk=DiskModel(),
                      stats=IOStats())
    other.append_page(b"zz")
    pool = BufferPool(capacity=4)
    a = pool.get(pfile, 0)
    b = pool.get(other, 0)
    assert a != b
    assert pool.misses == 2


def make_small_file(name="f", fill=b"x"):
    pf = PagedFile(name, page_size=64, disk=DiskModel(), stats=IOStats())
    for _ in range(4):
        pf.append_page(fill)
    pf.stats.reset()
    return pf


def test_stable_identity_survives_address_reuse():
    """Regression: frames were keyed by ``id(pfile)``; a new PagedFile
    allocated at a garbage-collected file's address inherited its
    frames.  With stable file ids a new file can never hit old frames."""
    import gc

    pool = BufferPool(capacity=4)
    pf1 = make_small_file("first", fill=b"a")
    pool.get(pf1, 0)
    assert pool.misses == 1
    del pf1
    gc.collect()
    pf2 = make_small_file("second", fill=b"b")
    data = pool.get(pf2, 0)
    assert pool.misses == 2          # a new file can never be a hit
    assert data.startswith(b"b")


def test_file_ids_are_unique_and_monotonic():
    a = make_small_file()
    b = make_small_file()
    assert a.file_id != b.file_id
    assert b.file_id > a.file_id


def test_clear_drops_file_references():
    """Regression: ``_files`` kept strong references to every file ever
    seen; ``clear()`` must release them."""
    pool = BufferPool(capacity=4)
    pf = make_small_file()
    pool.get(pf, 0)
    assert pool._files
    pool.clear()
    assert pool._files == {}
    assert pool.resident_pages == 0


def test_eviction_skips_pinned_scans_to_lru_unpinned(pfile):
    """With the two oldest frames pinned, eviction must take the third."""
    pool = BufferPool(capacity=3)
    pool.get(pfile, 0, pin=True)
    pool.get(pfile, 1, pin=True)
    pool.get(pfile, 2)
    pool.get(pfile, 3)       # must evict page 2, the LRU unpinned frame
    assert pool.contains(pfile, 0)
    assert pool.contains(pfile, 1)
    assert not pool.contains(pfile, 2)
    assert pool.contains(pfile, 3)
    pool.unpin(pfile, 0)
    pool.unpin(pfile, 1)


def test_pin_counts_nest(pfile):
    pool = BufferPool(capacity=2)
    pool.get(pfile, 0, pin=True)
    pool.get(pfile, 0, pin=True)
    pool.unpin(pfile, 0)
    # Still pinned once: the frame must survive pressure.
    pool.get(pfile, 1)
    pool.get(pfile, 2)
    assert pool.contains(pfile, 0)
    pool.unpin(pfile, 0)
    with pytest.raises(BufferPoolError):
        pool.unpin(pfile, 0)


def test_flush_writes_back_in_lru_order(pfile):
    """Dirty frames flush least-recently-used first — the order
    evictions would have written them."""
    pool = BufferPool(capacity=4)
    pool.put(pfile, 2, b"two")
    pool.put(pfile, 0, b"zero")
    pool.put(pfile, 1, b"one")
    pool.get(pfile, 2)               # touch: page 2 becomes most recent
    order = []
    original = pfile.write_page
    pfile.write_page = lambda pid, data: (order.append(pid),
                                          original(pid, data))[1]
    pool.flush()
    pfile.write_page = original
    assert order == [0, 1, 2]
    assert pfile.read_page(0).startswith(b"zero")
    # A second flush has nothing dirty left.
    order.clear()
    pool.flush()
    assert order == []


def test_clear_with_pins_raises_then_succeeds_after_unpin(pfile):
    pool = BufferPool(capacity=4)
    pool.put(pfile, 3, b"dirty")
    pool.get(pfile, 0, pin=True)
    with pytest.raises(BufferPoolError):
        pool.clear()
    # The failed clear must not have dropped anything.
    assert pool.contains(pfile, 0)
    assert pool.contains(pfile, 3)
    pool.unpin(pfile, 0)
    pool.clear()
    assert pool.resident_pages == 0
    # The dirty frame was flushed on the successful clear.
    assert pfile.read_page(3).startswith(b"dirty")


def test_pool_metrics_mirror_counters(pfile):
    from repro.obs.metrics import get_registry

    reg = get_registry()
    snap = reg.snapshot()
    pool = BufferPool(capacity=2, name="test-mirror")
    pool.get(pfile, 0)
    pool.get(pfile, 0, pin=True)
    pool.unpin(pfile, 0)
    pool.get(pfile, 1)
    pool.get(pfile, 2)               # eviction
    delta = reg.delta(snap)
    assert delta['bufferpool_hits_total{pool="test-mirror"}'] == 1
    assert delta['bufferpool_misses_total{pool="test-mirror"}'] == 3
    assert delta['bufferpool_evictions_total{pool="test-mirror"}'] == 1
    assert delta['bufferpool_pins_total{pool="test-mirror"}'] == 1
    assert delta['bufferpool_unpins_total{pool="test-mirror"}'] == 1
