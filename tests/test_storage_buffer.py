"""Buffer pool tests: LRU order, pinning, write-back."""

import pytest

from repro.errors import BufferPoolError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskModel, IOStats
from repro.storage.pagedfile import PagedFile


@pytest.fixture()
def pfile():
    pf = PagedFile("buf", page_size=64, disk=DiskModel(), stats=IOStats())
    for i in range(10):
        pf.append_page(bytes([i]) * 8)
    pf.stats.reset()
    return pf


def test_hit_and_miss_counting(pfile):
    pool = BufferPool(capacity=4)
    pool.get(pfile, 0)
    pool.get(pfile, 0)
    assert pool.hits == 1
    assert pool.misses == 1
    assert pfile.stats.reads == 1        # second access served from pool


def test_lru_eviction_order(pfile):
    pool = BufferPool(capacity=2)
    pool.get(pfile, 0)
    pool.get(pfile, 1)
    pool.get(pfile, 0)      # page 0 is now most recent
    pool.get(pfile, 2)      # evicts page 1 (least recent)
    assert pool.contains(pfile, 0)
    assert not pool.contains(pfile, 1)
    assert pool.contains(pfile, 2)
    assert pool.evictions == 1


def test_pinned_pages_survive_eviction(pfile):
    pool = BufferPool(capacity=2)
    pool.get(pfile, 0, pin=True)
    pool.get(pfile, 1)
    pool.get(pfile, 2)       # must evict page 1, not pinned page 0
    assert pool.contains(pfile, 0)
    pool.unpin(pfile, 0)


def test_all_pinned_raises(pfile):
    pool = BufferPool(capacity=2)
    pool.get(pfile, 0, pin=True)
    pool.get(pfile, 1, pin=True)
    with pytest.raises(BufferPoolError):
        pool.get(pfile, 2)


def test_unpin_underflow(pfile):
    pool = BufferPool(capacity=2)
    pool.get(pfile, 0)
    with pytest.raises(BufferPoolError):
        pool.unpin(pfile, 0)


def test_put_and_writeback_on_eviction(pfile):
    pool = BufferPool(capacity=1)
    pool.put(pfile, 3, b"dirty")
    pool.get(pfile, 4)       # evicts dirty page 3 -> write-back
    assert pfile.read_page(3).startswith(b"dirty")


def test_read_your_writes(pfile):
    pool = BufferPool(capacity=2)
    pool.put(pfile, 5, b"fresh")
    assert pool.get(pfile, 5).startswith(b"fresh")
    # Underlying file not yet updated until flush/eviction.
    assert pfile.read_page(5)[0] == 5


def test_flush_writes_dirty_frames(pfile):
    pool = BufferPool(capacity=4)
    pool.put(pfile, 6, b"flushed")
    pool.flush()
    assert pfile.read_page(6).startswith(b"flushed")
    # Frame stays resident after flush.
    assert pool.contains(pfile, 6)


def test_clear_rejects_pinned(pfile):
    pool = BufferPool(capacity=2)
    pool.get(pfile, 0, pin=True)
    with pytest.raises(BufferPoolError):
        pool.clear()
    pool.unpin(pfile, 0)
    pool.clear()
    assert pool.resident_pages == 0


def test_capacity_validation():
    with pytest.raises(BufferPoolError):
        BufferPool(capacity=0)


def test_hit_rate(pfile):
    pool = BufferPool(capacity=4)
    assert pool.hit_rate == 0.0
    pool.get(pfile, 0)
    pool.get(pfile, 0)
    pool.get(pfile, 0)
    assert pool.hit_rate == pytest.approx(2 / 3)


def test_two_files_one_pool(pfile):
    other = PagedFile("other", page_size=64, disk=DiskModel(),
                      stats=IOStats())
    other.append_page(b"zz")
    pool = BufferPool(capacity=4)
    a = pool.get(pfile, 0)
    b = pool.get(other, 0)
    assert a != b
    assert pool.misses == 2
