"""Walkthrough layer: sessions, frame model, metrics, replay drivers."""

import numpy as np
import pytest

from repro.errors import WalkthroughError
from repro.walkthrough.frame import FrameModel, peak_resident_bytes
from repro.walkthrough.memory import memory_report
from repro.walkthrough.metrics import FidelityMetric, frame_time_stats
from repro.walkthrough.session import (Session, Waypoint, make_session,
                                       street_lines, street_viewpoints)
from repro.walkthrough.visual import ReviewWalkthrough, VisualSystem


# -- sessions -------------------------------------------------------------

def test_make_session_builds_all_three(small_scene):
    bounds = small_scene.bounds()
    for number in (1, 2, 3):
        session = make_session(number, bounds, num_frames=25,
                               street_pitch=120.0)
        assert session.num_frames == 25
        for wp in session:
            assert bounds.inflated(1.0).contains_point(wp.position)
            assert np.isclose(np.linalg.norm(wp.direction_array()), 1.0)


def test_make_session_unknown_number(small_scene):
    with pytest.raises(WalkthroughError):
        make_session(5, small_scene.bounds())


def test_sessions_differ(small_scene):
    bounds = small_scene.bounds()
    s1 = make_session(1, bounds, num_frames=30, street_pitch=120.0)
    s3 = make_session(3, bounds, num_frames=30, street_pitch=120.0)
    p1 = [wp.position for wp in s1]
    p3 = [wp.position for wp in s3]
    assert p1 != p3


def test_session_3_revisits_positions(small_scene):
    """Back-and-forward motion passes through the same area repeatedly."""
    session = make_session(3, small_scene.bounds(), num_frames=80,
                           street_pitch=120.0)
    xs = [wp.position[0] for wp in session]
    increasing = sum(1 for a, b in zip(xs, xs[1:]) if b > a)
    decreasing = sum(1 for a, b in zip(xs, xs[1:]) if b < a)
    assert increasing > 10 and decreasing > 10


def test_empty_session_rejected():
    with pytest.raises(WalkthroughError):
        Session("empty", tuple())


def test_street_lines():
    from repro.geometry.aabb import AABB
    bounds = AABB((0, 0, 0), (500, 500, 100))
    lines = street_lines(bounds, pitch=120.0, axis=0)
    assert lines == [120.0, 240.0, 360.0, 480.0]
    assert street_lines(bounds, pitch=None) == [250.0]


def test_street_viewpoints_on_street_lines(small_scene):
    bounds = small_scene.bounds()
    points = street_viewpoints(bounds, 120.0, 30, seed=2)
    assert len(points) == 30
    xs = street_lines(bounds, 120.0, axis=0)
    ys = street_lines(bounds, 120.0, axis=1)
    for p in points:
        on_x_street = any(abs(p[0] - line) < 1e-9 for line in xs)
        on_y_street = any(abs(p[1] - line) < 1e-9 for line in ys)
        assert on_x_street or on_y_street


def test_street_viewpoints_deterministic(small_scene):
    bounds = small_scene.bounds()
    a = street_viewpoints(bounds, 120.0, 10, seed=5)
    b = street_viewpoints(bounds, 120.0, 10, seed=5)
    assert all(np.array_equal(x, y) for x, y in zip(a, b))


# -- frame model -------------------------------------------------------------

def test_frame_model_costs():
    model = FrameModel(polys_per_ms=1000.0, overhead_ms=2.0)
    assert model.render_ms(0) == 2.0
    assert model.render_ms(3000) == pytest.approx(5.0)
    assert model.frame_ms(10.0, 1000) == pytest.approx(13.0)
    with pytest.raises(ValueError):
        model.render_ms(-1)
    with pytest.raises(ValueError):
        model.frame_ms(-1.0, 0)


def test_frame_time_stats():
    stats = frame_time_stats([10.0, 20.0, 30.0])
    assert stats.mean_ms == pytest.approx(20.0)
    assert stats.variance == pytest.approx(200.0 / 3)
    assert stats.maximum_ms == 30.0
    assert stats.std_dev == pytest.approx((200.0 / 3) ** 0.5)
    with pytest.raises(WalkthroughError):
        frame_time_stats([])


# -- fidelity metric ----------------------------------------------------------

def test_fidelity_full_detail_is_one(env):
    from repro.core.search import HDoVSearch
    metric = FidelityMetric(env)
    search = HDoVSearch(env, "indexed-vertical")
    cell = max(env.grid.cell_ids(),
               key=lambda c: env.visibility.cell(c).num_visible)
    result = search.query_cell(cell, eta=0.0)
    assert metric.score_hdov(result) == pytest.approx(1.0)


def test_fidelity_penalises_missing_objects(env):
    metric = FidelityMetric(env)
    cell = max(env.grid.cell_ids(),
               key=lambda c: env.visibility.cell(c).num_visible)
    truth = metric.ground_truth(cell)
    assert truth
    # Render only half the visible objects at full detail.
    subset = dict(list(truth.items())[:len(truth) // 2])
    rendered = {oid: env.objects[oid].chain.finest.num_faces
                for oid in subset}
    score = metric.score_rendered(cell, rendered)
    assert score < 1.0
    missed = metric.missed_objects(cell, rendered)
    assert sorted(missed) == sorted(set(truth) - set(subset))


def test_fidelity_empty_cell_is_one(env):
    metric = FidelityMetric(env)
    empty = [c for c in env.grid.cell_ids()
             if env.visibility.cell(c).num_visible == 0]
    if not empty:
        pytest.skip("no empty cell")
    assert metric.score_rendered(empty[0], {}) == 1.0


def test_fidelity_internal_lod_below_full(env):
    from repro.core.search import HDoVSearch
    metric = FidelityMetric(env)
    search = HDoVSearch(env, "indexed-vertical")
    for cell in env.grid.cell_ids():
        result = search.query_cell(cell, eta=0.05)
        if result.internals:
            score = metric.score_hdov(result)
            assert 0.0 < score <= 1.0
            return
    pytest.skip("no internal terminations at this scale")


# -- replay drivers --------------------------------------------------------

@pytest.fixture(scope="module")
def session1(small_env):
    return make_session(1, small_env.scene.bounds(), num_frames=30,
                        street_pitch=120.0)


def test_visual_replay_produces_frames(env, session1):
    system = VisualSystem(env, eta=0.001)
    report = system.run(session1)
    assert len(report.frames) == session1.num_frames
    assert all(f.frame_ms > 0 for f in report.frames)
    assert report.avg_fidelity() == pytest.approx(1.0, abs=0.05)


def test_visual_same_cell_frames_are_io_free(env, session1):
    system = VisualSystem(env, eta=0.001)
    report = system.run(session1)
    cells = [f.cell_id for f in report.frames]
    repeats = [f for prev, f in zip(report.frames, report.frames[1:])
               if prev.cell_id == f.cell_id]
    if not repeats:
        pytest.skip("every frame crossed a cell")
    assert all(f.total_ios == 0 for f in repeats)


def test_review_replay_produces_frames(env, session1):
    system = ReviewWalkthrough(env, box_size=300.0)
    report = system.run(session1)
    assert len(report.frames) == session1.num_frames
    queried = [f for f in report.frames if f.total_ios > 0]
    assert queried                      # at least the first frame
    assert len(queried) < len(report.frames)   # hysteresis skips most


def test_memory_report(env, session1):
    system = VisualSystem(env, eta=0.001, evaluate_fidelity=False)
    report = system.run(session1)
    mem = memory_report("VISUAL", report.frames)
    assert mem.peak_bytes == peak_resident_bytes(report.frames)
    assert 0 < mem.mean_bytes <= mem.peak_bytes
    with pytest.raises(WalkthroughError):
        memory_report("X", [])


def test_visual_rejects_negative_eta(env):
    with pytest.raises(WalkthroughError):
        VisualSystem(env, eta=-1.0)
