"""Session recorder, mesh-exact DoV validator, and kNN queries."""

import json

import numpy as np
import pytest

from repro.errors import RTreeError, VisibilityError, WalkthroughError
from repro.geometry.aabb import AABB, pack_aabbs
from repro.geometry.primitives import box_mesh, icosphere
from repro.rtree.knn import knn_query, nearest_object
from repro.rtree.tree import RTree
from repro.visibility.exact import MeshDoVEstimator
from repro.visibility.raycast import RayCastDoVEstimator
from repro.walkthrough.recorder import (load_session, save_session,
                                        session_from_dict, session_to_dict)
from repro.walkthrough.session import make_session


# -- recorder ----------------------------------------------------------------

@pytest.fixture()
def session(small_scene):
    return make_session(2, small_scene.bounds(), num_frames=20,
                        street_pitch=120.0)


def test_session_roundtrip(session, tmp_path):
    path = str(tmp_path / "session.json")
    save_session(session, path)
    loaded = load_session(path)
    assert loaded.name == session.name
    assert loaded.num_frames == session.num_frames
    for a, b in zip(loaded, session):
        assert a.position == pytest.approx(b.position)
        assert a.direction == pytest.approx(b.direction)


def test_session_dict_roundtrip(session):
    assert session_from_dict(session_to_dict(session)).name == session.name


def test_session_bad_version(session):
    data = session_to_dict(session)
    data["version"] = 99
    with pytest.raises(WalkthroughError):
        session_from_dict(data)


def test_session_bad_frames(session):
    data = session_to_dict(session)
    data["frames"] = [{"position": [1, 2]}]
    with pytest.raises(WalkthroughError):
        session_from_dict(data)
    data["frames"] = []
    with pytest.raises(WalkthroughError):
        session_from_dict(data)


def test_session_corrupt_file(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(WalkthroughError):
        load_session(str(path))


def test_replay_identical_across_loads(session, tmp_path, small_env):
    """The paper's methodology: a recorded session replays identically."""
    from repro.walkthrough.visual import VisualSystem
    path = str(tmp_path / "s.json")
    save_session(session, path)
    loaded = load_session(path)
    run_a = VisualSystem(small_env, eta=0.002,
                         evaluate_fidelity=False).run(session)
    run_b = VisualSystem(small_env, eta=0.002,
                         evaluate_fidelity=False).run(loaded)
    # Compare the state-independent outputs: same cells visited, same
    # polygons rendered per frame.  (Simulated times vary with disk-head
    # positions carried across runs of the shared environment.)
    assert [f.cell_id for f in run_a.frames] == \
        [f.cell_id for f in run_b.frames]
    assert [f.polygons for f in run_a.frames] == \
        [f.polygons for f in run_b.frames]


# -- mesh-exact DoV vs AABB DoV --------------------------------------------

def test_exact_matches_boxes_for_box_meshes():
    """For box-shaped objects the AABB estimator *is* exact."""
    centers = [(15, 0, 0), (0, 20, 0), (-25, 0, 0)]
    meshes = [box_mesh(c, (4, 4, 4)) for c in centers]
    boxes = pack_aabbs([m.aabb() for m in meshes])
    approx = RayCastDoVEstimator(boxes, resolution=16)
    exact = MeshDoVEstimator(meshes, resolution=16)
    viewpoint = (0, 0, 0)
    a = approx.dov_from_viewpoint(viewpoint)
    e = exact.dov_from_viewpoint(viewpoint)
    assert set(a) == set(e)
    for oid in a:
        assert a[oid] == pytest.approx(e[oid], rel=1e-6)


def test_box_estimate_is_conservative_for_spheres():
    """A sphere's box over-estimates its DoV (never under-estimates)."""
    sphere = icosphere(radius=2.0, subdivisions=3, center=(12, 0, 0))
    approx = RayCastDoVEstimator(pack_aabbs([sphere.aabb()]),
                                 resolution=24)
    exact = MeshDoVEstimator([sphere], resolution=24)
    a = approx.dov_from_viewpoint((0, 0, 0))[0]
    e = exact.dov_from_viewpoint((0, 0, 0))[0]
    assert a >= e > 0.0


def test_exact_occlusion():
    wall = box_mesh((5, 0, 0), (1, 20, 20))
    hidden = box_mesh((15, 0, 0), (2, 2, 2))
    exact = MeshDoVEstimator([wall, hidden], resolution=16)
    dov = exact.dov_from_viewpoint((0, 0, 0))
    assert 0 in dov
    assert 1 not in dov


def test_exact_estimator_validation():
    with pytest.raises(VisibilityError):
        MeshDoVEstimator([])
    with pytest.raises(VisibilityError):
        MeshDoVEstimator([box_mesh((0, 0, 0), (1, 1, 1))], object_ids=[1, 2])


# -- kNN -------------------------------------------------------------------

def make_tree(positions):
    tree = RTree(max_entries=4)
    for i, pos in enumerate(positions):
        tree.insert(AABB.from_center_extent(pos, (1, 1, 1)), i)
    return tree


def test_knn_orders_by_distance():
    positions = [(10, 0, 0), (20, 0, 0), (5, 0, 0), (40, 0, 0)]
    tree = make_tree(positions)
    result = knn_query(tree, (0, 0, 0), 3)
    assert [oid for oid, _d in result] == [2, 0, 1]
    distances = [d for _oid, d in result]
    assert distances == sorted(distances)
    assert distances[0] == pytest.approx(4.5)   # box half-extent 0.5


def test_knn_matches_brute_force():
    rng = np.random.default_rng(3)
    positions = [tuple(rng.uniform(-50, 50, 3)) for _ in range(80)]
    tree = make_tree(positions)
    point = (5.0, -3.0, 2.0)
    result = knn_query(tree, point, 10)
    boxes = [AABB.from_center_extent(p, (1, 1, 1)) for p in positions]
    brute = sorted(range(80),
                   key=lambda i: boxes[i].min_distance_to_point(point))
    assert [oid for oid, _d in result] == brute[:10]


def test_knn_k_larger_than_tree():
    tree = make_tree([(0, 0, 0), (5, 0, 0)])
    assert len(knn_query(tree, (0, 0, 0), 10)) == 2


def test_knn_validation():
    tree = make_tree([(0, 0, 0)])
    with pytest.raises(RTreeError):
        knn_query(tree, (0, 0, 0), 0)
    assert nearest_object(tree, (9, 0, 0))[0] == 0
