"""Tests for the runtime lock-order witness and its agreement with RPR010.

The witness (`repro.concurrency.witness`) and the static checker
(`repro.analysis.concurrency`) consume the same lattice declaration
(`repro.concurrency.order`); the agreement suite at the bottom holds
them to it — each synthetic program is linted *and* executed under a
two-thread witness fixture, and the two verdicts must match.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
import threading
from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.concurrency import (BLOCKING_ALLOWED, LATTICE, LockOrderWitness,
                               current_witness, install, installed,
                               level_index, may_acquire, uninstall,
                               wrap_lock)
from repro.errors import LockOrderError, ReproError
from repro.obs import names
from repro.obs.metrics import use_registry

REPO_SRC = Path(__file__).resolve().parents[1] / "src"


# -- the lattice declaration -------------------------------------------------


def test_lattice_shape():
    assert LATTICE == ("serving.scheduler", "bufferpool", "pagedfile",
                       "journal", "obs.registry")
    assert BLOCKING_ALLOWED <= set(LATTICE)
    assert [level_index(level) for level in LATTICE] == [0, 1, 2, 3, 4]
    with pytest.raises(ValueError):
        level_index("not-a-level")


def test_may_acquire_is_strict_descent():
    for held in LATTICE:
        for wanted in LATTICE:
            expected = level_index(wanted) > level_index(held)
            assert may_acquire(held, wanted) == expected
    for wanted in LATTICE:
        assert may_acquire(None, wanted)


# -- wrap_lock / install plumbing --------------------------------------------


def test_wrap_lock_returns_raw_lock_when_off():
    assert current_witness() is None
    lock = threading.Lock()
    assert wrap_lock(lock, level="bufferpool", name="raw") is lock


def test_wrap_lock_validates_level_even_when_off():
    with pytest.raises(ValueError):
        wrap_lock(threading.Lock(), level="buferpool", name="typo")


def test_installed_scopes_and_restores():
    outer = LockOrderWitness()
    inner = LockOrderWitness()
    install(outer)
    try:
        with installed(inner) as witness:
            assert witness is inner
            assert current_witness() is inner
        assert current_witness() is outer
    finally:
        uninstall()
    assert current_witness() is None


def test_env_var_installs_witness():
    probe = ("from repro.concurrency.witness import current_witness; "
             "import sys; sys.exit(0 if current_witness() is not None "
             "else 1)")
    for value, expected in (("1", 0), ("true", 0), ("", 1)):
        proc = subprocess.run(
            [sys.executable, "-c", probe],
            env={"PYTHONPATH": str(REPO_SRC),
                 "REPRO_LOCK_WITNESS": value},
            capture_output=True)
        assert proc.returncode == expected, proc.stderr.decode()


# -- enforcement -------------------------------------------------------------


def test_in_order_acquisition_records_edges():
    with installed(LockOrderWitness()) as witness:
        upper = wrap_lock(threading.Lock(), level="bufferpool", name="u")
        lower = wrap_lock(threading.Lock(), level="pagedfile", name="l")
        with upper:
            with lower:
                pass
    assert witness.edges() == {("bufferpool", "pagedfile"): 1}
    assert witness.violations() == []


def test_out_of_order_raises_before_acquiring():
    with installed(LockOrderWitness()) as witness:
        raw = threading.Lock()
        upper = wrap_lock(raw, level="bufferpool", name="u")
        lower = wrap_lock(threading.Lock(), level="pagedfile", name="l")
        with lower:
            with pytest.raises(LockOrderError):
                upper.acquire()
        # Fail-fast means the underlying lock was never taken.
        assert raw.acquire(blocking=False)
        raw.release()
    assert len(witness.violations()) == 1
    assert witness.report()["violations_total"] == 1


def test_lock_order_error_is_a_repro_error():
    assert issubclass(LockOrderError, ReproError)


def test_same_level_distinct_locks_rejected():
    with installed(LockOrderWitness()):
        first = wrap_lock(threading.Lock(), level="bufferpool", name="a")
        second = wrap_lock(threading.Lock(), level="bufferpool", name="b")
        with first:
            with pytest.raises(LockOrderError):
                second.acquire()


def test_reentrant_acquisition_allowed():
    with installed(LockOrderWitness()) as witness:
        lock = wrap_lock(threading.RLock(), level="bufferpool", name="r")
        with lock:
            with lock:
                pass
    assert witness.edges() == {}
    assert witness.report()["acquisitions"] == {"bufferpool": 2}


def test_release_is_per_thread_lifo_tolerant():
    # Releasing in non-stack order must not corrupt the held stack.
    with installed(LockOrderWitness()) as witness:
        upper = wrap_lock(threading.Lock(), level="bufferpool", name="u")
        lower = wrap_lock(threading.Lock(), level="pagedfile", name="l")
        upper.acquire()
        lower.acquire()
        upper.release()
        lower.release()
        with upper:
            pass
    assert witness.violations() == []


def test_report_is_deterministic():
    def exercise() -> str:
        with installed(LockOrderWitness()) as witness:
            upper = wrap_lock(threading.Lock(), level="bufferpool",
                              name="u")
            lower = wrap_lock(threading.Lock(), level="pagedfile",
                              name="l")
            for _ in range(3):
                with upper:
                    with lower:
                        pass
        return json.dumps(witness.report(), sort_keys=True)

    assert exercise() == exercise()


def test_acquisitions_feed_metrics():
    with use_registry() as registry:
        with installed(LockOrderWitness()):
            lock = wrap_lock(threading.Lock(), level="bufferpool",
                             name="metered")
            with lock:
                pass
            other = wrap_lock(threading.Lock(), level="bufferpool",
                              name="peer")
            with other:
                with pytest.raises(LockOrderError):
                    lock.acquire()
        assert registry.value(names.LOCK_ACQUISITIONS,
                              level="bufferpool") == 2.0
        assert registry.value(names.LOCK_ORDER_VIOLATIONS,
                              level="bufferpool") == 1.0


def test_witnessed_buffer_pool_end_to_end():
    # The real storage stack, wrapped: pool churn must witness only the
    # sanctioned downward edges and zero violations.
    with installed(LockOrderWitness()) as witness, use_registry():
        from repro.storage import pageio
        from repro.storage.buffer import BufferPool
        from repro.storage.pagedfile import PagedFile

        pfile = PagedFile("witnessed", page_size=64)
        pool = BufferPool(2, name="witnessed")
        for _ in range(4):
            pageio.append_page(pfile, b"", component="test")
        for page in range(4):
            pool.put(pfile, page, b"x")
        for page in range(4):
            pool.get(pfile, page)
        pool.flush()
    for source, target in witness.edges():
        assert level_index(source) < level_index(target)
    assert witness.violations() == []


# -- static/dynamic agreement ------------------------------------------------
#
# Each program declares leveled lock classes the same way the real tree
# does (LOCK_LEVEL + wrap_lock at construction).  The static verdict is
# whether `repro lint` raises RPR010 on the source; the dynamic verdict
# is whether a two-thread witness fixture raises LockOrderError.  The
# two must agree — that is the whole point of sharing the lattice.

GOOD_PROGRAM = """
    import threading

    from repro.concurrency.witness import wrap_lock


    class Lower:
        LOCK_LEVEL = "bufferpool"

        def __init__(self):
            self._lock = wrap_lock(threading.RLock(),
                                   level=Lower.LOCK_LEVEL, name="lower")

        def poke(self):
            with self._lock:
                pass


    class Upper:
        LOCK_LEVEL = "serving.scheduler"

        def __init__(self, lower):
            self._lock = wrap_lock(threading.RLock(),
                                   level=Upper.LOCK_LEVEL, name="upper")
            self._lower: "Lower" = lower

        def drive(self):
            with self._lock:
                self._lower.poke()
    """

CYCLIC_PROGRAM = GOOD_PROGRAM + """

    class Climber:
        LOCK_LEVEL = "bufferpool"

        def __init__(self):
            self._lock = wrap_lock(threading.RLock(),
                                   level=Climber.LOCK_LEVEL,
                                   name="climber")
            self._upper: "Upper" = None

        def attach(self, upper):
            self._upper = upper

        def climb(self):
            with self._lock:
                self._upper.drive()
    """

SAME_LEVEL_PROGRAM = """
    import threading

    from repro.concurrency.witness import wrap_lock


    class RightPool:
        LOCK_LEVEL = "bufferpool"

        def __init__(self):
            self._lock = wrap_lock(threading.RLock(),
                                   level=RightPool.LOCK_LEVEL,
                                   name="right")

        def poke(self):
            with self._lock:
                pass


    class LeftPool:
        LOCK_LEVEL = "bufferpool"

        def __init__(self, peer):
            self._lock = wrap_lock(threading.RLock(),
                                   level=LeftPool.LOCK_LEVEL,
                                   name="left")
            self._peer: "RightPool" = peer

        def steal(self):
            with self._lock:
                self._peer.poke()
    """


def _static_flags_rpr010(tmp_path, source: str) -> bool:
    path = tmp_path / "program.py"
    path.write_text(textwrap.dedent(source))
    result = lint_paths([str(tmp_path)])
    return "RPR010" in {d.code for d in result.diagnostics}


def _run_two_threads(*thunks) -> list:
    """Run the thunks concurrently; returns LockOrderErrors they raised."""
    barrier = threading.Barrier(len(thunks))
    errors = []
    errors_lock = threading.Lock()

    def runner(thunk):
        barrier.wait()
        for _ in range(20):
            try:
                thunk()
            except LockOrderError as exc:
                with errors_lock:
                    errors.append(exc)
                return

    threads = [threading.Thread(target=runner, args=(t,)) for t in thunks]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


def _exec_program(source: str) -> dict:
    namespace: dict = {}
    exec(compile(textwrap.dedent(source), "<agreement>", "exec"),
         namespace)
    return namespace


def _dynamic_raises(source: str, build_and_drive) -> bool:
    with installed(LockOrderWitness()), use_registry():
        namespace = _exec_program(source)
        thunks = build_and_drive(namespace)
        errors = _run_two_threads(*thunks)
    return bool(errors)


def _drive_good(ns):
    upper = ns["Upper"](ns["Lower"]())
    return (upper.drive, upper.drive)


def _drive_cyclic(ns):
    lower = ns["Lower"]()
    upper = ns["Upper"](lower)
    climber = ns["Climber"]()
    climber.attach(upper)
    return (upper.drive, climber.climb)


def _drive_same_level(ns):
    right = ns["RightPool"]()
    left = ns["LeftPool"](right)
    return (left.steal, right.poke)


def test_cli_locks_exit_codes_and_determinism(tmp_path, capsys):
    from repro.cli import main as cli_main

    good = tmp_path / "good"
    good.mkdir()
    (good / "program.py").write_text(textwrap.dedent(GOOD_PROGRAM))
    bad = tmp_path / "bad"
    bad.mkdir()
    (bad / "program.py").write_text(textwrap.dedent(SAME_LEVEL_PROGRAM))

    assert cli_main(["locks", str(good)]) == 0
    first = capsys.readouterr().out
    assert cli_main(["locks", str(good)]) == 0
    assert capsys.readouterr().out == first, "repro locks is not stable"
    payload = json.loads(first)
    assert payload["static"]["violations"] == []
    assert payload["witnessed"]["violations"] == []
    assert payload["witnessed"]["edges"], "demo exercise witnessed nothing"

    assert cli_main(["locks", str(bad)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["static"]["violations"]

    assert cli_main(["locks", str(tmp_path / "missing")]) == 2
    capsys.readouterr()


AGREEMENT_CASES = [
    ("good", GOOD_PROGRAM, _drive_good, False),
    ("cyclic", CYCLIC_PROGRAM, _drive_cyclic, True),
    ("same-level", SAME_LEVEL_PROGRAM, _drive_same_level, True),
]


@pytest.mark.parametrize("name,source,driver,expected",
                         AGREEMENT_CASES,
                         ids=[case[0] for case in AGREEMENT_CASES])
def test_static_and_dynamic_agree(name, source, driver, expected,
                                  tmp_path):
    static = _static_flags_rpr010(tmp_path, source)
    dynamic = _dynamic_raises(source, driver)
    assert static == dynamic, (
        f"{name}: static checker says {static}, witness says {dynamic} "
        f"— the two halves have drifted apart")
    assert static == expected
