"""Blob object store tests."""

import pytest

from repro.errors import StorageError
from repro.storage.disk import DiskModel, IOStats
from repro.storage.objectstore import ObjectStore
from repro.storage.pagedfile import PagedFile


def make_store(scale=1.0, page_size=256):
    pf = PagedFile("blobs", page_size=page_size,
                   disk=DiskModel(seek_ms=10.0, transfer_ms=1.0,
                                  readahead_pages=1),
                   stats=IOStats())
    return ObjectStore(pf, scale=scale)


def test_put_and_fetch_counts_pages():
    store = make_store()
    ref = store.put(1000)          # 1000 bytes / 256 page -> 4 pages
    assert ref.num_pages == 4
    store.pfile.stats.reset()
    store.fetch(ref.blob_id)
    assert store.pfile.stats.reads == 4
    assert store.pfile.stats.seeks == 1
    assert store.pfile.stats.sequential_reads == 3


def test_zero_byte_blob_occupies_one_page():
    store = make_store()
    ref = store.put(0)
    assert ref.num_pages == 1


def test_scale_shrinks_physical_size():
    store = make_store(scale=0.1)
    ref = store.put(10000)          # 1000 physical -> 4 pages
    assert ref.num_pages == 4
    assert ref.logical_bytes == 10000


def test_fetch_prefix_costs_proportional_pages():
    store = make_store()
    ref = store.put(2560)           # 10 pages
    assert ref.num_pages == 10
    store.pfile.stats.reset()
    pages = store.fetch_prefix(ref.blob_id, 512)
    assert pages == 2
    assert store.pfile.stats.reads == 2


def test_fetch_prefix_clamps_to_blob():
    store = make_store()
    ref = store.put(256)
    pages = store.fetch_prefix(ref.blob_id, 10 ** 6)
    assert pages == ref.num_pages


def test_fetch_prefix_minimum_one_page():
    store = make_store()
    ref = store.put(1000)
    assert store.fetch_prefix(ref.blob_id, 1) == 1


def test_unknown_blob():
    store = make_store()
    with pytest.raises(StorageError):
        store.fetch(99)


def test_invalid_args():
    with pytest.raises(StorageError):
        make_store(scale=0.0)
    store = make_store()
    with pytest.raises(StorageError):
        store.put(-1)
    ref = store.put(10)
    with pytest.raises(StorageError):
        store.fetch_prefix(ref.blob_id, -5)


def test_totals():
    store = make_store()
    store.put(100)
    store.put(300)
    assert store.num_blobs == 2
    assert store.logical_bytes_total == 400
    # 100 B -> 1 page, 300 B -> 2 pages.
    assert store.physical_bytes_total == 3 * 256


def test_payload_roundtrip():
    store = make_store()
    payload = bytes(range(200)) * 3
    ref = store.put(len(payload), payload=payload)
    data = store.fetch(ref.blob_id)
    assert data[:len(payload)] == payload


def test_blobs_allocated_contiguously():
    store = make_store()
    a = store.put(256)
    b = store.put(256)
    assert b.first_page == a.first_page + a.num_pages
