"""Frustum-prioritized traversal: exactness and time-to-renderable."""

import numpy as np
import pytest

from repro.core.priority import PrioritizedSearch
from repro.core.search import HDoVSearch
from repro.geometry.frustum import Camera


def busiest_cells(env, limit=4):
    return sorted(env.grid.cell_ids(),
                  key=lambda c: -env.visibility.cell(c).num_visible)[:limit]


def camera_at(env, cell_id, direction=(1.0, 0.0, 0.0)):
    return Camera(position=env.grid.cell_center(cell_id),
                  direction=direction, up=(0, 0, 1), fov_deg=70.0,
                  far=5000.0)


@pytest.mark.parametrize("eta", [0.0, 0.01])
def test_union_equals_plain_search(env, eta):
    """Phase 1 + phase 2 together reproduce the plain answer exactly."""
    prioritized = PrioritizedSearch(env, "indexed-vertical",
                                    fetch_models=False)
    plain = HDoVSearch(env, "indexed-vertical", fetch_models=False)
    for cell_id in busiest_cells(env):
        cam = camera_at(env, cell_id)
        result = prioritized.query(cam, eta)
        plain.scheme.current_cell = None
        expected = plain.query_cell(cell_id, eta)
        assert result.completed.object_ids() == expected.object_ids()
        assert sorted(i.node_offset for i in result.completed.internals) \
            == sorted(i.node_offset for i in expected.internals)


def test_phases_are_disjoint(env):
    prioritized = PrioritizedSearch(env, "indexed-vertical",
                                    fetch_models=False)
    for cell_id in busiest_cells(env):
        cam = camera_at(env, cell_id)
        result = prioritized.query(cam, 0.0)
        phase1 = set(result.in_frustum.object_ids())
        all_ids = result.completed.object_ids()
        assert len(all_ids) == len(set(all_ids))       # no duplicates
        assert phase1 <= set(all_ids)


def test_phase1_objects_intersect_frustum(env):
    prioritized = PrioritizedSearch(env, "indexed-vertical",
                                    fetch_models=False)
    cell_id = busiest_cells(env)[0]
    cam = camera_at(env, cell_id)
    frustum = cam.frustum()
    result = prioritized.query(cam, 0.0)
    for obj in result.in_frustum.objects:
        mbr = env.objects[obj.object_id].chain.finest.aabb()
        assert frustum.intersects_aabb(mbr)


def test_first_phase_is_faster_than_total(env):
    prioritized = PrioritizedSearch(env, "indexed-vertical")
    improved = 0
    for cell_id in busiest_cells(env):
        cam = camera_at(env, cell_id)
        env.reset_stats()
        result = prioritized.query(cam, 0.0)
        assert result.first_phase_ms <= result.total_ms + 1e-9
        if (result.in_frustum.num_results
                < result.completed.num_results):
            assert result.first_phase_ms < result.total_ms
            improved += 1
    assert improved > 0     # the frustum genuinely delays some work


def test_narrow_frustum_small_first_phase(env):
    """A narrow field of view leaves most retrieval to phase 2."""
    prioritized = PrioritizedSearch(env, "indexed-vertical",
                                    fetch_models=False)
    cell_id = busiest_cells(env)[0]
    narrow = Camera(position=env.grid.cell_center(cell_id),
                    direction=(1, 0, 0), up=(0, 0, 1), fov_deg=10.0,
                    far=5000.0)
    wide = camera_at(env, cell_id)
    narrow_result = prioritized.query(narrow, 0.0)
    wide_result = prioritized.query(wide, 0.0)
    assert narrow_result.in_frustum.num_results <= \
        wide_result.in_frustum.num_results
    assert narrow_result.completed.object_ids() == \
        wide_result.completed.object_ids()


def test_speedup_property(env):
    prioritized = PrioritizedSearch(env, "indexed-vertical")
    cam = camera_at(env, busiest_cells(env)[0])
    env.reset_stats()
    result = prioritized.query(cam, 0.0)
    assert result.speedup >= 1.0
