"""Naive and REVIEW baseline tests."""

import numpy as np
import pytest

from repro.baselines.naive import NaiveCellList
from repro.baselines.review import DistanceLODPolicy, ReviewSystem
from repro.errors import HDoVError, WalkthroughError


@pytest.fixture(scope="module")
def naive(small_env):
    return NaiveCellList(small_env)


def busiest_cell(env):
    return max(env.grid.cell_ids(),
               key=lambda c: env.visibility.cell(c).num_visible)


# -- naive -------------------------------------------------------------------

def test_naive_returns_visible_set(env, naive):
    cell = busiest_cell(env)
    result = naive.query_cell(cell)
    assert result.object_ids() == env.visibility.cell(cell).visible_ids()


def test_naive_dov_values_roundtrip(env, naive):
    cell = busiest_cell(env)
    result = naive.query_cell(cell)
    truth = env.visibility.cell(cell)
    for oid, dov in result.objects:
        assert dov == pytest.approx(truth.get(oid), abs=1e-6)


def test_naive_reads_run_sequentially(env, naive):
    cell = busiest_cell(env)
    env.reset_stats()
    naive.reset_io_head()
    result = naive.query_cell(cell)
    light = env.light_stats
    assert light.reads == result.list_pages_read
    assert light.seeks == 1      # one seek, rest sequential


def test_naive_fetches_models(env, naive):
    cell = busiest_cell(env)
    env.reset_stats()
    result = naive.query_cell(cell)
    assert env.heavy_stats.total_ios > 0
    assert result.total_model_bytes > 0


def test_naive_empty_cell(env, naive):
    empty_cells = [c for c in env.grid.cell_ids()
                   if env.visibility.cell(c).num_visible == 0]
    if not empty_cells:
        pytest.skip("no fully-occluded cell in this scene")
    result = naive.query_cell(empty_cells[0])
    assert result.num_results == 0


def test_naive_bad_cell(env, naive):
    with pytest.raises(HDoVError):
        naive.query_cell(10 ** 6)


def test_naive_query_point(env, naive):
    cell = busiest_cell(env)
    point = env.grid.cell_center(cell)
    assert naive.query_point(point).object_ids() == \
        naive.query_cell(cell).object_ids()


# -- distance LoD policy ----------------------------------------------------

def test_distance_policy_levels():
    policy = DistanceLODPolicy(thresholds=(10.0, 20.0, 30.0))
    assert policy.fraction_for_distance(5.0) == 1.0
    assert policy.fraction_for_distance(15.0) == pytest.approx(2 / 3)
    assert policy.fraction_for_distance(25.0) == pytest.approx(1 / 3)
    assert policy.fraction_for_distance(100.0) == 0.0
    with pytest.raises(WalkthroughError):
        policy.fraction_for_distance(-1.0)


def test_distance_policy_single_level():
    policy = DistanceLODPolicy(thresholds=())
    assert policy.fraction_for_distance(1e9) == 1.0


# -- REVIEW -------------------------------------------------------------------

def test_review_returns_window_contents(env):
    review = ReviewSystem(env, box_size=300.0)
    point = env.grid.cell_center(busiest_cell(env))
    result = review.query(point)
    box = review.query_box_at(point)
    expected = sorted(env.tree.window_query(box))
    assert result.object_ids == expected


def test_review_includes_hidden_objects(env):
    """The spatial method's waste: it retrieves objects the viewer
    cannot see."""
    review = ReviewSystem(env, box_size=400.0)
    cell = busiest_cell(env)
    point = env.grid.cell_center(cell)
    result = review.query(point)
    visible = set(env.visibility.cell(cell).visible_ids())
    hidden_fetched = [oid for oid in result.object_ids
                      if oid not in visible]
    assert hidden_fetched       # at least one invisible object fetched


def test_review_misses_far_visible_objects(env):
    """The spatial method's shortsightedness (Figure 11)."""
    review = ReviewSystem(env, box_size=120.0)
    missed_any = False
    for cell in env.grid.cell_ids():
        visible = set(env.visibility.cell(cell).visible_ids())
        if not visible:
            continue
        point = env.grid.cell_center(cell)
        result = review.query(point)
        if visible - set(result.object_ids):
            missed_any = True
            break
    assert missed_any


def test_review_complement_search_skips_cached(env):
    review = ReviewSystem(env, box_size=300.0)
    point = env.grid.cell_center(busiest_cell(env))
    first = review.query(point)
    assert sorted(first.fetched_ids) == first.object_ids
    second = review.query(point + np.array([1.0, 0.0, 0.0]))
    # Nearly identical box: almost everything served from cache.
    assert len(second.fetched_ids) < len(second.object_ids) + 1
    assert review.cache_hits > 0


def test_review_frame_requery_hysteresis(env):
    review = ReviewSystem(env, box_size=200.0, requery_fraction=0.5)
    point = env.grid.cell_center(busiest_cell(env))
    _result, queried = review.frame(point)
    assert queried
    _result, queried = review.frame(point + np.array([10.0, 0, 0]))
    assert not queried          # within the 50 m slack
    _result, queried = review.frame(point + np.array([80.0, 0, 0]))
    assert queried
    assert review.queries_issued == 2


def test_review_cache_budget_evicts_farthest(env):
    review = ReviewSystem(env, box_size=400.0, cache_budget_bytes=1)
    point = env.grid.cell_center(busiest_cell(env))
    review.query(point)
    # Budget of 1 byte: everything evictable is evicted.
    assert review.resident_bytes <= max(
        (env.objects[o].bytes_for_fraction(1.0)
         for o in env.objects), default=0)
    assert review.resident_count <= 1


def test_review_charges_node_and_model_io(env):
    review = ReviewSystem(env, box_size=300.0)
    env.reset_stats()
    point = env.grid.cell_center(busiest_cell(env))
    result = review.query(point)
    assert result.nodes_read > 0
    assert env.light_stats.total_ios >= result.nodes_read
    assert env.heavy_stats.total_ios > 0


def test_review_validation(env):
    with pytest.raises(WalkthroughError):
        ReviewSystem(env, box_size=0.0)
    with pytest.raises(WalkthroughError):
        ReviewSystem(env, box_size=100.0, requery_fraction=2.0)
