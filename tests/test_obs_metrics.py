"""Metrics registry: instruments, labels, snapshot/delta, scoping."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (MetricsRegistry, format_series, get_registry,
                               use_registry)


def test_counter_basics():
    reg = MetricsRegistry()
    c = reg.counter("requests_total", kind="read")
    c.inc()
    c.inc(2.5)
    assert reg.value("requests_total", kind="read") == pytest.approx(3.5)
    # Unlabelled same-name series is independent.
    assert reg.value("requests_total") == 0.0


def test_counter_rejects_negative():
    reg = MetricsRegistry()
    with pytest.raises(ObservabilityError):
        reg.counter("c").inc(-1)


def test_handles_are_memoized():
    reg = MetricsRegistry()
    a = reg.counter("c", file="tree")
    b = reg.counter("c", file="tree")
    assert a is b
    assert reg.counter("c", file="models") is not a


def test_kind_mismatch_rejected():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ObservabilityError):
        reg.gauge("x")


def test_gauge_moves_both_ways():
    reg = MetricsRegistry()
    g = reg.gauge("resident_pages", pool="p")
    g.set(10)
    g.dec(3)
    g.inc()
    assert reg.value("resident_pages", pool="p") == 8


def test_histogram_summary():
    reg = MetricsRegistry()
    h = reg.histogram("frame_ms")
    for v in (2.0, 4.0, 6.0):
        h.observe(v)
    assert h.count == 3
    assert h.mean == pytest.approx(4.0)
    collected = reg.collect()
    assert collected["frame_ms_count"] == 3
    assert collected["frame_ms_sum"] == pytest.approx(12.0)
    assert collected["frame_ms_min"] == pytest.approx(2.0)
    assert collected["frame_ms_max"] == pytest.approx(6.0)


def test_format_series():
    assert format_series("m", ()) == "m"
    assert format_series("m", (("a", "1"), ("b", "x"))) == 'm{a="1",b="x"}'


def test_snapshot_delta():
    reg = MetricsRegistry()
    c = reg.counter("ops", file="a")
    c.inc(5)
    snap = reg.snapshot()
    c.inc(2)
    reg.counter("ops", file="b").inc(1)
    delta = reg.delta(snap)
    assert delta == {'ops{file="a"}': 2.0, 'ops{file="b"}': 1.0}


def test_delta_skips_histogram_extremes():
    reg = MetricsRegistry()
    h = reg.histogram("t")
    h.observe(5.0)
    snap = reg.snapshot()
    h.observe(1.0)
    delta = reg.delta(snap)
    assert delta["t_count"] == 1.0
    assert delta["t_sum"] == pytest.approx(1.0)
    assert not any(k.startswith("t_min") or k.startswith("t_max")
                   for k in delta)


def test_reset_keeps_handles_valid():
    reg = MetricsRegistry()
    c = reg.counter("ops")
    c.inc(7)
    reg.reset()
    assert reg.value("ops") == 0.0
    c.inc()                          # the cached handle still works
    assert reg.value("ops") == 1.0


def test_use_registry_scoping():
    before = get_registry()
    with use_registry() as scoped:
        assert get_registry() is scoped
        assert scoped is not before
        scoped.counter("inner").inc()
    assert get_registry() is before
    assert before.value("inner") == 0.0
