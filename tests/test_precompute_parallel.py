"""Batched/parallel/resumable precompute: the determinism contract.

The pipeline promises that the resulting table is *bit-identical* —
compared via :func:`repro.visibility.persist.visibility_digest` — across
the seed per-viewpoint path, the batched kernel at any batch size, any
worker count, and fresh-vs-resumed runs.  These tests are the contract's
enforcement alongside the CI determinism gate.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.errors import VisibilityError
from repro.obs.metrics import use_registry
from repro.visibility.cache import PrecomputeCache, precompute_fingerprint
from repro.visibility.dov import CellVisibility, VisibilityTable
from repro.visibility.persist import visibility_digest
from repro.visibility.precompute import precompute_visibility
from repro.visibility.raycast import RayCastDoVEstimator

RESOLUTION = 8
SAMPLES = 3


def seed_path_table(scene, grid, *, resolution=RESOLUTION, samples=SAMPLES,
                    min_dov=0.0):
    """The seed implementation: per-viewpoint casts merged through dicts."""
    estimator = RayCastDoVEstimator(scene.packed_mbrs(),
                                    object_ids=scene.object_ids(),
                                    resolution=resolution)
    table = VisibilityTable(grid.num_cells)
    for cell_id in grid.cell_ids():
        viewpoints = grid.sample_viewpoints(cell_id, samples=samples)
        merged = {}
        for viewpoint in viewpoints:
            for oid, value in estimator.dov_from_viewpoint(
                    viewpoint).items():
                if value > merged.get(oid, 0.0):
                    merged[oid] = value
        cell = CellVisibility(cell_id)
        for oid, value in merged.items():
            if value > min_dov:
                cell.set(oid, value)
        table.put(cell)
    return table


@pytest.fixture(scope="module")
def seed_digest(small_scene, small_grid):
    return visibility_digest(seed_path_table(small_scene, small_grid))


def test_batched_matches_seed_path_to_the_bit(small_scene, small_grid,
                                              seed_digest):
    for batch_cells in (1, 4, 64):
        table = precompute_visibility(small_scene, small_grid,
                                      resolution=RESOLUTION,
                                      samples_per_cell=SAMPLES,
                                      batch_cells=batch_cells)
        assert visibility_digest(table) == seed_digest


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_matches_seed_path_to_the_bit(small_scene, small_grid,
                                               seed_digest, workers):
    table = precompute_visibility(small_scene, small_grid,
                                  resolution=RESOLUTION,
                                  samples_per_cell=SAMPLES,
                                  workers=workers, batch_cells=4)
    assert visibility_digest(table) == seed_digest


def test_region_dov_batched_equals_pointwise(small_scene, small_grid):
    estimator = RayCastDoVEstimator(small_scene.packed_mbrs(),
                                    object_ids=small_scene.object_ids(),
                                    resolution=RESOLUTION)
    viewpoints = small_grid.sample_viewpoints(0, samples=5)
    batched = estimator.dov_from_region(viewpoints)
    pointwise = estimator._dov_from_region_pointwise(viewpoints)
    assert batched == pointwise                 # bit equality, not approx


def test_duplicate_object_ids_take_pointwise_path():
    boxes = np.array([[5.0, -1, -1, 6, 1, 1], [8.0, -1, -1, 9, 1, 1]])
    estimator = RayCastDoVEstimator(boxes, object_ids=[7, 7], resolution=8)
    assert not estimator._unique_ids
    region = estimator.dov_from_region([(0.0, 0.0, 0.0)])
    assert region == estimator._dov_from_region_pointwise([(0.0, 0.0, 0.0)])


def test_min_dov_filter_parity(small_scene, small_grid):
    floor = 0.01
    expected = visibility_digest(seed_path_table(small_scene, small_grid,
                                                 min_dov=floor))
    table = precompute_visibility(small_scene, small_grid,
                                  resolution=RESOLUTION,
                                  samples_per_cell=SAMPLES, min_dov=floor)
    assert visibility_digest(table) == expected


def test_progress_callback_reaches_total(small_scene, small_grid):
    seen = []
    precompute_visibility(small_scene, small_grid, resolution=RESOLUTION,
                          batch_cells=2,
                          progress=lambda done, total: seen.append(
                              (done, total)))
    assert seen[0][0] == 0
    assert seen[-1] == (small_grid.num_cells, small_grid.num_cells)
    assert [d for d, _t in seen] == sorted(d for d, _t in seen)


def test_precompute_counters(small_scene, small_grid, tmp_path):
    cache = str(tmp_path / "cache")
    with use_registry() as registry:
        precompute_visibility(small_scene, small_grid,
                              resolution=RESOLUTION, cache_dir=cache)
        assert registry.value("precompute_cells_total") == \
            small_grid.num_cells
        assert registry.value("precompute_cells_cached_total") == 0
        assert registry.value("precompute_rays_total") == \
            small_grid.num_cells * 6 * RESOLUTION ** 2
    with use_registry() as registry:
        precompute_visibility(small_scene, small_grid,
                              resolution=RESOLUTION, cache_dir=cache,
                              resume=True)
        assert registry.value("precompute_cells_cached_total") == \
            small_grid.num_cells
        assert registry.value("precompute_rays_total") == 0


# -- resumable cache ---------------------------------------------------------

def test_resume_after_interruption_is_bit_identical(small_scene, small_grid,
                                                    seed_digest, tmp_path):
    cache_dir = str(tmp_path / "cache")
    full = precompute_visibility(small_scene, small_grid,
                                 resolution=RESOLUTION,
                                 samples_per_cell=SAMPLES,
                                 cache_dir=cache_dir)
    assert visibility_digest(full) == seed_digest

    # Simulate an interrupted run: keep only the first half of the
    # cell records, with the final line torn mid-write.
    cells_path = os.path.join(cache_dir, "cells.jsonl")
    with open(cells_path) as fh:
        lines = fh.readlines()
    keep = lines[:len(lines) // 2]
    with open(cells_path, "w") as fh:
        fh.writelines(keep)
        fh.write(lines[len(lines) // 2][:10])   # torn tail, no newline
    resumed = precompute_visibility(small_scene, small_grid,
                                    resolution=RESOLUTION,
                                    samples_per_cell=SAMPLES,
                                    cache_dir=cache_dir, resume=True)
    assert visibility_digest(resumed) == seed_digest


def test_stale_cache_fingerprint_refuses_resume(small_scene, small_grid,
                                                tmp_path):
    cache_dir = str(tmp_path / "cache")
    precompute_visibility(small_scene, small_grid, resolution=RESOLUTION,
                          cache_dir=cache_dir)
    with pytest.raises(VisibilityError, match="stale"):
        # Different resolution -> different fingerprint.
        precompute_visibility(small_scene, small_grid, resolution=16,
                              cache_dir=cache_dir, resume=True)
    # Without resume the stale cache is overwritten, not an error.
    table = precompute_visibility(small_scene, small_grid, resolution=16,
                                  cache_dir=cache_dir)
    assert table.num_cells == small_grid.num_cells


def test_corrupt_interior_cache_line_raises(small_scene, small_grid,
                                            tmp_path):
    cache_dir = str(tmp_path / "cache")
    precompute_visibility(small_scene, small_grid, resolution=RESOLUTION,
                          cache_dir=cache_dir)
    cells_path = os.path.join(cache_dir, "cells.jsonl")
    with open(cells_path) as fh:
        lines = fh.readlines()
    lines[0] = "not json\n"
    with open(cells_path, "w") as fh:
        fh.writelines(lines)
    with pytest.raises(VisibilityError, match="cells.jsonl"):
        precompute_visibility(small_scene, small_grid,
                              resolution=RESOLUTION,
                              cache_dir=cache_dir, resume=True)


def test_corrupt_manifest_raises(small_scene, small_grid, tmp_path):
    cache_dir = str(tmp_path / "cache")
    precompute_visibility(small_scene, small_grid, resolution=RESOLUTION,
                          cache_dir=cache_dir)
    manifest = os.path.join(cache_dir, "manifest.json")
    with open(manifest, "w") as fh:
        fh.write("{broken")
    with pytest.raises(VisibilityError, match="manifest.json"):
        precompute_visibility(small_scene, small_grid,
                              resolution=RESOLUTION,
                              cache_dir=cache_dir, resume=True)


def test_cache_rejects_out_of_range_records(tmp_path):
    fingerprint = "f" * 64
    cache_dir = str(tmp_path / "cache")
    with PrecomputeCache.open(cache_dir, fingerprint, num_cells=4,
                              resume=False) as cache:
        cache.record(1, {3: 0.5})
    cells_path = os.path.join(cache_dir, "cells.jsonl")
    with open(cells_path, "a") as fh:
        fh.write(json.dumps({"cell": 99, "dov": {}}) + "\n")
    with pytest.raises(VisibilityError, match="out of range"):
        PrecomputeCache.open(cache_dir, fingerprint, num_cells=4,
                             resume=True)


def test_cache_round_trips_dov_floats_exactly(tmp_path):
    fingerprint = "a" * 64
    cache_dir = str(tmp_path / "cache")
    values = {1: 0.1 + 0.2, 2: 1.0 / 3.0, 3: 5e-324, 4: 1.0}
    with PrecomputeCache.open(cache_dir, fingerprint, num_cells=2,
                              resume=False) as cache:
        cache.record(0, values)
    reopened = PrecomputeCache.open(cache_dir, fingerprint, num_cells=2,
                                    resume=True)
    try:
        assert reopened.loaded == {0: values}   # bitwise float equality
    finally:
        reopened.close()


def test_fingerprint_sensitivity(small_scene, small_grid):
    boxes = small_scene.packed_mbrs()
    ids = np.asarray(small_scene.object_ids())
    base = precompute_fingerprint(boxes, ids, small_grid, 16, 1, 0.0)
    assert precompute_fingerprint(boxes, ids, small_grid, 32, 1, 0.0) != base
    assert precompute_fingerprint(boxes, ids, small_grid, 16, 2, 0.0) != base
    assert precompute_fingerprint(boxes, ids, small_grid, 16, 1, 0.1) != base
    shifted = boxes.copy()
    shifted[0, 0] += 1.0
    assert precompute_fingerprint(shifted, ids, small_grid, 16, 1,
                                  0.0) != base


def test_custom_estimator_rejected_with_workers(small_scene, small_grid):
    class Custom(RayCastDoVEstimator):
        pass

    estimator = Custom(small_scene.packed_mbrs(),
                       object_ids=small_scene.object_ids(), resolution=8)
    with pytest.raises(VisibilityError, match="workers"):
        precompute_visibility(small_scene, small_grid, estimator=estimator,
                              workers=2)
    # Serial use of a custom estimator stays supported.
    table = precompute_visibility(small_scene, small_grid,
                                  estimator=estimator)
    assert table.num_cells == small_grid.num_cells
