"""Error hierarchy and vector helper coverage."""

import numpy as np
import pytest

from repro import errors
from repro.geometry.vec import (as_vec3, distance, normalize,
                                normalize_rows)


# -- error hierarchy ----------------------------------------------------------

def test_all_errors_derive_from_base():
    subclasses = [
        errors.GeometryError, errors.StorageError,
        errors.PageNotFoundError, errors.BufferPoolError,
        errors.SerializationError, errors.RTreeError,
        errors.VisibilityError, errors.HDoVError, errors.SchemeError,
        errors.WalkthroughError, errors.ExperimentError,
    ]
    for cls in subclasses:
        assert issubclass(cls, errors.ReproError)


def test_storage_specializations():
    assert issubclass(errors.PageNotFoundError, errors.StorageError)
    assert issubclass(errors.BufferPoolError, errors.StorageError)
    assert issubclass(errors.SerializationError, errors.StorageError)
    assert issubclass(errors.SchemeError, errors.HDoVError)


def test_one_except_catches_everything():
    with pytest.raises(errors.ReproError):
        raise errors.SchemeError("x")


# -- vec helpers -----------------------------------------------------------

def test_as_vec3_coerces_and_validates():
    vec = as_vec3([1, 2, 3])
    assert vec.dtype == np.float64
    assert vec.shape == (3,)
    with pytest.raises(errors.GeometryError):
        as_vec3([1, 2])
    with pytest.raises(errors.GeometryError):
        as_vec3([1, 2, np.nan])


def test_normalize():
    assert np.allclose(normalize((0, 3, 4)), (0, 0.6, 0.8))
    with pytest.raises(errors.GeometryError):
        normalize((0, 0, 0))


def test_normalize_rows():
    rows = normalize_rows(np.array([[2.0, 0, 0], [0, 0, 5.0]]))
    assert np.allclose(rows, [[1, 0, 0], [0, 0, 1]])
    with pytest.raises(errors.GeometryError):
        normalize_rows(np.array([[0.0, 0, 0]]))


def test_distance():
    assert distance((0, 0, 0), (3, 4, 0)) == pytest.approx(5.0)
    assert distance((1, 1, 1), (1, 1, 1)) == 0.0
