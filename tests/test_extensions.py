"""Extension experiments and the cached node store."""

import pytest

from repro.core.search import HDoVSearch
from repro.experiments.config import SMALL
from repro.experiments.extensions import (run_node_cache_sweep,
                                          run_prefetch_extension,
                                          run_priority_extension)
from repro.rtree.cached import CachedNodeStore


def test_cached_node_store_matches_plain(env):
    cached = CachedNodeStore(env.node_store, capacity_pages=16)
    for offset in range(env.node_store.num_nodes):
        plain = env.node_store.read_node(offset)
        via_cache = cached.read_node(offset)
        assert via_cache.node_offset == plain.node_offset
        assert via_cache.level == plain.level
        assert len(via_cache.entries) == len(plain.entries)


def test_cached_node_store_saves_io(env):
    cached = CachedNodeStore(env.node_store, capacity_pages=64)
    env.reset_stats()
    cached.read_node(0)
    first = env.light_stats.reads
    cached.read_node(0)
    assert env.light_stats.reads == first     # hit: no disk charge
    assert cached.hit_rate > 0


def test_cached_search_equivalent(env):
    plain = HDoVSearch(env, "indexed-vertical", fetch_models=False)
    busiest = max(env.grid.cell_ids(),
                  key=lambda c: env.visibility.cell(c).num_visible)
    expected = plain.query_cell(busiest, 0.0)

    original = env.node_store
    try:
        env.node_store = CachedNodeStore(original, 64)  # type: ignore
        cached_search = HDoVSearch(env, "indexed-vertical",
                                   fetch_models=False)
        result = cached_search.query_cell(busiest, 0.0)
    finally:
        env.node_store = original
    assert result.object_ids() == expected.object_ids()


def test_priority_extension_small():
    result = run_priority_extension(SMALL, eta=0.002)
    assert result.avg_first_phase_ms <= result.avg_total_ms + 1e-9
    assert result.avg_in_frustum_results <= result.avg_total_results
    assert result.response_speedup >= 1.0
    assert "frustum-prioritized" in result.format_table()


def test_prefetch_extension_small():
    result = run_prefetch_extension(SMALL)
    assert result.crossings > 0
    assert result.hits > 0                     # prediction works
    assert result.avg_hit_flip_ms == 0.0       # warm flips are free
    assert "prefetching" in result.format_table()


def test_node_cache_sweep_small():
    result = run_node_cache_sweep(SMALL, capacities=(1, 64))
    # A big cache strictly reduces node misses vs a 1-page cache.
    assert result.node_ios_per_query[-1] <= result.node_ios_per_query[0]
    assert result.hit_rates[-1] >= result.hit_rates[0]
    assert "cache sweep" in result.format_table()
