"""Scene and visibility statistics.

Sanity-check tooling used by the experiment configs (and handy when
designing new scenes): polygon and size distributions of a scene, and
the per-cell DoV / visible-set distributions of a precomputed
visibility table.  The experiment docs in EXPERIMENTS.md quote these
numbers; this module is where they come from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import GeometryError
from repro.scene.objects import Scene
from repro.visibility.dov import VisibilityTable


def _quantiles(values: Sequence[float],
               points=(0.0, 0.25, 0.5, 0.75, 1.0)) -> List[float]:
    """Simple nearest-rank quantiles of a non-empty sequence."""
    ordered = sorted(values)
    n = len(ordered)
    out = []
    for p in points:
        index = min(int(p * (n - 1) + 0.5), n - 1)
        out.append(float(ordered[index]))
    return out


@dataclass(frozen=True)
class SceneStats:
    """Aggregate statistics of one scene."""

    num_objects: int
    categories: Dict[str, int]
    total_polygons: int
    total_bytes: int
    polygon_quantiles: List[float]
    footprint_extent: List[float]

    def format_report(self) -> str:
        cats = ", ".join(f"{name}: {count}"
                         for name, count in sorted(self.categories.items()))
        q = self.polygon_quantiles
        return "\n".join([
            f"objects: {self.num_objects} ({cats})",
            f"polygons: {self.total_polygons:,} total; per-object "
            f"min/q1/median/q3/max = "
            f"{q[0]:.0f}/{q[1]:.0f}/{q[2]:.0f}/{q[3]:.0f}/{q[4]:.0f}",
            f"model data: {self.total_bytes / 2**20:.1f} MB",
            f"footprint: {self.footprint_extent[0]:.0f} x "
            f"{self.footprint_extent[1]:.0f} x "
            f"{self.footprint_extent[2]:.0f} m",
        ])


def scene_stats(scene: Scene) -> SceneStats:
    if len(scene) == 0:
        raise GeometryError("empty scene has no statistics")
    categories: Dict[str, int] = {}
    polygons: List[float] = []
    for obj in scene:
        categories[obj.category] = categories.get(obj.category, 0) + 1
        polygons.append(float(obj.num_polygons))
    return SceneStats(
        num_objects=len(scene),
        categories=categories,
        total_polygons=scene.total_polygons(),
        total_bytes=scene.total_bytes(),
        polygon_quantiles=_quantiles(polygons),
        footprint_extent=[float(x) for x in scene.bounds().extent],
    )


@dataclass(frozen=True)
class VisibilityStats:
    """Aggregate statistics of a visibility table."""

    num_cells: int
    visible_quantiles: List[float]
    dov_quantiles: List[float]
    empty_cells: int
    #: Fraction of (cell, object) pairs that are visible.
    visibility_density: float

    def format_report(self) -> str:
        vq = self.visible_quantiles
        dq = self.dov_quantiles
        return "\n".join([
            f"cells: {self.num_cells} ({self.empty_cells} empty)",
            f"visible objects per cell min/q1/median/q3/max = "
            f"{vq[0]:.0f}/{vq[1]:.0f}/{vq[2]:.0f}/{vq[3]:.0f}/{vq[4]:.0f}",
            f"DoV values min/q1/median/q3/max = "
            f"{dq[0]:.2g}/{dq[1]:.2g}/{dq[2]:.2g}/{dq[3]:.2g}/{dq[4]:.2g}",
            f"visibility density: {self.visibility_density:.1%}",
        ])


def visibility_stats(table: VisibilityTable,
                     num_objects: int) -> VisibilityStats:
    if num_objects <= 0:
        raise GeometryError(f"num_objects must be > 0: {num_objects}")
    visible_counts: List[float] = []
    dovs: List[float] = []
    empty = 0
    for cell in table.cells():
        visible_counts.append(float(cell.num_visible))
        if cell.num_visible == 0:
            empty += 1
        dovs.extend(cell.dov.values())
    density = (sum(visible_counts)
               / (table.num_cells * num_objects))
    return VisibilityStats(
        num_cells=table.num_cells,
        visible_quantiles=_quantiles(visible_counts),
        dov_quantiles=_quantiles(dovs) if dovs else [0.0] * 5,
        empty_cells=empty,
        visibility_density=density,
    )
