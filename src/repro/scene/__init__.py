"""Scene substrate: objects, the synthetic city generator, scaled datasets.

The paper evaluates on "a synthetic city model containing numerous
buildings and bunny models" with raw dataset sizes of 400 MB to 1.6 GB.
This package generates the equivalent procedurally and deterministically.
"""

from repro.scene.objects import SceneObject, Scene
from repro.scene.city import CityParams, generate_city
from repro.scene.datasets import DatasetSpec, DATASET_SERIES, build_dataset

__all__ = ["SceneObject", "Scene", "CityParams", "generate_city",
           "DatasetSpec", "DATASET_SERIES", "build_dataset"]
