"""Scene objects and scenes.

A :class:`SceneObject` couples an object id, an MBR, and the object's LoD
chain.  A :class:`Scene` is the ordered collection the tree builders and
visibility pipeline consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.errors import GeometryError
from repro.geometry.aabb import AABB, pack_aabbs, union_aabbs
from repro.simplify.lod_chain import LODChain


@dataclass
class SceneObject:
    """One renderable object of the virtual environment."""

    object_id: int
    lods: LODChain
    #: Free-form category label ("building", "bunny", ...) used by
    #: generators and reports.
    category: str = "object"

    def __post_init__(self) -> None:
        if self.object_id < 0:
            raise GeometryError(f"negative object id: {self.object_id}")

    @property
    def mbr(self) -> AABB:
        return self.lods.finest.aabb()

    @property
    def num_polygons(self) -> int:
        """Polygon count of the finest LoD."""
        return self.lods.finest.num_faces

    @property
    def byte_size(self) -> int:
        """Modelled byte size of all LoDs of this object."""
        return sum(self.lods.byte_sizes())

    def __repr__(self) -> str:
        return (f"SceneObject(id={self.object_id}, cat={self.category!r}, "
                f"polys={self.num_polygons}, lods={self.lods.num_levels})")


class Scene:
    """An ordered, id-addressable collection of scene objects."""

    def __init__(self, objects: Optional[List[SceneObject]] = None) -> None:
        self._objects: List[SceneObject] = []
        self._by_id: Dict[int, SceneObject] = {}
        for obj in objects or []:
            self.add(obj)

    def add(self, obj: SceneObject) -> None:
        if obj.object_id in self._by_id:
            raise GeometryError(f"duplicate object id {obj.object_id}")
        self._objects.append(obj)
        self._by_id[obj.object_id] = obj

    def get(self, object_id: int) -> SceneObject:
        try:
            return self._by_id[object_id]
        except KeyError:
            raise GeometryError(f"unknown object id {object_id}") from None

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[SceneObject]:
        return iter(self._objects)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._by_id

    @property
    def objects(self) -> List[SceneObject]:
        return list(self._objects)

    def object_ids(self) -> List[int]:
        return [o.object_id for o in self._objects]

    def bounds(self) -> AABB:
        if not self._objects:
            raise GeometryError("empty scene has no bounds")
        return union_aabbs(o.mbr for o in self._objects)

    def packed_mbrs(self) -> np.ndarray:
        """``(n, 6)`` packed MBR array in object order (for ray casting)."""
        return pack_aabbs([o.mbr for o in self._objects])

    def total_polygons(self) -> int:
        return sum(o.num_polygons for o in self._objects)

    def total_bytes(self) -> int:
        """Modelled raw dataset size (all objects, all LoDs)."""
        return sum(o.byte_size for o in self._objects)

    def __repr__(self) -> str:
        return (f"Scene(objects={len(self)}, polys={self.total_polygons()}, "
                f"bytes={self.total_bytes()})")
