"""Synthetic city generator.

Produces the paper's evaluation dataset procedurally: a grid of city
blocks, each holding a multi-tier building, with "bunny blob" models
scattered between them.  Buildings act as the large occluders that make
distant objects invisible; bunnies are the dense organic models whose LoD
selection matters.

Determinism: everything derives from ``CityParams.seed``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError
from repro.geometry.primitives import bunny_blob, tower_mesh
from repro.scene.objects import Scene, SceneObject
from repro.simplify.lod_chain import build_lod_chain


@dataclass(frozen=True)
class CityParams:
    """Parameters of the synthetic city.

    The defaults give a small city suitable for unit tests; experiments
    scale ``blocks_x``/``blocks_y`` and the per-object polygon budgets.
    """

    blocks_x: int = 6
    blocks_y: int = 6
    #: Side length of one city block (meters, matching the paper's 100 m /
    #: 200 m / 400 m query-box discussion).
    block_size: float = 100.0
    #: Width of the streets between blocks.
    street_width: float = 20.0
    #: Fraction of blocks that hold a building (the rest hold bunnies).
    building_fraction: float = 0.7
    #: Bunny models scattered per non-building block.
    bunnies_per_block: int = 2
    #: Subdivision level of bunny icospheres (faces = 20 * 4**s).
    #: 3 gives 1280-face models — heavy enough that LoD choice moves
    #: multiple disk pages, like the paper's bunny models.
    bunny_subdivisions: int = 3
    #: Tiers per building (polygons = 12 * tiers).
    max_tiers: int = 4
    min_height: float = 30.0
    max_height: float = 150.0
    #: LoD levels per object.
    lod_levels: int = 2
    #: Face reduction per LoD level.  Equations 5/6 blend the chain's
    #: highest and lowest levels, so the coarsest level (reduction **
    #: (levels-1), here 50% of finest) sets how cheap a barely-visible
    #: object can get.  Keeping it substantial is what makes replacing a
    #: group of objects by one internal LoD save real I/O — the economics
    #: the eq.-3/4 termination heuristic assumes.
    lod_reduction: float = 0.5
    seed: int = 7

    def __post_init__(self) -> None:
        if self.blocks_x < 1 or self.blocks_y < 1:
            raise GeometryError("city needs at least one block")
        if not 0.0 <= self.building_fraction <= 1.0:
            raise GeometryError("building_fraction must be in [0, 1]")
        if self.min_height <= 0 or self.max_height < self.min_height:
            raise GeometryError("invalid height range")

    @property
    def pitch(self) -> float:
        """Center-to-center distance of adjacent blocks."""
        return self.block_size + self.street_width

    @property
    def width(self) -> float:
        return self.blocks_x * self.pitch

    @property
    def depth(self) -> float:
        return self.blocks_y * self.pitch


def generate_city(params: CityParams = CityParams()) -> Scene:
    """Generate the synthetic city scene."""
    rng = np.random.default_rng(params.seed)
    scene = Scene()
    next_id = 0

    for bx in range(params.blocks_x):
        for by in range(params.blocks_y):
            cx = (bx + 0.5) * params.pitch
            cy = (by + 0.5) * params.pitch
            if rng.random() < params.building_fraction:
                next_id = _add_building(scene, params, rng, cx, cy, next_id)
            else:
                next_id = _add_bunnies(scene, params, rng, cx, cy, next_id)
    if len(scene) == 0:
        # Degenerate parameter draw (possible only for tiny cities):
        # guarantee at least one object.
        next_id = _add_building(scene, params, rng,
                                params.pitch / 2, params.pitch / 2, next_id)
    return scene


def _add_building(scene: Scene, params: CityParams, rng, cx: float,
                  cy: float, next_id: int) -> int:
    height = float(rng.uniform(params.min_height, params.max_height))
    tiers = int(rng.integers(1, params.max_tiers + 1))
    footprint = (
        params.block_size * float(rng.uniform(0.5, 0.9)),
        params.block_size * float(rng.uniform(0.5, 0.9)),
    )
    mesh = tower_mesh((cx, cy, 0.0), footprint, height, tiers=tiers)
    lods = build_lod_chain(mesh, num_levels=params.lod_levels,
                           reduction=params.lod_reduction,
                           method="clustering")
    scene.add(SceneObject(next_id, lods, category="building"))
    return next_id + 1


def _add_bunnies(scene: Scene, params: CityParams, rng, cx: float,
                 cy: float, next_id: int) -> int:
    for _ in range(params.bunnies_per_block):
        radius = params.block_size * float(rng.uniform(0.05, 0.10))
        offset_x = float(rng.uniform(-0.3, 0.3)) * params.block_size
        offset_y = float(rng.uniform(-0.3, 0.3)) * params.block_size
        mesh = bunny_blob(
            radius=radius,
            subdivisions=params.bunny_subdivisions,
            seed=int(rng.integers(0, 2 ** 31)),
            center=(cx + offset_x, cy + offset_y, radius),
        )
        lods = build_lod_chain(mesh, num_levels=params.lod_levels,
                               reduction=params.lod_reduction,
                               method="clustering")
        scene.add(SceneObject(next_id, lods, category="bunny"))
        next_id += 1
    return next_id
