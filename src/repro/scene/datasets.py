"""Scaled dataset series for the scalability experiment.

The paper's datasets range from 400 MB to 1.6 GB of raw model data.  A
Python reproduction cannot comfortably materialise gigabytes of meshes,
so each :class:`DatasetSpec` builds a city whose *object counts* scale
linearly across the series while its *modelled* byte size (every LoD's
``byte_size``) is scaled up by a declared multiplier to hit the paper's
nominal sizes.  Figure 9 plots cost against dataset size; the cost drivers
(number of objects, tree size, visible-set size) all scale with object
count, which this series preserves exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ExperimentError
from repro.scene.city import CityParams, generate_city
from repro.scene.objects import Scene


@dataclass(frozen=True)
class DatasetSpec:
    """One dataset of the scalability series."""

    name: str
    #: The paper's nominal raw size in MB.
    nominal_mb: int
    #: City grid for this dataset.
    blocks_x: int
    blocks_y: int
    seed: int = 11

    def params(self) -> CityParams:
        return CityParams(blocks_x=self.blocks_x, blocks_y=self.blocks_y,
                          seed=self.seed)

    def build(self) -> Scene:
        return generate_city(self.params())

    @property
    def nominal_bytes(self) -> int:
        return self.nominal_mb * 1024 * 1024


#: The paper's series: "datasets ranging from 400 MB to 1.6 GB".  Object
#: counts scale 1x, 2x, 3x, 4x with the nominal sizes.
DATASET_SERIES: Tuple[DatasetSpec, ...] = (
    DatasetSpec("city-400MB", 400, blocks_x=6, blocks_y=6),
    DatasetSpec("city-800MB", 800, blocks_x=9, blocks_y=8),
    DatasetSpec("city-1200MB", 1200, blocks_x=11, blocks_y=10),
    DatasetSpec("city-1600MB", 1600, blocks_x=12, blocks_y=12),
)


def build_dataset(name: str) -> Scene:
    """Build a dataset of the series by name."""
    for spec in DATASET_SERIES:
        if spec.name == name:
            return spec.build()
    raise ExperimentError(
        f"unknown dataset {name!r}; choose from "
        f"{[s.name for s in DATASET_SERIES]}")
