"""Repo-specific static analysis: the ``repro lint`` rule suite.

PR 1 fixed a family of I/O-accounting bugs and added the observability
layer; this package is what keeps them fixed.  Each ``RPR###`` rule
encodes one invariant (storage layering, metric-name hygiene, pin
discipline, monotonic timing, DoV float comparison, typing ratchet) as
an AST check, and ``repro lint`` fails the build when any is violated.
See DESIGN.md ("Static analysis") for the rule catalogue and how to add
a rule; README ("Linting") for CLI usage and pragma syntax.
"""

from repro.analysis.baseline import (apply_baseline, load_baseline,
                                     save_baseline)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.driver import (DRIVER_CODE, LintResult,
                                   iter_python_files, lint_paths,
                                   load_contexts, module_name_for)
from repro.analysis.pragmas import PragmaIndex, collect_pragmas
from repro.analysis.registry import (ModuleContext, ModuleRule,
                                     ProjectRule, all_rules,
                                     register, rule_for_code)

__all__ = [
    "DRIVER_CODE",
    "Diagnostic",
    "LintResult",
    "ModuleContext",
    "ModuleRule",
    "PragmaIndex",
    "ProjectRule",
    "all_rules",
    "apply_baseline",
    "collect_pragmas",
    "iter_python_files",
    "lint_paths",
    "load_baseline",
    "load_contexts",
    "module_name_for",
    "register",
    "rule_for_code",
    "save_baseline",
]
