"""Rule base classes and the process-wide rule registry.

A rule is a class with a stable ``code`` (``RPR###``), a short ``name``
and a one-line ``summary``; registering it (the :func:`register`
decorator) makes ``repro lint`` run it.  Two kinds exist:

* :class:`ModuleRule` — sees one parsed module at a time.  Most rules
  live here.
* :class:`ProjectRule` — runs once after every module is parsed, for
  cross-file invariants (e.g. "every registered metric name is used
  somewhere").

Adding a rule is: subclass, pick the next free code, register, add a
triggering and a non-triggering fixture to ``tests/test_analysis_rules``
(the test suite fails on any registered rule without both), and document
the invariant in DESIGN.md.
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Type, Union

from repro.analysis.diagnostics import Diagnostic
from repro.errors import AnalysisError


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one module."""

    #: Path as reported in diagnostics (repo-relative when possible).
    path: str
    #: Dotted module name (``repro.core.search``) or ``None`` when the
    #: file is not importable from a package root (scripts, fixtures).
    module: Optional[str]
    tree: ast.Module
    source: str

    def in_package(self, package: str) -> bool:
        """True when this module is ``package`` or inside it."""
        if self.module is None:
            return False
        return self.module == package or \
            self.module.startswith(package + ".")

    def diagnostic(self, rule: "BaseRule", node: ast.AST,
                   message: str) -> Diagnostic:
        return Diagnostic(
            path=self.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            code=rule.code,
            message=message,
        )


class BaseRule(abc.ABC):
    """Shared identity of module- and project-level rules."""

    #: Stable diagnostic code (``RPR###``); never renumbered.
    code: str = ""
    #: Short kebab-case name used in docs and ``repro lint --rules``.
    name: str = ""
    #: One-line description of the invariant the rule protects.
    summary: str = ""


class ModuleRule(BaseRule):
    """A rule that inspects one module at a time."""

    @abc.abstractmethod
    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        """Yield diagnostics for ``ctx``."""


class ProjectRule(BaseRule):
    """A rule that inspects the whole set of parsed modules at once."""

    @abc.abstractmethod
    def check_project(self, modules: Sequence[ModuleContext]
                      ) -> Iterator[Diagnostic]:
        """Yield diagnostics across ``modules``."""


AnyRule = Union[ModuleRule, ProjectRule]

_RULES: Dict[str, Type[AnyRule]] = {}


def register(rule_class: Type[AnyRule]) -> Type[AnyRule]:
    """Class decorator adding a rule to the registry.

    Rejects duplicate or malformed codes loudly: a silently shadowed
    rule is exactly the failure mode this package exists to prevent.
    """
    code = rule_class.code
    if not code.startswith("RPR") or not code[3:].isdigit():
        raise AnalysisError(
            f"rule code must look like 'RPR123', got {code!r}")
    existing = _RULES.get(code)
    if existing is not None and existing is not rule_class:
        raise AnalysisError(
            f"duplicate rule code {code}: {existing.__name__} vs "
            f"{rule_class.__name__}")
    _RULES[code] = rule_class
    return rule_class


def all_rules() -> List[Type[AnyRule]]:
    """Registered rule classes, sorted by code."""
    # Importing the built-in rules here (not at module import) avoids a
    # registry<->rules import cycle while keeping discovery automatic.
    import repro.analysis.concurrency  # noqa: F401
    import repro.analysis.rules  # noqa: F401
    return [_RULES[code] for code in sorted(_RULES)]


def rule_for_code(code: str) -> Type[AnyRule]:
    import repro.analysis.concurrency  # noqa: F401
    import repro.analysis.rules  # noqa: F401
    try:
        return _RULES[code]
    except KeyError:
        raise AnalysisError(f"unknown rule code {code!r}") from None
