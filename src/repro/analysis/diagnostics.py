"""Diagnostic records produced by ``repro lint``.

A diagnostic pins one rule violation to one source location with a
stable ``RPR###`` code.  Codes are part of the repo's contract: tests,
pragmas (``# repro: ignore[RPR004]``) and baseline files all key on
them, so a code is never renumbered or reused once shipped (retired
codes are documented in DESIGN.md and left unassigned).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Diagnostic:
    """One rule violation at one source location."""

    path: str
    line: int
    column: int
    code: str
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.code)

    def baseline_key(self) -> str:
        """Location-independent identity used by baseline files.

        Line numbers are deliberately excluded so unrelated edits above
        a baselined violation do not invalidate the baseline.
        """
        return f"{self.path}::{self.code}::{self.message}"

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.column}: "
                f"{self.code} {self.message}")
