"""The lint driver: collect files, parse, run rules, filter, report.

:func:`lint_paths` is the library entry point (used by tests and the
``repro lint`` CLI): it walks the given files/directories, parses each
``.py`` file once, derives its dotted module name from the package
layout (``__init__.py`` chain), runs every registered module rule per
file and every project rule once, then applies pragma and baseline
suppression.  Unparsable files are *violations* (``RPR000``), not
crashes — a syntax error in the tree must fail the gate, not skip it.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.pragmas import PragmaIndex, collect_pragmas
from repro.analysis.registry import (AnyRule, ModuleContext, ModuleRule,
                                     ProjectRule, all_rules)

#: Pseudo-code for files the driver itself rejects (syntax errors,
#: unreadable files).  Not a registered rule: it cannot be disabled.
DRIVER_CODE = "RPR000"

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist"})


@dataclass
class LintResult:
    """Outcome of one lint run."""

    diagnostics: List[Diagnostic]
    files_checked: int
    #: Diagnostics removed by ``# repro: ignore`` pragmas.
    pragma_suppressed: int = 0
    #: Diagnostics removed by the baseline file.
    baseline_suppressed: int = 0
    #: Diagnostics after pragma filtering but before the baseline —
    #: what ``--write-baseline`` snapshots, so a pragma'd line never
    #: also consumes baseline budget.
    before_baseline: List[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diagnostics


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated file list.

    De-duplication keys on ``os.path.realpath`` so the same file reached
    more than once — through a symlinked directory, a repeated argument,
    or an unnormalised spelling — is linted exactly once; the first-seen
    spelling is what diagnostics display.  Sorting happens once, at the
    end: sorting inside ``os.walk`` as well (as this function used to)
    was redundant, and the old ``normpath`` key still admitted symlink
    duplicates.
    """
    found: Dict[str, str] = {}
    for path in paths:
        if os.path.isfile(path):
            found.setdefault(os.path.realpath(path), path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = [d for d in dirs if d not in _SKIP_DIRS]
                for name in files:
                    if name.endswith(".py"):
                        full = os.path.join(root, name)
                        found.setdefault(os.path.realpath(full), full)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(found.values())


def module_name_for(path: str) -> Optional[str]:
    """Dotted module name from the ``__init__.py`` package chain.

    Walks upward while each parent directory is a package; a file that
    is not importable this way (scripts, test fixtures in a bare
    directory) gets ``None`` and package-scoped rules skip it.
    """
    absolute = os.path.abspath(path)
    directory, filename = os.path.split(absolute)
    stem = os.path.splitext(filename)[0]
    parts: List[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.append(package)
    if not parts:
        return None
    name = ".".join(reversed(parts))
    return name if name else None


def display_path(path: str) -> str:
    """Repo-relative path when possible (stable across machines)."""
    relative = os.path.relpath(path)
    return path if relative.startswith("..") else relative


def _parse(path: str) -> Tuple[Optional[ModuleContext],
                               Optional[Diagnostic], PragmaIndex]:
    display = display_path(path)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
    except (OSError, UnicodeDecodeError) as exc:
        return None, Diagnostic(display, 1, 1, DRIVER_CODE,
                                f"cannot read file: {exc}"), PragmaIndex()
    pragmas = collect_pragmas(source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, Diagnostic(display, exc.lineno or 1,
                                (exc.offset or 0) + 1, DRIVER_CODE,
                                f"syntax error: {exc.msg}"), pragmas
    context = ModuleContext(path=display, module=module_name_for(path),
                            tree=tree, source=source)
    return context, None, pragmas


def load_contexts(paths: Sequence[str]) -> List[ModuleContext]:
    """Parse every Python file under ``paths`` into module contexts.

    Unparsable files are skipped (``repro lint`` is where they fail the
    build); this is the entry point for project-level consumers like
    ``repro locks`` that want the parsed tree without running rules.
    """
    contexts: List[ModuleContext] = []
    for path in iter_python_files(paths):
        context, _error, _pragmas = _parse(path)
        if context is not None:
            contexts.append(context)
    return contexts


def lint_paths(paths: Sequence[str], *,
               rules: Optional[Iterable[Type[AnyRule]]] = None,
               baseline_path: Optional[str] = None) -> LintResult:
    """Run the rule suite over ``paths``; returns the filtered result."""
    rule_classes = list(rules) if rules is not None else all_rules()
    module_rules: List[ModuleRule] = []
    project_rules: List[ProjectRule] = []
    for rule_class in rule_classes:
        instance = rule_class()
        if isinstance(instance, ProjectRule):
            project_rules.append(instance)
        else:
            module_rules.append(instance)

    files = iter_python_files(paths)
    contexts: List[ModuleContext] = []
    pragma_of: Dict[str, PragmaIndex] = {}
    raw: List[Diagnostic] = []
    for path in files:
        context, error, pragmas = _parse(path)
        if error is not None:
            raw.append(error)
            pragma_of[error.path] = pragmas
            continue
        assert context is not None
        pragma_of[context.path] = pragmas
        contexts.append(context)
        for rule in module_rules:
            raw.extend(rule.check_module(context))
    for project_rule in project_rules:
        raw.extend(project_rule.check_project(contexts))

    raw.sort(key=lambda d: d.sort_key())
    kept: List[Diagnostic] = []
    pragma_suppressed = 0
    for diagnostic in raw:
        pragmas = pragma_of.get(diagnostic.path, PragmaIndex())
        if diagnostic.code != DRIVER_CODE and \
                pragmas.suppresses(diagnostic.line, diagnostic.code):
            pragma_suppressed += 1
        else:
            kept.append(diagnostic)

    before_baseline = list(kept)
    baseline_suppressed = 0
    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
        kept, baseline_suppressed = apply_baseline(kept, baseline)

    return LintResult(diagnostics=kept, files_checked=len(files),
                      pragma_suppressed=pragma_suppressed,
                      baseline_suppressed=baseline_suppressed,
                      before_baseline=before_baseline)
