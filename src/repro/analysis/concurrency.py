"""Concurrency lint rules (``RPR010``–``RPR013``) and the lock-graph model.

PR 5/6 made the serving stack genuinely concurrent and wrote the locking
rules into docstrings; these rules make them machine-checked.  The
declared lock lattice lives in :mod:`repro.concurrency.order` — the same
constant the runtime :class:`~repro.concurrency.witness.LockOrderWitness`
enforces — so the static and dynamic checkers cannot drift apart.

The shared infrastructure here is a per-class *lock model*: which
attributes are locks (created in ``__init__`` from ``threading.Lock`` /
``RLock``, possibly via :func:`repro.concurrency.witness.wrap_lock`),
which statements run under ``with self._lock:``, and — through an
intra-class fixpoint — which private helper methods execute *only* from
locked contexts (``_evict_one`` has no ``with`` of its own, but every
caller holds the pool lock, so its body is lock-held code).

Like the PR-2 rules these are heuristic AST analyses, not a type
checker.  Cross-class call resolution is annotation-first: a receiver
whose annotation names a lock-owning class resolves to that class; an
unannotated receiver falls back to name matching, but only for method
names that are *distinctive* (not ``get``/``pop``/``items``/... — the
builtin-container vocabulary would otherwise make ``self._mem.get()``
look like ``BufferPool.get()``).  Misfires are suppressed with
``# repro: ignore[RPR###]`` plus a one-line justification.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import (ModuleContext, ModuleRule, ProjectRule,
                                     register)
from repro.analysis.rules import _dotted, _parent_map
from repro.concurrency.order import BLOCKING_ALLOWED, LATTICE

#: Class attribute declaring a lock's lattice level (``LOCK_LEVEL = ...``).
LOCK_LEVEL_ATTR = "LOCK_LEVEL"

#: ``threading`` factories whose result (possibly wrapped) makes an
#: ``__init__``-assigned attribute a lock.
LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition"})

#: Method names too generic for name-match call resolution: they are the
#: builtin container/IO vocabulary, so an unannotated ``x.get()`` must
#: not resolve to ``BufferPool.get()``.  Annotation-driven resolution is
#: unaffected — an annotated receiver resolves regardless of the name.
GENERIC_METHOD_NAMES = frozenset({
    "acquire", "add", "append", "clear", "close", "copy", "count", "dec",
    "discard", "extend", "flush", "get", "inc", "index", "insert", "items",
    "join", "keys", "notify", "notify_all", "observe", "open", "pop",
    "popitem", "popleft", "put", "read", "release", "remove", "reset",
    "reverse", "seek", "set", "setdefault", "sort", "split", "strip",
    "update", "values", "wait", "write",
})

#: Calls that block (physical page I/O, fsync, sockets, sleeps) and are
#: therefore forbidden while holding a lock — except at lattice levels in
#: :data:`~repro.concurrency.order.BLOCKING_ALLOWED`, whose locks exist
#: precisely to serialize that blocking work (RPR012).
BLOCKING_CALL_NAMES = frozenset({
    "read_page", "write_page", "append_page", "read_run",
    "fsync", "fdatasync", "sleep",
    "recv", "recvfrom", "recv_into", "send", "sendall", "sendto",
    "accept", "connect", "select", "wait",
})

#: Modules whose reports promise byte-determinism (RPR013).  A module
#: outside this set can opt in with a top-level ``DETERMINISTIC_REPORT =
#: True`` marker.
DETERMINISTIC_MODULES = frozenset({
    "repro.analysis.baseline",
    "repro.concurrency.witness",
    "repro.obs.chaos",
    "repro.obs.profile",
    "repro.serving.http.stats",
    "repro.serving.loadgen",
    "repro.serving.prefetch",
    "repro.serving.service",
    "repro.visibility.cache",
    "repro.visibility.persist",
})

#: Marker name for per-module RPR013 opt-in.
DETERMINISTIC_MARKER = "DETERMINISTIC_REPORT"

#: Filesystem enumerators whose order is OS-dependent (RPR013).
_FS_ENUMERATORS = frozenset({"os.listdir", "os.scandir", "glob.glob",
                             "glob.iglob"})


# ---------------------------------------------------------------------------
# The lock model: per-class extraction shared by RPR010/011/012
# ---------------------------------------------------------------------------

@dataclass
class _CallSite:
    """One call expression inside a method body."""

    node: ast.Call
    method: str                      #: called attribute/function name
    receiver: Optional[ast.expr]     #: ``x`` in ``x.f()``; None for ``f()``
    is_self_call: bool               #: ``self.f()``
    under_lock: bool                 #: lexically inside ``with self._lock:``


@dataclass
class _Mutation:
    """An assignment whose target is rooted at a ``self`` attribute."""

    node: ast.AST
    attr: str                        #: the ``self.<attr>`` being mutated
    rebinding: bool                  #: ``self.attr = ...`` vs ``self.attr[k] = ...``
    under_lock: bool


@dataclass
class _MethodModel:
    """Lock-relevant facts about one method."""

    name: str
    node: ast.AST
    acquires: bool = False           #: contains ``with self.<lock_attr>:``
    calls: List[_CallSite] = field(default_factory=list)
    mutations: List[_Mutation] = field(default_factory=list)
    #: parameter/local name -> identifier names in its annotation
    annotations: Dict[str, Set[str]] = field(default_factory=dict)


@dataclass
class _ClassModel:
    """Lock-relevant facts about one class."""

    ctx: ModuleContext
    node: ast.ClassDef
    name: str
    level: Optional[str] = None
    level_node: Optional[ast.AST] = None
    lock_attrs: Set[str] = field(default_factory=set)
    methods: Dict[str, _MethodModel] = field(default_factory=dict)
    #: ``self.<attr>`` -> identifier names in its declared annotation
    attr_annotations: Dict[str, Set[str]] = field(default_factory=dict)
    #: methods whose bodies execute only from lock-held call sites
    locked_context: Set[str] = field(default_factory=set)

    @property
    def qualname(self) -> str:
        module = self.ctx.module or self.ctx.path
        return f"{module}.{self.name}"


def _annotation_names(annotation: ast.expr) -> Set[str]:
    """Every identifier mentioned in an annotation (``Dict[int, PagedFile]``
    yields ``{"Dict", "int", "PagedFile"}``); string annotations are
    parsed and recursed into."""
    if isinstance(annotation, ast.Constant) and \
            isinstance(annotation.value, str):
        try:
            parsed = ast.parse(annotation.value, mode="eval")
        except SyntaxError:
            return set()
        return _annotation_names(parsed.body)
    names: Set[str] = set()
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def _is_lock_factory_call(node: ast.expr) -> bool:
    """Does this expression (transitively) call ``threading.Lock()`` &co?

    Wrapping counts: ``wrap_lock(threading.RLock(), ...)`` assigns a
    lock.
    """
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            func = child.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None)
            if name in LOCK_FACTORIES:
                return True
    return False


def _self_attr(node: ast.expr) -> Optional[str]:
    """``attr`` when *node* is exactly ``self.<attr>``."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _target_base_attr(target: ast.expr) -> Optional[Tuple[str, bool]]:
    """Resolve an assignment target rooted at ``self``.

    Returns ``(attr, rebinding)``: ``self.x = ...`` is a rebinding of
    ``x``; ``self.x[k] = ...`` / ``self.x.y = ...`` mutate the object
    held in ``x``.
    """
    rebinding = True
    node = target
    while True:
        attr = _self_attr(node)
        if attr is not None:
            return attr, rebinding
        if isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
            rebinding = False
            continue
        return None


def _build_class_model(ctx: ModuleContext,
                       class_node: ast.ClassDef) -> Optional[_ClassModel]:
    """Extract the lock model; None when the class owns no locks."""
    model = _ClassModel(ctx=ctx, node=class_node, name=class_node.name)

    for stmt in class_node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and \
                        target.id == LOCK_LEVEL_ATTR and \
                        isinstance(stmt.value, ast.Constant) and \
                        isinstance(stmt.value.value, str):
                    model.level = stmt.value.value
                    model.level_node = stmt
        elif isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name) and \
                stmt.target.id == LOCK_LEVEL_ATTR and \
                stmt.value is not None and \
                isinstance(stmt.value, ast.Constant) and \
                isinstance(stmt.value.value, str):
            model.level = stmt.value.value
            model.level_node = stmt
        elif isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name):
            model.attr_annotations[stmt.target.id] = \
                _annotation_names(stmt.annotation)

    init = next((stmt for stmt in class_node.body
                 if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                 and stmt.name == "__init__"), None)
    if init is not None:
        for node in ast.walk(init):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None and _is_lock_factory_call(node.value):
                        model.lock_attrs.add(attr)
            elif isinstance(node, ast.AnnAssign):
                attr = _self_attr(node.target)
                if attr is not None:
                    model.attr_annotations[attr] = \
                        _annotation_names(node.annotation)
                    if node.value is not None and \
                            _is_lock_factory_call(node.value):
                        model.lock_attrs.add(attr)

    if not model.lock_attrs:
        return None

    for stmt in class_node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            model.methods[stmt.name] = _build_method_model(model, stmt)

    _compute_locked_context(model)
    return model


def _build_method_model(model: _ClassModel, func: ast.AST) -> _MethodModel:
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    method = _MethodModel(name=func.name, node=func)
    for arg in (list(func.args.posonlyargs) + list(func.args.args)
                + list(func.args.kwonlyargs)):
        if arg.annotation is not None:
            method.annotations[arg.arg] = _annotation_names(arg.annotation)

    lock_withs: Set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr in model.lock_attrs:
                    lock_withs.add(id(node))
                    method.acquires = True

    parents = _parent_map(func)

    def under_lock(node: ast.AST) -> bool:
        current: Optional[ast.AST] = node
        while current is not None and current is not func:
            parent = parents.get(current)
            if isinstance(parent, (ast.With, ast.AsyncWith)) and \
                    id(parent) in lock_withs and \
                    not isinstance(current, ast.withitem):
                return True
            current = parent
        return False

    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            func_expr = node.func
            if isinstance(func_expr, ast.Attribute):
                receiver = func_expr.value
                is_self = isinstance(receiver, ast.Name) and \
                    receiver.id == "self"
                method.calls.append(_CallSite(
                    node=node, method=func_expr.attr, receiver=receiver,
                    is_self_call=is_self, under_lock=under_lock(node)))
            elif isinstance(func_expr, ast.Name):
                method.calls.append(_CallSite(
                    node=node, method=func_expr.id, receiver=None,
                    is_self_call=False, under_lock=under_lock(node)))
        elif isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name):
            method.annotations[node.target.id] = \
                _annotation_names(node.annotation)

    targets: List[Tuple[ast.AST, ast.expr]] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            targets.extend((node, t) for t in node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if not (isinstance(node, ast.AnnAssign) and node.value is None):
                targets.append((node, node.target))
        elif isinstance(node, ast.Delete):
            targets.extend((node, t) for t in node.targets)
    for stmt_node, target in targets:
        resolved = _target_base_attr(target)
        if resolved is None:
            continue
        attr, rebinding = resolved
        if attr in model.lock_attrs:
            continue
        method.mutations.append(_Mutation(
            node=stmt_node, attr=attr, rebinding=rebinding,
            under_lock=under_lock(stmt_node)))
    return method


def _compute_locked_context(model: _ClassModel) -> None:
    """Fixpoint: a private helper called *only* from lock-held sites is
    itself lock-held code (``_evict_one`` has no ``with`` of its own)."""
    callers: Dict[str, List[Tuple[str, _CallSite]]] = {}
    for method in model.methods.values():
        for site in method.calls:
            if site.is_self_call and site.method in model.methods:
                callers.setdefault(site.method, []).append(
                    (method.name, site))

    changed = True
    while changed:
        changed = False
        for name, method in model.methods.items():
            if name in model.locked_context:
                continue
            if not name.startswith("_") or name.startswith("__"):
                continue
            sites = callers.get(name)
            if not sites:
                continue
            if all(site.under_lock or caller in model.locked_context
                   for caller, site in sites):
                model.locked_context.add(name)
                changed = True


def _effectively_locked(model: _ClassModel, method: _MethodModel,
                        site_under_lock: bool) -> bool:
    return site_under_lock or method.name in model.locked_context


def _lock_models(ctx: ModuleContext) -> List[_ClassModel]:
    models = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            model = _build_class_model(ctx, node)
            if model is not None:
                models.append(model)
    return models


# ---------------------------------------------------------------------------
# RPR010: interprocedural lock order against the declared lattice
# ---------------------------------------------------------------------------

@dataclass
class LockEdge:
    """One witnessed-by-the-AST acquisition: holder's lock -> target's."""

    holder: _ClassModel
    target: _ClassModel
    via: str                         #: ``holder_method -> callee`` path
    site: ast.AST
    ctx: ModuleContext


@dataclass
class LockGraph:
    """The statically inferred cross-class lock-acquisition graph."""

    classes: List[_ClassModel]
    edges: List[LockEdge]
    diagnostics: List[Diagnostic]

    def summary(self) -> Dict[str, object]:
        """Deterministic JSON-ready description (``repro locks``)."""
        by_level: Dict[str, List[str]] = {}
        for model in self.classes:
            by_level.setdefault(model.level or "(unleveled)",
                                []).append(model.qualname)
        edge_keys: Dict[Tuple[str, str, str], int] = {}
        for edge in self.edges:
            key = (edge.holder.qualname, edge.target.qualname, edge.via)
            edge_keys[key] = edge_keys.get(key, 0) + 1
        return {
            "lattice": list(LATTICE),
            "classes": {level: sorted(names)
                        for level, names in sorted(by_level.items())},
            "edges": [
                {"from": holder, "to": target, "via": via,
                 "sites": edge_keys[(holder, target, via)],
                 "from_level": self._level_of(holder),
                 "to_level": self._level_of(target)}
                for holder, target, via in sorted(edge_keys)
            ],
            "violations": sorted(
                f"{d.path}:{d.line}: {d.message}" for d in self.diagnostics),
        }

    def _level_of(self, qualname: str) -> Optional[str]:
        for model in self.classes:
            if model.qualname == qualname:
                return model.level
        return None


class _LockGraphBuilder:
    """Builds the acquisition graph from per-class models."""

    def __init__(self, rule: "LockOrderRule",
                 modules: Sequence[ModuleContext]) -> None:
        self.rule = rule
        self.models: List[_ClassModel] = []
        for ctx in modules:
            self.models.extend(_lock_models(ctx))
        self.by_name: Dict[str, List[_ClassModel]] = {}
        for model in self.models:
            self.by_name.setdefault(model.name, []).append(model)

    def _resolve(self, model: _ClassModel, method: _MethodModel,
                 site: _CallSite) -> List[_ClassModel]:
        """Lock classes a non-self call may dispatch to."""
        candidates = [m for m in self.models
                      if site.method in m.methods and m is not model]
        if not candidates:
            return []
        names = self._receiver_annotation(model, method, site.receiver)
        if names is not None:
            return [m for m in candidates if m.name in names]
        if site.method in GENERIC_METHOD_NAMES:
            return []
        return candidates

    def _receiver_annotation(self, model: _ClassModel, method: _MethodModel,
                             receiver: Optional[ast.expr]
                             ) -> Optional[Set[str]]:
        """Identifier names in the receiver's annotation, if declared."""
        node = receiver
        while isinstance(node, ast.Subscript):
            node = node.value
        if node is None:
            return None
        attr = _self_attr(node)
        if attr is not None:
            return model.attr_annotations.get(attr)
        if isinstance(node, ast.Name):
            return method.annotations.get(node.id)
        return None

    def _acquire_closure(self) -> Dict[Tuple[int, str], Set[int]]:
        """``(class, method) -> lock classes whose lock the call may take``,
        propagated to a fixpoint through self- and cross-class calls."""
        ids = {id(m): m for m in self.models}
        acq: Dict[Tuple[int, str], Set[int]] = {}
        for model in self.models:
            for method in model.methods.values():
                initial: Set[int] = {id(model)} if method.acquires else set()
                acq[(id(model), method.name)] = initial
        changed = True
        while changed:
            changed = False
            for model in self.models:
                for method in model.methods.values():
                    current = acq[(id(model), method.name)]
                    for site in method.calls:
                        if site.is_self_call:
                            extra = acq.get((id(model), site.method))
                        else:
                            extra = set()
                            for target in self._resolve(model, method, site):
                                extra |= acq.get(
                                    (id(target), site.method), set())
                        if extra and not extra <= current:
                            current |= extra
                            changed = True
        # Resolve ids back to models for the caller.
        return {key: {i for i in value if i in ids}
                for key, value in acq.items()}

    def build(self) -> LockGraph:
        ids = {id(m): m for m in self.models}
        acq = self._acquire_closure()
        edges: List[LockEdge] = []
        diagnostics: List[Diagnostic] = []

        for model in self.models:
            if model.level is not None and model.level not in LATTICE:
                diagnostics.append(model.ctx.diagnostic(
                    self.rule, model.level_node or model.node,
                    f"{model.name}.{LOCK_LEVEL_ATTR} is {model.level!r}, "
                    f"which is not a declared lattice level "
                    f"{' -> '.join(LATTICE)} (repro.concurrency.order)"))

        for model in self.models:
            for method in model.methods.values():
                for site in method.calls:
                    if not _effectively_locked(model, method,
                                               site.under_lock):
                        continue
                    acquired: Set[int] = set()
                    if site.is_self_call:
                        acquired |= {t for t in acq.get(
                            (id(model), site.method), set())
                            if t != id(model)}
                    else:
                        for target in self._resolve(model, method, site):
                            acquired |= {t for t in acq.get(
                                (id(target), site.method), set())
                                if t != id(model)}
                    for target_id in acquired:
                        target = ids[target_id]
                        edges.append(LockEdge(
                            holder=model, target=target,
                            via=f"{method.name} -> {site.method}",
                            site=site.node, ctx=model.ctx))

        diagnostics.extend(self._lattice_violations(edges))
        diagnostics.extend(self._cycles(edges))
        return LockGraph(classes=sorted(self.models,
                                        key=lambda m: m.qualname),
                         edges=edges, diagnostics=diagnostics)

    def _lattice_violations(self, edges: List[LockEdge]
                            ) -> Iterator[Diagnostic]:
        for edge in edges:
            holder, target = edge.holder, edge.target
            if holder.level in LATTICE and target.level in LATTICE:
                if LATTICE.index(target.level or "") <= \
                        LATTICE.index(holder.level or ""):
                    yield edge.ctx.diagnostic(
                        self.rule, edge.site,
                        f"lock-order violation: {holder.name} (level "
                        f"{holder.level!r}) may acquire the "
                        f"{target.level!r} lock via {edge.via} while "
                        f"holding its own; the lattice "
                        f"{' -> '.join(LATTICE)} permits only strictly "
                        f"lower acquisitions")

    def _cycles(self, edges: List[LockEdge]) -> Iterator[Diagnostic]:
        """Flag strongly connected components in the acquisition graph.

        A cycle between fully leveled classes already produced per-edge
        lattice diagnostics above, so only SCCs touching an unleveled
        class are reported here — those are invisible to the lattice
        check but still deadlock-capable.
        """
        adjacency: Dict[int, Set[int]] = {}
        edge_for: Dict[Tuple[int, int], LockEdge] = {}
        for edge in edges:
            source, target = id(edge.holder), id(edge.target)
            adjacency.setdefault(source, set()).add(target)
            key = (source, target)
            if key not in edge_for or \
                    getattr(edge_for[key].site, "lineno", 1) > \
                    getattr(edge.site, "lineno", 1):
                edge_for[key] = edge

        index_of: Dict[int, int] = {}
        low: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []
        counter = [0]
        sccs: List[List[int]] = []

        def strongconnect(node: int) -> None:
            index_of[node] = low[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for neighbour in sorted(adjacency.get(node, ())):
                if neighbour not in index_of:
                    strongconnect(neighbour)
                    low[node] = min(low[node], low[neighbour])
                elif neighbour in on_stack:
                    low[node] = min(low[node], index_of[neighbour])
            if low[node] == index_of[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)

        nodes = sorted(set(adjacency)
                       | {t for targets in adjacency.values()
                          for t in targets})
        for node in nodes:
            if node not in index_of:
                strongconnect(node)

        ids = {id(m): m for m in self.models}
        for component in sccs:
            if len(component) < 2:
                continue
            members = sorted((ids[n] for n in component if n in ids),
                             key=lambda m: m.qualname)
            if all(m.level in LATTICE for m in members):
                continue
            internal = [edge_for[(s, t)] for s in component for t in component
                        if (s, t) in edge_for]
            anchor = min(internal,
                         key=lambda e: (e.ctx.path,
                                        getattr(e.site, "lineno", 1)))
            cycle = " <-> ".join(m.name for m in members)
            yield anchor.ctx.diagnostic(
                self.rule, anchor.site,
                f"lock-acquisition cycle between {cycle}: these classes "
                f"can each acquire the other's lock while holding their "
                f"own, which deadlocks under contention; declare "
                f"{LOCK_LEVEL_ATTR}s and break the cycle")


@register
class LockOrderRule(ProjectRule):
    """RPR010: the cross-class lock graph obeys the declared lattice.

    Infers lock attributes from ``__init__``, maps ``with self._lock:``
    regions through the intra-class call graph (so helpers that run only
    under the lock carry it), resolves cross-class calls by annotation
    (name-match fallback for distinctive names only), and checks every
    resulting acquisition edge against
    :data:`repro.concurrency.order.LATTICE` — plus a cycle check for
    locks that never declared a level.  The runtime twin is
    :class:`repro.concurrency.witness.LockOrderWitness`.
    """

    code = "RPR010"
    name = "lock-order"
    summary = ("cross-class lock acquisitions must follow the declared "
               "lattice (repro.concurrency.order.LATTICE) and the "
               "acquisition graph must be acyclic")

    def check_project(self, modules: Sequence[ModuleContext]
                      ) -> Iterator[Diagnostic]:
        builder = _LockGraphBuilder(self, modules)
        yield from builder.build().diagnostics


def build_lock_graph(modules: Sequence[ModuleContext]) -> LockGraph:
    """The statically inferred lock graph for ``repro locks``."""
    return _LockGraphBuilder(LockOrderRule(), modules).build()


# ---------------------------------------------------------------------------
# RPR011: guarded state is guarded everywhere
# ---------------------------------------------------------------------------

@register
class GuardedStateRule(ModuleRule):
    """RPR011: a field mutated under the class lock is never mutated
    outside it.

    If any method writes ``self.x`` inside ``with self._lock:`` (or from
    a helper that only runs under it), the lock is *the* guard for
    ``x`` — an unlocked write elsewhere is a data race even when it
    "only" resets state (the seed violation: ``PagedFile.reset_head``
    cleared ``_last_accessed`` without the I/O lock).  ``__init__`` is
    exempt: construction happens before the object is shared.
    """

    code = "RPR011"
    name = "guarded-state"
    summary = ("a self attribute mutated under 'with self._lock:' in any "
               "method must never be mutated without the lock elsewhere "
               "(construction in __init__ exempt)")

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for model in _lock_models(ctx):
            guarded: Dict[str, str] = {}
            for method in model.methods.values():
                if method.name == "__init__":
                    continue
                for mutation in method.mutations:
                    if _effectively_locked(model, method,
                                           mutation.under_lock):
                        guarded.setdefault(mutation.attr, method.name)
            if not guarded:
                continue
            for method in model.methods.values():
                if method.name == "__init__":
                    continue
                for mutation in method.mutations:
                    if mutation.attr not in guarded:
                        continue
                    if _effectively_locked(model, method,
                                           mutation.under_lock):
                        continue
                    yield ctx.diagnostic(
                        self, mutation.node,
                        f"'self.{mutation.attr}' is lock-guarded state "
                        f"({model.name}.{guarded[mutation.attr]}() mutates "
                        f"it under the class lock) but is mutated here "
                        f"without holding the lock")


# ---------------------------------------------------------------------------
# RPR012: no blocking work while holding a lock
# ---------------------------------------------------------------------------

@register
class BlockingUnderLockRule(ModuleRule):
    """RPR012: no page I/O, fsync, socket or sleep under a held lock.

    Blocking while holding a lock serializes every other thread behind
    physical I/O — the exact failure mode the single-flight latch design
    exists to prevent (readers wait on a per-page latch, never on the
    pool lock, while the owner does the disk read *outside* the lock).
    Levels in :data:`repro.concurrency.order.BLOCKING_ALLOWED` are
    exempt: the PagedFile I/O lock *is* the sanctioned serialization
    point for physical access.
    """

    code = "RPR012"
    name = "blocking-under-lock"
    summary = ("blocking calls (page I/O, fsync, sockets, sleep) are "
               "forbidden inside 'with self._lock:' regions except at "
               "BLOCKING_ALLOWED lattice levels")

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for model in _lock_models(ctx):
            if model.level in BLOCKING_ALLOWED:
                continue
            for method in model.methods.values():
                for site in method.calls:
                    if site.is_self_call or \
                            site.method not in BLOCKING_CALL_NAMES:
                        continue
                    if not _effectively_locked(model, method,
                                               site.under_lock):
                        continue
                    holder = model.level or model.name
                    yield ctx.diagnostic(
                        self, site.node,
                        f"blocking call {site.method}() while holding the "
                        f"{holder!r} lock; move the blocking work outside "
                        f"the lock (single-flight latch pattern) or give "
                        f"this level a BLOCKING_ALLOWED exemption in "
                        f"repro.concurrency.order")


# ---------------------------------------------------------------------------
# RPR013: determinism hygiene in byte-deterministic report modules
# ---------------------------------------------------------------------------

@register
class DeterminismHygieneRule(ModuleRule):
    """RPR013: no unordered iteration feeding byte-deterministic reports.

    The repo's reports are diffed byte-for-byte in CI (chaos, serve,
    traffic, precompute), which a single unsorted ``set`` iteration or
    ``os.listdir`` breaks only *sometimes* — the worst kind of flake.
    In modules declared byte-deterministic (``DETERMINISTIC_MODULES`` or
    a ``DETERMINISTIC_REPORT = True`` marker), iterating a set-typed
    value or an OS directory enumeration without ``sorted()`` is a
    violation.  Plain dict iteration is allowed: insertion order is a
    language guarantee the reports already rely on.
    """

    code = "RPR013"
    name = "determinism-hygiene"
    summary = ("in byte-deterministic modules, set iteration and "
               "filesystem enumeration (os.listdir/glob/scandir/iterdir) "
               "must go through sorted()")

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if not self._applies(ctx):
            return
        set_names = self._set_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                iters.extend(self._consumed_iterables(node))
            for candidate in iters:
                reason = self._unordered(candidate, set_names)
                if reason is not None:
                    yield ctx.diagnostic(
                        self, candidate,
                        f"iteration over {reason} in a byte-deterministic "
                        f"module; wrap it in sorted(...) so report bytes "
                        f"cannot depend on hash or filesystem order")

    @staticmethod
    def _applies(ctx: ModuleContext) -> bool:
        if ctx.module in DETERMINISTIC_MODULES:
            return True
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and \
                            target.id == DETERMINISTIC_MARKER:
                        return True
        return False

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            return name in ("set", "frozenset")
        return False

    def _set_names(self, tree: ast.Module) -> Set[str]:
        """Names bound to a set expression or annotated as sets, module
        wide (flow-insensitive on purpose: cheap and good enough)."""
        names: Set[str] = set()
        set_markers = {"Set", "FrozenSet", "set", "frozenset",
                       "MutableSet", "AbstractSet"}
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and self._is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name):
                if _annotation_names(node.annotation) & set_markers:
                    names.add(node.target.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for arg in (list(node.args.posonlyargs)
                            + list(node.args.args)
                            + list(node.args.kwonlyargs)):
                    if arg.annotation is not None and \
                            _annotation_names(arg.annotation) & set_markers:
                        names.add(arg.arg)
        return names

    def _consumed_iterables(self, call: ast.Call) -> List[ast.expr]:
        """Arguments whose iteration order flows into the output:
        ``list(x)``, ``tuple(x)``, ``sep.join(x)``."""
        func = call.func
        if isinstance(func, ast.Name) and func.id in ("list", "tuple") \
                and call.args:
            return [call.args[0]]
        if isinstance(func, ast.Attribute) and func.attr == "join" and \
                call.args:
            return [call.args[0]]
        return []

    def _unordered(self, node: ast.expr,
                   set_names: Set[str]) -> Optional[str]:
        if self._is_set_expr(node):
            return "a set expression"
        if isinstance(node, ast.Name) and node.id in set_names:
            return f"set-typed name {node.id!r}"
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted in _FS_ENUMERATORS:
                return f"{dotted}() (filesystem order)"
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "iterdir":
                return "Path.iterdir() (filesystem order)"
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "scandir":
                return "os.scandir() (filesystem order)"
        return None
