"""The repo-specific lint rules (``RPR001``–``RPR009``, ``RPR014``).

Each rule encodes an invariant that a past bug (PR 1's I/O-accounting
fixes) or a structural decision (the observability layer) established,
so the next change cannot silently reintroduce the bug class.  DESIGN.md
documents every rule with the incident it encodes; this module is the
executable form.

All rules are heuristic AST checks, not type-resolved analyses: they
name-match methods and identifiers.  When a rule misfires on legitimate
code, suppress that line with ``# repro: ignore[RPR###]`` and say why in
the adjacent comment — the pragma is part of the audit trail.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import (ModuleContext, ModuleRule, ProjectRule,
                                     register)

#: The package allowed to touch page primitives directly (RPR001).
STORAGE_PACKAGE = "repro.storage"

#: Accounted PagedFile methods that must not be called above the
#: storage layer (the seek-level primitives ``_fh``/``_mem`` are
#: covered separately).
PAGE_METHODS = frozenset({"read_page", "write_page", "append_page",
                          "read_run"})

#: PagedFile internals nobody outside the class may touch: reaching
#: them bypasses the charge accounting entirely.
PAGE_PRIVATE_ATTRS = frozenset({"_fh", "_mem", "_charge",
                                "_last_accessed"})

#: Packages held to the strict typing bar (RPR006 + mypy strict gate).
STRICT_PACKAGES = (
    "repro.storage",
    "repro.core",
    "repro.obs",
    "repro.visibility",
    "repro.rtree",
    "repro.analysis",
    "repro.concurrency",
)

#: The module metric-name constants must come from (RPR002).
NAMES_MODULE = "repro.obs.names"

#: Modules whose *job* is absorbing and transmuting failures (RPR008).
#: Only here may an exception be caught and deliberately dropped.
FAULT_BOUNDARY_MODULES = frozenset({
    "repro.storage.faults",
    "repro.storage.retry",
})

#: Registry methods that take a metric name as first argument.
METRIC_METHODS = frozenset({"counter", "gauge", "histogram", "value"})

#: The HTTP front-end package whose handlers must stay clock-free
#: (RPR009) so its machine-independent report sections stay exact.
HTTP_PACKAGE = "repro.serving.http"

#: The single module under :data:`HTTP_PACKAGE` allowed to read clocks.
HTTP_TIMING_MODULE = "repro.serving.http.middleware"

#: Clock-reading callables in the ``time`` module (RPR009).
CLOCK_FUNCTIONS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
})

#: The raw V-page byte codecs (RPR014): only the codec module — and the
#: serializer that owns the byte layout — may call them.
VPAGE_CODEC_FUNCTIONS = frozenset({"encode_vpage", "decode_vpage"})

#: Modules allowed to touch the raw V-page byte layout (RPR014).
VPAGE_CODEC_MODULES = frozenset({
    "repro.storage.vpagecodec",
    "repro.storage.serializer",
})


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _parent_map(root: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(root):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


@register
class LayeringRule(ModuleRule):
    """RPR001: only ``repro.storage`` touches page primitives.

    PR 1's bugs (phantom V-page reads, same-page re-reads charged as
    seeks) all lived at direct ``read_page``/``write_page`` call sites
    scattered above the storage layer.  Everything above must go
    through ``repro.storage.pageio``, which attributes the access to a
    component and keeps the accounting surface in one package.
    """

    code = "RPR001"
    name = "storage-layering"
    summary = ("page primitives (PagedFile.read_page/write_page/...) may "
               "only be called inside repro.storage; use "
               "repro.storage.pageio elsewhere")

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if ctx.in_package(STORAGE_PACKAGE):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                if attr in PAGE_METHODS:
                    receiver = _dotted(node.func.value)
                    if receiver is not None and (
                            receiver == "pageio"
                            or receiver.endswith(".pageio")):
                        continue
                    yield ctx.diagnostic(
                        self, node,
                        f"direct call to PagedFile.{attr}() outside "
                        f"repro.storage; route page access through "
                        f"repro.storage.pageio so it stays accounted "
                        f"and layer-attributed")
            elif isinstance(node, ast.Attribute) and \
                    node.attr in PAGE_PRIVATE_ATTRS:
                receiver = _dotted(node.value)
                if receiver == "self":
                    continue
                yield ctx.diagnostic(
                    self, node,
                    f"access to PagedFile internal '.{node.attr}' outside "
                    f"repro.storage bypasses the I/O accounting")


class _NamesImports:
    """Which local names refer to the metric-name registry."""

    def __init__(self, tree: ast.Module) -> None:
        #: Local aliases bound to the names *module* itself.
        self.module_aliases: Set[str] = set()
        #: Local names bound to individual constants from the module.
        self.constant_aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == NAMES_MODULE:
                    for alias in node.names:
                        self.constant_aliases.add(
                            alias.asname or alias.name)
                elif node.module is not None and \
                        NAMES_MODULE.startswith(node.module + "."):
                    tail = NAMES_MODULE[len(node.module) + 1:]
                    for alias in node.names:
                        if alias.name == tail:
                            self.module_aliases.add(
                                alias.asname or alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == NAMES_MODULE:
                        self.module_aliases.add(
                            alias.asname or alias.name)

    def sanctions(self, arg: ast.expr) -> bool:
        """True when ``arg`` provably comes from the names registry."""
        if isinstance(arg, ast.Name):
            return arg.id in self.constant_aliases
        if isinstance(arg, ast.Attribute):
            base = _dotted(arg.value)
            return base is not None and (
                base in self.module_aliases or base == NAMES_MODULE)
        return False


@register
class MetricHygieneRule(ModuleRule):
    """RPR002: metric names are constants from ``repro.obs.names``.

    A typo'd literal at a ``counter()`` call does not fail — it creates
    a silent new series and the dashboards read zero.  Forcing every
    name through the registry module makes the typo an undefined-name
    error instead.
    """

    code = "RPR002"
    name = "metric-hygiene"
    summary = ("metric names passed to counter()/gauge()/histogram()/"
               "value() must be constants imported from repro.obs.names")

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if ctx.module == NAMES_MODULE:
            return
        imports = _NamesImports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in METRIC_METHODS:
                continue
            if not node.args:
                continue
            arg = node.args[0]
            if imports.sanctions(arg):
                continue
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                yield ctx.diagnostic(
                    self, arg,
                    f"literal metric name {arg.value!r}; import the "
                    f"constant from repro.obs.names (a typo here creates "
                    f"a silent new series)")
            else:
                yield ctx.diagnostic(
                    self, arg,
                    f"metric name passed to {node.func.attr}() is not a "
                    f"constant from repro.obs.names")


@register
class UnusedMetricNameRule(ProjectRule):
    """RPR002 (project half): every registered name is used somewhere.

    A constant nobody references is a dead series: it either outlived
    its instrument or was added speculatively.  Either way the registry
    stops being the ground truth, so the rule makes removal mandatory.
    """

    code = "RPR007"
    name = "unused-metric-name"
    summary = ("every constant registered in repro.obs.names must be "
               "referenced by some module")

    def check_project(self, modules: Sequence[ModuleContext]
                      ) -> Iterator[Diagnostic]:
        names_ctx = next((m for m in modules if m.module == NAMES_MODULE),
                         None)
        if names_ctx is None:
            return
        constants: Dict[str, ast.stmt] = {}
        for stmt in names_ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and \
                            target.id.isupper():
                        constants[target.id] = stmt
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name) and \
                    stmt.target.id.isupper():
                constants[stmt.target.id] = stmt
        if not constants:
            return
        used: Set[str] = set()
        for ctx in modules:
            if ctx.module == NAMES_MODULE:
                continue
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Name) and node.id in constants:
                    used.add(node.id)
                elif isinstance(node, ast.Attribute) and \
                        node.attr in constants:
                    used.add(node.attr)
        for constant, stmt in sorted(constants.items()):
            if constant not in used:
                yield names_ctx.diagnostic(
                    self, stmt,
                    f"registered metric name {constant} is never used; "
                    f"remove it or instrument the code that should "
                    f"report it")


@register
class PinDisciplineRule(ModuleRule):
    """RPR003: a pinned page is unpinned on every exit path.

    A pin that leaks on an exception permanently shrinks the buffer
    pool's evictable set until ``all frames are pinned; cannot evict``.
    The matching ``unpin()`` therefore belongs in a ``finally`` block
    (or the pin inside a ``with`` whose manager unpins).
    """

    code = "RPR003"
    name = "pin-discipline"
    summary = ("BufferPool pins (pin()/get(pin=True)) must be released "
               "in a finally block or held by a context manager")

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _is_pin_call(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call) or \
                not isinstance(node.func, ast.Attribute):
            return False
        if node.func.attr == "pin":
            return True
        if node.func.attr == "get":
            for keyword in node.keywords:
                if keyword.arg == "pin":
                    value = keyword.value
                    if isinstance(value, ast.Constant) and \
                            value.value is False:
                        return False
                    return True
        return False

    def _has_unpin(self, nodes: Sequence[ast.stmt]) -> bool:
        for stmt in nodes:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        node.func.attr == "unpin":
                    return True
        return False

    def _check_function(self, ctx: ModuleContext,
                        func: ast.AST) -> Iterator[Diagnostic]:
        parents = _parent_map(func)
        for node in ast.walk(func):
            if not self._is_pin_call(node):
                continue
            if self._is_protected(node, func, parents):
                continue
            yield ctx.diagnostic(
                self, node,
                "pin without a matching unpin() in a finally block (or "
                "a surrounding context manager); a leaked pin makes the "
                "frame unevictable forever")

    def _is_protected(self, node: ast.AST, func: ast.AST,
                      parents: Dict[ast.AST, ast.AST]) -> bool:
        current: Optional[ast.AST] = node
        while current is not None and current is not func:
            parent = parents.get(current)
            if isinstance(parent, (ast.With, ast.AsyncWith)):
                return True
            if isinstance(parent, ast.Try) and \
                    current in parent.body and \
                    self._has_unpin(parent.finalbody):
                return True
            current = parent
        return False


@register
class TimingDisciplineRule(ModuleRule):
    """RPR004: elapsed time is measured with a monotonic clock.

    ``time.time()`` is wall-clock: NTP slews, DST and manual changes
    move it, so an elapsed-time difference can be negative or wildly
    wrong — exactly the kind of silent mismeasurement the accounting
    layer exists to prevent.  ``time.perf_counter()`` is monotonic.
    (The seed violation: ``repro/cli.py`` timed experiment runs with
    ``time.time()`` until this rule shipped.)
    """

    code = "RPR004"
    name = "timing-discipline"
    summary = ("time.time() is forbidden for timing; use "
               "time.perf_counter() (pragma a line that genuinely needs "
               "wall-clock timestamps)")

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        time_aliases: Set[str] = set()
        func_aliases: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name == "time":
                            func_aliases.add(alias.asname or "time")
        if not time_aliases and not func_aliases:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            flagged = False
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "time":
                receiver = _dotted(node.func.value)
                flagged = receiver in time_aliases
            elif isinstance(node.func, ast.Name):
                flagged = node.func.id in func_aliases
            if flagged:
                yield ctx.diagnostic(
                    self, node,
                    "time.time() measures wall-clock, which can jump; "
                    "use time.perf_counter() for elapsed time")


def _identifiers(node: ast.expr) -> Iterator[str]:
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr


def _mentions_dov_or_eta(node: ast.expr) -> bool:
    for identifier in _identifiers(node):
        segments = identifier.lower().split("_")
        if "dov" in segments or "eta" in segments:
            return True
    return False


def _is_zero_constant(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and \
        not isinstance(node.value, bool) and node.value == 0


@register
class FloatEqualityRule(ModuleRule):
    """RPR005: no ``==``/``!=`` on DoV/eta values except zero-guards.

    DoV and eta are floats produced by ray sampling and solid-angle
    integration; two mathematically equal values rarely compare equal
    bit-for-bit, so ``==`` silently mis-classifies.  The one sanctioned
    exception is comparison against literal zero: invisibility is
    *stored* as exact 0.0 (the paper's line-3 prune), so a zero-guard
    is an identity test, not a numeric one.
    """

    code = "RPR005"
    name = "dov-float-equality"
    summary = ("direct ==/!= on DoV/eta expressions is forbidden except "
               "against literal zero; use math.isclose or an explicit "
               "tolerance")

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if not (_mentions_dov_or_eta(left)
                        or _mentions_dov_or_eta(right)):
                    continue
                if _is_zero_constant(left) or _is_zero_constant(right):
                    continue
                yield ctx.diagnostic(
                    self, node,
                    "floating-point ==/!= on a DoV/eta expression; only "
                    "zero-guards are exact (invisibility is stored as "
                    "0.0) — use math.isclose or an explicit tolerance")


@register
class SilentExceptionRule(ModuleRule):
    """RPR008: no silent exception swallowing outside the fault boundary.

    PR 3 introduced a layer whose *purpose* is to absorb storage
    failures — which makes a stray ``except: pass`` anywhere else twice
    as dangerous: it looks like resilience but is actually a dropped
    error with no retry, no degradation and no metric.  Swallowing is
    therefore confined to the designated fault-boundary modules
    (``repro.storage.faults``, ``repro.storage.retry``); everywhere else
    an exception must be handled, transmuted or re-raised.  Bare
    ``except:`` is flagged regardless of body — it catches
    ``KeyboardInterrupt``/``SystemExit`` too, which no library code
    should intercept.
    """

    code = "RPR008"
    name = "silent-exception"
    summary = ("silent exception swallowing (except-pass or bare except) "
               "is only allowed in the designated fault-boundary modules "
               "repro.storage.faults / repro.storage.retry")

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if ctx.module in FAULT_BOUNDARY_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.diagnostic(
                    self, node,
                    "bare 'except:' catches KeyboardInterrupt and "
                    "SystemExit; name the exceptions (and handle them)")
            elif self._is_silent(node.body):
                yield ctx.diagnostic(
                    self, node,
                    "exception caught and silently dropped; handle it, "
                    "transmute it, or move the swallow into a "
                    "fault-boundary module (repro.storage.faults/retry)")

    @staticmethod
    def _is_silent(body: Sequence[ast.stmt]) -> bool:
        """True when the handler does nothing observable: only ``pass``,
        ``...`` and bare string constants (comments in statement form)."""
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and \
                    isinstance(stmt.value, ast.Constant) and \
                    (stmt.value.value is Ellipsis
                     or isinstance(stmt.value.value, str)):
                continue
            return False
        return True


#: Typing-container names that are meaningless without parameters under
#: ``mypy --strict`` (``disallow_any_generics``).
_BARE_GENERICS = frozenset({
    "list", "dict", "set", "tuple", "frozenset", "type",
    "List", "Dict", "Set", "Tuple", "FrozenSet", "Type",
    "Sequence", "Iterable", "Iterator", "Mapping", "MutableMapping",
    "Callable", "Generator", "Optional", "Union",
})


@register
class TypingRatchetRule(ModuleRule):
    """RPR006: strict packages stay fully annotated.

    The mypy strict gate runs in CI, where mypy is installed; this rule
    is the container-local ratchet that catches the two highest-volume
    strict failures (missing annotations, bare generics) without any
    third-party dependency, so a PR authored offline cannot silently
    regress the typed core.
    """

    code = "RPR006"
    name = "typing-ratchet"
    summary = ("functions in the strict-typed packages must annotate "
               "every parameter and the return type, with no bare "
               "generics")

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if not any(ctx.in_package(pkg) for pkg in STRICT_PACKAGES):
            return
        parents = _parent_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_def(ctx, node, parents)
            elif isinstance(node, ast.AnnAssign):
                for bare in self._bare_generics(node.annotation):
                    yield ctx.diagnostic(
                        self, bare,
                        f"bare generic {ast.unparse(bare)!r} in variable "
                        f"annotation; parameterize it "
                        f"(disallow_any_generics)")

    def _check_def(self, ctx: ModuleContext, func: ast.AST,
                   parents: Dict[ast.AST, ast.AST]
                   ) -> Iterator[Diagnostic]:
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = func.args
        positional = list(args.posonlyargs) + list(args.args)
        skip_first = isinstance(parents.get(func), ast.ClassDef) and \
            not any(isinstance(d, ast.Name) and d.id == "staticmethod"
                    for d in func.decorator_list)
        for index, arg in enumerate(positional):
            if index == 0 and skip_first:
                continue
            if arg.annotation is None:
                yield ctx.diagnostic(
                    self, arg,
                    f"parameter {arg.arg!r} of {func.name}() is "
                    f"unannotated (strict-typed package)")
        for arg in args.kwonlyargs:
            if arg.annotation is None:
                yield ctx.diagnostic(
                    self, arg,
                    f"parameter {arg.arg!r} of {func.name}() is "
                    f"unannotated (strict-typed package)")
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None and vararg.annotation is None:
                yield ctx.diagnostic(
                    self, vararg,
                    f"parameter {vararg.arg!r} of {func.name}() is "
                    f"unannotated (strict-typed package)")
        if func.returns is None:
            yield ctx.diagnostic(
                self, func,
                f"{func.name}() has no return annotation "
                f"(strict-typed package)")
        for annotation in self._annotations(func):
            for bare in self._bare_generics(annotation):
                yield ctx.diagnostic(
                    self, bare,
                    f"bare generic {ast.unparse(bare)!r} in annotation "
                    f"of {func.name}(); parameterize it "
                    f"(disallow_any_generics)")

    def _annotations(self, func: ast.AST) -> Iterator[ast.expr]:
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = func.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)
                    + [a for a in (args.vararg, args.kwarg)
                       if a is not None]):
            if arg.annotation is not None:
                yield arg.annotation
        if func.returns is not None:
            yield func.returns

    def _bare_generics(self, annotation: ast.expr) -> Iterator[ast.expr]:
        # A Name is "bare" when it is not the value side of a Subscript
        # (``List`` alone vs ``List[int]``).  String annotations are
        # parsed and recursed into.
        if isinstance(annotation, ast.Constant) and \
                isinstance(annotation.value, str):
            try:
                parsed = ast.parse(annotation.value, mode="eval")
            except SyntaxError:
                return
            yield from self._bare_generics(parsed.body)
            return
        subscript_values: Set[int] = set()
        for node in ast.walk(annotation):
            if isinstance(node, ast.Subscript):
                subscript_values.add(id(node.value))
        for node in ast.walk(annotation):
            if isinstance(node, ast.Name) and \
                    node.id in _BARE_GENERICS and \
                    id(node) not in subscript_values:
                yield node
            elif isinstance(node, ast.Attribute) and \
                    node.attr in _BARE_GENERICS and \
                    id(node) not in subscript_values and \
                    _dotted(node) in {"typing." + node.attr,
                                      "t." + node.attr}:
                yield node


@register
class VPageCodecBoundaryRule(ModuleRule):
    """RPR014: V-page bytes are decoded only inside the codec module.

    PR 9 made the V-page byte layout *versioned* (raw pages vs the
    packed delta stream).  A direct ``encode_vpage``/``decode_vpage``
    call outside :mod:`repro.storage.vpagecodec` hard-codes the raw
    layout: it reads garbage the moment the environment is built with
    the packed codec, and it bypasses the codec's corruption checks
    (CRC, version byte, bounds).  Schemes and tools must go through a
    :class:`VPageCodec`; only the codec module and the serializer that
    owns the raw byte format may call the raw functions.
    """

    code = "RPR014"
    name = "vpage-codec-boundary"
    summary = ("encode_vpage/decode_vpage may only be called (or "
               "imported) inside repro.storage.vpagecodec and "
               "repro.storage.serializer; go through a VPageCodec")

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if ctx.module in VPAGE_CODEC_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in VPAGE_CODEC_FUNCTIONS:
                        yield ctx.diagnostic(
                            self, node,
                            f"import of {alias.name} outside the V-page "
                            f"codec module hard-codes the raw byte "
                            f"layout; read/write V-pages through a "
                            f"repro.storage.vpagecodec.VPageCodec")
            elif isinstance(node, ast.Call):
                name = None
                if isinstance(node.func, ast.Name):
                    name = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                if name in VPAGE_CODEC_FUNCTIONS:
                    yield ctx.diagnostic(
                        self, node,
                        f"direct {name}() call outside the V-page codec "
                        f"module; V-page bytes are versioned — decode "
                        f"them through the scheme's VPageCodec so the "
                        f"packed layout and its corruption checks apply")


@register
class HttpTimingBoundaryRule(ModuleRule):
    """RPR009: only the timing middleware reads clocks in the front-end.

    The traffic harness promises that everything in a report except
    wall-clock latency is a pure function of the request sequence —
    byte-identical across machines for a fixed seed.  That promise only
    holds if no handler, stats aggregator or parser under
    ``repro.serving.http`` reads a clock: one stray ``perf_counter()``
    folded into a response body silently poisons the deterministic
    section.  All timing therefore lives in exactly one module, the
    middleware, which measures each request once and hands finished
    durations to the clock-free collector.
    """

    code = "RPR009"
    name = "http-timing-boundary"
    summary = ("clock reads (time.time/perf_counter/monotonic/...) are "
               "forbidden under repro.serving.http outside the timing "
               "middleware; measure once in the middleware and pass "
               "durations down")

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if not ctx.in_package(HTTP_PACKAGE):
            return
        if ctx.module == HTTP_TIMING_MODULE:
            return
        time_aliases: Set[str] = set()
        func_aliases: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in CLOCK_FUNCTIONS:
                            func_aliases.add(alias.asname or alias.name)
        if not time_aliases and not func_aliases:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            flagged = False
            clock = None
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr in CLOCK_FUNCTIONS:
                receiver = _dotted(node.func.value)
                if receiver in time_aliases:
                    flagged = True
                    clock = f"time.{node.func.attr}"
            elif isinstance(node.func, ast.Name) and \
                    node.func.id in func_aliases:
                flagged = True
                clock = node.func.id
            if flagged:
                yield ctx.diagnostic(
                    self, node,
                    f"{clock}() inside repro.serving.http but outside "
                    f"the timing middleware; the front-end's "
                    f"deterministic-report promise requires all clock "
                    f"reads to live in {HTTP_TIMING_MODULE}")
