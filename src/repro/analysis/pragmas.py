"""Ignore pragmas: suppressing a diagnostic at the source line.

Two forms, both comment-only (strings never activate a pragma — the
source is tokenized, not regex-scanned):

* ``# repro: ignore[RPR001]`` — suppresses the listed codes on that
  physical line (the line the diagnostic is reported at);
* ``# repro: ignore-file[RPR002, RPR005]`` — anywhere in the file,
  suppresses the listed codes for the whole file.

Codes must be listed explicitly; there is no bare ``ignore`` that
swallows everything, because a blanket pragma hides future rules the
author never saw.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*(?P<kind>ignore-file|ignore)\s*"
    r"\[(?P<codes>[A-Z0-9,\s]+)\]")


@dataclass
class PragmaIndex:
    """Per-file suppression index built from comment tokens."""

    #: line number -> codes suppressed on that line.
    line_codes: Dict[int, Set[str]] = field(default_factory=dict)
    #: codes suppressed for the entire file.
    file_codes: Set[str] = field(default_factory=set)

    def suppresses(self, line: int, code: str) -> bool:
        if code in self.file_codes:
            return True
        return code in self.line_codes.get(line, frozenset())


def _parse_codes(raw: str) -> FrozenSet[str]:
    return frozenset(code.strip() for code in raw.split(",") if code.strip())


def collect_pragmas(source: str) -> PragmaIndex:
    """Scan ``source`` for pragmas; tolerates unparsable tails.

    Tokenization errors (which :func:`ast.parse` would have rejected
    anyway) terminate the scan early rather than raising, so the driver
    reports the syntax error once instead of twice.
    """
    index = PragmaIndex()
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(token.string)
            if match is None:
                continue
            codes = _parse_codes(match.group("codes"))
            if match.group("kind") == "ignore-file":
                index.file_codes.update(codes)
            else:
                line = token.start[0]
                index.line_codes.setdefault(line, set()).update(codes)
    # An unparsable file yields an empty pragma index on purpose: the
    # lint driver reports the parse failure itself as RPR000, so a
    # second error from here would be noise.
    except (tokenize.TokenError, IndentationError,  # repro: ignore[RPR008]
            SyntaxError):
        pass
    return index
