"""Baseline files: adopt a rule without fixing the backlog first.

A baseline is a JSON snapshot of the *currently accepted* diagnostics.
``repro lint --baseline FILE`` subtracts it from the results, so a new
rule can gate new code immediately while the pre-existing violations
are burned down over time.  Keys are location-independent
(``path::code::message``) with an occurrence count, so edits elsewhere
in a file do not invalidate its baseline, but *adding* one more
violation of a baselined kind still fails.

The repo itself ships with no baseline — the tree is clean — but the
mechanism is part of the framework so future rules can land against a
dirty tree without being watered down.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.errors import AnalysisError
from repro.storage.atomic import atomic_write_text

_VERSION = 1


def save_baseline(path: str, diagnostics: List[Diagnostic]) -> None:
    """Write the baseline covering ``diagnostics`` to ``path``."""
    entries = Counter(d.baseline_key() for d in diagnostics)
    payload = {
        "version": _VERSION,
        "entries": {key: count for key, count in sorted(entries.items())},
    }
    # Atomic: CI diffs this file against the committed copy, and a torn
    # rewrite would read as spurious baseline drift.
    atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=False) + "\n")


def load_baseline(path: str) -> Dict[str, int]:
    """Read a baseline; raises :class:`AnalysisError` on malformed data."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or \
            payload.get("version") != _VERSION or \
            not isinstance(payload.get("entries"), dict):
        raise AnalysisError(
            f"baseline {path}: expected {{version: {_VERSION}, "
            f"entries: {{...}}}}")
    entries: Dict[str, int] = {}
    for key, count in payload["entries"].items():
        if not isinstance(key, str) or not isinstance(count, int) or \
                count < 1:
            raise AnalysisError(
                f"baseline {path}: bad entry {key!r}: {count!r}")
        entries[key] = count
    return entries


def apply_baseline(diagnostics: List[Diagnostic],
                   baseline: Dict[str, int]
                   ) -> Tuple[List[Diagnostic], int]:
    """Subtract baselined occurrences; returns (remaining, suppressed).

    Each baseline entry absorbs up to ``count`` matching diagnostics;
    the count makes "one more of the same violation" still fail.
    """
    budget = dict(baseline)
    remaining: List[Diagnostic] = []
    suppressed = 0
    for diagnostic in diagnostics:
        key = diagnostic.baseline_key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            remaining.append(diagnostic)
    return remaining, suppressed
