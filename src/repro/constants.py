"""Library-wide constants.

Values that the paper fixes (``MAXDOV``), plus the byte-level modelling
constants used to translate polygon counts into storage sizes.  The byte
constants are the single source of truth for every experiment that reports
dataset or index sizes.
"""

from __future__ import annotations

#: Paper, Section 3.3: the spherical projection of an object seen from
#: outside its bounding box never exceeds half the sphere, so the LoD
#: blending factor of equation 6 saturates at ``DoV / MAXDOV`` with
#: ``MAXDOV = 0.5``.
MAXDOV = 0.5

#: Size of one disk page in bytes.  4 KiB matches common filesystem pages.
PAGE_SIZE = 4096

#: Bytes occupied by one stored polygon (three vertices at three float32
#: coordinates each, plus a packed normal/material word).  Used to model the
#: "heavy-weight" model data sizes of the paper's 400 MB - 1.6 GB datasets.
BYTES_PER_POLYGON = 40

#: Bytes of a serialized pointer (page id) in the storage schemes.
SIZE_POINTER = 4

#: Bytes of a serialized integer (node offset) in the storage schemes.
SIZE_INTEGER = 4

#: Bytes of one V-entry: DoV as float32 plus NVO as uint32 (Section 3.3
#: extends VD to the pair ``(DoV, NVO)``).
SIZE_VENTRY = 8

#: Default R-tree fan-out (maximum entries per node).  The paper does not
#: report its fan-out; 8 keeps trees of a few hundred to a few thousand
#: objects 3-4 levels deep, matching the height range its formulas assume
#: and giving the internal-LoD termination real opportunities.
DEFAULT_FANOUT = 8

#: Default minimum fill factor for non-root R-tree nodes.
DEFAULT_MIN_FILL = 0.4

#: Default ratio ``s`` between an internal LoD's polygon count and the sum
#: of its children's polygon counts (Section 3.3's ``s``).  Small values
#: make internal LoDs cheap and the eq.-4 termination test easy to pass.
DEFAULT_LOD_RATIO = 0.2

#: Number of LoD levels stored per object (finest first).
DEFAULT_OBJECT_LOD_LEVELS = 3

#: The eta range the paper evaluates: "As threshold values smaller than
#: 0.008 generate very good visual fidelity, we shall use eta values in
#: [0, 0.008]."
ETA_RANGE = (0.0, 0.008)

#: Eta grid used by the figure-7/8 sweeps (matches Table 3's sample points).
ETA_GRID = (0.0, 0.00005, 0.0001, 0.0002, 0.0003, 0.0005, 0.001, 0.002,
            0.004, 0.008)
