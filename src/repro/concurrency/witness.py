"""Runtime lock-order witness: the dynamic twin of lint rule RPR010.

:class:`LockOrderWitness` wraps the repo's real locks (pool, paged
file, scheduler, metrics registry) and checks every acquisition against
the declared lattice in :mod:`repro.concurrency.order` *before* the
underlying lock is taken.  A violation therefore surfaces as a typed
:class:`~repro.errors.LockOrderError` at the offending call site — a
stack trace — rather than as the deadlock it would eventually become.

Zero overhead when off: lock owners call :func:`wrap_lock` at
construction time, and when no witness is installed the helper returns
the raw lock object untouched — the hot path runs exactly the code it
ran before this module existed.  Opt in either programmatically
(:func:`install` / :func:`installed`) or by setting
``REPRO_LOCK_WITNESS=1`` in the environment before the process starts
(the CI concurrency-hammer job does the latter).

The witness also aggregates what it saw — per-level acquisition counts
and the cross-level acquisition graph — into a deterministic report
keyed only by lattice levels (never thread identities), so two runs of
the same single-threaded exercise produce byte-identical JSON.
"""

import os
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Protocol, Tuple

from repro.concurrency.order import LATTICE, level_index, may_acquire
from repro.errors import LockOrderError


class AcquirableLock(Protocol):
    """Structural stand-in for ``threading.Lock``/``RLock`` instances.

    ``threading.Lock()`` returns an unnameable C type, so the witness
    proxy duck-types against this minimal surface instead of a real
    base class.
    """

    def acquire(self, blocking: bool = ..., timeout: float = ...) -> bool:
        ...

    def release(self) -> None:
        ...

    def __enter__(self) -> bool:
        ...

    def __exit__(self, *exc: object) -> Optional[bool]:
        ...


class LockOrderWitness:
    """Records per-thread lock stacks and enforces the lattice.

    The held-lock stack lives in thread-local storage; the aggregate
    acquisition graph is shared and guarded by a plain internal lock
    that never participates in the lattice (nothing is acquired while
    it is held).
    """

    def __init__(self) -> None:
        self._tls = threading.local()
        self._graph_lock = threading.Lock()
        self._edges: Dict[Tuple[str, str], int] = {}
        self._acquisitions: Dict[str, int] = {}
        self._violations: List[str] = []

    # -- per-thread stack ---------------------------------------------------

    def _stack(self) -> List["_WitnessedLock"]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _precheck(self, lock: "_WitnessedLock") -> Tuple[bool, Optional[str]]:
        """Validate an intended acquisition; returns (reentrant, held level).

        Raises :class:`LockOrderError` — and records the violation —
        when the lattice forbids the acquisition.  Called *before* the
        underlying lock is touched, so a would-be deadlock fails fast.
        """
        stack = self._stack()
        for held in stack:
            if held is lock:
                return True, None
        held_level = stack[-1].level if stack else None
        if not may_acquire(held_level, lock.level):
            holder = stack[-1]
            message = (
                f"thread holding {holder.level!r} ({holder.name}) tried to "
                f"acquire {lock.level!r} ({lock.name}); the lattice "
                f"{' -> '.join(LATTICE)} permits only strictly lower levels"
            )
            with self._graph_lock:
                self._violations.append(message)
            self._count(lock.level, violation=True)
            raise LockOrderError(message)
        return False, held_level

    def _record(self, lock: "_WitnessedLock", reentrant: bool,
                held_level: Optional[str]) -> None:
        """Account a successful acquisition (called with the lock held)."""
        self._stack().append(lock)
        with self._graph_lock:
            self._acquisitions[lock.level] = (
                self._acquisitions.get(lock.level, 0) + 1)
            if not reentrant and held_level is not None:
                key = (held_level, lock.level)
                self._edges[key] = self._edges.get(key, 0) + 1
        if not reentrant:
            self._count(lock.level, violation=False)

    def _forget(self, lock: "_WitnessedLock") -> None:
        """Drop the most recent stack entry for *lock* on release."""
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                return

    def _count(self, level: str, *, violation: bool) -> None:
        """Bump the obs counters, guarding against self-recursion.

        The metrics registry's own lock may itself be witnessed; the
        thread-local ``busy`` flag keeps that inner acquisition from
        re-entering the metric bump.
        """
        if getattr(self._tls, "busy", False):
            return
        self._tls.busy = True
        try:
            from repro.obs import names
            from repro.obs.metrics import get_registry
            if violation:
                get_registry().counter(
                    names.LOCK_ORDER_VIOLATIONS, level=level).inc()
            else:
                get_registry().counter(
                    names.LOCK_ACQUISITIONS, level=level).inc()
        finally:
            self._tls.busy = False

    # -- reporting ----------------------------------------------------------

    def reset(self) -> None:
        """Clear the aggregate graph (per-thread stacks are untouched)."""
        with self._graph_lock:
            self._edges.clear()
            self._acquisitions.clear()
            self._violations.clear()

    def edges(self) -> Dict[Tuple[str, str], int]:
        """Snapshot of the witnessed acquisition graph, ``{(from, to): n}``."""
        with self._graph_lock:
            return dict(self._edges)

    def violations(self) -> List[str]:
        """Messages for every lattice violation seen so far."""
        with self._graph_lock:
            return list(self._violations)

    def report(self) -> Dict[str, object]:
        """Deterministic summary keyed by lattice level, never by thread."""
        with self._graph_lock:
            acquisitions = dict(self._acquisitions)
            edges = dict(self._edges)
            violations = list(self._violations)
        return {
            "lattice": list(LATTICE),
            "acquisitions": {level: acquisitions[level]
                             for level in sorted(acquisitions)},
            "edges": [
                {"from": source, "to": target, "count": edges[(source, target)]}
                for source, target in sorted(edges)
            ],
            "violations": sorted(set(violations)),
            "violations_total": len(violations),
        }


class _WitnessedLock:
    """Proxy around a real lock that routes acquisitions via the witness."""

    __slots__ = ("_lock", "_witness", "level", "name")

    def __init__(self, lock: AcquirableLock, *, witness: LockOrderWitness,
                 level: str, name: str) -> None:
        self._lock = lock
        self._witness = witness
        self.level = level
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        reentrant, held_level = self._witness._precheck(self)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._witness._record(self, reentrant, held_level)
        return acquired

    def release(self) -> None:
        self._lock.release()
        self._witness._forget(self)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return (f"<_WitnessedLock level={self.level!r} name={self.name!r} "
                f"wrapping {self._lock!r}>")


_active: Optional[LockOrderWitness] = None


def current_witness() -> Optional[LockOrderWitness]:
    """The installed witness, or None when witnessing is off."""
    return _active


def install(witness: LockOrderWitness) -> None:
    """Make *witness* the process-wide witness for locks wrapped later.

    Wrapping happens at lock construction, so installing affects only
    locks created afterwards — install before building pools/files.
    """
    global _active
    _active = witness


def uninstall() -> None:
    """Remove the installed witness; later wrap_lock calls are no-ops."""
    global _active
    _active = None


@contextmanager
def installed(witness: LockOrderWitness) -> Iterator[LockOrderWitness]:
    """Scoped :func:`install` that restores the previous witness on exit."""
    previous = current_witness()
    install(witness)
    try:
        yield witness
    finally:
        if previous is None:
            uninstall()
        else:
            install(previous)


def wrap_lock(lock: AcquirableLock, *, level: str,
              name: str) -> AcquirableLock:
    """Wrap *lock* for witnessing, or return it untouched when off.

    *level* must be a declared lattice level (validated eagerly even
    when no witness is installed, so typos fail in tests regardless of
    the witness switch); *name* is a human label for error messages.
    """
    level_index(level)
    witness = current_witness()
    if witness is None:
        return lock
    return _WitnessedLock(lock, witness=witness, level=level, name=name)


def _install_from_env() -> None:
    """Honour ``REPRO_LOCK_WITNESS=1`` set before the process started."""
    if os.environ.get("REPRO_LOCK_WITNESS", "").lower() in ("1", "true", "yes"):
        install(LockOrderWitness())


_install_from_env()
