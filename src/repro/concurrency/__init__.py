"""Concurrency invariants as code: the lock lattice and its witnesses.

PR 5/6 built a genuinely concurrent serving stack — a thread-safe
:class:`~repro.storage.buffer.BufferPool` with single-flight read
latches, per-file I/O locks, a round scheduler — and documented its
locking rules in docstrings.  This package makes those rules
*executable*:

* :mod:`repro.concurrency.order` declares the one lock lattice the
  whole repo obeys (``serving.scheduler → bufferpool → pagedfile →
  obs.registry``).  It is consumed by **both** enforcement sides, so
  the static checker and the runtime witness can never drift apart.
* :mod:`repro.concurrency.witness` provides
  :class:`~repro.concurrency.witness.LockOrderWitness` — an opt-in
  wrapper around the real locks that records per-thread acquisition
  stacks, raises :class:`~repro.errors.LockOrderError` the moment a
  thread acquires against the lattice, and reports the observed
  acquisition graph as deterministic JSON.  When no witness is
  installed the wrapping helper returns the raw lock object: the hot
  path pays nothing.

The static half lives in :mod:`repro.analysis.concurrency` (lint rules
RPR010–RPR013); ``repro locks`` prints the statically inferred and the
witnessed acquisition graphs side by side.
"""

from repro.concurrency.order import (BLOCKING_ALLOWED, LATTICE,
                                     level_index, may_acquire)
from repro.concurrency.witness import (LockOrderWitness, current_witness,
                                       install, installed, uninstall,
                                       wrap_lock)

__all__ = [
    "BLOCKING_ALLOWED",
    "LATTICE",
    "LockOrderWitness",
    "current_witness",
    "install",
    "installed",
    "level_index",
    "may_acquire",
    "uninstall",
    "wrap_lock",
]
