"""The declared lock lattice — the single source of truth for lock order.

Every lock in the repo that can be held while another lock is acquired
carries a *level*, one of the names in :data:`LATTICE`.  The rule is
strict descent: a thread holding a lock at level ``L`` may only acquire
locks at levels strictly *after* ``L`` in the lattice.  Same-level
acquisition across objects is a violation (two buffer pools must never
nest), and re-entrant acquisition of the *same* lock object is always
allowed (the pool and file locks are RLocks by design).

This module is deliberately tiny and dependency-free: it is imported by
the static checker (:mod:`repro.analysis.concurrency`, rule RPR010),
the runtime witness (:mod:`repro.concurrency.witness`), and the lock
owners themselves (``LOCK_LEVEL`` class attributes), so the three can
never disagree about the order.
"""

from typing import Optional, Tuple

# Outermost first.  A holder of LATTICE[i] may acquire LATTICE[j] only
# when j > i.  "none" (hold nothing further) is implicit after the last
# level.
LATTICE: Tuple[str, ...] = (
    "serving.scheduler",  # SessionScheduler bookkeeping state
    "bufferpool",         # BufferPool frame-table lock
    "pagedfile",          # PagedFile physical-I/O lock
    "journal",            # WriteAheadJournal append/sync lock
    "obs.registry",       # MetricsRegistry instrument-creation lock
)

# Levels whose locks exist precisely to serialize blocking work.  The
# PagedFile I/O lock *is* the physical-I/O serialization point, so
# reads/writes/fsync under it are the design, not a bug; the journal
# lock likewise serializes WAL appends and the commit fsync.  RPR012
# exempts these levels.
BLOCKING_ALLOWED = frozenset({"pagedfile", "journal"})


def level_index(level: str) -> int:
    """Position of *level* in the lattice; raises ValueError if unknown."""
    try:
        return LATTICE.index(level)
    except ValueError:
        raise ValueError(
            f"unknown lock level {level!r}; declared lattice is {LATTICE!r}"
        ) from None


def is_level(level: str) -> bool:
    """True when *level* is a declared lattice level."""
    return level in LATTICE


def may_acquire(held: Optional[str], wanted: str) -> bool:
    """May a thread holding a *held*-level lock acquire a *wanted* one?

    ``held is None`` means the thread holds nothing, which permits any
    level.  Otherwise the lattice demands strict descent.
    """
    if held is None:
        return True
    return level_index(wanted) > level_index(held)
