"""Solid-angle utilities.

DoV is defined as the solid angle of the visible part of a point set
divided by ``4 * pi`` (paper, Section 3.1).  These helpers give closed-form
or bounded estimates used for analytic checks and for cheap upper bounds
in the visibility pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.aabb import AABB
from repro.geometry.vec import as_vec3

FULL_SPHERE = 4.0 * np.pi


def sphere_solid_angle(distance: float, radius: float) -> float:
    """Exact solid angle of a sphere of ``radius`` seen from ``distance``.

    ``Omega = 2 * pi * (1 - sqrt(1 - (r/d)^2))`` for ``d > r``; the full
    ``4 * pi`` when the viewpoint is inside the sphere.
    """
    if radius <= 0:
        raise GeometryError(f"radius must be positive, got {radius}")
    if distance <= radius:
        return FULL_SPHERE
    ratio = radius / distance
    return float(2.0 * np.pi * (1.0 - np.sqrt(1.0 - ratio * ratio)))


def aabb_solid_angle_upper_bound(viewpoint, box: AABB) -> float:
    """Upper bound on the solid angle subtended by ``box`` from ``viewpoint``.

    Uses the bounding sphere of the box.  Returns ``4 * pi`` when the
    viewpoint is inside the bounding sphere.
    """
    p = as_vec3(viewpoint)
    radius = box.diagonal / 2.0
    if radius == 0.0:
        return 0.0
    dist = float(np.linalg.norm(box.center - p))
    if dist <= radius:
        return FULL_SPHERE
    return sphere_solid_angle(dist, radius)


def dov_upper_bound(viewpoint, box: AABB) -> float:
    """DoV (fraction of the sphere) upper bound for an AABB."""
    return min(aabb_solid_angle_upper_bound(viewpoint, box) / FULL_SPHERE, 1.0)


def triangle_solid_angle(viewpoint, a, b, c) -> float:
    """Exact solid angle of a triangle (Van Oosterom & Strackee).

    Returns the absolute solid angle in steradians.
    """
    p = as_vec3(viewpoint)
    ra = as_vec3(a) - p
    rb = as_vec3(b) - p
    rc = as_vec3(c) - p
    la, lb, lc = (np.linalg.norm(v) for v in (ra, rb, rc))
    if min(la, lb, lc) == 0.0:
        raise GeometryError("viewpoint coincides with a triangle vertex")
    numerator = float(np.dot(ra, np.cross(rb, rc)))
    denominator = float(
        la * lb * lc + np.dot(ra, rb) * lc + np.dot(ra, rc) * lb
        + np.dot(rb, rc) * la)
    return abs(2.0 * np.arctan2(numerator, denominator))
