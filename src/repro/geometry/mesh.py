"""Triangle meshes.

Object models and LoDs are triangle meshes; the storage layer only needs
their polygon counts and byte sizes, but the simplifiers and the fidelity
metric operate on real vertices and faces.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.constants import BYTES_PER_POLYGON
from repro.errors import GeometryError
from repro.geometry.aabb import AABB


class TriangleMesh:
    """An indexed triangle mesh.

    Attributes
    ----------
    vertices:
        ``(nv, 3)`` float64 array of vertex positions.
    faces:
        ``(nf, 3)`` int64 array of vertex indices.
    """

    __slots__ = ("vertices", "faces", "_aabb")

    def __init__(self, vertices, faces) -> None:
        verts = np.asarray(vertices, dtype=np.float64)
        tris = np.asarray(faces, dtype=np.int64)
        if verts.ndim != 2 or verts.shape[1] != 3:
            raise GeometryError(f"vertices must be (n, 3), got {verts.shape}")
        if tris.size == 0:
            tris = tris.reshape(0, 3)
        if tris.ndim != 2 or tris.shape[1] != 3:
            raise GeometryError(f"faces must be (m, 3), got {tris.shape}")
        if tris.size and (tris.min() < 0 or tris.max() >= len(verts)):
            raise GeometryError("face index out of range")
        if not np.all(np.isfinite(verts)):
            raise GeometryError("non-finite vertex coordinate")
        self.vertices = verts
        self.faces = tris
        self._aabb: Optional[AABB] = None

    # -- construction -------------------------------------------------------

    @classmethod
    def empty(cls) -> "TriangleMesh":
        return cls(np.empty((0, 3)), np.empty((0, 3), dtype=np.int64))

    @classmethod
    def merge(cls, meshes) -> "TriangleMesh":
        """Concatenate meshes into one, re-basing face indices."""
        meshes = [m for m in meshes if len(m.faces)]
        if not meshes:
            return cls.empty()
        verts = []
        faces = []
        base = 0
        for mesh in meshes:
            verts.append(mesh.vertices)
            faces.append(mesh.faces + base)
            base += len(mesh.vertices)
        return cls(np.vstack(verts), np.vstack(faces))

    # -- properties ----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_faces(self) -> int:
        return len(self.faces)

    @property
    def num_polygons(self) -> int:
        """Alias used by the LoD/storage layers."""
        return self.num_faces

    @property
    def byte_size(self) -> int:
        """Modelled on-disk size of this mesh (see ``BYTES_PER_POLYGON``)."""
        return self.num_faces * BYTES_PER_POLYGON

    def aabb(self) -> AABB:
        """Bounding box of the mesh (cached)."""
        if self._aabb is None:
            if self.num_vertices == 0:
                raise GeometryError("empty mesh has no AABB")
            self._aabb = AABB.from_points(self.vertices)
        return self._aabb

    # -- geometry ----------------------------------------------------------

    def face_areas(self) -> np.ndarray:
        """Area of each triangle, shape ``(nf,)``."""
        tri = self.vertices[self.faces]
        cross = np.cross(tri[:, 1] - tri[:, 0], tri[:, 2] - tri[:, 0])
        return 0.5 * np.linalg.norm(cross, axis=1)

    def surface_area(self) -> float:
        return float(self.face_areas().sum())

    def face_centroids(self) -> np.ndarray:
        return self.vertices[self.faces].mean(axis=1)

    def translated(self, offset) -> "TriangleMesh":
        off = np.asarray(offset, dtype=np.float64)
        return TriangleMesh(self.vertices + off, self.faces)

    def scaled(self, factor) -> "TriangleMesh":
        """Uniform or per-axis scale about the origin."""
        return TriangleMesh(self.vertices * np.asarray(factor, dtype=np.float64),
                            self.faces)

    def drop_degenerate_faces(self, area_eps: float = 1e-12) -> "TriangleMesh":
        """Remove faces with ~zero area or repeated vertex indices."""
        if self.num_faces == 0:
            return self
        distinct = (
            (self.faces[:, 0] != self.faces[:, 1])
            & (self.faces[:, 1] != self.faces[:, 2])
            & (self.faces[:, 0] != self.faces[:, 2])
        )
        keep = distinct & (self.face_areas() > area_eps)
        return TriangleMesh(self.vertices, self.faces[keep])

    def compacted(self) -> "TriangleMesh":
        """Drop vertices not referenced by any face, remapping indices."""
        if self.num_faces == 0:
            return TriangleMesh.empty()
        used, inverse = np.unique(self.faces.ravel(), return_inverse=True)
        return TriangleMesh(self.vertices[used], inverse.reshape(-1, 3))

    def __repr__(self) -> str:
        return f"TriangleMesh(vertices={self.num_vertices}, faces={self.num_faces})"
