"""Axis-aligned bounding boxes (the paper's MBRs).

The HDoV-tree stores an MBR in every entry; the REVIEW baseline issues
window queries with AABBs.  This module is the single AABB implementation
used everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.vec import as_vec3


@dataclass(frozen=True)
class AABB:
    """A closed axis-aligned box ``[lo, hi]`` in 3-space.

    ``lo`` and ``hi`` are float64 ``(3,)`` arrays with ``lo <= hi``
    component-wise.  Instances are immutable and hashable by value.
    """

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = as_vec3(self.lo)
        hi = as_vec3(self.hi)
        if np.any(lo > hi):
            raise GeometryError(f"AABB lo {lo} exceeds hi {hi}")
        # Bypass frozen-ness once to store canonical arrays.
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        self.lo.setflags(write=False)
        self.hi.setflags(write=False)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_points(cls, points) -> "AABB":
        """Smallest AABB containing every row of ``points`` (shape (n, 3))."""
        arr = np.asarray(points, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != 3 or arr.shape[0] == 0:
            raise GeometryError(f"expected non-empty (n, 3) points, got shape {arr.shape}")
        return cls(arr.min(axis=0), arr.max(axis=0))

    @classmethod
    def from_center_extent(cls, center, extent) -> "AABB":
        """AABB centered at ``center`` with full side lengths ``extent``."""
        c = as_vec3(center)
        e = as_vec3(extent)
        if np.any(e < 0):
            raise GeometryError(f"negative extent {e}")
        return cls(c - e / 2.0, c + e / 2.0)

    # -- basic properties --------------------------------------------------

    @property
    def center(self) -> np.ndarray:
        return (self.lo + self.hi) / 2.0

    @property
    def extent(self) -> np.ndarray:
        """Full side lengths along each axis."""
        return self.hi - self.lo

    @property
    def volume(self) -> float:
        return float(np.prod(self.extent))

    @property
    def surface_area(self) -> float:
        ex, ey, ez = self.extent
        return float(2.0 * (ex * ey + ey * ez + ez * ex))

    @property
    def diagonal(self) -> float:
        return float(np.linalg.norm(self.extent))

    def corners(self) -> np.ndarray:
        """The 8 corner points, shape ``(8, 3)``."""
        lo, hi = self.lo, self.hi
        xs = (lo[0], hi[0])
        ys = (lo[1], hi[1])
        zs = (lo[2], hi[2])
        return np.array([(x, y, z) for x in xs for y in ys for z in zs],
                        dtype=np.float64)

    # -- predicates ---------------------------------------------------------

    def contains_point(self, point) -> bool:
        p = as_vec3(point)
        return bool(np.all(p >= self.lo) and np.all(p <= self.hi))

    def contains(self, other: "AABB") -> bool:
        """True if ``other`` lies entirely inside ``self``."""
        return bool(np.all(other.lo >= self.lo) and np.all(other.hi <= self.hi))

    def intersects(self, other: "AABB") -> bool:
        """True if the closed boxes share at least one point."""
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    # -- combination ---------------------------------------------------------

    def union(self, other: "AABB") -> "AABB":
        return AABB(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def intersection(self, other: "AABB") -> Optional["AABB"]:
        """The overlap box, or ``None`` when the boxes are disjoint."""
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        if np.any(lo > hi):
            return None
        return AABB(lo, hi)

    def inflated(self, margin: float) -> "AABB":
        """A copy grown by ``margin`` on every side (may be negative only
        down to a degenerate box)."""
        lo = self.lo - margin
        hi = self.hi + margin
        if np.any(lo > hi):
            raise GeometryError(f"inflation by {margin} inverts the box")
        return AABB(lo, hi)

    # -- metrics --------------------------------------------------------------

    def enlargement(self, other: "AABB") -> float:
        """Volume increase of ``self`` needed to also cover ``other``.

        This is the classic Guttman insertion cost.
        """
        return self.union(other).volume - self.volume

    def min_distance_to_point(self, point) -> float:
        """Distance from ``point`` to the nearest point of the box (0 if inside)."""
        p = as_vec3(point)
        delta = np.maximum(np.maximum(self.lo - p, 0.0), p - self.hi)
        return float(np.linalg.norm(delta))

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AABB):
            return NotImplemented
        return bool(np.array_equal(self.lo, other.lo)
                    and np.array_equal(self.hi, other.hi))

    def __hash__(self) -> int:
        return hash((tuple(self.lo), tuple(self.hi)))

    def __repr__(self) -> str:
        return f"AABB(lo={self.lo.tolist()}, hi={self.hi.tolist()})"


def union_aabbs(boxes: Iterable[AABB]) -> AABB:
    """Union of a non-empty iterable of AABBs."""
    boxes = list(boxes)
    if not boxes:
        raise GeometryError("cannot union zero AABBs")
    lo = np.min([b.lo for b in boxes], axis=0)
    hi = np.max([b.hi for b in boxes], axis=0)
    return AABB(lo, hi)


def pack_aabbs(boxes: Sequence[AABB]) -> np.ndarray:
    """Pack AABBs into an ``(n, 6)`` array ``[lox, loy, loz, hix, hiy, hiz]``.

    Vectorised visibility code consumes this layout.
    """
    if len(boxes) == 0:
        return np.empty((0, 6), dtype=np.float64)
    return np.array([np.concatenate([b.lo, b.hi]) for b in boxes],
                    dtype=np.float64)
