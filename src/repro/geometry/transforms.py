"""Rigid transforms and camera orientation helpers.

Used by the walkthrough layer (look-at cameras, heading rotations for
the turning session) and by scene construction (placing rotated
buildings).  All matrices are 3x3 rotation matrices acting on row
vectors via ``points @ R.T``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.mesh import TriangleMesh
from repro.geometry.vec import as_vec3, normalize


def rotation_about_z(angle_rad: float) -> np.ndarray:
    """Rotation by ``angle_rad`` about +z (the city's up axis)."""
    c, s = np.cos(angle_rad), np.sin(angle_rad)
    return np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])


def rotation_about_axis(axis, angle_rad: float) -> np.ndarray:
    """Rodrigues rotation about an arbitrary unit axis."""
    unit = normalize(axis)
    x, y, z = unit
    c, s = np.cos(angle_rad), np.sin(angle_rad)
    cross = np.array([[0.0, -z, y], [z, 0.0, -x], [-y, x, 0.0]])
    return c * np.eye(3) + s * cross + (1 - c) * np.outer(unit, unit)


def look_at_direction(position, target) -> np.ndarray:
    """Unit view direction from ``position`` toward ``target``."""
    direction = as_vec3(target) - as_vec3(position)
    norm = float(np.linalg.norm(direction))
    if norm == 0.0:
        raise GeometryError("look-at target coincides with position")
    return direction / norm


def heading_to_direction(heading_rad: float) -> np.ndarray:
    """Ground-plane view direction for a compass heading (0 = +x)."""
    return np.array([np.cos(heading_rad), np.sin(heading_rad), 0.0])


def direction_to_heading(direction) -> float:
    """Inverse of :func:`heading_to_direction` (ignores z)."""
    d = as_vec3(direction)
    if d[0] == 0.0 and d[1] == 0.0:
        raise GeometryError("vertical direction has no heading")
    return float(np.arctan2(d[1], d[0]))


def rotate_mesh(mesh: TriangleMesh, rotation: np.ndarray,
                center=None) -> TriangleMesh:
    """Rotate a mesh about ``center`` (default: its AABB center)."""
    rotation = np.asarray(rotation, dtype=np.float64)
    if rotation.shape != (3, 3):
        raise GeometryError(f"rotation must be 3x3, got {rotation.shape}")
    pivot = (mesh.aabb().center if center is None
             else as_vec3(center))
    verts = (mesh.vertices - pivot) @ rotation.T + pivot
    return TriangleMesh(verts, mesh.faces)


def is_rotation(matrix: np.ndarray, tol: float = 1e-9) -> bool:
    """True when ``matrix`` is a proper rotation (orthonormal, det +1)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.shape != (3, 3):
        return False
    identity_error = np.abs(matrix @ matrix.T - np.eye(3)).max()
    return identity_error < tol and abs(np.linalg.det(matrix) - 1.0) < tol
