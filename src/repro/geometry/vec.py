"""Small vector helpers shared across the geometry package.

These are thin, explicit wrappers over numpy so callers never need to
remember axis conventions.  All functions accept array-likes and return
``numpy.ndarray`` of dtype float64.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.errors import GeometryError

#: Anything :func:`numpy.asarray` turns into a 3-D point: a float
#: sequence or an already-built array.  Shared annotation for every
#: ``point``/``viewpoint`` parameter across the repo.
PointLike = Union[Sequence[float], np.ndarray]


def as_vec3(value: PointLike) -> np.ndarray:
    """Coerce ``value`` to a float64 vector of shape ``(3,)``.

    Raises :class:`GeometryError` if the shape is wrong or any component is
    not finite.
    """
    arr = np.asarray(value, dtype=np.float64)
    if arr.shape != (3,):
        raise GeometryError(f"expected a 3-vector, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise GeometryError(f"non-finite vector component in {arr!r}")
    return arr


def normalize(vec: PointLike) -> np.ndarray:
    """Return ``vec`` scaled to unit length.

    Raises :class:`GeometryError` on a zero-length vector.
    """
    arr = as_vec3(vec)
    norm = float(np.linalg.norm(arr))
    if norm == 0.0:
        raise GeometryError("cannot normalize a zero-length vector")
    return arr / norm


def normalize_rows(mat: np.ndarray) -> np.ndarray:
    """Normalize every row of an ``(n, 3)`` array; zero rows raise."""
    arr = np.asarray(mat, dtype=np.float64)
    norms = np.linalg.norm(arr, axis=1)
    if np.any(norms == 0.0):
        raise GeometryError("cannot normalize zero-length rows")
    return arr / norms[:, None]


def distance(a: PointLike, b: PointLike) -> float:
    """Euclidean distance between two points."""
    return float(np.linalg.norm(as_vec3(a) - as_vec3(b)))
