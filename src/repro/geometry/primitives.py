"""Procedural mesh primitives.

The paper's dataset is "a synthetic city model containing numerous
buildings and bunny models".  We generate the equivalent procedurally:
boxes and extruded towers for buildings, subdivided icospheres with
deterministic noise ("bunny blobs") for organic models.  Every generator
is deterministic given its arguments (noise takes an explicit seed).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.mesh import TriangleMesh
from repro.geometry.vec import normalize_rows

# Golden-ratio icosahedron template.
_PHI = (1.0 + 5.0 ** 0.5) / 2.0

_ICO_VERTS = np.array([
    (-1, _PHI, 0), (1, _PHI, 0), (-1, -_PHI, 0), (1, -_PHI, 0),
    (0, -1, _PHI), (0, 1, _PHI), (0, -1, -_PHI), (0, 1, -_PHI),
    (_PHI, 0, -1), (_PHI, 0, 1), (-_PHI, 0, -1), (-_PHI, 0, 1),
], dtype=np.float64)

_ICO_FACES = np.array([
    (0, 11, 5), (0, 5, 1), (0, 1, 7), (0, 7, 10), (0, 10, 11),
    (1, 5, 9), (5, 11, 4), (11, 10, 2), (10, 7, 6), (7, 1, 8),
    (3, 9, 4), (3, 4, 2), (3, 2, 6), (3, 6, 8), (3, 8, 9),
    (4, 9, 5), (2, 4, 11), (6, 2, 10), (8, 6, 7), (9, 8, 1),
], dtype=np.int64)


def box_mesh(center, extent) -> TriangleMesh:
    """A 12-triangle axis-aligned box with full side lengths ``extent``."""
    c = np.asarray(center, dtype=np.float64)
    e = np.asarray(extent, dtype=np.float64)
    if np.any(e <= 0):
        raise GeometryError(f"box extent must be positive, got {e}")
    half = e / 2.0
    signs = np.array([(x, y, z)
                      for x in (-1, 1) for y in (-1, 1) for z in (-1, 1)],
                     dtype=np.float64)
    verts = c + signs * half
    # Corner ordering: index bit2=x, bit1=y, bit0=z (0 => lo, 1 => hi).
    faces = np.array([
        (0, 1, 3), (0, 3, 2),          # -x face
        (4, 6, 7), (4, 7, 5),          # +x face
        (0, 4, 5), (0, 5, 1),          # -y face
        (2, 3, 7), (2, 7, 6),          # +y face
        (0, 2, 6), (0, 6, 4),          # -z face
        (1, 5, 7), (1, 7, 3),          # +z face
    ], dtype=np.int64)
    return TriangleMesh(verts, faces)


def _subdivide(verts: np.ndarray, faces: np.ndarray):
    """One loop of 1:4 triangle subdivision with midpoint dedup."""
    midpoint_cache: dict = {}
    verts_list = list(map(tuple, verts))

    def midpoint(i: int, j: int) -> int:
        key = (min(i, j), max(i, j))
        if key not in midpoint_cache:
            mid = (np.array(verts_list[i]) + np.array(verts_list[j])) / 2.0
            verts_list.append(tuple(mid))
            midpoint_cache[key] = len(verts_list) - 1
        return midpoint_cache[key]

    new_faces = []
    for a, b, c in faces:
        ab = midpoint(a, b)
        bc = midpoint(b, c)
        ca = midpoint(c, a)
        new_faces.extend([(a, ab, ca), (b, bc, ab), (c, ca, bc), (ab, bc, ca)])
    return (np.array(verts_list, dtype=np.float64),
            np.array(new_faces, dtype=np.int64))


#: Cache of unit-sphere templates per subdivision level; bunny generation
#: reuses them instead of re-subdividing for every model.
_SPHERE_CACHE: dict = {}


def _sphere_template(subdivisions: int):
    cached = _SPHERE_CACHE.get(subdivisions)
    if cached is None:
        verts, faces = _ICO_VERTS, _ICO_FACES
        for _ in range(subdivisions):
            verts, faces = _subdivide(verts, faces)
        verts = normalize_rows(verts)
        verts.setflags(write=False)
        faces.setflags(write=False)
        cached = (verts, faces)
        _SPHERE_CACHE[subdivisions] = cached
    return cached


def icosphere(radius: float = 1.0, subdivisions: int = 2,
              center=(0.0, 0.0, 0.0)) -> TriangleMesh:
    """Unit icosahedron subdivided ``subdivisions`` times, projected to a
    sphere of ``radius``.  Face counts: 20 * 4**subdivisions."""
    if radius <= 0:
        raise GeometryError(f"radius must be positive, got {radius}")
    if subdivisions < 0 or subdivisions > 6:
        raise GeometryError(f"subdivisions out of range: {subdivisions}")
    verts, faces = _sphere_template(subdivisions)
    return TriangleMesh(verts * radius + np.asarray(center, np.float64),
                        faces.copy())


def bunny_blob(radius: float = 1.0, subdivisions: int = 2, seed: int = 0,
               bumpiness: float = 0.25, center=(0.0, 0.0, 0.0)) -> TriangleMesh:
    """An organic "bunny-like" blob: an icosphere displaced by smooth,
    deterministic radial noise.

    This stands in for the Stanford bunny models of the paper's dataset —
    what the experiments need is a non-convex, dense organic mesh, not the
    actual bunny geometry.
    """
    if not 0.0 <= bumpiness < 1.0:
        raise GeometryError(f"bumpiness must be in [0, 1), got {bumpiness}")
    sphere = icosphere(radius=1.0, subdivisions=subdivisions)
    rng = np.random.default_rng(seed)
    # Smooth noise: a small random set of spherical harmonics-ish lobes.
    lobes = normalize_rows(rng.normal(size=(6, 3)))
    weights = rng.uniform(0.3, 1.0, size=6)
    dirs = normalize_rows(sphere.vertices)
    bump = np.zeros(len(dirs))
    for lobe, weight in zip(lobes, weights):
        bump += weight * np.maximum(dirs @ lobe, 0.0) ** 2
    bump = bump / bump.max() if bump.max() > 0 else bump
    radii = radius * (1.0 + bumpiness * (bump - 0.5))
    verts = dirs * radii[:, None] + np.asarray(center, np.float64)
    return TriangleMesh(verts, sphere.faces)


def tower_mesh(center, footprint, height: float, tiers: int = 1) -> TriangleMesh:
    """A building made of ``tiers`` stacked boxes that shrink upward.

    ``footprint`` is the (x, y) base size; the tower is extruded in +z.
    """
    if tiers < 1:
        raise GeometryError(f"tiers must be >= 1, got {tiers}")
    if height <= 0:
        raise GeometryError(f"height must be positive, got {height}")
    cx, cy, cz = np.asarray(center, dtype=np.float64)
    fx, fy = float(footprint[0]), float(footprint[1])
    tier_height = height / tiers
    parts = []
    for i in range(tiers):
        shrink = 1.0 - 0.25 * i / max(tiers - 1, 1) if tiers > 1 else 1.0
        extent = (fx * shrink, fy * shrink, tier_height)
        tier_center = (cx, cy, cz + tier_height * (i + 0.5))
        parts.append(box_mesh(tier_center, extent))
    return TriangleMesh.merge(parts)


def ground_plane(lo, hi, z: float = 0.0) -> TriangleMesh:
    """Two triangles covering the rectangle ``[lo, hi]`` at height ``z``."""
    (x0, y0), (x1, y1) = lo, hi
    if x0 >= x1 or y0 >= y1:
        raise GeometryError("ground plane rectangle is degenerate")
    verts = np.array([(x0, y0, z), (x1, y0, z), (x1, y1, z), (x0, y1, z)],
                     dtype=np.float64)
    faces = np.array([(0, 1, 2), (0, 2, 3)], dtype=np.int64)
    return TriangleMesh(verts, faces)
