"""Cameras and view frusta.

The walkthrough systems use a camera to define the view frustum; REVIEW
converts the frustum into spatial query boxes, and the frame model weighs
objects inside vs outside the frustum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import GeometryError
from repro.geometry.aabb import AABB
from repro.geometry.vec import as_vec3, normalize


@dataclass(frozen=True)
class Camera:
    """A pinhole camera: position, view direction, field of view.

    ``up`` is used only to orient the frustum side planes; it must not be
    parallel to ``direction``.
    """

    position: np.ndarray
    direction: np.ndarray
    up: np.ndarray
    fov_deg: float = 60.0
    aspect: float = 4.0 / 3.0
    near: float = 0.1
    far: float = 2000.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "position", as_vec3(self.position))
        object.__setattr__(self, "direction", normalize(self.direction))
        object.__setattr__(self, "up", normalize(self.up))
        if not 0.0 < self.fov_deg < 180.0:
            raise GeometryError(f"fov_deg out of range: {self.fov_deg}")
        if self.near <= 0 or self.far <= self.near:
            raise GeometryError(
                f"invalid near/far: {self.near}/{self.far}")
        if abs(float(np.dot(self.direction, self.up))) > 1.0 - 1e-9:
            raise GeometryError("camera up is parallel to direction")

    @property
    def right(self) -> np.ndarray:
        return normalize(np.cross(self.direction, self.up))

    def frustum(self) -> "Frustum":
        return Frustum.from_camera(self)

    def moved_to(self, position, direction=None) -> "Camera":
        return Camera(
            position=position,
            direction=self.direction if direction is None else direction,
            up=self.up,
            fov_deg=self.fov_deg,
            aspect=self.aspect,
            near=self.near,
            far=self.far,
        )


@dataclass(frozen=True)
class Plane:
    """Half-space ``dot(normal, x) + d >= 0`` is the *inside*."""

    normal: np.ndarray
    d: float

    def signed_distance(self, point) -> float:
        return float(np.dot(self.normal, as_vec3(point)) + self.d)


class Frustum:
    """Six-plane view frustum with AABB intersection tests."""

    def __init__(self, planes: List[Plane]) -> None:
        if len(planes) != 6:
            raise GeometryError(f"frustum needs 6 planes, got {len(planes)}")
        self.planes = planes

    @classmethod
    def from_camera(cls, cam: Camera) -> "Frustum":
        pos = cam.position
        fwd = cam.direction
        right = cam.right
        up = normalize(np.cross(right, fwd))
        half_v = np.tan(np.radians(cam.fov_deg) / 2.0)
        half_h = half_v * cam.aspect

        def plane_through(point, normal) -> Plane:
            n = normalize(normal)
            return Plane(n, -float(np.dot(n, point)))

        planes = [
            plane_through(pos + fwd * cam.near, fwd),            # near
            plane_through(pos + fwd * cam.far, -fwd),            # far
            # Side planes pass through the camera position.
            plane_through(pos, np.cross(up, fwd + right * half_h)),   # right
            plane_through(pos, np.cross(fwd - right * half_h, up)),   # left
            plane_through(pos, np.cross(fwd + up * half_v, right)),   # top
            plane_through(pos, np.cross(right, fwd - up * half_v)),   # bottom
        ]
        return cls(planes)

    def contains_point(self, point) -> bool:
        return all(p.signed_distance(point) >= 0.0 for p in self.planes)

    def intersects_aabb(self, box: AABB) -> bool:
        """Conservative plane test: False only when the box is certainly
        outside (fully behind some plane)."""
        corners = box.corners()
        for plane in self.planes:
            distances = corners @ plane.normal + plane.d
            if np.all(distances < 0.0):
                return False
        return True

    def bounding_aabb(self, cam: Camera) -> AABB:
        """AABB of the frustum's 8 corner points (REVIEW's single big
        query box)."""
        pos = cam.position
        fwd = cam.direction
        right = cam.right
        up = normalize(np.cross(right, fwd))
        half_v = np.tan(np.radians(cam.fov_deg) / 2.0)
        half_h = half_v * cam.aspect
        corners = []
        for depth in (cam.near, cam.far):
            center = pos + fwd * depth
            for su in (-1, 1):
                for sv in (-1, 1):
                    corners.append(center
                                   + right * (su * half_h * depth)
                                   + up * (sv * half_v * depth))
        return AABB.from_points(np.array(corners))
