"""Vectorised ray casting.

The DoV computation replaces the paper's hardware-accelerated item-buffer
rendering with a software equivalent: cast a grid of rays that uniformly
sample the unit sphere of directions around a viewpoint, intersect them
with all object AABBs, and attribute each ray's solid angle to the nearest
hit.  The AABB intersection paths all delegate to the single
octant-grouped slab kernel in :mod:`repro.geometry.slab`; this module
keeps the direction-grid construction and the triangle kernel.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import GeometryError
from repro.geometry.slab import NO_HIT, slab_entry_matrix, slab_nearest
from repro.geometry.vec import normalize_rows

__all__ = ["NO_HIT", "sphere_direction_grid", "cube_map_solid_angles",
           "rays_vs_aabbs", "nearest_hits", "ray_aabb_intersect",
           "rays_vs_triangles"]


def sphere_direction_grid(resolution: int) -> np.ndarray:
    """Directions covering the full sphere with ~equal solid angle each.

    We use the cube-map parameterisation: 6 faces of ``resolution^2``
    texels, each texel direction weighted later by its exact solid angle
    (see :func:`cube_map_solid_angles`).  Returns ``(6 * resolution^2, 3)``
    unit vectors.
    """
    if resolution < 1:
        raise GeometryError(f"resolution must be >= 1, got {resolution}")
    # Texel centers in [-1, 1] on the face plane.
    ticks = (np.arange(resolution) + 0.5) / resolution * 2.0 - 1.0
    u, v = np.meshgrid(ticks, ticks, indexing="ij")
    u = u.ravel()
    v = v.ravel()
    ones = np.ones_like(u)
    faces = [
        np.stack([ones, u, v], axis=1),    # +x
        np.stack([-ones, u, v], axis=1),   # -x
        np.stack([u, ones, v], axis=1),    # +y
        np.stack([u, -ones, v], axis=1),   # -y
        np.stack([u, v, ones], axis=1),    # +z
        np.stack([u, v, -ones], axis=1),   # -z
    ]
    return normalize_rows(np.vstack(faces))


def cube_map_solid_angles(resolution: int) -> np.ndarray:
    """Solid angle of each texel of :func:`sphere_direction_grid`.

    For a cube-map texel at face coordinates (u, v) with half-width w, the
    differential solid angle is ``dA / (1 + u^2 + v^2)^(3/2)``.  The sum over
    all 6 faces is exactly ``4 * pi`` (up to discretisation error well below
    1e-6 at resolution >= 8).
    """
    if resolution < 1:
        raise GeometryError(f"resolution must be >= 1, got {resolution}")
    ticks = (np.arange(resolution) + 0.5) / resolution * 2.0 - 1.0
    u, v = np.meshgrid(ticks, ticks, indexing="ij")
    texel_area = (2.0 / resolution) ** 2
    omega = texel_area / np.power(1.0 + u ** 2 + v ** 2, 1.5)
    per_face = omega.ravel()
    return np.tile(per_face, 6)


def rays_vs_aabbs(origin, directions: np.ndarray,
                  boxes: np.ndarray) -> np.ndarray:
    """Nearest-hit parametric distance of each ray against each box.

    Parameters
    ----------
    origin:
        Ray origin shared by all rays, shape ``(3,)``.
    directions:
        Unit directions, shape ``(r, 3)``.
    boxes:
        Packed AABBs, shape ``(b, 6)`` as produced by
        :func:`repro.geometry.aabb.pack_aabbs`.

    Returns
    -------
    numpy.ndarray
        ``(r, b)`` array of entry distances ``t >= 0`` (slab method), with
        ``NO_HIT`` where a ray misses a box.  Rays starting inside a box hit
        it at ``t = 0``.
    """
    origin = np.asarray(origin, dtype=np.float64)
    dirs = np.asarray(directions, dtype=np.float64)
    if boxes.size == 0:
        return np.full((len(dirs), 0), NO_HIT)
    return slab_entry_matrix(origin, dirs, boxes[:, 0:3], boxes[:, 3:6])


def nearest_hits(origin, directions: np.ndarray, boxes: np.ndarray,
                 chunk: int = 2048) -> Tuple[np.ndarray, np.ndarray]:
    """Per-ray nearest box id and distance.

    Returns ``(ids, ts)`` with ``ids[i] = -1`` and ``ts[i] = NO_HIT``
    for misses.  ``chunk`` is retained for API compatibility; the shared
    slab kernel bounds its own intermediates.
    """
    del chunk
    dirs = np.asarray(directions, dtype=np.float64)
    if boxes.size == 0:
        return (np.full(len(dirs), -1, dtype=np.int64),
                np.full(len(dirs), NO_HIT))
    origin2d = np.asarray(origin, dtype=np.float64)[None, :]
    ids, ts = slab_nearest(origin2d, dirs, boxes[:, 0:3], boxes[:, 3:6])
    return ids[0], ts[0]


def ray_aabb_intersect(origin, direction, box_lo, box_hi) -> Optional[float]:
    """Scalar convenience wrapper: entry distance or ``None`` on a miss."""
    boxes = np.concatenate([np.asarray(box_lo, np.float64),
                            np.asarray(box_hi, np.float64)])[None, :]
    t = rays_vs_aabbs(origin, np.asarray(direction, np.float64)[None, :], boxes)
    value = float(t[0, 0])
    return None if value == NO_HIT else value


def rays_vs_triangles(origin, directions: np.ndarray,
                      triangles: np.ndarray) -> np.ndarray:
    """Möller–Trumbore intersection of rays against packed triangles.

    ``triangles`` has shape ``(m, 3, 3)``.  Returns ``(r, m)`` distances with
    ``NO_HIT`` for misses.  Used by the high-accuracy fidelity metric; the
    AABB kernel above is the fast path.
    """
    origin = np.asarray(origin, dtype=np.float64)
    dirs = np.asarray(directions, dtype=np.float64)
    tri = np.asarray(triangles, dtype=np.float64)
    if tri.size == 0:
        return np.full((len(dirs), 0), NO_HIT)
    v0 = tri[:, 0]
    e1 = tri[:, 1] - v0                                    # (m, 3)
    e2 = tri[:, 2] - v0
    pvec = np.cross(dirs[:, None, :], e2[None, :, :])       # (r, m, 3)
    det = np.einsum("mk,rmk->rm", e1, pvec)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv_det = 1.0 / det
        tvec = origin - v0                                  # (m, 3)
        u = np.einsum("mk,rmk->rm", tvec, pvec) * inv_det
        qvec = np.cross(tvec, e1)                           # (m, 3)
        v = np.einsum("rk,mk->rm", dirs, qvec) * inv_det
        t = np.einsum("mk,mk->m", e2, qvec)[None, :] * inv_det
    eps = 1e-12
    with np.errstate(invalid="ignore"):
        hit = ((np.abs(det) > eps) & (u >= -eps) & (v >= -eps)
               & (u + v <= 1.0 + eps) & (t > eps))
    return np.where(hit, t, NO_HIT)
