"""Geometry substrate: vectors, bounding boxes, meshes, rays, frusta.

This package replaces the graphics/OpenGL substrate of the paper's
prototype.  Everything is numpy-backed and deterministic.
"""

from repro.geometry.aabb import AABB, union_aabbs
from repro.geometry.mesh import TriangleMesh
from repro.geometry.frustum import Camera, Frustum
from repro.geometry.rays import (
    ray_aabb_intersect,
    rays_vs_aabbs,
    sphere_direction_grid,
)

__all__ = [
    "AABB",
    "union_aabbs",
    "TriangleMesh",
    "Camera",
    "Frustum",
    "ray_aabb_intersect",
    "rays_vs_aabbs",
    "sphere_direction_grid",
]
