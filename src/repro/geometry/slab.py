"""The shared ray/AABB slab kernel.

Every ray-vs-box intersection in the library funnels through this one
module: the full-matrix kernel behind :func:`repro.geometry.rays.rays_vs_aabbs`,
the scalar convenience wrapper, and the DoV estimator's nearest-hit hot
path all call :func:`slab_entry_exit_group`.  Having exactly one slab
implementation removes the drift the three copies had accumulated (the
estimator had the octant near/far trick, the matrix kernel did not) and
means an optimisation here lands everywhere at once.

The kernel is *octant grouped*: rays are partitioned by the sign octant
of their direction, so each box's near and far slab bound per axis is
selected once per octant — ``np.where(positive, lo, hi)`` on a ``(b, 3)``
array — instead of per ``(ray, box)`` element.  It is also *batched over
origins*: a ``(v, 3)`` block of viewpoints is intersected in one call,
producing ``(v, g, b)`` intermediates, which amortises the per-call
Python and numpy dispatch overhead that dominates small scenes.

Numerical contract: the kernel preserves the dtype of its inputs and
performs the identical per-element operation sequence whether it is
called with one origin or a thousand, so batched results are
bit-identical to one-at-a-time results.  The visibility precompute
pipeline's determinism guarantee rests on this.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

#: Value used for "no hit" in entry-distance arrays.
NO_HIT = np.inf

#: Target element count for one ``(v, g, b)`` intermediate; origins are
#: chunked so a batch never materialises more than roughly this many
#: floats per temporary.  The kernel makes ~10 passes over each
#: intermediate, so keeping one at ~0.5 MB (float32) leaves the working
#: set L2-resident instead of streaming from DRAM — measured ~1.6x on
#: the precompute bench versus multi-megabyte temporaries.  Chunking
#: never changes a result bit (the kernel is elementwise per origin).
_CHUNK_ELEMENTS = 131_072

#: One octant group: (original ray indices, their direction rows).
OctantGroups = List[Tuple[np.ndarray, np.ndarray]]


def group_rays_by_octant(directions: np.ndarray) -> OctantGroups:
    """Partition rays into (index array, direction array) per sign octant.

    A zero direction component sorts into the non-positive bucket; the
    kernel handles such axis-parallel rays explicitly, so the grouping
    only needs to be *consistent*, not sign-exact.  The returned
    direction rows keep the dtype of ``directions``.
    """
    signs = directions > 0.0
    codes = signs[:, 0] * 4 + signs[:, 1] * 2 + signs[:, 2]
    groups: OctantGroups = []
    for code in range(8):
        idx = np.nonzero(codes == code)[0]
        if len(idx):
            groups.append((idx, directions[idx]))
    return groups


def slab_entry_exit_group(origins: np.ndarray, dirs: np.ndarray,
                          lo: np.ndarray, hi: np.ndarray
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """The slab kernel for one sign-homogeneous direction group.

    Parameters
    ----------
    origins:
        ``(v, 3)`` ray origins (the batch dimension).
    dirs:
        ``(g, 3)`` directions that all share one sign octant (zero
        components allowed, and handled as axis-parallel rays).
    lo, hi:
        ``(b, 3)`` box bounds.

    Returns
    -------
    (tmin, tmax):
        ``(v, g, b)`` arrays.  ``tmin`` is the entry distance already
        clamped to ``>= 0`` (a ray starting inside a box enters at 0);
        a ray hits iff ``tmax >= tmin``.  Dtype follows the inputs.
    """
    positive = dirs[0] > 0.0                            # octant signs
    near = np.where(positive, lo, hi)                   # (b, 3)
    far = np.where(positive, hi, lo)
    with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
        inv = dirs.dtype.type(1.0) / dirs               # (g, 3)
        # Axis 0 seeds the accumulators; axes 1 and 2 tighten in place.
        tmin = (inv[None, :, 0, None]
                * (near[None, None, :, 0] - origins[:, None, None, 0]))
        tmax = (inv[None, :, 0, None]
                * (far[None, None, :, 0] - origins[:, None, None, 0]))
        _fix_parallel(0, dirs, origins, lo, hi, tmin, tmax, seed=True)
        for axis in (1, 2):
            t1 = (inv[None, :, axis, None]
                  * (near[None, None, :, axis] - origins[:, None, None, axis]))
            t2 = (inv[None, :, axis, None]
                  * (far[None, None, :, axis] - origins[:, None, None, axis]))
            _fix_parallel(axis, dirs, origins, lo, hi, t1, t2, seed=False)
            np.maximum(tmin, t1, out=tmin)
            np.minimum(tmax, t2, out=tmax)
    # Entry distance; rays starting inside a box hit at t = 0.
    np.maximum(tmin, tmin.dtype.type(0.0), out=tmin)
    return tmin, tmax


def _fix_parallel(axis: int, dirs: np.ndarray, origins: np.ndarray,
                  lo: np.ndarray, hi: np.ndarray,
                  t_near: np.ndarray, t_far: np.ndarray,
                  seed: bool) -> None:
    """Overwrite slab times of axis-parallel rays in place.

    A ray with ``d[axis] == 0`` is never constrained by that slab when
    its origin lies inside it, and misses every box outside it; the
    division above produced ``inf``/``nan`` garbage for those rows, so
    they are replaced wholesale.  ``seed`` marks the accumulator-seeding
    axis, where the same override applies (no prior state to preserve).
    """
    del seed  # the override is identical either way; kept for clarity
    parallel = dirs[:, axis] == 0.0                     # (g,)
    if not parallel.any():
        return
    inside = ((origins[:, axis, None] >= lo[None, :, axis])
              & (origins[:, axis, None] <= hi[None, :, axis]))  # (v, b)
    rows = np.nonzero(parallel)[0]
    pos_inf = t_near.dtype.type(np.inf)
    neg_inf = t_near.dtype.type(-np.inf)
    t_near[:, rows, :] = np.where(inside, neg_inf, pos_inf)[:, None, :]
    t_far[:, rows, :] = np.where(inside, pos_inf, neg_inf)[:, None, :]


def slab_entry_matrix(origin: np.ndarray, directions: np.ndarray,
                      boxes_lo: np.ndarray, boxes_hi: np.ndarray
                      ) -> np.ndarray:
    """Full ``(r, b)`` entry-distance matrix for one origin.

    ``NO_HIT`` marks misses; hits report the (clamped, ``>= 0``) entry
    distance.  This is the kernel behind
    :func:`repro.geometry.rays.rays_vs_aabbs`.
    """
    origin = np.atleast_2d(origin)                      # (1, 3)
    num_rays = len(directions)
    num_boxes = len(boxes_lo)
    out = np.full((num_rays, num_boxes), NO_HIT, dtype=directions.dtype)
    if num_boxes == 0:
        return out
    for idx, dirs in group_rays_by_octant(directions):
        tmin, tmax = slab_entry_exit_group(origin, dirs, boxes_lo, boxes_hi)
        hit = tmax >= tmin                              # (1, g, b)
        out[idx] = np.where(hit, tmin, NO_HIT)[0]
    return out


def slab_nearest(origins: np.ndarray, directions: np.ndarray,
                 boxes_lo: np.ndarray, boxes_hi: np.ndarray,
                 groups: Optional[OctantGroups] = None
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-ray nearest box row for a batch of origins.

    Parameters
    ----------
    origins:
        ``(v, 3)`` viewpoint batch.
    directions:
        ``(r, 3)`` shared ray directions.
    boxes_lo, boxes_hi:
        ``(b, 3)`` box bounds.
    groups:
        Precomputed :func:`group_rays_by_octant` result for
        ``directions`` — callers that cast the same ray set repeatedly
        (the DoV estimator) group once at construction time.

    Returns
    -------
    (ids, ts):
        ``(v, r)`` int64 nearest box rows (``-1`` for a miss) and the
        matching entry distances (``NO_HIT`` for a miss).  Origins are
        chunked internally to bound the ``(v, g, b)`` intermediates;
        chunking does not change any result bit.
    """
    origins = np.atleast_2d(origins)
    num_vps = len(origins)
    num_rays = len(directions)
    num_boxes = len(boxes_lo)
    ids = np.full((num_vps, num_rays), -1, dtype=np.int64)
    ts = np.full((num_vps, num_rays), NO_HIT, dtype=directions.dtype)
    if num_boxes == 0:
        return ids, ts
    if groups is None:
        groups = group_rays_by_octant(directions)
    largest = max(len(idx) for idx, _dirs in groups)
    chunk = max(1, _CHUNK_ELEMENTS // max(1, largest * num_boxes))
    for start in range(0, num_vps, chunk):
        stop = min(start + chunk, num_vps)
        block = origins[start:stop]
        for idx, dirs in groups:
            tmin, tmax = slab_entry_exit_group(block, dirs,
                                               boxes_lo, boxes_hi)
            hit = tmax >= tmin
            tmin[~hit] = np.inf
            best = np.argmin(tmin, axis=2)              # (v, g)
            rows = np.arange(stop - start)[:, None]
            cols = np.arange(len(dirs))[None, :]
            best_t = tmin[rows, cols, best]
            ids[start:stop, idx] = np.where(np.isfinite(best_t), best, -1)
            ts[start:stop, idx] = np.where(np.isfinite(best_t),
                                           best_t, NO_HIT)
    return ids, ts
