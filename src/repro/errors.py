"""Exception hierarchy for the HDoV-tree reproduction library.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch one base class.  Subsystems raise the most specific subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GeometryError(ReproError):
    """Invalid geometric input (degenerate mesh, empty AABB, bad shape)."""


class StorageError(ReproError):
    """Storage-layer failure (bad page id, corrupt record, closed file)."""


class PageNotFoundError(StorageError):
    """A page id was requested that has never been allocated."""


class TransientIOError(StorageError):
    """A page access failed in a way that may succeed on retry.

    Raised by the fault-injection layer (and, in a real deployment, by a
    flaky backend).  The ``repro.storage.pageio`` facade retries these
    with bounded backoff before letting them escape.
    """


class JournalCorruptError(StorageError):
    """A write-ahead-journal record failed its framing CRC *mid-file*.

    A torn tail (the normal power-loss shape) is silently truncated by
    recovery; this error is reserved for corruption *before* later
    intact records — bytes the journal claims were durable have rotted,
    so replaying past them could resurrect a torn prefix as committed
    state.  Recovery refuses instead of guessing.
    """


class SimulatedCrash(ReproError):
    """A deterministic crash point injected by the fault layer fired.

    Deliberately *not* a :class:`TransientIOError`: the retry layer must
    never absorb a crash.  Harness code that catches it must abandon all
    in-memory state — no flush, no checkpoint, no close — and exercise
    recovery on a fresh open, exactly as a process kill would.
    """


class PageCorruptError(StorageError):
    """A page's payload did not match its integrity checksum on read.

    Unlike :class:`TransientIOError` this is *not* retried — bad bytes on
    the medium stay bad — but V-page consumers degrade to the
    view-invariant internal LoD instead of failing the query.
    """


class BufferPoolError(StorageError):
    """Buffer-pool misuse (e.g. evicting a pinned page, unpin underflow)."""


class BufferPoolExhaustedError(BufferPoolError):
    """Every resident frame is pinned, so no victim can be evicted.

    Raised instead of spinning (or silently overflowing the memory
    budget) when a miss needs a free frame and all of them are held by
    concurrent pinners.  Callers can back off and retry, or treat it as
    an admission-control signal and shed load.
    """


class SerializationError(StorageError):
    """A record could not be encoded into or decoded from page bytes."""


class RTreeError(ReproError):
    """R-tree structural failure or API misuse."""


class VisibilityError(ReproError):
    """Visibility precomputation failure (bad cell grid, missing DoV)."""


class HDoVError(ReproError):
    """HDoV-tree construction or traversal failure."""


class SchemeError(HDoVError):
    """Storage-scheme failure (unknown cell, missing V-page, bad flip)."""


class WalkthroughError(ReproError):
    """Walkthrough-session or frame-simulation failure."""


class ServiceOverloadedError(WalkthroughError):
    """The serving front-end is at capacity and shed the request.

    The HTTP layer maps this to ``503 Service Unavailable``; load
    generators count it toward the shed rate instead of treating it as
    a failure.
    """


class LockOrderError(ReproError):
    """A thread acquired locks against the declared lock lattice.

    Raised by :class:`repro.concurrency.witness.LockOrderWitness`
    *before* the offending lock is acquired, so a latent deadlock
    surfaces as a typed, debuggable exception instead of a hang.  The
    static twin of this check is lint rule RPR010.
    """


class ExperimentError(ReproError):
    """Experiment driver misconfiguration."""


class ObservabilityError(ReproError):
    """Metrics/tracing misuse (kind mismatch, negative counter step)."""


class AnalysisError(ReproError):
    """Static-analysis framework misuse (bad rule code, bad baseline)."""
