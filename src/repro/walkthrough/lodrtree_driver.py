"""Replay driver for the LoD-R-tree baseline.

Counterpart of :class:`~repro.walkthrough.visual.ReviewWalkthrough` for
:class:`~repro.baselines.lod_rtree.LodRTreeSystem`, so the baseline can
be replayed over recorded sessions and compared frame-for-frame with
VISUAL and REVIEW.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.lod_rtree import LodRTreeSystem
from repro.core.hdov_tree import HDoVEnvironment
from repro.walkthrough.frame import FrameModel, FrameRecord
from repro.walkthrough.metrics import FidelityMetric
from repro.walkthrough.session import Session
from repro.walkthrough.visual import WalkthroughReport


class LodRTreeWalkthrough:
    """Replays sessions on the LoD-R-tree system."""

    def __init__(self, env: HDoVEnvironment, *, depth: float = 400.0,
                 num_slabs: int = 3,
                 requery_angle_deg: float = 15.0,
                 frame_model: Optional[FrameModel] = None,
                 evaluate_fidelity: bool = True) -> None:
        self.env = env
        self.system = LodRTreeSystem(env, depth=depth,
                                     num_slabs=num_slabs,
                                     requery_angle_deg=requery_angle_deg)
        self.frame_model = frame_model or FrameModel()
        self.evaluate_fidelity = evaluate_fidelity
        self._fidelity = FidelityMetric(env)

    def run(self, session: Session) -> WalkthroughReport:
        frames: List[FrameRecord] = []
        self.system.clear_cache()
        last_fidelity = float("nan")
        for index, waypoint in enumerate(session):
            position = waypoint.position_array()
            direction = waypoint.direction_array()
            snap = self.env.snapshot()
            result, _queried = self.system.frame(position, direction)
            light, heavy = self.env.delta(snap)
            io_ms = light.simulated_ms + heavy.simulated_ms
            cell_id = self.env.grid.cell_of_point(position)
            if self.evaluate_fidelity:
                rendered: Dict[int, int] = {}
                for oid in result.object_ids:
                    record = self.env.objects[oid]
                    # Reconstruct the slab fraction from distance along
                    # the slab structure: use nearest-slab assignment
                    # by MBR distance bucketing.
                    mbr = record.chain.finest.aabb()
                    dist = mbr.min_distance_to_point(position)
                    slab_width = self.system.depth / self.system.num_slabs
                    slab = min(int(dist / max(slab_width, 1e-9)),
                               self.system.num_slabs - 1)
                    fraction = self.system._slab_fraction(slab)
                    rendered[oid] = record.chain \
                        .interpolated_polygons(fraction)
                last_fidelity = self._fidelity.score_rendered(cell_id,
                                                              rendered)
            frames.append(FrameRecord(
                frame_index=index, cell_id=cell_id, io_ms=io_ms,
                light_ios=light.total_ios, heavy_ios=heavy.total_ios,
                polygons=result.total_polygons,
                frame_ms=self.frame_model.frame_ms(
                    io_ms, result.total_polygons),
                search_ms=io_ms, fidelity=last_fidelity,
                resident_bytes=self.system.resident_bytes,
            ))
        return WalkthroughReport(
            system=f"LoD-R-tree(depth={self.system.depth:g}m)",
            session=session.name, frames=frames)
