"""Recorded walkthrough sessions.

The paper records sessions with three motion patterns and replays them on
both systems (Section 5.4): session 1 is a normal walkthrough; session 2
turns left and right; session 3 moves back and forward frequently.  These
generators produce the equivalent deterministic viewpoint paths at eye
height.

Paths follow the city's *street lines* when a ``street_pitch`` is given:
in the procedural city, building blocks are centered at half-pitch
offsets, so the lines ``x = k * pitch`` / ``y = k * pitch`` run down the
middle of streets.  A viewpoint inside a building would see nothing (its
bounding box occludes the whole sphere), which no real walkthrough does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import WalkthroughError
from repro.geometry.aabb import AABB


@dataclass(frozen=True)
class Waypoint:
    """One frame's viewpoint: position and unit view direction."""

    position: Tuple[float, float, float]
    direction: Tuple[float, float, float]

    def position_array(self) -> np.ndarray:
        return np.asarray(self.position, dtype=np.float64)

    def direction_array(self) -> np.ndarray:
        return np.asarray(self.direction, dtype=np.float64)


@dataclass(frozen=True)
class Session:
    """A recorded sequence of frames."""

    name: str
    waypoints: Tuple[Waypoint, ...]

    def __post_init__(self) -> None:
        if not self.waypoints:
            raise WalkthroughError(f"session {self.name!r} has no frames")

    @property
    def num_frames(self) -> int:
        return len(self.waypoints)

    def __iter__(self) -> Iterator[Waypoint]:
        return iter(self.waypoints)


def _direction(dx: float, dy: float) -> Tuple[float, float, float]:
    norm = float(np.hypot(dx, dy))
    if norm == 0.0:
        return (1.0, 0.0, 0.0)
    return (dx / norm, dy / norm, 0.0)


def street_lines(bounds: AABB, pitch: Optional[float],
                 axis: int = 1) -> List[float]:
    """Coordinates of interior street center lines along ``axis``.

    With no pitch, returns the single mid-line of the bounds.
    """
    lo = float(bounds.lo[axis])
    hi = float(bounds.hi[axis])
    if pitch is None or pitch <= 0:
        return [(lo + hi) / 2.0]
    first = int(np.ceil(lo / pitch))
    last = int(np.floor(hi / pitch))
    lines = [k * pitch for k in range(first, last + 1)
             if lo < k * pitch < hi]
    return lines or [(lo + hi) / 2.0]


def street_viewpoints(bounds: AABB, pitch: Optional[float], count: int,
                      *, eye_height: float = 1.7,
                      seed: int = 0) -> List[np.ndarray]:
    """Deterministic random viewpoints on the street network.

    Used by the visibility-query experiments, which test "random
    viewpoint positions obtained from the precomputed cells" — real
    walkthrough positions, i.e. on streets, not inside buildings.
    """
    if count < 1:
        raise WalkthroughError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(seed)
    xs = street_lines(bounds, pitch, axis=0)
    ys = street_lines(bounds, pitch, axis=1)
    points = []
    for _ in range(count):
        if rng.random() < 0.5:
            # Walk an x street: x fixed to a line, y free.
            x = float(rng.choice(xs))
            y = float(rng.uniform(bounds.lo[1], bounds.hi[1]))
        else:
            x = float(rng.uniform(bounds.lo[0], bounds.hi[0]))
            y = float(rng.choice(ys))
        points.append(np.array([x, y, eye_height]))
    return points


def normal_walkthrough(bounds: AABB, *, num_frames: int = 120,
                       eye_height: float = 1.7,
                       street_pitch: Optional[float] = None) -> Session:
    """Session 1: a steady walk down a long street, with one turn onto a
    cross street halfway."""
    ys = street_lines(bounds, street_pitch, axis=1)
    xs = street_lines(bounds, street_pitch, axis=0)
    y_street = ys[len(ys) // 2]
    x_turn = xs[len(xs) // 2]
    margin = 0.06 * (bounds.hi[0] - bounds.lo[0])
    x0 = float(bounds.lo[0]) + margin
    y1 = float(bounds.hi[1]) - 0.06 * (bounds.hi[1] - bounds.lo[1])
    # Leg 1: along y_street from x0 to x_turn; leg 2: up x_turn to y1.
    leg1 = abs(x_turn - x0)
    leg2 = abs(y1 - y_street)
    total = leg1 + leg2
    waypoints: List[Waypoint] = []
    for t in np.linspace(0.0, 1.0, num_frames):
        s = t * total
        if s <= leg1:
            waypoints.append(Waypoint(
                (float(x0 + s), float(y_street), eye_height),
                _direction(1.0, 0.0)))
        else:
            waypoints.append(Waypoint(
                (float(x_turn), float(y_street + (s - leg1)), eye_height),
                _direction(0.0, 1.0)))
    return Session("session-1-normal", tuple(waypoints))


def turning_walkthrough(bounds: AABB, *, num_frames: int = 120,
                        eye_height: float = 1.7,
                        street_pitch: Optional[float] = None) -> Session:
    """Session 2: slow forward motion with the view sweeping left-right.

    View-direction changes are what punish spatial methods, so the
    position moves little while the direction oscillates widely.
    """
    ys = street_lines(bounds, street_pitch, axis=1)
    y_street = ys[len(ys) // 2]
    span = (bounds.hi[0] - bounds.lo[0]) * 0.3
    x_start = float(bounds.center[0]) - span / 2
    waypoints: List[Waypoint] = []
    for t in np.linspace(0.0, 1.0, num_frames):
        x = x_start + span * t
        angle = 1.2 * np.sin(6.0 * np.pi * t)      # sweep +-~69 degrees
        waypoints.append(Waypoint(
            (float(x), float(y_street), eye_height),
            _direction(float(np.cos(angle)), float(np.sin(angle)))))
    return Session("session-2-turning", tuple(waypoints))


def back_forward_walkthrough(bounds: AABB, *, num_frames: int = 120,
                             eye_height: float = 1.7,
                             street_pitch: Optional[float] = None) -> Session:
    """Session 3: moving back and forward frequently along one street."""
    ys = street_lines(bounds, street_pitch, axis=1)
    y_street = ys[len(ys) // 2]
    span = (bounds.hi[0] - bounds.lo[0]) * 0.25
    center_x = float(bounds.center[0])
    waypoints: List[Waypoint] = []
    for t in np.linspace(0.0, 1.0, num_frames):
        offset = span * np.sin(8.0 * np.pi * t)
        velocity = np.cos(8.0 * np.pi * t)
        direction = _direction(float(np.sign(velocity) or 1.0), 0.0)
        waypoints.append(Waypoint(
            (float(center_x + offset), float(y_street), eye_height),
            direction))
    return Session("session-3-back-forward", tuple(waypoints))


def loop_walkthrough(bounds: AABB, *, num_frames: int = 120,
                     eye_height: float = 1.7,
                     street_pitch: Optional[float] = None) -> Session:
    """Session 4: one lap of a rectangular street circuit.

    The loop traverses each leg once per lap — +x along a low y-street,
    +y up a high x-street, -x along a high y-street, -y back down — so
    unlike sessions 1-3 (monotone or palindromic in cell id) its cell
    trace crosses most grid-adjacent cell pairs in *one* direction.
    That makes it the canonical workload for the disk-layout rewriter:
    a row-major V-page layout pays a back-seek on every step of the -x
    and -y legs, while a tour-ordered layout pays roughly one per lap
    (closing the loop).  ``repro layout`` and the layout benchmark use
    it as their default walkthrough.
    """
    ys = street_lines(bounds, street_pitch, axis=1)
    xs = street_lines(bounds, street_pitch, axis=0)
    # Corner streets: ~1/4 and ~3/4 through the interior lines, kept
    # distinct whenever at least two lines exist on the axis.
    y_lo = ys[len(ys) // 4]
    y_hi = ys[(3 * len(ys)) // 4] if len(ys) > 1 else y_lo
    x_lo = xs[len(xs) // 4]
    x_hi = xs[(3 * len(xs)) // 4] if len(xs) > 1 else x_lo
    corners = [(x_lo, y_lo), (x_hi, y_lo), (x_hi, y_hi), (x_lo, y_hi)]
    legs = []
    for index, (cx, cy) in enumerate(corners):
        nx, ny = corners[(index + 1) % len(corners)]
        length = float(np.hypot(nx - cx, ny - cy))
        legs.append(((cx, cy), (nx, ny), length))
    total = sum(length for _start, _end, length in legs)
    if total <= 0.0:
        # Degenerate bounds (a single street cell): stand still, look +x.
        point = (float(x_lo), float(y_lo), eye_height)
        return Session("session-4-loop", tuple(
            Waypoint(point, _direction(1.0, 0.0))
            for _ in range(num_frames)))
    waypoints: List[Waypoint] = []
    for t in np.linspace(0.0, 1.0, num_frames, endpoint=False):
        s = t * total
        for (cx, cy), (nx, ny), length in legs:
            if s <= length or (cx, cy) == legs[-1][0]:
                f = min(s / length, 1.0) if length > 0 else 0.0
                waypoints.append(Waypoint(
                    (float(cx + (nx - cx) * f), float(cy + (ny - cy) * f),
                     eye_height),
                    _direction(nx - cx, ny - cy)))
                break
            s -= length
    return Session("session-4-loop", tuple(waypoints))


SESSION_BUILDERS = {
    1: normal_walkthrough,
    2: turning_walkthrough,
    3: back_forward_walkthrough,
    4: loop_walkthrough,
}


def make_session(session_number: int, bounds: AABB, *,
                 num_frames: int = 120, eye_height: float = 1.7,
                 street_pitch: Optional[float] = None) -> Session:
    """Build session 1, 2, 3 or 4 over the given environment bounds."""
    builder = SESSION_BUILDERS.get(session_number)
    if builder is None:
        raise WalkthroughError(
            f"unknown session {session_number}; choose 1, 2, 3 or 4")
    return builder(bounds, num_frames=num_frames, eye_height=eye_height,
                   street_pitch=street_pitch)
