"""Deterministic cell-transition model for predictive prefetch.

The walkthrough workloads the paper cares about are spatially coherent:
successive viewpoints fall in the same or adjacent grid cells, and the
*order* in which a session crosses cells repeats across sessions that
share a route ("Building LOD Representation for 3D Urban Scenes"
motivates exactly this regime).  That makes the next cell learnable: a
first-order Markov model over observed cell-to-cell transitions captures
route structure, while a velocity prior covers the cold start before any
transition has been seen.

The blend is deliberately integer arithmetic so predictions are exact
and platform-independent:

``score(n) = counts[current].get(n, 0) + velocity_weight * [n == velocity_cell]``

over the sorted candidate set (4-neighborhood of the current cell, plus
the velocity-extrapolated cell).  The argmax requires a strictly
positive score and breaks ties toward the smallest cell id, so with no
recorded transitions the model reproduces the velocity-only heuristic
exactly — which keeps the historical :class:`CellPrefetcher` behavior as
the zero-knowledge special case.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import WalkthroughError
from repro.visibility.cells import CellGrid


class CellTransitionModel:
    """Online first-order Markov model over grid-cell transitions.

    Parameters
    ----------
    grid:
        The viewing-cell grid (provides neighborhoods and point lookup).
    velocity_weight:
        Integer pseudo-count credited to the velocity-extrapolated cell.
        Observed transitions out-vote the prior once a candidate's count
        exceeds the velocity cell's count plus this weight.
    trigger_fraction:
        Lookahead distance for the velocity prior, as a fraction of the
        cell size.
    """

    def __init__(self, grid: CellGrid, *, velocity_weight: int = 3,
                 trigger_fraction: float = 0.5) -> None:
        if velocity_weight < 1:
            raise WalkthroughError(
                f"velocity_weight must be >= 1, got {velocity_weight}")
        if not 0.0 < trigger_fraction <= 2.0:
            raise WalkthroughError(
                f"trigger_fraction must be in (0, 2], got {trigger_fraction}")
        self.grid = grid
        self.velocity_weight = velocity_weight
        self.trigger_fraction = trigger_fraction
        #: ``counts[from_cell][to_cell]`` -> observed transition count.
        self._counts: Dict[int, Dict[int, int]] = {}
        self.transitions = 0
        self.predictions = 0

    # -- learning -------------------------------------------------------------

    def record_transition(self, from_cell: int, to_cell: int) -> None:
        """Record one observed cell crossing (self-loops are ignored)."""
        if from_cell == to_cell:
            return
        row = self._counts.setdefault(from_cell, {})
        row[to_cell] = row.get(to_cell, 0) + 1
        self.transitions += 1

    def transition_count(self, from_cell: int, to_cell: int) -> int:
        return self._counts.get(from_cell, {}).get(to_cell, 0)

    # -- prediction -----------------------------------------------------------

    def velocity_cell(self, position: np.ndarray,
                      last_position: Optional[np.ndarray]) -> Optional[int]:
        """The cell a velocity extrapolation lands in, or ``None``.

        Cells partition the horizontal plane, so both the direction and
        the normalising speed use the planar velocity only — mixing
        components would inflate the lookahead under vertical motion.
        """
        if last_position is None:
            return None
        current = self.grid.cell_of_point(position)
        velocity = position - last_position
        planar = velocity.copy()
        planar[2] = 0.0
        speed = float(np.linalg.norm(planar))
        if speed == 0.0:
            return None
        lookahead = position + planar / speed * (
            self.grid.cell_size * self.trigger_fraction)
        predicted = self.grid.cell_of_point(lookahead)
        if predicted == current:
            return None
        return predicted

    def predict(self, current_cell: int,
                velocity_cell: Optional[int]) -> Optional[int]:
        """The most likely next cell, or ``None`` if nothing scores.

        Candidates are the 4-neighborhood of ``current_cell`` plus the
        velocity cell (which may be a diagonal neighbor).  The winner
        must score strictly above every later candidate *and* above
        zero; candidates are scanned in sorted-id order, so ties break
        toward the smallest cell id — deterministically.
        """
        candidates = set(self.grid.neighbors(current_cell))
        if velocity_cell is not None and velocity_cell != current_cell:
            candidates.add(velocity_cell)
        row = self._counts.get(current_cell, {})
        best: Optional[int] = None
        best_score = 0
        for cand in sorted(candidates):
            score = row.get(cand, 0)
            if cand == velocity_cell:
                score += self.velocity_weight
            if score > best_score:
                best = cand
                best_score = score
        if best is not None:
            self.predictions += 1
        return best

    def predict_from_motion(self, position: np.ndarray,
                            last_position: Optional[np.ndarray],
                            ) -> Optional[int]:
        """Convenience: velocity prior + Markov blend from raw positions."""
        current = self.grid.cell_of_point(position)
        return self.predict(current,
                            self.velocity_cell(position, last_position))

    def __repr__(self) -> str:
        return (f"CellTransitionModel(transitions={self.transitions}, "
                f"predictions={self.predictions})")
