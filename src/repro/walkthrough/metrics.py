"""Walkthrough metrics: frame-time statistics and visual fidelity.

Frame-time statistics reproduce Table 3's columns (average frame time and
variance of frame time).

The fidelity metric quantifies Figure 11's screenshots.  Ground truth for
a cell is its full set of visible objects with DoV weights; the *required*
detail of a visible object is the eq.-6 LoD — the representation the
paper itself treats as visually sufficient (it is what both the naive
method and the HDoV-tree at ``eta = 0``, whose fidelity the paper calls
"very good", render).  A frame's fidelity is then

  fidelity = sum_i dov_i * detail_i / sum_i dov_i

with ``detail_i = min(rendered_polygons_i / required_polygons_i, 1)``,
and 0 for a visible object the system missed entirely (REVIEW's
out-of-box losses).  Objects covered by an internal LoD split the
internal LoD's polygons against the sum of their required polygons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.core.hdov_tree import HDoVEnvironment
from repro.core.search import SearchResult
from repro.errors import WalkthroughError
from repro.lod.selection import leaf_lod_fraction


@dataclass(frozen=True)
class FrameTimeStats:
    """Average and variance of a frame-time series (Table 3's columns)."""

    mean_ms: float
    variance: float
    maximum_ms: float
    num_frames: int

    @property
    def std_dev(self) -> float:
        return math.sqrt(self.variance)


def frame_time_stats(frame_times_ms: Sequence[float]) -> FrameTimeStats:
    """Population statistics of a frame-time series."""
    times = list(frame_times_ms)
    if not times:
        raise WalkthroughError("no frames to summarise")
    mean = sum(times) / len(times)
    variance = sum((t - mean) ** 2 for t in times) / len(times)
    return FrameTimeStats(mean_ms=mean, variance=variance,
                          maximum_ms=max(times), num_frames=len(times))


class FidelityMetric:
    """Fidelity of rendered frames against the per-cell ground truth."""

    def __init__(self, env: HDoVEnvironment) -> None:
        self.env = env

    # -- ground truth -----------------------------------------------------

    def ground_truth(self, cell_id: int) -> Dict[int, float]:
        """Visible objects and their DoVs in a cell."""
        return dict(self.env.visibility.cell(cell_id).dov)

    def required_polygons(self, object_id: int, dov: float) -> int:
        """The eq.-6 polygon budget that counts as full detail."""
        chain = self.env.objects[object_id].chain
        return max(chain.interpolated_polygons(leaf_lod_fraction(dov)), 1)

    # -- scoring -----------------------------------------------------------

    def score_hdov(self, result: SearchResult) -> float:
        """Fidelity of an HDoV search result.

        Directly retrieved objects are rendered at exactly the required
        eq.-6 LoD, so they score 1; internal LoDs score the ratio of
        their polygons to the covered objects' summed requirement.
        """
        truth = self.ground_truth(result.cell_id)
        if not truth:
            return 1.0
        rendered: Dict[int, int] = {o.object_id: o.polygons
                                    for o in result.objects}
        detail: Dict[int, float] = {}
        for oid, polygons in rendered.items():
            dov = truth.get(oid, 0.0)
            required = self.required_polygons(oid, dov)
            detail[oid] = min(polygons / required, 1.0)
        for internal in result.internals:
            covered = [oid for oid in internal.covered_objects if oid in truth]
            required = sum(self.required_polygons(oid, truth[oid])
                           for oid in covered)
            frac = min(internal.polygons / required, 1.0) if required else 1.0
            for oid in covered:
                detail[oid] = max(detail.get(oid, 0.0), frac)
        return self._weighted(truth, detail)

    def score_rendered(self, cell_id: int,
                       rendered_polygons: Dict[int, int]) -> float:
        """Fidelity of an arbitrary rendered set.

        ``rendered_polygons`` maps object id -> polygons actually
        rendered.  Visible objects absent from the mapping score zero —
        the missed-object penalty of Figure 11.
        """
        truth = self.ground_truth(cell_id)
        if not truth:
            return 1.0
        detail = {
            oid: min(polys / self.required_polygons(oid, truth[oid]), 1.0)
            for oid, polys in rendered_polygons.items() if oid in truth
        }
        return self._weighted(truth, detail)

    def missed_objects(self, cell_id: int,
                       rendered_ids: Iterable[int]) -> List[int]:
        """Visible objects not presented at all (Figure 11's lost
        far-away models)."""
        truth = self.ground_truth(cell_id)
        rendered = set(rendered_ids)
        return sorted(oid for oid in truth if oid not in rendered)

    @staticmethod
    def _weighted(truth: Dict[int, float],
                  detail: Dict[int, float]) -> float:
        total = sum(truth.values())
        if total == 0.0:
            return 1.0
        achieved = sum(dov * min(max(detail.get(oid, 0.0), 0.0), 1.0)
                       for oid, dov in truth.items())
        return achieved / total
