"""Memory accounting for walkthrough sessions.

Section 5.4 of the paper compares peak memory: "the maximum memory used
by the VISUAL system is 28MB, while the REVIEW system with a query box
size of 400 meters requires 62MB."  We reproduce the comparison from the
per-frame ``resident_bytes`` series: model data held by the delta/cache
layers plus the scheme's resident per-cell structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import WalkthroughError
from repro.walkthrough.frame import FrameRecord


@dataclass(frozen=True)
class MemoryReport:
    """Peak and mean resident memory of one walkthrough replay."""

    system: str
    peak_bytes: int
    mean_bytes: float

    @property
    def peak_mb(self) -> float:
        return self.peak_bytes / (1024.0 * 1024.0)

    @property
    def mean_mb(self) -> float:
        return self.mean_bytes / (1024.0 * 1024.0)


def memory_report(system: str, frames: List[FrameRecord]) -> MemoryReport:
    if not frames:
        raise WalkthroughError("no frames to account")
    peak = max(f.resident_bytes for f in frames)
    mean = sum(f.resident_bytes for f in frames) / len(frames)
    return MemoryReport(system=system, peak_bytes=peak, mean_bytes=mean)
