"""Walkthrough layer: sessions, the VISUAL system, frame-time model,
metrics, and memory accounting."""

from repro.walkthrough.session import Session, Waypoint, make_session
from repro.walkthrough.frame import FrameModel, FrameRecord
from repro.walkthrough.visual import VisualSystem, ReviewWalkthrough
from repro.walkthrough.metrics import (FidelityMetric, frame_time_stats,
                                       FrameTimeStats)

__all__ = ["Session", "Waypoint", "make_session", "FrameModel",
           "FrameRecord", "VisualSystem", "ReviewWalkthrough",
           "FidelityMetric", "frame_time_stats", "FrameTimeStats"]
