"""Neighbor-cell prefetching.

REVIEW's paper [12] lists prefetching among its optimizations; for the
HDoV-tree the natural unit to prefetch is the *next cell's* V-page-index
segment: when the viewer heads toward a cell boundary, the segment flip
that would stall the crossing frame is paid early, on a quiet frame.

The storage schemes support this directly
(:meth:`~repro.core.schemes.base.StorageScheme.prefetch_cell` reads the
segment into a warm side buffer; the eventual
:meth:`~repro.core.schemes.base.StorageScheme.flip_to_cell` installs it
for free).  :class:`CellPrefetcher` adds the motion prediction: a
one-step velocity estimate extrapolated toward the next cell.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.hdov_tree import HDoVEnvironment
from repro.core.schemes.base import StorageScheme
from repro.errors import WalkthroughError


class CellPrefetcher:
    """Predictive prefetch of per-cell visibility structures.

    Parameters
    ----------
    env:
        The built environment (provides the grid).
    scheme:
        The storage scheme whose flips should be warmed.
    trigger_fraction:
        Lookahead distance as a fraction of the cell size: the predicted
        position one trigger-fraction-cell ahead decides which neighbor
        to warm.
    """

    def __init__(self, env: HDoVEnvironment, scheme: StorageScheme, *,
                 trigger_fraction: float = 0.5) -> None:
        if not 0.0 < trigger_fraction <= 2.0:
            raise WalkthroughError(
                f"trigger_fraction must be in (0, 2], got {trigger_fraction}")
        self.env = env
        self.scheme = scheme
        self.trigger_fraction = trigger_fraction
        self._last_position: Optional[np.ndarray] = None
        self.prefetches = 0

    def predict_next_cell(self, position: np.ndarray) -> Optional[int]:
        """The neighboring cell the viewer is heading into, or ``None``.

        Uses the last observed position as a one-step velocity estimate
        and extrapolates by ``trigger_fraction`` cell sizes.
        """
        grid = self.env.grid
        current = grid.cell_of_point(position)
        if self._last_position is None:
            return None
        # Cells partition the horizontal plane, so the prediction uses
        # the horizontal velocity for both the direction *and* the speed
        # that normalises it — mixing components (planar speed, 3D
        # direction) inflates the lookahead whenever the viewer moves
        # vertically and triggers spurious prefetches.
        velocity = position - self._last_position
        planar = velocity.copy()
        planar[2] = 0.0
        speed = float(np.linalg.norm(planar))
        if speed == 0.0:
            return None
        lookahead = position + planar / speed * (
            grid.cell_size * self.trigger_fraction)
        predicted = grid.cell_of_point(lookahead)
        if predicted == current:
            return None
        return predicted

    def observe(self, position) -> Optional[int]:
        """Per-frame hook, called *before* the query: maybe prefetch.

        Prefetch I/O is charged normally — it is real work; the benefit
        is that it lands on a quiet frame instead of the crossing frame.
        Returns the prefetched cell id, or ``None``.
        """
        position = np.asarray(position, dtype=np.float64)
        target = self.predict_next_cell(position)
        self._last_position = position.copy()
        if target is None:
            return None
        # Count only *effective* prefetches: the scheme no-ops when the
        # target is already current or already warm, and the counter
        # here must agree with the scheme_prefetches_total metric.
        if self.scheme.prefetch_cell(target):
            self.prefetches += 1
        return target

    @property
    def hits(self) -> int:
        """Flips that were served from the warm buffer."""
        return self.scheme.prefetched_flips

    def __repr__(self) -> str:
        return (f"CellPrefetcher(prefetches={self.prefetches}, "
                f"hits={self.hits})")
