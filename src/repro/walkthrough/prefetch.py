"""Neighbor-cell prefetching.

REVIEW's paper [12] lists prefetching among its optimizations; for the
HDoV-tree the natural unit to prefetch is the *next cell's* V-page-index
segment: when the viewer heads toward a cell boundary, the segment flip
that would stall the crossing frame is paid early, on a quiet frame.

The storage schemes support this directly
(:meth:`~repro.core.schemes.base.StorageScheme.prefetch_cell` reads the
segment into a warm side buffer; the eventual
:meth:`~repro.core.schemes.base.StorageScheme.flip_to_cell` installs it
for free).  :class:`CellPrefetcher` adds the motion prediction, which it
delegates to :class:`~repro.walkthrough.transition.CellTransitionModel`:
grid-cell Markov counts learned online from the session's own motion,
blended with a one-step velocity prior.  With no recorded transitions
the model reduces exactly to the historical velocity extrapolation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.hdov_tree import HDoVEnvironment
from repro.core.schemes.base import StorageScheme
from repro.walkthrough.transition import CellTransitionModel


class CellPrefetcher:
    """Predictive prefetch of per-cell visibility structures.

    Parameters
    ----------
    env:
        The built environment (provides the grid).
    scheme:
        The storage scheme whose flips should be warmed.
    trigger_fraction:
        Lookahead distance as a fraction of the cell size: the predicted
        position one trigger-fraction-cell ahead decides which neighbor
        to warm.
    model:
        Transition model to consult and train; a fresh one is built when
        omitted.  Sharing one model across sessions pools their route
        knowledge (the serving prefetcher does exactly that).
    """

    def __init__(self, env: HDoVEnvironment, scheme: StorageScheme, *,
                 trigger_fraction: float = 0.5,
                 model: Optional[CellTransitionModel] = None) -> None:
        self.env = env
        self.scheme = scheme
        self.model = model if model is not None else CellTransitionModel(
            env.grid, trigger_fraction=trigger_fraction)
        self.trigger_fraction = self.model.trigger_fraction
        self._last_position: Optional[np.ndarray] = None
        self._last_cell: Optional[int] = None
        self.prefetches = 0

    def predict_next_cell(self, position: np.ndarray) -> Optional[int]:
        """The neighboring cell the viewer is heading into, or ``None``.

        Blends the model's Markov counts for the current cell with the
        one-step velocity extrapolation; with an untrained model this is
        exactly the historical velocity-only prediction.
        """
        return self.model.predict_from_motion(position, self._last_position)

    def observe(self, position) -> Optional[int]:
        """Per-frame hook, called *before* the query: maybe prefetch.

        Prefetch I/O is charged normally — it is real work; the benefit
        is that it lands on a quiet frame instead of the crossing frame.
        Also feeds the observed cell crossing back into the transition
        model.  Returns the prefetched cell id, or ``None``.
        """
        position = np.asarray(position, dtype=np.float64)
        current = self.env.grid.cell_of_point(position)
        target = self.predict_next_cell(position)
        if self._last_cell is not None and self._last_cell != current:
            self.model.record_transition(self._last_cell, current)
        self._last_position = position.copy()
        self._last_cell = current
        if target is None:
            return None
        # Count only *effective* prefetches: the scheme no-ops when the
        # target is already current or already warm, and the counter
        # here must agree with the scheme_prefetches_total metric.
        if self.scheme.prefetch_cell(target):
            self.prefetches += 1
        return target

    @property
    def hits(self) -> int:
        """Flips that were served from the warm buffer."""
        return self.scheme.prefetched_flips

    def __repr__(self) -> str:
        return (f"CellPrefetcher(prefetches={self.prefetches}, "
                f"hits={self.hits})")
