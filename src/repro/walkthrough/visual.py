"""Walkthrough drivers: the VISUAL system and the REVIEW wrapper.

Both replay a recorded :class:`~repro.walkthrough.session.Session` frame
by frame, charging database work to the shared simulated disk and
producing :class:`~repro.walkthrough.frame.FrameRecord` series that the
Figure 10/12 and Table 3 experiments summarise.

Query cadence matters for the frame-time *shape*:

* VISUAL's visibility data is per cell, so the answer set only changes
  when the viewpoint crosses a cell boundary; frames inside a cell reuse
  the previous result (temporal coherence) and pay rendering only.  Cell
  crossings pay the flip, the traversal, and the delta fetches — small,
  frequent spikes.
* REVIEW oversizes its query box relative to the frustum and re-queries
  only when the viewpoint drifts past a slack distance — rare, tall
  spikes (the "choppiness" of Figure 10(a)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.delta import DeltaSearch
from repro.core.hdov_tree import HDoVEnvironment
from repro.core.search import HDoVSearch, SearchResult
from repro.baselines.review import ReviewSystem
from repro.errors import WalkthroughError
from repro.obs import names
from repro.obs.metrics import get_registry
from repro.obs.trace import span
from repro.walkthrough.frame import FrameModel, FrameRecord
from repro.walkthrough.metrics import FidelityMetric
from repro.walkthrough.session import Session


@dataclass
class WalkthroughReport:
    """All frames of one replay plus identity metadata."""

    system: str
    session: str
    frames: List[FrameRecord]

    def frame_times(self) -> List[float]:
        return [f.frame_ms for f in self.frames]

    def search_times(self) -> List[float]:
        return [f.search_ms for f in self.frames]

    def avg_search_ms(self) -> float:
        return sum(self.search_times()) / len(self.frames)

    def avg_query_search_ms(self) -> float:
        """Mean search time over frames that actually issued a query."""
        queried = [f.search_ms for f in self.frames if f.total_ios > 0]
        if not queried:
            return 0.0
        return sum(queried) / len(queried)

    def avg_ios(self) -> float:
        return sum(f.total_ios for f in self.frames) / len(self.frames)

    def avg_query_ios(self) -> float:
        """Mean I/O count over frames that actually issued a query."""
        queried = [f.total_ios for f in self.frames if f.total_ios > 0]
        if not queried:
            return 0.0
        return sum(queried) / len(queried)

    def avg_fidelity(self) -> float:
        scored = [f.fidelity for f in self.frames if f.fidelity == f.fidelity]
        return sum(scored) / len(scored) if scored else float("nan")

    def peak_resident_bytes(self) -> int:
        return max((f.resident_bytes for f in self.frames), default=0)

    def degraded_frames(self) -> int:
        """Frames rendered with at least one degraded subtree."""
        return sum(1 for f in self.frames if f.degraded > 0)

    def total_degradations(self) -> int:
        """Sum of per-frame degraded-subtree counts."""
        return sum(f.degraded for f in self.frames)


class VisualSystem:
    """The paper's prototype: HDoV-tree search + delta fetch.

    Parameters
    ----------
    env:
        Built environment.
    eta:
        The DoV threshold driving the traversal.
    scheme:
        Storage scheme name (defaults to the environment's only scheme).
    """

    def __init__(self, env: HDoVEnvironment, *, eta: float,
                 scheme: Optional[str] = None,
                 frame_model: Optional[FrameModel] = None,
                 evaluate_fidelity: bool = True,
                 cache_budget_bytes: Optional[int] = None) -> None:
        if eta < 0:
            raise WalkthroughError(f"eta must be >= 0, got {eta}")
        self.env = env
        self.eta = eta
        self.frame_model = frame_model or FrameModel()
        self.evaluate_fidelity = evaluate_fidelity
        searcher = HDoVSearch(env, scheme, fetch_models=False)
        self.delta = DeltaSearch(searcher,
                                 cache_budget_bytes=cache_budget_bytes)
        self._fidelity = FidelityMetric(env)

    def run(self, session: Session) -> WalkthroughReport:
        """Replay a session; returns the per-frame records."""
        frames: List[FrameRecord] = []
        self.delta.clear()
        last_cell: Optional[int] = None
        last_result: Optional[SearchResult] = None
        last_fidelity = float("nan")
        last_degraded = 0
        for index, waypoint in enumerate(session):
            position = waypoint.position_array()
            cell_id = self.env.grid.cell_of_point(position)
            snap = self.env.snapshot()
            with span("frame", index=index, cell=cell_id) as sp:
                queried = cell_id != last_cell or last_result is None
                if queried:
                    last_result = self.delta.query_cell(cell_id, self.eta)
                    last_cell = cell_id
                    last_degraded = last_result.degraded
                    if self.evaluate_fidelity:
                        last_fidelity = self._fidelity.score_hdov(last_result)
                light, heavy = self.env.delta(snap)
                if sp is not None:
                    sp.attrs.update(queried=queried,
                                    light_ios=light.total_ios,
                                    heavy_ios=heavy.total_ios,
                                    light_ms=light.simulated_ms,
                                    heavy_ms=heavy.simulated_ms)
            io_ms = light.simulated_ms + heavy.simulated_ms
            polygons = last_result.total_polygons
            if last_degraded:
                # Created lazily (and fetched per call, not cached):
                # fault-free runs register no series, and registry swaps
                # by `repro chaos` / `repro profile` stay safe.
                get_registry().counter(names.FRAMES_DEGRADED).inc()
            frames.append(FrameRecord(
                frame_index=index,
                cell_id=cell_id,
                io_ms=io_ms,
                light_ios=light.total_ios,
                heavy_ios=heavy.total_ios,
                polygons=polygons,
                frame_ms=self.frame_model.frame_ms(io_ms, polygons),
                search_ms=io_ms,
                fidelity=last_fidelity,
                resident_bytes=(self.delta.resident_bytes
                                + self.delta.search.scheme.resident_bytes()),
                degraded=last_degraded,
                back_seeks=light.back_seeks + heavy.back_seeks,
                forward_seeks=light.forward_seeks + heavy.forward_seeks,
            ))
        return WalkthroughReport(system=f"VISUAL(eta={self.eta})",
                                 session=session.name, frames=frames)


class ReviewWalkthrough:
    """Replay driver around :class:`~repro.baselines.review.ReviewSystem`."""

    def __init__(self, env: HDoVEnvironment, *, box_size: float = 400.0,
                 frame_model: Optional[FrameModel] = None,
                 evaluate_fidelity: bool = True,
                 cache_budget_bytes: Optional[int] = None,
                 requery_fraction: float = 0.25) -> None:
        self.env = env
        self.review = ReviewSystem(env, box_size=box_size,
                                   cache_budget_bytes=cache_budget_bytes,
                                   requery_fraction=requery_fraction)
        self.frame_model = frame_model or FrameModel()
        self.evaluate_fidelity = evaluate_fidelity
        self._fidelity = FidelityMetric(env)

    def run(self, session: Session) -> WalkthroughReport:
        frames: List[FrameRecord] = []
        self.review.clear_cache()
        last_fidelity = float("nan")
        for index, waypoint in enumerate(session):
            position = waypoint.position_array()
            snap = self.env.snapshot()
            result, queried = self.review.frame(position)
            light, heavy = self.env.delta(snap)
            io_ms = light.simulated_ms + heavy.simulated_ms
            cell_id = self.env.grid.cell_of_point(position)
            if self.evaluate_fidelity:
                # Fidelity is against the *current* cell's ground truth,
                # whether or not a query ran this frame.
                rendered: Dict[int, int] = {}
                for oid in result.object_ids:
                    record = self.env.objects[oid]
                    distance = record.chain.finest.aabb() \
                        .min_distance_to_point(position)
                    fraction = self.review.lod_policy \
                        .fraction_for_distance(distance)
                    rendered[oid] = record.chain \
                        .interpolated_polygons(fraction)
                last_fidelity = self._fidelity.score_rendered(cell_id,
                                                              rendered)
            frames.append(FrameRecord(
                frame_index=index,
                cell_id=cell_id,
                io_ms=io_ms,
                light_ios=light.total_ios,
                heavy_ios=heavy.total_ios,
                polygons=result.total_polygons,
                frame_ms=self.frame_model.frame_ms(io_ms,
                                                   result.total_polygons),
                search_ms=io_ms,
                fidelity=last_fidelity,
                resident_bytes=self.review.resident_bytes,
                back_seeks=light.back_seeks + heavy.back_seeks,
                forward_seeks=light.forward_seeks + heavy.forward_seeks,
            ))
        return WalkthroughReport(
            system=f"REVIEW(box={self.review.box_size:g}m)",
            session=session.name, frames=frames)
