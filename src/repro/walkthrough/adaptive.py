"""Adaptive DoV-threshold control.

The paper motivates tunability: "Depending on the users' needs and the
computing power of the machines, different users may see visible
objects with different degree of fidelity."  It leaves the tuning to
the user; this module closes the loop — a small feedback controller
that adjusts ``eta`` each frame to hold a target frame time, giving a
machine-independent way to pick the threshold.

The controller is multiplicative with clamping: frames slower than the
target raise eta (coarser, faster), faster frames lower it (finer),
with a dead band to avoid oscillation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.hdov_tree import HDoVEnvironment
from repro.core.search import HDoVSearch
from repro.core.delta import DeltaSearch
from repro.errors import WalkthroughError
from repro.walkthrough.frame import FrameModel, FrameRecord
from repro.walkthrough.session import Session
from repro.walkthrough.visual import WalkthroughReport


@dataclass
class EtaController:
    """Multiplicative frame-time controller for ``eta``.

    Attributes
    ----------
    target_ms:
        Desired frame time.
    eta_min, eta_max:
        Clamp range (``eta_min > 0`` so eq. 5 stays defined).
    gain:
        Fractional step per relative error (0.5 means a 100% error
        changes eta by 50%).
    dead_band:
        Relative error below which eta is left unchanged.
    """

    target_ms: float
    eta_min: float = 1e-5
    eta_max: float = 0.064
    gain: float = 0.5
    dead_band: float = 0.1

    def __post_init__(self) -> None:
        if self.target_ms <= 0:
            raise WalkthroughError(f"target_ms must be > 0: {self.target_ms}")
        if not 0 < self.eta_min < self.eta_max:
            raise WalkthroughError("need 0 < eta_min < eta_max")
        if self.gain <= 0:
            raise WalkthroughError(f"gain must be > 0: {self.gain}")

    def update(self, eta: float, frame_ms: float) -> float:
        """Next eta given the last frame's time."""
        error = (frame_ms - self.target_ms) / self.target_ms
        if abs(error) <= self.dead_band:
            return eta
        factor = 1.0 + self.gain * max(min(error, 2.0), -0.9)
        return float(min(max(eta * factor, self.eta_min), self.eta_max))


class AdaptiveVisualSystem:
    """VISUAL with per-frame eta adaptation."""

    def __init__(self, env: HDoVEnvironment, controller: EtaController, *,
                 initial_eta: float = 0.001,
                 scheme: Optional[str] = None,
                 frame_model: Optional[FrameModel] = None,
                 cache_budget_bytes: Optional[int] = None) -> None:
        self.env = env
        self.controller = controller
        self.eta = initial_eta
        self.frame_model = frame_model or FrameModel()
        searcher = HDoVSearch(env, scheme, fetch_models=False)
        self.delta = DeltaSearch(searcher,
                                 cache_budget_bytes=cache_budget_bytes)
        #: eta value used at each frame (for analysis).
        self.eta_trace: List[float] = []

    def run(self, session: Session) -> WalkthroughReport:
        frames: List[FrameRecord] = []
        self.delta.clear()
        self.eta_trace = []
        last_cell = None
        last_result = None
        for index, waypoint in enumerate(session):
            position = waypoint.position_array()
            cell_id = self.env.grid.cell_of_point(position)
            snap = self.env.snapshot()
            if cell_id != last_cell or last_result is None:
                last_result = self.delta.query_cell(cell_id, self.eta)
                last_cell = cell_id
            light, heavy = self.env.delta(snap)
            io_ms = light.simulated_ms + heavy.simulated_ms
            polygons = last_result.total_polygons
            frame_ms = self.frame_model.frame_ms(io_ms, polygons)
            frames.append(FrameRecord(
                frame_index=index, cell_id=cell_id, io_ms=io_ms,
                light_ios=light.total_ios, heavy_ios=heavy.total_ios,
                polygons=polygons, frame_ms=frame_ms, search_ms=io_ms,
                fidelity=float("nan"),
                resident_bytes=self.delta.resident_bytes,
            ))
            self.eta_trace.append(self.eta)
            new_eta = self.controller.update(self.eta, frame_ms)
            # Change detection, not numeric comparison: the controller
            # returns self.eta unchanged (same object) when it makes no
            # adjustment, so exact inequality is the right test here.
            if new_eta != self.eta:  # repro: ignore[RPR005]
                self.eta = new_eta
                # The cached cell result was computed at the old eta.
                last_cell = None
        return WalkthroughReport(system="VISUAL(adaptive)",
                                 session=session.name, frames=frames)
