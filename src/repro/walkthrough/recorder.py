"""Recording and replaying walkthrough sessions.

The paper's methodology: "We recorded a few walkthrough sessions and
played them back on the interactive walkthrough application.  Each
session is played back on both the VISUAL system and the REVIEW
system."  This module gives sessions a durable form: a small JSON file
(positions + view directions per frame) that replays bit-identically,
so a comparison is guaranteed to run both systems over the *same*
frames even across processes and machines.
"""

from __future__ import annotations

import json
from typing import List

from repro.errors import WalkthroughError
from repro.walkthrough.session import Session, Waypoint

#: Format version written into the file, checked on load.
FORMAT_VERSION = 1


def session_to_dict(session: Session) -> dict:
    """JSON-serializable form of a session."""
    return {
        "version": FORMAT_VERSION,
        "name": session.name,
        "frames": [
            {"position": list(wp.position),
             "direction": list(wp.direction)}
            for wp in session.waypoints
        ],
    }


def session_from_dict(data: dict) -> Session:
    """Inverse of :func:`session_to_dict`."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise WalkthroughError(
            f"unsupported session format version {version!r}")
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise WalkthroughError("session file has no name")
    frames = data.get("frames")
    if not isinstance(frames, list) or not frames:
        raise WalkthroughError("session file has no frames")
    waypoints: List[Waypoint] = []
    for i, frame in enumerate(frames):
        try:
            position = tuple(float(x) for x in frame["position"])
            direction = tuple(float(x) for x in frame["direction"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WalkthroughError(f"bad frame {i}: {exc}") from exc
        if len(position) != 3 or len(direction) != 3:
            raise WalkthroughError(f"bad frame {i}: wrong arity")
        waypoints.append(Waypoint(position, direction))
    return Session(name, tuple(waypoints))


def save_session(session: Session, path: str) -> None:
    """Write a session to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(session_to_dict(session), handle, indent=1)


def load_session(path: str) -> Session:
    """Read a session written by :func:`save_session`."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise WalkthroughError(f"corrupt session file: {exc}") from exc
    return session_from_dict(data)
