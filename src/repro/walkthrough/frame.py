"""Frame-time model.

The paper measures per-frame wall-clock on real hardware; we model it
deterministically: a frame costs the simulated I/O milliseconds of its
database query (from the disk model) plus a rendering term proportional
to the polygons handed to the graphics engine, plus a fixed overhead.
Frame-time *differences* in the paper come exactly from these two terms
(I/O stalls and polygon load), so the shapes of Figure 10 and Table 3
are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class FrameModel:
    """Converts a frame's work into simulated milliseconds.

    Defaults approximate early-2000s rendering throughput (~50k triangles
    per millisecond would be too fast for the era; the paper's frame
    times around 12-16 ms at city scale suggest a few thousand polygons
    per ms through the whole pipeline).
    """

    polys_per_ms: float = 4000.0
    overhead_ms: float = 4.0

    def render_ms(self, polygons: int) -> float:
        if polygons < 0:
            raise ValueError(f"negative polygon count: {polygons}")
        return self.overhead_ms + polygons / self.polys_per_ms

    def frame_ms(self, io_ms: float, polygons: int) -> float:
        if io_ms < 0:
            raise ValueError(f"negative io time: {io_ms}")
        return io_ms + self.render_ms(polygons)


@dataclass(frozen=True)
class FrameRecord:
    """Measurements of one rendered frame."""

    frame_index: int
    cell_id: Optional[int]
    io_ms: float
    #: light-weight I/O count (nodes + V-pages + index segments).
    light_ios: int
    #: heavy-weight I/O count (model data pages).
    heavy_ios: int
    polygons: int
    frame_ms: float
    #: Search time = the database query's simulated ms (I/O-dominated).
    search_ms: float
    #: Visual fidelity in [0, 1] (see metrics), NaN when not evaluated.
    fidelity: float
    resident_bytes: int
    #: Subtrees shown at their fallback internal LoD this frame because
    #: a V-page stayed unreadable (0 on the happy path).  Carried from
    #: the frame's governing query: non-query frames rendering a
    #: degraded answer set count as degraded too.
    degraded: int = 0
    #: Direction split of this frame's non-sequential accesses across
    #: both I/O classes (light + heavy); ``back_seeks`` is the number a
    #: layout rewrite targets.  Defaults keep older callers valid.
    back_seeks: int = 0
    forward_seeks: int = 0

    @property
    def total_ios(self) -> int:
        return self.light_ios + self.heavy_ios


def peak_resident_bytes(records: List[FrameRecord]) -> int:
    """Peak memory over a session (the paper's 28 MB vs 62 MB metric)."""
    return max((r.resident_bytes for r in records), default=0)
