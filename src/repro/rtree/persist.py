"""Persisting R-tree nodes to pages.

Nodes are written one per page in DFS pre-order; a node's position in that
order is its *node offset*, the key the V-page storage schemes use to look
up visibility data (paper, Section 4.2: "Each node in the tree stores an
offset starting from the beginning of the segment of the V-page-index").

The persisted form is what the search algorithms actually read at query
time, so node I/O is charged through the backing
:class:`~repro.storage.pagedfile.PagedFile`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import RTreeError
from repro.geometry.aabb import AABB
from repro.rtree.node import Node
from repro.rtree.tree import RTree
from repro.storage import pageio
from repro.storage.pagedfile import PagedFile
from repro.storage.serializer import NIL, decode_node, encode_node

KIND_LEAF = 0
KIND_INTERNAL = 1


class PersistedNode:
    """Decoded on-page node."""

    __slots__ = ("page_id", "kind", "level", "node_offset", "entries")

    def __init__(self, page_id: int, kind: int, level: int, node_offset: int,
                 entries: List[Tuple[AABB, int, int]]) -> None:
        self.page_id = page_id
        self.kind = kind
        self.level = level
        self.node_offset = node_offset
        self.entries = entries

    @property
    def is_leaf(self) -> bool:
        return self.kind == KIND_LEAF

    def __repr__(self) -> str:
        return (f"PersistedNode(page={self.page_id}, offset={self.node_offset}, "
                f"level={self.level}, entries={len(self.entries)})")


class NodeStore:
    """Reads and writes tree nodes in a paged file."""

    def __init__(self, pfile: PagedFile) -> None:
        self.pfile = pfile
        self.root_page: Optional[int] = None
        self.num_nodes = 0
        #: node offset -> page id, filled at write time.
        self.offset_to_page: Dict[int, int] = {}

    def write_tree(self, tree: RTree,
                   lod_pointers: Optional[Dict[int, int]] = None) -> int:
        """Persist every node of ``tree``; returns the root's page id.

        Side effects: assigns ``node.node_offset`` on the in-memory nodes
        (DFS pre-order index).  ``lod_pointers`` optionally maps a node
        offset to the blob id of that node's internal LoD, stored in the
        node header's vindex field by the HDoV layer separately; here the
        per-entry ``lod_ptr`` field carries the *object* LoD pointer for
        leaf entries and ``NIL`` otherwise.
        """
        nodes = list(tree.iter_nodes_dfs())
        for offset, node in enumerate(nodes):
            node.node_offset = offset
        self.num_nodes = len(nodes)

        # Pre-allocate pages in DFS order so offsets map to contiguous pages.
        pages = [self.pfile.allocate() for _ in nodes]
        self.offset_to_page = {i: pages[i] for i in range(len(nodes))}

        for node, page_id in zip(nodes, pages):
            entries: List[Tuple[AABB, int, int]] = []
            for entry in node.entries:
                if entry.is_leaf_entry:
                    oid = entry.object_id
                    lod_ptr = (lod_pointers or {}).get(oid, NIL)  # type: ignore[arg-type]
                    entries.append((entry.mbr, oid, lod_ptr))    # type: ignore[arg-type]
                else:
                    child_offset = entry.child.node_offset        # type: ignore[union-attr]
                    if child_offset is None:
                        raise RTreeError("child offset unassigned")
                    entries.append((entry.mbr, child_offset, NIL))
            kind = KIND_LEAF if node.is_leaf else KIND_INTERNAL
            payload = encode_node(kind, node.level, node.node_offset, entries,
                                  self.pfile.page_size)
            pageio.write_page(self.pfile, page_id, payload,
                              component="rtree")
        self.root_page = pages[0]
        return self.root_page

    def read_node(self, node_offset: int) -> PersistedNode:
        """Fetch and decode the node at ``node_offset`` (one page read)."""
        try:
            page_id = self.offset_to_page[node_offset]
        except KeyError:
            raise RTreeError(f"unknown node offset {node_offset}") from None
        data = pageio.read_page(self.pfile, page_id, component="rtree")
        kind, level, stored_offset, entries = decode_node(data)
        if stored_offset != node_offset:
            raise RTreeError(
                f"node offset mismatch: page says {stored_offset}, "
                f"asked for {node_offset}")
        return PersistedNode(page_id, kind, level, node_offset, entries)

    def read_root(self) -> PersistedNode:
        if self.root_page is None:
            raise RTreeError("tree has not been written")
        return self.read_node(0)
