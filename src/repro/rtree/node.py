"""R-tree nodes."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import RTreeError
from repro.geometry.aabb import AABB, union_aabbs
from repro.rtree.entry import Entry


class Node:
    """An R-tree node holding up to ``max_entries`` entries.

    ``level`` is 0 for leaves and grows toward the root.  Nodes keep a
    parent pointer so splits can propagate upward, and a ``node_offset``
    assigned at persistence time (the DFS index used by the V-page storage
    schemes to address visibility data).
    """

    __slots__ = ("level", "entries", "parent", "node_offset")

    def __init__(self, level: int = 0,
                 entries: Optional[List[Entry]] = None) -> None:
        if level < 0:
            raise RTreeError(f"negative level: {level}")
        self.level = level
        self.entries: List[Entry] = entries if entries is not None else []
        self.parent: Optional["Node"] = None
        self.node_offset: Optional[int] = None
        for entry in self.entries:
            if entry.child is not None:
                entry.child.parent = self

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    @property
    def num_entries(self) -> int:
        return len(self.entries)

    def mbr(self) -> AABB:
        """Tight bounding box of all entries."""
        if not self.entries:
            raise RTreeError("empty node has no MBR")
        return union_aabbs(e.mbr for e in self.entries)

    def add(self, entry: Entry) -> None:
        """Append an entry, wiring the child's parent pointer."""
        if entry.is_leaf_entry != self.is_leaf:
            raise RTreeError(
                f"entry kind mismatch: leaf={self.is_leaf}, "
                f"entry_is_leaf={entry.is_leaf_entry}")
        self.entries.append(entry)
        if entry.child is not None:
            entry.child.parent = self

    def entry_for_child(self, child: "Node") -> Entry:
        for entry in self.entries:
            if entry.child is child:
                return entry
        raise RTreeError("child not found in parent")

    def children(self) -> List["Node"]:
        if self.is_leaf:
            return []
        return [e.child for e in self.entries]  # type: ignore[misc]

    def __repr__(self) -> str:
        return (f"Node(level={self.level}, entries={self.num_entries}, "
                f"offset={self.node_offset})")
