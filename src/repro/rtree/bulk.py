"""Sort-Tile-Recursive (STR) bulk loading.

The experiments build trees over thousands of objects; STR packing yields
well-shaped trees deterministically and much faster than one-at-a-time
insertion, while the insertion path (with the paper's Ang–Tan split)
remains available and is what the build-pipeline ablation compares
against.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.constants import DEFAULT_FANOUT
from repro.errors import RTreeError
from repro.geometry.aabb import AABB
from repro.rtree.entry import Entry
from repro.rtree.node import Node
from repro.rtree.tree import RTree


def _chunk_evenly(items: List[Entry], capacity: int) -> List[List[Entry]]:
    """Split ``items`` into groups of at most ``capacity`` with sizes as
    even as possible — no trailing underfull group."""
    n = len(items)
    num_groups = max(int(math.ceil(n / capacity)), 1)
    base = n // num_groups
    extra = n % num_groups
    groups: List[List[Entry]] = []
    start = 0
    for g in range(num_groups):
        size = base + (1 if g < extra else 0)
        groups.append(items[start:start + size])
        start += size
    return [g for g in groups if g]


def _tile(entries: List[Entry], capacity: int) -> List[List[Entry]]:
    """Partition entries into groups of ~``capacity`` with STR tiling.

    Groups are balanced within each slab (and slabs are balanced across
    x) so no node ends up underfull — bulk-loaded trees then satisfy the
    same fill invariants as insertion-built ones.
    """
    n = len(entries)
    num_nodes = max(int(math.ceil(n / capacity)), 1)
    slabs_x = int(math.ceil(math.sqrt(num_nodes)))
    per_slab = int(math.ceil(n / slabs_x))

    def center(entry: Entry, axis: int) -> float:
        return float(entry.mbr.center[axis])

    entries = sorted(entries, key=lambda e: center(e, 0))
    groups: List[List[Entry]] = []
    for i in range(0, n, per_slab):
        slab = sorted(entries[i:i + per_slab], key=lambda e: center(e, 1))
        groups.extend(_chunk_evenly(slab, capacity))
    return groups


def str_bulk_load(items: Sequence[Tuple[AABB, int]],
                  max_entries: int = DEFAULT_FANOUT,
                  min_fill: float = 0.4,
                  split: str = "ang-tan") -> RTree:
    """Build an R-tree over ``(mbr, object_id)`` pairs with STR packing.

    The returned tree is a normal :class:`RTree`; later inserts use the
    configured split algorithm.
    """
    if not items:
        raise RTreeError("cannot bulk load zero items")
    tree = RTree(max_entries=max_entries, min_fill=min_fill, split=split)

    level_nodes: List[Node] = []
    leaf_entries = [Entry(mbr=mbr, object_id=oid) for mbr, oid in items]
    for group in _tile(leaf_entries, max_entries):
        level_nodes.append(Node(level=0, entries=group))

    level = 0
    while len(level_nodes) > 1:
        level += 1
        upper_entries = [Entry(mbr=n.mbr(), child=n) for n in level_nodes]
        level_nodes = [Node(level=level, entries=group)
                       for group in _tile(upper_entries, max_entries)]

    tree.root = level_nodes[0]
    tree.size = len(items)
    return tree


def balanced_capacity(n: int, max_entries: int) -> int:
    """Node capacity that spreads ``n`` items evenly over
    ``ceil(n / max_entries)`` nodes — avoids a final nearly-empty node."""
    num_nodes = int(math.ceil(n / max_entries))
    return int(math.ceil(n / num_nodes))
