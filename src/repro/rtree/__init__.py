"""R-tree substrate (Guttman 1984) with linear node splitting.

The HDoV-tree uses the R-tree as its spatial backbone (paper, Section 3.2),
and the REVIEW baseline issues window queries against the same structure.
The implementation here is an in-memory tree with insert, window query and
STR bulk loading, plus a persistence layer that writes nodes to pages with
DFS ordering so downstream layers get on-page node offsets.
"""

from repro.rtree.entry import Entry
from repro.rtree.node import Node
from repro.rtree.tree import RTree
from repro.rtree.bulk import str_bulk_load

__all__ = ["Entry", "Node", "RTree", "str_bulk_load"]
