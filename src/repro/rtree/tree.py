"""The R-tree proper: insertion, window query, traversal."""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from repro.constants import DEFAULT_FANOUT, DEFAULT_MIN_FILL
from repro.errors import RTreeError
from repro.geometry.aabb import AABB
from repro.geometry.vec import PointLike
from repro.rtree.entry import Entry
from repro.rtree.node import Node
from repro.rtree.split import SplitFn, get_split_algorithm


class RTree:
    """Guttman R-tree over 3-D AABBs.

    Parameters
    ----------
    max_entries:
        Fan-out ``M``.
    min_fill:
        Fraction of ``M`` that non-root nodes must hold (``m = ceil(M *
        min_fill)``).
    split:
        Name of the node-splitting algorithm (``"ang-tan"`` by default,
        matching the paper's builder; ``"guttman"`` is the ablation
        alternative).
    """

    def __init__(self, max_entries: int = DEFAULT_FANOUT,
                 min_fill: float = DEFAULT_MIN_FILL,
                 split: str = "ang-tan") -> None:
        if max_entries < 4:
            raise RTreeError(f"max_entries must be >= 4, got {max_entries}")
        if not 0.0 < min_fill <= 0.5:
            raise RTreeError(f"min_fill must be in (0, 0.5], got {min_fill}")
        self.max_entries = max_entries
        self.min_entries = max(1, int(max_entries * min_fill))
        self.split_name = split
        self._split: SplitFn = get_split_algorithm(split)
        self.root = Node(level=0)
        self.size = 0

    # -- insertion ------------------------------------------------------------

    def insert(self, mbr: AABB, object_id: int) -> None:
        """Insert one object.  Duplicated ids are allowed (caller's choice)."""
        leaf = self._choose_leaf(self.root, mbr)
        leaf.add(Entry(mbr=mbr, object_id=object_id))
        self.size += 1
        self._handle_overflow(leaf)

    def _choose_leaf(self, node: Node, mbr: AABB) -> Node:
        while not node.is_leaf:
            best = min(
                node.entries,
                key=lambda e: (e.mbr.enlargement(mbr), e.mbr.volume))
            node = best.child  # type: ignore[assignment]
        return node

    def _handle_overflow(self, node: Node) -> None:
        while node.num_entries > self.max_entries:
            group_a, group_b = self._split(node.entries, self.min_entries)
            parent = node.parent
            node_b = Node(level=node.level, entries=group_b)
            node.entries = group_a
            for entry in node.entries:
                if entry.child is not None:
                    entry.child.parent = node
            if parent is None:
                new_root = Node(level=node.level + 1)
                new_root.add(Entry(mbr=node.mbr(), child=node))
                new_root.add(Entry(mbr=node_b.mbr(), child=node_b))
                self.root = new_root
                return
            parent.entry_for_child(node).mbr = node.mbr()
            parent.add(Entry(mbr=node_b.mbr(), child=node_b))
            node = parent
        self._tighten_upward(node)

    def _tighten_upward(self, node: Node) -> None:
        while node.parent is not None:
            entry = node.parent.entry_for_child(node)
            tight = node.mbr()
            if entry.mbr == tight:
                break
            entry.mbr = tight
            node = node.parent

    # -- queries -------------------------------------------------------------

    def window_query(self, box: AABB,
                     on_node: Optional[Callable[[Node], None]] = None
                     ) -> List[int]:
        """All object ids whose MBR intersects ``box``.

        ``on_node`` is invoked for every node visited, which is how the
        REVIEW baseline charges node I/O.
        """
        result: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if on_node is not None:
                on_node(node)
            for entry in node.entries:
                if not entry.mbr.intersects(box):
                    continue
                if entry.is_leaf_entry:
                    result.append(entry.object_id)  # type: ignore[arg-type]
                else:
                    stack.append(entry.child)  # type: ignore[arg-type]
        return result

    def point_query(self, point: PointLike) -> List[int]:
        """Object ids whose MBR contains ``point``."""
        box = AABB(point, point)
        return self.window_query(box)

    # -- traversal / introspection ----------------------------------------------

    def iter_nodes_dfs(self) -> Iterator[Node]:
        """Depth-first pre-order over nodes.

        This order defines ``node_offset`` at persistence time and the
        V-page layout of the vertical schemes, so it must be deterministic:
        children are visited in entry order.
        """
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(reversed(node.children()))

    def iter_leaves(self) -> Iterator[Node]:
        return (n for n in self.iter_nodes_dfs() if n.is_leaf)

    @property
    def height(self) -> int:
        """Number of levels (1 for a root-only tree)."""
        return self.root.level + 1

    @property
    def num_nodes(self) -> int:
        return sum(1 for _ in self.iter_nodes_dfs())

    def all_object_ids(self) -> List[int]:
        ids: List[int] = []
        for leaf in self.iter_leaves():
            ids.extend(e.object_id for e in leaf.entries)  # type: ignore[misc]
        return ids

    # -- validation -----------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`RTreeError` if any structural invariant is broken.

        Checked: parent MBRs contain child MBRs; fan-out bounds; uniform
        leaf depth; parent pointers consistent.
        """
        expected_leaf_level = 0
        for node, depth in self._iter_with_depth():
            if not node.is_leaf and node.level != node.children()[0].level + 1:
                raise RTreeError("level mismatch between parent and child")
            if node is not self.root:
                if node.num_entries < self.min_entries:
                    raise RTreeError(
                        f"underfull node: {node.num_entries} < {self.min_entries}")
            if node.num_entries > self.max_entries:
                raise RTreeError("overfull node")
            for entry in node.entries:
                if entry.child is not None:
                    if entry.child.parent is not node:
                        raise RTreeError("broken parent pointer")
                    if not entry.mbr.contains(entry.child.mbr()):
                        raise RTreeError("parent MBR does not contain child MBR")
            if node.is_leaf:
                if node.level != expected_leaf_level:
                    raise RTreeError("leaf at nonzero level")

    def _iter_with_depth(self) -> Iterator[Tuple[Node, int]]:
        stack: List[Tuple[Node, int]] = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            yield node, depth
            for child in node.children():
                stack.append((child, depth + 1))

    def __repr__(self) -> str:
        return (f"RTree(size={self.size}, height={self.height}, "
                f"M={self.max_entries}, m={self.min_entries}, "
                f"split={self.split_name!r})")
