"""Node-splitting algorithms.

The paper's tree builder "applies a linear node splitting algorithm [Ang &
Tan, SSD'97] to minimize the overlap of the bounding boxes".  We implement
both that algorithm and Guttman's classic linear split, selectable when
constructing the tree so the ablation bench can compare them.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.errors import RTreeError
from repro.geometry.aabb import union_aabbs
from repro.rtree.entry import Entry

SplitFn = Callable[[Sequence[Entry], int], Tuple[List[Entry], List[Entry]]]


def _validate(entries: Sequence[Entry], min_fill: int) -> None:
    if len(entries) < 2:
        raise RTreeError(f"cannot split {len(entries)} entries")
    if min_fill < 1 or 2 * min_fill > len(entries):
        raise RTreeError(
            f"min_fill {min_fill} infeasible for {len(entries)} entries")


def _rebalance(group_a: List[Entry], group_b: List[Entry],
               min_fill: int) -> Tuple[List[Entry], List[Entry]]:
    """Move entries between groups until both meet ``min_fill``.

    Moves the entry whose removal least grows the donor's MBR — the
    standard fix-up, applied by both split algorithms.
    """
    while len(group_a) < min_fill or len(group_b) < min_fill:
        donor, taker = ((group_b, group_a) if len(group_a) < min_fill
                        else (group_a, group_b))
        taker_mbr = union_aabbs(e.mbr for e in taker)
        best_idx = min(range(len(donor)),
                       key=lambda i: taker_mbr.enlargement(donor[i].mbr))
        taker.append(donor.pop(best_idx))
    return group_a, group_b


def guttman_linear_split(entries: Sequence[Entry],
                         min_fill: int) -> Tuple[List[Entry], List[Entry]]:
    """Guttman's linear split: pick the pair of seeds with the greatest
    normalized separation along any axis, then assign the rest greedily by
    least enlargement."""
    _validate(entries, min_fill)
    los = np.array([e.mbr.lo for e in entries])
    his = np.array([e.mbr.hi for e in entries])
    n = len(entries)

    best_axis, best_sep, seeds = 0, -np.inf, (0, 1)
    for axis in range(3):
        width = float(his[:, axis].max() - los[:, axis].min())
        if width == 0.0:
            continue
        highest_lo = int(np.argmax(los[:, axis]))
        lowest_hi = int(np.argmin(his[:, axis]))
        if highest_lo == lowest_hi:
            continue
        sep = (los[highest_lo, axis] - his[lowest_hi, axis]) / width
        if sep > best_sep:
            best_sep = sep
            best_axis = axis
            seeds = (lowest_hi, highest_lo)
    if seeds[0] == seeds[1]:
        seeds = (0, 1)

    group_a: List[Entry] = [entries[seeds[0]]]
    group_b: List[Entry] = [entries[seeds[1]]]
    mbr_a = entries[seeds[0]].mbr
    mbr_b = entries[seeds[1]].mbr
    for i in range(n):
        if i in seeds:
            continue
        entry = entries[i]
        grow_a = mbr_a.enlargement(entry.mbr)
        grow_b = mbr_b.enlargement(entry.mbr)
        if grow_a < grow_b or (grow_a == grow_b and len(group_a) <= len(group_b)):
            group_a.append(entry)
            mbr_a = mbr_a.union(entry.mbr)
        else:
            group_b.append(entry)
            mbr_b = mbr_b.union(entry.mbr)
    return _rebalance(group_a, group_b, min_fill)


def ang_tan_linear_split(entries: Sequence[Entry],
                         min_fill: int) -> Tuple[List[Entry], List[Entry]]:
    """Ang & Tan (SSD'97) linear split.

    For each axis, count entries closer to the low edge vs the high edge of
    the covering box; choose the axis that balances the two lists best
    (tie-break: smaller overlap of the resulting group MBRs), then split
    along it.
    """
    _validate(entries, min_fill)
    los = np.array([e.mbr.lo for e in entries])
    his = np.array([e.mbr.hi for e in entries])
    cover_lo = los.min(axis=0)
    cover_hi = his.max(axis=0)

    candidates = []
    for axis in range(3):
        near_lo = (los[:, axis] - cover_lo[axis]) <= (cover_hi[axis] - his[:, axis])
        list_lo = [entries[i] for i in range(len(entries)) if near_lo[i]]
        list_hi = [entries[i] for i in range(len(entries)) if not near_lo[i]]
        if not list_lo or not list_hi:
            continue
        imbalance = abs(len(list_lo) - len(list_hi))
        mbr_lo = union_aabbs(e.mbr for e in list_lo)
        mbr_hi = union_aabbs(e.mbr for e in list_hi)
        overlap_box = mbr_lo.intersection(mbr_hi)
        overlap = overlap_box.volume if overlap_box is not None else 0.0
        candidates.append((imbalance, overlap, axis, list_lo, list_hi))

    if not candidates:
        # All entries sit at identical positions along every axis;
        # fall back to an arbitrary even split.
        mid = len(entries) // 2
        return _rebalance(list(entries[:mid]), list(entries[mid:]), min_fill)

    candidates.sort(key=lambda c: (c[0], c[1]))
    _, _, _, list_lo, list_hi = candidates[0]
    return _rebalance(list(list_lo), list(list_hi), min_fill)


SPLIT_ALGORITHMS = {
    "guttman": guttman_linear_split,
    "ang-tan": ang_tan_linear_split,
}


def get_split_algorithm(name: str) -> SplitFn:
    try:
        return SPLIT_ALGORITHMS[name]
    except KeyError:
        raise RTreeError(
            f"unknown split algorithm {name!r}; "
            f"choose from {sorted(SPLIT_ALGORITHMS)}") from None
