"""k-nearest-neighbor queries over the R-tree.

Not used by the paper's experiments, but part of any credible R-tree:
the distance-based semantic cache replacement of REVIEW, and prefetch
policies ranking candidate cells, both want "nearest objects first".
Implements the classic best-first (priority queue) kNN over node MBRs.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Tuple

from repro.errors import RTreeError
from repro.geometry.vec import PointLike, as_vec3
from repro.rtree.node import Node
from repro.rtree.tree import RTree


def knn_query(tree: RTree, point: PointLike,
              k: int) -> List[Tuple[int, float]]:
    """The ``k`` objects with smallest MBR distance to ``point``.

    Returns ``(object_id, distance)`` pairs in ascending distance
    order.  Distances are MBR distances (zero inside the box), matching
    how REVIEW ranks objects for eviction.
    """
    if k < 1:
        raise RTreeError(f"k must be >= 1, got {k}")
    point = as_vec3(point)
    counter = itertools.count()          # tie-breaker for equal distances
    heap: List[Tuple[float, int, Optional[Node], Optional[int]]] = [
        (0.0, next(counter), tree.root, None)]
    result: List[Tuple[int, float]] = []
    while heap and len(result) < k:
        distance, _tie, node, object_id = heapq.heappop(heap)
        if node is None:
            assert object_id is not None
            result.append((object_id, distance))
            continue
        for entry in node.entries:
            entry_distance = entry.mbr.min_distance_to_point(point)
            if entry.is_leaf_entry:
                heapq.heappush(heap, (entry_distance, next(counter),
                                      None, entry.object_id))
            else:
                heapq.heappush(heap, (entry_distance, next(counter),
                                      entry.child, None))
    return result


def nearest_object(tree: RTree, point: PointLike) -> Tuple[int, float]:
    """Convenience wrapper: the single nearest object."""
    results = knn_query(tree, point, 1)
    if not results:
        raise RTreeError("tree is empty")
    return results[0]
