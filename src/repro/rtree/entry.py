"""R-tree entries.

An entry is an (MBR, target) pair: the target is a child node for internal
nodes and an opaque object id for leaves.  HDoV enriches entries with
view-variant ``(DoV, NVO)`` data at search time, so the static structure
stays view-invariant (paper, Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

from repro.geometry.aabb import AABB

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.rtree.node import Node


@dataclass
class Entry:
    """One slot of an R-tree node.

    Attributes
    ----------
    mbr:
        Minimum bounding box of the subtree or object.
    child:
        Child node, or ``None`` in a leaf entry.
    object_id:
        Object identifier, or ``None`` in an internal entry.
    """

    mbr: AABB
    child: Optional["Node"] = None
    object_id: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.child is None) == (self.object_id is None):
            raise ValueError("entry must have exactly one of child/object_id")

    @property
    def is_leaf_entry(self) -> bool:
        return self.object_id is not None

    @property
    def target(self) -> Union["Node", int]:
        return self.object_id if self.child is None else self.child

    def __repr__(self) -> str:
        kind = f"obj={self.object_id}" if self.is_leaf_entry else "child"
        return f"Entry({kind}, mbr={self.mbr})"
