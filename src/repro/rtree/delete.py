"""R-tree deletion (Guttman's Delete / CondenseTree).

The paper's environments are static, but a credible R-tree supports
updates: a dynamic virtual environment (objects added and removed at
runtime) is the natural evolution of the system.  Deletion follows
Guttman 1984: find the leaf, remove the entry, condense the tree by
eliminating underfull nodes and reinserting their orphaned entries, and
shorten the tree when the root is left with a single child.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import RTreeError
from repro.geometry.aabb import AABB
from repro.rtree.entry import Entry
from repro.rtree.node import Node
from repro.rtree.tree import RTree


def delete(tree: RTree, mbr: AABB, object_id: int) -> bool:
    """Remove one ``(mbr, object_id)`` record.

    Returns True if an entry was removed, False if no matching entry
    exists.  Matching requires the exact MBR (as inserted) and id.
    """
    leaf = _find_leaf(tree.root, mbr, object_id)
    if leaf is None:
        return False
    for index, entry in enumerate(leaf.entries):
        if entry.object_id == object_id and entry.mbr == mbr:
            del leaf.entries[index]
            break
    tree.size -= 1
    _condense(tree, leaf)
    _shorten_root(tree)
    return True


def delete_by_id(tree: RTree, object_id: int) -> bool:
    """Remove the first entry with ``object_id`` (full scan fallback for
    callers that did not keep the exact MBR)."""
    for leaf in tree.iter_leaves():
        for entry in leaf.entries:
            if entry.object_id == object_id:
                return delete(tree, entry.mbr, object_id)
    return False


def _find_leaf(node: Node, mbr: AABB, object_id: int) -> Optional[Node]:
    if node.is_leaf:
        for entry in node.entries:
            if entry.object_id == object_id and entry.mbr == mbr:
                return node
        return None
    for entry in node.entries:
        if entry.mbr.contains(mbr) or entry.mbr.intersects(mbr):
            found = _find_leaf(entry.child, mbr, object_id)  # type: ignore[arg-type]
            if found is not None:
                return found
    return None


def _condense(tree: RTree, node: Node) -> None:
    """Guttman CondenseTree: walk up, collecting underfull nodes'
    entries for reinsertion, tightening MBRs along the way."""
    orphans: List[Entry] = []
    current = node
    while current.parent is not None:
        parent = current.parent
        if current.num_entries < tree.min_entries:
            parent_entry = parent.entry_for_child(current)
            parent.entries.remove(parent_entry)
            orphans.extend(_collect_leaf_entries(current))
        else:
            parent.entry_for_child(current).mbr = current.mbr()
        current = parent

    for entry in orphans:
        # Reinsert at leaf level; tree.insert handles splits/overflow.
        tree.size -= 1        # insert() will increment it back
        tree.insert(entry.mbr, entry.object_id)  # type: ignore[arg-type]


def _collect_leaf_entries(node: Node) -> List[Entry]:
    if node.is_leaf:
        return list(node.entries)
    collected: List[Entry] = []
    for child in node.children():
        collected.extend(_collect_leaf_entries(child))
    return collected


def _shorten_root(tree: RTree) -> None:
    """If a non-leaf root holds a single child, that child becomes the
    root (repeatedly)."""
    while (not tree.root.is_leaf) and tree.root.num_entries == 1:
        only = tree.root.entries[0].child
        assert only is not None
        only.parent = None
        tree.root = only
    if not tree.root.entries and not tree.root.is_leaf:
        raise RTreeError("root lost all entries")  # pragma: no cover
