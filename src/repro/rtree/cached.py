"""Buffer-pool-backed node reads.

The paper's runs cache no tree nodes ("None of the two systems caches
the tree nodes in the queries"), which our default
:class:`~repro.rtree.persist.NodeStore` matches — every node read pays
disk I/O.  :class:`CachedNodeStore` wraps a store with an LRU
:class:`~repro.storage.buffer.BufferPool` so the cache-size ablation
can quantify what that design decision costs.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.rtree.persist import NodeStore, PersistedNode
from repro.storage.buffer import BufferPool
from repro.storage.serializer import decode_node


class CachedNodeStore:
    """Drop-in ``read_node`` provider with an LRU page cache.

    Hits are free (no disk charge); misses read through the underlying
    :class:`NodeStore`'s paged file.  Exposes the attributes the search
    layer uses (``num_nodes``, ``offset_to_page``, ``root_page``).
    """

    def __init__(self, store: NodeStore, capacity_pages: int) -> None:
        self.store = store
        self.pool = BufferPool(capacity_pages)

    @property
    def num_nodes(self) -> int:
        return self.store.num_nodes

    @property
    def offset_to_page(self) -> Dict[int, int]:
        return self.store.offset_to_page

    @property
    def root_page(self) -> Optional[int]:
        return self.store.root_page

    def read_node(self, node_offset: int) -> PersistedNode:
        page_id = self.store.offset_to_page[node_offset]
        data = self.pool.get(self.store.pfile, page_id)
        kind, level, stored_offset, entries = decode_node(data)
        return PersistedNode(page_id, kind, level, stored_offset, entries)

    def read_root(self) -> PersistedNode:
        return self.read_node(0)

    @property
    def hit_rate(self) -> float:
        return self.pool.hit_rate

    def __repr__(self) -> str:
        return (f"CachedNodeStore(capacity={self.pool.capacity}, "
                f"hit_rate={self.hit_rate:.2f})")
