"""Cross-session predictive prefetch for the serving buffer pool.

The per-session :class:`~repro.walkthrough.prefetch.CellPrefetcher`
warms a *private* side buffer; under serving the shared resource is the
buffer pool, so the useful speculation is pool-level: read the pages a
predicted cell flip will demand — its index segment, and the V-pages
that segment points to — into the shared pool before the flip happens.

Determinism contract (the serve report is byte-diffed in CI):

* **planning** happens in the scheduler's *serialized* phase 1, via
  :meth:`observe` — one call per session per round, in session-id
  order.  Observation does no I/O: it trains the shared
  :class:`~repro.walkthrough.transition.CellTransitionModel` and queues
  predicted targets.
* **issuing** happens in phase 2, via :meth:`issue_round` — exactly one
  internally-serialized batch per round.  Phase 2 otherwise runs pure
  scoring math, so the speculative reads are the only I/O in flight and
  the shared clock's seek accounting stays order-independent of the
  worker count.
* prefetch I/O is charged to the prefetcher's own ledger (an
  ``env.snapshot``/``delta`` window around the batch), never to a
  session — ``repro serve``'s reconciliation adds the ledger back in,
  so sessions + prefetch == environment still balances exactly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.hdov_tree import HDoVEnvironment
from repro.core.schemes.base import StorageScheme
from repro.storage import pageio
from repro.storage.buffer import BufferPool
from repro.storage.disk import IOStats
from repro.storage.pagedfile import PagedFile
from repro.walkthrough.transition import CellTransitionModel


def _prefetch_reader(pfile: PagedFile, page_id: int) -> bytes:
    """Pool miss reader for speculative reads: same sanctioned facade as
    demand reads, its own component label for the traffic breakdown."""
    return pageio.read_page(pfile, page_id, component="prefetch")


class ServingPrefetcher:
    """Plans per-round pool prefetches from a shared transition model.

    Parameters
    ----------
    pool:
        The shared serving pool speculative reads land in.
    env:
        The parent environment (shared stats ledgers; the snapshot
        window for prefetch I/O attribution).
    velocity_weight / trigger_fraction:
        Forwarded to the :class:`CellTransitionModel`.
    max_vpages:
        Cap on V-pages chased per predicted cell per round; the index
        segment itself is always fetched whole.
    """

    def __init__(self, pool: BufferPool, env: HDoVEnvironment, *,
                 velocity_weight: int = 3, trigger_fraction: float = 0.5,
                 max_vpages: int = 8) -> None:
        self.pool = pool
        self.env = env
        self.model = CellTransitionModel(
            env.grid, velocity_weight=velocity_weight,
            trigger_fraction=trigger_fraction)
        self.max_vpages = max_vpages
        #: Targets planned this round: cell id -> scheme view to address
        #: pages through (insertion order == session-id order, so the
        #: issue order is deterministic).
        self._pending: "OrderedDict[int, StorageScheme]" = OrderedDict()
        #: Per-session motion memory for transition training.
        self._last_cell: Dict[int, int] = {}
        self._last_position: Dict[int, np.ndarray] = {}
        #: Per-session outstanding prediction, for accuracy accounting.
        self._predicted: Dict[int, int] = {}
        self.planned_cells = 0
        self.index_pages_issued = 0
        self.vpages_issued = 0
        self.predictions = 0
        self.correct_predictions = 0
        #: Prefetch I/O ledgers (the reconciliation's third column).
        self.light_total = IOStats()
        self.heavy_total = IOStats()

    # -- phase 1: planning (serialized, session-id order) ---------------------

    def observe(self, session_id: int, cell_id: int,
                position: np.ndarray, scheme: StorageScheme) -> None:
        """Record one session's frame position; maybe queue a target.

        Called from ``ServingSession.step`` — serialized phase 1 — so
        model updates and the pending queue are single-threaded and
        deterministic.  Does no I/O.
        """
        last_cell = self._last_cell.get(session_id)
        if last_cell is not None and last_cell != cell_id:
            self.model.record_transition(last_cell, cell_id)
            predicted = self._predicted.pop(session_id, None)
            if predicted is not None and predicted == cell_id:
                self.correct_predictions += 1
        target = self.model.predict(
            cell_id,
            self.model.velocity_cell(position,
                                     self._last_position.get(session_id)))
        self._last_cell[session_id] = cell_id
        self._last_position[session_id] = position.copy()
        if target is not None:
            self.predictions += 1
            self._predicted[session_id] = target
            if target not in self._pending:
                self._pending[target] = scheme

    # -- phase 2: one serialized speculative batch ----------------------------

    def issue_round(self) -> None:
        """Issue every queued prefetch as one deterministic batch.

        Runs on a single thread; the I/O order is the pending-queue
        order, so the shared clock's head position evolves identically
        run to run.  The batch's charges go to the prefetcher's own
        ledger via a snapshot window.
        """
        if not self._pending:
            return
        pending = list(self._pending.items())
        self._pending.clear()
        snap = self.env.snapshot()
        try:
            for cell_id, scheme in pending:
                self._issue_cell(cell_id, scheme)
        finally:
            light, heavy = self.env.delta(snap)
            self._accumulate(self.light_total, light)
            self._accumulate(self.heavy_total, heavy)

    def _issue_cell(self, cell_id: int, scheme: StorageScheme) -> None:
        index_file = scheme.index_file
        pages = scheme.prefetch_pages(cell_id)
        if index_file is None or not pages:
            return
        self.planned_cells += 1
        for page_id in pages:
            if self.pool.prefetch(index_file, page_id,
                                  reader=_prefetch_reader):
                self.index_pages_issued += 1
        # Chase the segment into V-page prefetches when every index page
        # is resident and pointers are page ids (raw codec only: packed
        # streams address records, not pages).
        if scheme.codec.packed:
            return
        chunks = []
        for page_id in pages:
            data = self.pool.peek(index_file, page_id)
            if data is None:
                return
            chunks.append(data)
        pointers = scheme.decode_cell_pointers(cell_id, b"".join(chunks))
        issued = 0
        for pointer in pointers:
            if issued >= self.max_vpages:
                break
            if self.pool.prefetch(scheme.vpage_file, pointer,
                                  reader=_prefetch_reader):
                self.vpages_issued += 1
                issued += 1

    @staticmethod
    def _accumulate(total: IOStats, delta: IOStats) -> None:
        total.reads += delta.reads
        total.writes += delta.writes
        total.seeks += delta.seeks
        total.back_seeks += delta.back_seeks
        total.forward_seeks += delta.forward_seeks
        total.sequential_reads += delta.sequential_reads
        total.bytes_read += delta.bytes_read
        total.bytes_written += delta.bytes_written
        total.simulated_ms += delta.simulated_ms

    # -- reporting ------------------------------------------------------------

    def report(self) -> Dict[str, object]:
        pool_stats = self.pool.prefetch_stats()
        issued = pool_stats["issued"]
        return {
            "planned_cells": self.planned_cells,
            "index_pages_issued": self.index_pages_issued,
            "vpages_issued": self.vpages_issued,
            "predictions": self.predictions,
            "correct_predictions": self.correct_predictions,
            "transitions_recorded": self.model.transitions,
            "pool": pool_stats,
            "useful_ratio": (pool_stats["useful"] / issued
                             if issued else 0.0),
        }

    def __repr__(self) -> str:
        return (f"ServingPrefetcher(planned={self.planned_cells}, "
                f"issued={self.index_pages_issued + self.vpages_issued})")
