"""Round-based session scheduling with admission control.

The scheduler advances every active session by one frame per *round*:

* **phase 1** (query + accounting) runs serialized, in ascending
  session id.  CPython's GIL would serialize the pure-Python traversal
  anyway, so nothing real is lost — and in exchange the shared
  simulated clock, the shared buffer pool, and the fault injector's RNG
  are consumed in one deterministic order, making the whole service a
  pure function of (sessions, seed, scale, eta, frames, plan),
  independent of worker count;
* **phase 2** (fidelity scoring — read-only math) fans out to a
  :class:`~concurrent.futures.ThreadPoolExecutor` with ``workers``
  threads; the round barrier installs every score before the next
  round, so the results are identical whether 1 or 16 workers ran.

Admission control: at most ``max_active`` sessions run concurrently;
the rest wait in FIFO (session id) order and are admitted as slots
free up.  Overload control: a session whose previous frame exceeded
``frame_budget_ms`` on the *simulated* clock has its next query shed
to the root-LoD degraded answer instead of queueing work unboundedly.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Deque, List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from repro.concurrency.witness import wrap_lock
from repro.errors import WalkthroughError
from repro.obs import names
from repro.obs.metrics import get_registry
from repro.serving.session import ServingSession

if TYPE_CHECKING:
    from repro.serving.prefetch import ServingPrefetcher


class SessionScheduler:
    """Drives N sessions to completion in deterministic rounds.

    The scheduler's own bookkeeping (``rounds``, ``frames_served``,
    admission churn) is guarded by ``_state_lock`` so observers — the
    HTTP stats endpoint, a progress poller — can read a consistent
    snapshot via :meth:`progress` while a round is in flight.  Session
    stepping happens *outside* the lock: the state lock sits at the top
    of the lock lattice and must never be held across pool or file work.
    """

    #: Lattice level of ``_state_lock`` (see repro.concurrency.order):
    #: the outermost level — holding it, only pool/file/registry locks
    #: may be acquired, never another scheduler's.
    LOCK_LEVEL = "serving.scheduler"

    def __init__(self, sessions: Sequence[ServingSession], *,
                 workers: int = 1, max_active: Optional[int] = None,
                 frame_budget_ms: Optional[float] = None,
                 prefetcher: Optional["ServingPrefetcher"] = None) -> None:
        if workers < 1:
            raise WalkthroughError(f"workers must be >= 1, got {workers}")
        if max_active is not None and max_active < 1:
            raise WalkthroughError(
                f"max_active must be >= 1, got {max_active}")
        if frame_budget_ms is not None and frame_budget_ms <= 0:
            raise WalkthroughError(
                f"frame_budget_ms must be > 0, got {frame_budget_ms}")
        self.sessions = sorted(sessions, key=lambda s: s.session_id)
        self.workers = workers
        self.max_active = (max_active if max_active is not None
                           else max(len(self.sessions), 1))
        self.frame_budget_ms = frame_budget_ms
        self.prefetcher = prefetcher
        self._state_lock = wrap_lock(threading.Lock(),
                                     level=SessionScheduler.LOCK_LEVEL,
                                     name="scheduler")
        self.rounds = 0
        self.frames_served = 0

    def run(self) -> None:
        """Serve every session to the end of its path."""
        registry = get_registry()
        m_rounds = registry.counter(names.SERVING_ROUNDS)
        m_frames = registry.counter(names.SERVING_FRAMES)
        m_waits = registry.counter(names.SERVING_ADMISSION_WAITS)
        m_active = registry.gauge(names.SERVING_ACTIVE_SESSIONS)
        waiting: Deque[ServingSession] = deque(self.sessions)
        active: List[ServingSession] = []
        executor = (ThreadPoolExecutor(max_workers=self.workers)
                    if self.workers > 1 else None)
        try:
            while waiting or active:
                with self._state_lock:
                    while waiting and len(active) < self.max_active:
                        active.append(waiting.popleft())
                    for session in waiting:
                        session.admission_wait_rounds += 1
                        m_waits.inc()
                    m_active.set(len(active))
                    self.rounds += 1
                    m_rounds.inc()

                # Phase 1 — serialized query + accounting, id order.
                # Stepping runs outside the state lock: session.step()
                # reaches pool and file locks, and the lattice forbids
                # holding the scheduler lock across blocking work.
                served = 0
                scoring: List[Tuple[ServingSession,
                                    Callable[[], float]]] = []
                for session in active:
                    shed = (self.frame_budget_ms is not None
                            and session.last_frame_ms
                            > self.frame_budget_ms)
                    thunk = session.step(shed_load=shed)
                    served += 1
                    m_frames.inc()
                    if thunk is not None:
                        scoring.append((session, thunk))
                with self._state_lock:
                    self.frames_served += served

                # Phase 2 — parallel fidelity scoring, plus the round's
                # speculative prefetch batch (one internally-serialized
                # task; scoring does no I/O, so interleaving the batch
                # with it cannot change a single report byte).  The
                # round barrier installs every score in session order
                # and waits the batch out before the next phase 1.
                if executor is not None:
                    prefetch_future = (
                        executor.submit(self.prefetcher.issue_round)
                        if self.prefetcher is not None else None)
                    futures = [(session, executor.submit(thunk))
                               for session, thunk in scoring]
                    for session, future in futures:
                        session.install_fidelity(future.result())
                    if prefetch_future is not None:
                        prefetch_future.result()
                else:
                    if self.prefetcher is not None:
                        self.prefetcher.issue_round()
                    for session, thunk in scoring:
                        session.install_fidelity(thunk())

                active = [s for s in active if not s.done]
        finally:
            if executor is not None:
                executor.shutdown(wait=True)
            # The loop exits (or aborts) with no session being served;
            # without this, post-run scrapes and the `repro serve`
            # report would show the last round's count as still active.
            m_active.set(0)

    def progress(self) -> Tuple[int, int]:
        """``(rounds, frames_served)`` as one consistent snapshot.

        Safe to call from any thread while :meth:`run` is in flight.
        """
        with self._state_lock:
            return (self.rounds, self.frames_served)

    def __repr__(self) -> str:
        return (f"SessionScheduler(sessions={len(self.sessions)}, "
                f"workers={self.workers}, max_active={self.max_active}, "
                f"rounds={self.rounds})")
