"""One served walkthrough session, advanced frame by frame.

:class:`ServingSession` mirrors the frame body of
:class:`~repro.walkthrough.visual.VisualSystem` (query on cell change,
delta fetch, frame-time model) but exposes it as a ``step()`` the
scheduler drives one frame at a time, in *two phases*:

* **phase 1 — query + accounting** (``step``): runs serialized by the
  scheduler, in ascending session id.  All I/O, all shared-clock
  charges, and all shared-pool traffic happen here, which is what makes
  the per-session attribution exact and the whole service
  bit-deterministic regardless of worker count.
* **phase 2 — fidelity scoring** (the thunk ``step`` returns): pure
  read-only math over the environment's ground truth, safe to fan out
  to the worker pool.  The score is installed at the round barrier via
  :meth:`install_fidelity`.

Overload shedding: when the scheduler flags that the session's previous
frame blew the frame budget, a frame that would query instead answers
from the root's internal LoD (the PR-3 degradation ladder, invoked
proactively) — cheap, complete, coarse — and the next frame re-queries
at full quality.
"""

from __future__ import annotations

from dataclasses import replace
from functools import partial
from typing import Callable, List, Optional

from typing import TYPE_CHECKING

from repro.core.delta import DeltaSearch
from repro.core.hdov_tree import HDoVEnvironment
from repro.core.search import HDoVSearch, SearchResult

if TYPE_CHECKING:
    from repro.serving.prefetch import ServingPrefetcher
from repro.obs import names
from repro.obs.metrics import get_registry
from repro.storage.buffer import BufferPool
from repro.storage.disk import IOStats
from repro.walkthrough.frame import FrameModel, FrameRecord
from repro.walkthrough.metrics import FidelityMetric
from repro.walkthrough.session import Session


def _accumulate(total: IOStats, delta: IOStats) -> None:
    total.reads += delta.reads
    total.writes += delta.writes
    total.seeks += delta.seeks
    total.back_seeks += delta.back_seeks
    total.forward_seeks += delta.forward_seeks
    total.sequential_reads += delta.sequential_reads
    total.bytes_read += delta.bytes_read
    total.bytes_written += delta.bytes_written
    total.simulated_ms += delta.simulated_ms


class ServingSession:
    """A recorded path replayed one frame per scheduler round.

    Parameters
    ----------
    session_id:
        Stable id; the scheduler serializes phase 1 in ascending order.
    path:
        The recorded waypoint sequence.
    env:
        This session's *view* of the shared environment (private scheme
        flip state, shared files/stats/pool — see ``service.py``).
    pool:
        The shared buffer pool, for per-session hit/miss attribution
        (``None`` when serving unpooled).
    """

    def __init__(self, session_id: int, path: Session,
                 env: HDoVEnvironment, *, eta: float,
                 scheme: Optional[str] = None,
                 pool: Optional[BufferPool] = None,
                 frame_model: Optional[FrameModel] = None,
                 cache_budget_bytes: Optional[int] = None,
                 evaluate_fidelity: bool = True,
                 prefetcher: Optional["ServingPrefetcher"] = None) -> None:
        self.session_id = session_id
        self.path = path
        self.env = env
        self.eta = eta
        self.pool = pool
        self.prefetcher = prefetcher
        self.frame_model = frame_model or FrameModel()
        self.evaluate_fidelity = evaluate_fidelity
        searcher = HDoVSearch(env, scheme, fetch_models=False)
        self.delta = DeltaSearch(searcher,
                                 cache_budget_bytes=cache_budget_bytes)
        self._fidelity = FidelityMetric(env)
        self.frames: List[FrameRecord] = []
        self.next_frame = 0
        self.queries = 0
        self.overload_degraded = 0
        self.admission_wait_rounds = 0
        self.last_frame_ms = 0.0
        #: Per-session I/O attribution, exact: deltas of the shared
        #: stats taken around this session's serialized phase 1.
        self.light_total = IOStats()
        self.heavy_total = IOStats()
        self.pool_hits = 0
        self.pool_misses = 0
        self.pool_coalesced = 0
        self._last_cell: Optional[int] = None
        self._last_result: Optional[SearchResult] = None
        self._last_fidelity = float("nan")
        self._last_degraded = 0

    @property
    def done(self) -> bool:
        return self.next_frame >= self.path.num_frames

    # -- phase 1: query + accounting (serialized) ---------------------------

    def step(self, *, shed_load: bool = False) \
            -> Optional[Callable[[], float]]:
        """Advance one frame; returns the phase-2 scoring thunk, if any.

        Must be called with no other session's phase 1 in flight: the
        shared-clock and shared-pool deltas taken here attribute every
        charge of this frame to this session.
        """
        if self.done:
            return None
        waypoint = self.path.waypoints[self.next_frame]
        position = waypoint.position_array()
        cell_id = self.env.grid.cell_of_point(position)
        snap = self.env.snapshot()
        pool = self.pool
        if pool is not None:
            hits0, misses0 = pool.hits, pool.misses
            coalesced0 = pool.coalesced
        queried = cell_id != self._last_cell or self._last_result is None
        thunk: Optional[Callable[[], float]] = None
        if queried:
            self.queries += 1
            if shed_load and self._last_result is not None:
                # Over budget: answer from the root's internal LoD and
                # force a full re-query next frame.  (The very first
                # frame always runs a full query — there is nothing
                # coarser to show yet.)
                result = self.delta.query_cell_degraded(cell_id, self.eta)
                self.overload_degraded += 1
                get_registry().counter(
                    names.SERVING_OVERLOAD_DEGRADED).inc()
                self._last_cell = None
            else:
                result = self.delta.query_cell(cell_id, self.eta)
                self._last_cell = cell_id
            self._last_result = result
            self._last_degraded = result.degraded
            if self.evaluate_fidelity:
                thunk = partial(self._fidelity.score_hdov, result)
        light, heavy = self.env.delta(snap)
        _accumulate(self.light_total, light)
        _accumulate(self.heavy_total, heavy)
        if pool is not None:
            self.pool_hits += pool.hits - hits0
            self.pool_misses += pool.misses - misses0
            self.pool_coalesced += pool.coalesced - coalesced0
        io_ms = light.simulated_ms + heavy.simulated_ms
        assert self._last_result is not None
        polygons = self._last_result.total_polygons
        if self._last_degraded:
            # Created lazily (and fetched per call, not cached):
            # degradation-free runs register no series, and registry
            # swaps by `repro serve` / `repro profile` stay safe.
            get_registry().counter(names.FRAMES_DEGRADED).inc()
        frame_ms = self.frame_model.frame_ms(io_ms, polygons)
        self.frames.append(FrameRecord(
            frame_index=self.next_frame,
            cell_id=cell_id,
            io_ms=io_ms,
            light_ios=light.total_ios,
            heavy_ios=heavy.total_ios,
            polygons=polygons,
            frame_ms=frame_ms,
            search_ms=io_ms,
            fidelity=self._last_fidelity,
            resident_bytes=(self.delta.resident_bytes
                            + self.delta.search.scheme.resident_bytes()),
            degraded=self._last_degraded,
            back_seeks=light.back_seeks + heavy.back_seeks,
            forward_seeks=light.forward_seeks + heavy.forward_seeks,
        ))
        self.last_frame_ms = frame_ms
        self.next_frame += 1
        if self.prefetcher is not None:
            # Planning only (no I/O): runs after the accounting window
            # closes, so the session's ledger never sees prefetch work.
            self.prefetcher.observe(self.session_id, cell_id, position,
                                    self.delta.search.scheme)
        return thunk

    # -- phase 2 barrier -----------------------------------------------------

    def install_fidelity(self, fidelity: float) -> None:
        """Install a phase-2 score into the frame that produced it."""
        self._last_fidelity = fidelity
        self.frames[-1] = replace(self.frames[-1], fidelity=fidelity)

    # -- reporting ------------------------------------------------------------

    def degraded_frames(self) -> int:
        return sum(1 for f in self.frames if f.degraded > 0)

    def fidelity_mean(self) -> float:
        scored = [f.fidelity for f in self.frames if f.fidelity == f.fidelity]
        return sum(scored) / len(scored) if scored else float("nan")

    def __repr__(self) -> str:
        return (f"ServingSession(id={self.session_id}, "
                f"frame={self.next_frame}/{self.path.num_frames})")
