"""``repro traffic`` — synthetic walkthrough traffic against the app.

Drives hundreds of walkthrough sessions through the HTTP application
(:mod:`repro.serving.http`) in-process, under open-loop Poisson
arrivals on a **virtual clock**:

* arrivals are seeded draws of exponential inter-arrival gaps at the
  configured offered load (sessions/second);
* an admitted session then *self-paces*: after each step, its next
  step is scheduled ``frame_ms`` later on the virtual clock, where
  ``frame_ms`` is the frame's own simulated render+I/O time — so a
  slow frame delays that session's next request, exactly like a real
  client rendering at its achievable rate;
* a ``hot_fraction`` of arrivals replay motion pattern 1 (the same
  recorded path, hence the same cell sequence — the hot cells); the
  rest split evenly between patterns 2 and 3.

Because the clock is virtual and every request is dispatched to
completion before the next event fires, everything in the report's
``traffic``/``deterministic`` sections is a pure function of the
arguments: same seed, byte-identical JSON — the CI traffic job diffs
exactly that.  Wall-clock latency percentiles (measured by the timing
middleware) are published in a separate ``wall_clock`` section and
never gated.  The worker count is echoed in the config block but, as
with ``repro serve``, provably cannot change a deterministic byte:
dispatch is strictly sequential in virtual-time order.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import WalkthroughError
from repro.obs import names
from repro.obs.metrics import MetricsRegistry, get_registry, use_registry
from repro.obs.profile import _environment_files
from repro.serving.http.app import (HttpRequest, WalkthroughApp,
                                    build_service)
from repro.serving.http.stats import latency_summary
from repro.storage.faults import FaultInjector, named_plan

#: Virtual milliseconds between steps when a frame reports a simulated
#: time of zero (nothing re-queried, no I/O): a client still renders at
#: *some* finite rate, and a zero gap would starve every other event at
#: the same timestamp of nothing — it just needs to be positive.
MIN_STEP_GAP_MS = 1.0

#: Event kinds, ordered: at equal virtual time, arrivals admit before
#: already-running sessions step — the deterministic tiebreak.
_ARRIVE = 0
_STEP = 1


def run_traffic(*, sessions: int = 200, seed: int = 0, workers: int = 1,
                scale: str = "small", eta: float = 0.001,
                frames: int = 30, scheme: Optional[str] = None,
                arrival_rate: float = 50.0, hot_fraction: float = 0.5,
                max_active: int = 32,
                frame_budget_ms: Optional[float] = None,
                pool_pages: int = 256, plan: Optional[str] = None,
                fault_seed: int = 0) -> Dict[str, object]:
    """Offer ``sessions`` walkthroughs to the service; returns the report.

    Parameters
    ----------
    sessions:
        Sessions *offered* (arrivals); sheds count against this.
    seed:
        Seeds the arrival process and the hot/pattern draws.
    workers:
        Echoed for symmetry with ``repro serve``; dispatch is strictly
        sequential, so the value never changes a deterministic byte.
    arrival_rate:
        Offered load in sessions per (virtual) second.
    hot_fraction:
        Fraction of arrivals replaying the hot path (pattern 1).
    max_active:
        Admission slots; an arrival past this is shed with a 503.
    frames / eta / scheme / scale / pool_pages:
        As in ``repro serve`` (``frames`` defaults low: traffic wants
        many short sessions, not a few long ones).
    frame_budget_ms:
        Per-frame deadline; over-budget sessions degrade their next
        query (the PR-5 shedding ladder, now driven over HTTP).
    plan / fault_seed:
        Optional named fault plan beneath the storage layer, to prove
        the front-end degrades instead of erroring.
    """
    if sessions < 1:
        raise WalkthroughError(f"sessions must be >= 1, got {sessions}")
    if arrival_rate <= 0:
        raise WalkthroughError(
            f"arrival_rate must be > 0, got {arrival_rate}")
    if not 0.0 <= hot_fraction <= 1.0:
        raise WalkthroughError(
            f"hot_fraction must be in [0, 1], got {hot_fraction}")
    fault_plan = named_plan(plan) if plan is not None else None
    registry = MetricsRegistry()
    with use_registry(registry):
        service = build_service(
            scale=scale, eta=eta, frames=frames, scheme=scheme,
            pool_pages=pool_pages, max_active=max_active,
            frame_budget_ms=frame_budget_ms)
        app = WalkthroughApp(service)
        injector: Optional[FaultInjector] = None
        if fault_plan is not None:
            injector = FaultInjector(fault_plan, seed=fault_seed)
            injector.install(*_environment_files(service.env))
        started = time.perf_counter()
        try:
            outcome = asyncio.run(_drive(app, sessions=sessions,
                                         seed=seed,
                                         arrival_rate=arrival_rate,
                                         hot_fraction=hot_fraction))
        finally:
            if injector is not None:
                injector.uninstall()
        elapsed_s = time.perf_counter() - started

        report: Dict[str, object] = {
            "traffic": {
                "scale": scale,
                "sessions": sessions,
                "workers": workers,
                "seed": seed,
                "eta": eta,
                "frames": frames,
                "scheme": service.scheme,
                "arrival_rate": arrival_rate,
                "hot_fraction": hot_fraction,
                "max_active": max_active,
                "frame_budget_ms": frame_budget_ms,
                "pool_pages": pool_pages,
                "plan": (fault_plan.name if fault_plan is not None
                         else None),
                "fault_seed": (fault_seed if fault_plan is not None
                               else None),
            },
            "deterministic": _deterministic_report(app, outcome,
                                                   registry),
            "wall_clock": {
                # Machine-dependent: reported for operators, never
                # gated, never diffed.
                "elapsed_s": round(elapsed_s, 3),
                "http_latency_ms": app.collector.wall_latency(),
            },
        }
        if injector is not None:
            report["faults"] = {
                "injected": dict(sorted(injector.injected.items())),
                "total_injected": injector.total_injected(),
            }
        return report


class _Outcome:
    """Everything the virtual-clock drive accumulates."""

    def __init__(self) -> None:
        self.offered = 0
        self.admitted = 0
        self.shed = 0
        self.completed = 0
        self.frames_served = 0
        self.hot_sessions = 0
        self.frame_ms: List[float] = []
        self.session_reports: List[Dict[str, object]] = []
        self.end_ms = 0.0
        self.unexpected: Dict[str, int] = {}


async def _drive(app: WalkthroughApp, *, sessions: int, seed: int,
                 arrival_rate: float, hot_fraction: float) -> _Outcome:
    """The event loop: arrivals and self-paced steps in virtual time."""
    rng = np.random.default_rng(seed)
    # All randomness is drawn up front, in one fixed order, so the
    # event loop below is purely mechanical.
    gaps_ms = rng.exponential(1000.0 / arrival_rate, size=sessions)
    arrive_ms = np.cumsum(gaps_ms)
    hot = rng.random(size=sessions) < hot_fraction
    cold_patterns = rng.integers(2, 4, size=sessions)

    m_sessions = get_registry().counter(names.TRAFFIC_SESSIONS)
    m_shed = get_registry().counter(names.TRAFFIC_SESSIONS_SHED)
    m_frames = get_registry().counter(names.TRAFFIC_FRAMES)
    m_requests = get_registry().counter(names.TRAFFIC_REQUESTS)

    outcome = _Outcome()
    events: List[Tuple[float, int, int, int]] = []
    for index in range(sessions):
        heapq.heappush(events,
                       (float(arrive_ms[index]), _ARRIVE, index, index))
    seq = sessions  # Tie-break counter; arrivals already hold 0..n-1.

    async def call(method: str, path: str,
                   body: Optional[Dict[str, object]] = None):
        m_requests.inc()
        return await app.dispatch(HttpRequest(method, path, body))

    while events:
        now_ms, kind, _tiebreak, key = heapq.heappop(events)
        outcome.end_ms = now_ms
        if kind == _ARRIVE:
            outcome.offered += 1
            is_hot = bool(hot[key])
            pattern = 1 if is_hot else int(cold_patterns[key])
            response = await call("POST", "/sessions",
                                  {"pattern": pattern})
            if response.status == 503:
                outcome.shed += 1
                m_shed.inc()
                continue
            if response.status != 201:
                _count_unexpected(outcome, response)
                continue
            outcome.admitted += 1
            outcome.hot_sessions += int(is_hot)
            m_sessions.inc()
            session_id = response.body["id"]
            seq += 1
            heapq.heappush(events, (now_ms, _STEP, seq, session_id))
        else:
            response = await call("POST", f"/sessions/{key}/step")
            if response.status != 200:
                _count_unexpected(outcome, response)
                continue
            body = response.body
            if body.get("stepped"):
                outcome.frames_served += 1
                m_frames.inc()
                outcome.frame_ms.append(float(body["frame_ms"]))
            if body["done"]:
                closed = await call("DELETE", f"/sessions/{key}")
                if closed.status == 200:
                    outcome.completed += 1
                    outcome.session_reports.append(closed.body)
                else:
                    _count_unexpected(outcome, closed)
            else:
                gap = max(float(body["frame_ms"]), MIN_STEP_GAP_MS)
                seq += 1
                heapq.heappush(events, (now_ms + gap, _STEP, seq, key))
    return outcome


def _count_unexpected(outcome: _Outcome, response) -> None:
    key = str(response.status)
    outcome.unexpected[key] = outcome.unexpected.get(key, 0) + 1


def _deterministic_report(app: WalkthroughApp, outcome: _Outcome,
                          registry: MetricsRegistry) -> Dict[str, object]:
    """The machine-independent section: pure function of the inputs."""
    reports = outcome.session_reports
    degraded = sum(int(r["degraded_frames"]) for r in reports)
    overload = sum(int(r["overload_degraded"]) for r in reports)
    queries = sum(int(r["queries"]) for r in reports)
    shed_rate = (outcome.shed / outcome.offered if outcome.offered
                 else 0.0)
    pool = app.service.pool
    pool_block: Optional[Dict[str, object]] = None
    if pool is not None:
        pool_block = {
            "capacity": pool.capacity,
            "hits": pool.hits,
            "misses": pool.misses,
            "coalesced": pool.coalesced,
            "evictions": pool.evictions,
            "hit_rate": pool.hit_rate,
        }
    return {
        "sessions": {
            "offered": outcome.offered,
            "admitted": outcome.admitted,
            "shed": outcome.shed,
            "completed": outcome.completed,
            "hot": outcome.hot_sessions,
            "shed_rate": shed_rate,
            # The bench gate wants higher-is-better.
            "serve_rate": 1.0 - shed_rate,
        },
        "frames": {
            "served": outcome.frames_served,
            "queries": queries,
            "degraded": degraded,
            "overload_degraded": overload,
            "degraded_total": registry.value(names.FRAMES_DEGRADED),
        },
        "requests": {
            "total": app.collector.total_requests,
            "by_route": app.collector.request_counts(),
            "by_status": app.collector.status_counts(),
            "unexpected": dict(sorted(outcome.unexpected.items())),
        },
        # *Simulated* frame latency — virtual-clock, hence exact.
        "sim_frame_ms": latency_summary(outcome.frame_ms),
        "sim_duration_ms": outcome.end_ms,
        "pool": pool_block,
    }
