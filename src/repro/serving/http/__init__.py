"""Network-facing walkthrough service.

The in-process serving layer (PR 5) answers many sessions against one
tree; this subpackage puts a network edge in front of it:

* :mod:`repro.serving.http.app` — the framework-free async application:
  session create/step/close, health and stats endpoints, with every
  state-mutating request serialized so the per-session I/O attribution
  stays exact;
* :mod:`repro.serving.http.middleware` — request tracing + latency
  middleware, the package's *only* timing boundary (lint rule RPR009);
* :mod:`repro.serving.http.stats` — the latency/request stats collector
  with exact nearest-rank percentiles;
* :mod:`repro.serving.http.server` — a stdlib ``asyncio`` HTTP/1.1
  server binding the app to a real socket.

Everything the app computes except wall-clock latency is a pure
function of the request sequence, which is what lets the traffic
harness (:mod:`repro.serving.loadgen`) produce byte-identical
machine-independent reports for a fixed seed.
"""

from repro.serving.http.app import (HttpRequest, HttpResponse,
                                    WalkthroughApp, WalkthroughService,
                                    build_service)
from repro.serving.http.middleware import TimingMiddleware
from repro.serving.http.server import HttpServer
from repro.serving.http.stats import StatsCollector, percentile

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "StatsCollector",
    "TimingMiddleware",
    "WalkthroughApp",
    "WalkthroughService",
    "build_service",
    "percentile",
]
