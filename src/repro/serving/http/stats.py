"""Request/latency statistics for the HTTP front-end.

The collector is deliberately clock-free (lint rule RPR009): the timing
middleware measures and hands finished durations in; this module only
aggregates.  That split keeps the machine-independent surface —
request/error/status counts — cleanly separated from the wall-clock
surface (latency percentiles), which the traffic report publishes but
never gates on.

Percentiles are exact nearest-rank over the recorded samples, not a
streaming sketch: traffic runs record at most a few hundred thousand
samples, and exactness makes same-seed runs byte-identical wherever the
underlying samples are.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

#: The percentiles every latency summary reports.
SUMMARY_PERCENTILES = (50.0, 95.0, 99.0)


def percentile(samples: Sequence[float], q: float) -> float:
    """Exact nearest-rank percentile (``q`` in [0, 100]); 0.0 on empty.

    Nearest-rank always returns an element of ``samples``, so the result
    is deterministic with no interpolation-rounding surprises.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(int(math.ceil(q / 100.0 * len(ordered))), 1)
    return ordered[rank - 1]


def latency_summary(samples: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99 + mean/max of a sample list (zeros when empty)."""
    out = {f"p{int(q)}": percentile(samples, q)
           for q in SUMMARY_PERCENTILES}
    out["mean"] = sum(samples) / len(samples) if samples else 0.0
    out["max"] = max(samples) if samples else 0.0
    return out


@dataclass
class RouteStats:
    """Everything recorded about one route."""

    requests: int = 0
    errors: int = 0
    #: status code -> count (machine-independent).
    by_status: Dict[int, int] = field(default_factory=dict)
    #: wall-clock durations, middleware-measured (machine-dependent).
    wall_ms: List[float] = field(default_factory=list)


class StatsCollector:
    """Per-route request accounting fed by the timing middleware."""

    def __init__(self) -> None:
        self._routes: Dict[str, RouteStats] = {}

    def record(self, route: str, status: int, wall_ms: float) -> None:
        stats = self._routes.setdefault(route, RouteStats())
        stats.requests += 1
        if status >= 500:
            stats.errors += 1
        stats.by_status[status] = stats.by_status.get(status, 0) + 1
        stats.wall_ms.append(wall_ms)

    @property
    def total_requests(self) -> int:
        return sum(s.requests for s in self._routes.values())

    def request_counts(self) -> Dict[str, Dict[str, object]]:
        """Machine-independent view: counts per route, sorted keys."""
        out: Dict[str, Dict[str, object]] = {}
        for route in sorted(self._routes):
            stats = self._routes[route]
            out[route] = {
                "requests": stats.requests,
                "errors": stats.errors,
                "by_status": {str(code): count for code, count
                              in sorted(stats.by_status.items())},
            }
        return out

    def status_counts(self) -> Dict[str, int]:
        """Aggregate status -> count over every route."""
        totals: Dict[int, int] = {}
        for stats in self._routes.values():
            for code, count in stats.by_status.items():
                totals[code] = totals.get(code, 0) + count
        return {str(code): count for code, count in sorted(totals.items())}

    def wall_latency(self) -> Dict[str, Dict[str, float]]:
        """Wall-clock latency summaries per route — report, never gate."""
        return {route: latency_summary(self._routes[route].wall_ms)
                for route in sorted(self._routes)}

    def __repr__(self) -> str:
        return (f"StatsCollector(routes={len(self._routes)}, "
                f"requests={self.total_requests})")
