"""A stdlib ``asyncio`` HTTP/1.1 server binding the app to a socket.

Deliberately minimal — just enough HTTP to serve the walkthrough app to
``curl`` and the socket-path tests: request line, headers,
``Content-Length``-framed JSON bodies, one response per connection
(``Connection: close``).  No chunked encoding, no keep-alive, no TLS;
the load generator talks to the app in-process precisely so none of
that is on the measured path.

A malformed request gets a 400 and the connection is closed; nothing a
client sends can raise out of the reader loop.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from repro.serving.http.app import HttpRequest, HttpResponse, WalkthroughApp

#: Cap on header-section and body size: this is a measurement harness,
#: not an internet-facing proxy, and a bound keeps a bad client from
#: ballooning the reader.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpServer:
    """Serves one :class:`WalkthroughApp` on a local TCP port."""

    def __init__(self, app: WalkthroughApp, *, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the (host, port) bound.

        ``port=0`` asks the kernel for a free port — the tests' default,
        so parallel runs never collide.
        """
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        sockets = self._server.sockets or []
        assert sockets, "server started with no listening socket"
        self.host, self.port = sockets[0].getsockname()[:2]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- connection handling ----------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request, parse_error = await _read_request(reader)
            if request is None:
                response = HttpResponse(
                    400, {"error": parse_error or "malformed request"})
            else:
                response = await self.app.dispatch(request)
            await _write_response(writer, response)
        # A vanished client leaves nobody to answer; dropping the
        # exchange is the handling.
        except (ConnectionError,  # repro: ignore[RPR008]
                asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            # Reset during close teardown: the socket is already gone,
            # which is the goal.
            except ConnectionError:  # repro: ignore[RPR008]
                pass


async def _read_request(reader: asyncio.StreamReader) \
        -> Tuple[Optional[HttpRequest], Optional[str]]:
    """Parse one request; returns (request, None) or (None, why)."""
    try:
        raw_head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.LimitOverrunError:
        return None, "header section too large"
    except asyncio.IncompleteReadError:
        return None, "connection closed before headers completed"
    if len(raw_head) > MAX_HEADER_BYTES:
        return None, "header section too large"
    head = raw_head.decode("latin-1")
    lines = head.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        return None, f"malformed request line: {lines[0]!r}"
    method, target, _version = parts
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            return None, f"malformed header line: {line!r}"
        headers[name.strip().lower()] = value.strip()
    body = None
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        return None, f"bad content-length: {length_text!r}"
    if length < 0 or length > MAX_BODY_BYTES:
        return None, f"bad content-length: {length}"
    if length:
        try:
            payload = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            return None, "connection closed before body completed"
        try:
            body = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return None, f"body is not valid JSON: {exc}"
        if not isinstance(body, dict):
            return None, "body must be a JSON object"
    # Only the path component routes; a query string would silently
    # miss every route, so strip it off explicitly.
    path = target.split("?", 1)[0]
    return HttpRequest(method, path, body=body, headers=headers), None


async def _write_response(writer: asyncio.StreamWriter,
                          response: HttpResponse) -> None:
    payload = json.dumps(response.body, sort_keys=True).encode("utf-8")
    reason = _REASONS.get(response.status, "Unknown")
    head_lines = [f"HTTP/1.1 {response.status} {reason}",
                  "content-type: application/json",
                  f"content-length: {len(payload)}",
                  "connection: close"]
    head_lines.extend(f"{name}: {value}"
                      for name, value in sorted(response.headers.items()))
    head = "\r\n".join(head_lines) + "\r\n\r\n"
    writer.write(head.encode("latin-1") + payload)
    await writer.drain()
