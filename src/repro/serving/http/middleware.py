"""Request tracing + latency middleware — the package's timing boundary.

This is the *only* module under ``repro.serving.http`` that may read a
clock (lint rule RPR009, the front-end twin of RPR004's monotonic-clock
discipline): every handler's wall-clock duration is measured here, once,
and handed to the stats collector and the metrics registry.  Handlers
and the stats collector stay clock-free, so the machine-independent
parts of a traffic report cannot accidentally absorb a timing value.

Each request is also assigned a monotonically increasing request id,
echoed back in the ``x-request-id`` response header and attached to the
span recorded for the request, so a latency outlier in the report can be
traced to one concrete request.
"""

from __future__ import annotations

from time import perf_counter
from typing import Awaitable, Callable, Tuple

from repro.errors import ReproError
from repro.obs import names
from repro.obs.metrics import get_registry
from repro.obs.trace import span
from repro.serving.http.app import HttpRequest, HttpResponse
from repro.serving.http.stats import StatsCollector

#: A router: maps a request to (route label, response).  The label is a
#: template like ``POST /sessions/{id}/step`` so per-route series stay
#: low-cardinality.
Router = Callable[[HttpRequest], Awaitable[Tuple[str, HttpResponse]]]


class TimingMiddleware:
    """Wraps a router with tracing, latency capture and HTTP metrics."""

    def __init__(self, router: Router, collector: StatsCollector) -> None:
        self._router = router
        self.collector = collector
        self._next_request_id = 0

    async def __call__(self, request: HttpRequest) -> HttpResponse:
        self._next_request_id += 1
        request_id = self._next_request_id
        started = perf_counter()
        with span("http.request", method=request.method,
                  path=request.path, request_id=request_id):
            try:
                route, response = await self._router(request)
            except ReproError as exc:
                # Routers map expected failures themselves; anything
                # that still escapes is a server error, reported as
                # such rather than tearing the connection down.
                route = f"{request.method} {request.path}"
                response = HttpResponse(500, {
                    "error": f"{type(exc).__name__}: {exc}"})
        elapsed_ms = (perf_counter() - started) * 1000.0
        self.collector.record(route, response.status, elapsed_ms)
        registry = get_registry()
        registry.counter(names.HTTP_REQUESTS, route=route,
                         status=str(response.status)).inc()
        if response.status >= 500:
            registry.counter(names.HTTP_ERRORS, route=route).inc()
        registry.histogram(names.HTTP_LATENCY_MS,
                           route=route).observe(elapsed_ms)
        response.headers.setdefault("x-request-id", str(request_id))
        return response
