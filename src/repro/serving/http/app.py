"""The walkthrough application: session lifecycle over HTTP semantics.

The app is framework-free: an :class:`HttpRequest` goes in, an
:class:`HttpResponse` comes out, and the stdlib ``asyncio`` server
(:mod:`repro.serving.http.server`) or an in-process caller (the load
generator, the tests) is just transport.  Routes:

=======  ============================  =========================================
method   path                          effect
=======  ============================  =========================================
POST     ``/sessions``                 create a session (``{"pattern": 1..3}``);
                                       503 when the service is at capacity
POST     ``/sessions/{id}/step``       advance one frame; returns the frame
GET      ``/sessions``                 list live sessions
GET      ``/sessions/{id}``            one session's progress
DELETE   ``/sessions/{id}``            close; returns the session report
GET      ``/healthz``                  liveness + degradation status
GET      ``/stats``                    service counters + request stats
GET      ``/metrics``                  the metrics registry, collected
=======  ============================  =========================================

Concurrency model: every state-mutating route (create/step/close) runs
under one ``asyncio`` lock — the HTTP-facing equivalent of the round
scheduler's serialized phase 1.  The shared clock, the shared buffer
pool and the per-session snapshot/delta attribution windows are only
exact when one session steps at a time; the lock buys that exactness,
and CPython would serialize the pure-Python traversal anyway.  Fidelity
scoring runs inline (phase 2 of the scheduler), so a stepped frame's
record is complete when the response leaves.

Everything the app returns except wall-clock latency (measured by the
middleware, reported by ``/stats``) is a pure function of the request
sequence — the property the traffic harness's determinism check rides
on.
"""

from __future__ import annotations

import asyncio
import re
from typing import Dict, List, Optional, Tuple

from repro.core.hdov_tree import HDoVEnvironment
from repro.errors import ReproError, ServiceOverloadedError, WalkthroughError
from repro.obs import names
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.serving.service import session_env, session_report
from repro.serving.session import ServingSession
from repro.storage.buffer import BufferPool
from repro.walkthrough.session import make_session


class HttpRequest:
    """One request: method, path, optional JSON body, headers."""

    def __init__(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None,
                 headers: Optional[Dict[str, str]] = None) -> None:
        self.method = method.upper()
        self.path = path
        self.body = body or {}
        self.headers = headers or {}

    def __repr__(self) -> str:
        return f"HttpRequest({self.method} {self.path})"


class HttpResponse:
    """One response: status, JSON-serializable body, headers."""

    def __init__(self, status: int, body: Dict[str, object],
                 headers: Optional[Dict[str, str]] = None) -> None:
        self.status = status
        self.body = body
        self.headers = headers or {}

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def __repr__(self) -> str:
        return f"HttpResponse({self.status})"


class WalkthroughService:
    """Synchronous session-lifecycle core the async app delegates to.

    Owns the shared environment, the shared buffer pool, and the live
    :class:`~repro.serving.session.ServingSession` table.  Admission
    control mirrors the round scheduler's: at most ``max_active`` live
    sessions; a create beyond that is *shed* (raised as
    :class:`~repro.errors.ServiceOverloadedError`, mapped to 503), not
    queued — a network client retries, a queue would hide the overload
    the traffic report exists to measure.
    """

    def __init__(self, env: HDoVEnvironment, *,
                 pool: Optional[BufferPool] = None,
                 eta: float = 0.001,
                 scheme: Optional[str] = None,
                 frames: int = 30,
                 street_pitch: float = 100.0,
                 max_active: Optional[int] = None,
                 frame_budget_ms: Optional[float] = None,
                 cache_budget_bytes: Optional[int] = None,
                 evaluate_fidelity: bool = False) -> None:
        if frames < 1:
            raise WalkthroughError(f"frames must be >= 1, got {frames}")
        if max_active is not None and max_active < 1:
            raise WalkthroughError(
                f"max_active must be >= 1, got {max_active}")
        if frame_budget_ms is not None and frame_budget_ms <= 0:
            raise WalkthroughError(
                f"frame_budget_ms must be > 0, got {frame_budget_ms}")
        self.env = env
        self.pool = pool
        self.eta = eta
        self.scheme = scheme
        self.frames = frames
        self.street_pitch = street_pitch
        self.max_active = max_active
        self.frame_budget_ms = frame_budget_ms
        self.cache_budget_bytes = cache_budget_bytes
        self.evaluate_fidelity = evaluate_fidelity
        self.sessions: Dict[int, ServingSession] = {}
        self._next_id = 0
        self.sessions_created = 0
        self.sessions_shed = 0
        self.sessions_closed = 0
        self.frames_served = 0

    # -- lifecycle ---------------------------------------------------------

    def create_session(self, pattern: int = 1,
                       frames: Optional[int] = None) -> Dict[str, object]:
        if pattern not in (1, 2, 3):
            raise WalkthroughError(
                f"pattern must be 1, 2 or 3, got {pattern}")
        num_frames = frames if frames is not None else self.frames
        if num_frames < 1:
            raise WalkthroughError(
                f"frames must be >= 1, got {num_frames}")
        if self.max_active is not None and \
                len(self.sessions) >= self.max_active:
            self.sessions_shed += 1
            raise ServiceOverloadedError(
                f"at capacity ({self.max_active} active sessions)")
        path = make_session(pattern, self.env.scene.bounds(),
                            num_frames=num_frames,
                            street_pitch=self.street_pitch)
        view = session_env(self.env, self.pool)
        session_id = self._next_id
        self._next_id += 1
        session = ServingSession(
            session_id, path, view, eta=self.eta, scheme=self.scheme,
            pool=self.pool, cache_budget_bytes=self.cache_budget_bytes,
            evaluate_fidelity=self.evaluate_fidelity)
        self.sessions[session_id] = session
        self.sessions_created += 1
        get_registry().counter(names.SERVING_SESSIONS).inc()
        return {"id": session_id, "pattern": pattern,
                "path": path.name, "frames": num_frames}

    def step_session(self, session_id: int) -> Dict[str, object]:
        session = self._get(session_id)
        if session.done:
            return {"id": session_id, "done": True, "stepped": False,
                    "frames": len(session.frames)}
        shed = (self.frame_budget_ms is not None
                and session.last_frame_ms > self.frame_budget_ms)
        thunk = session.step(shed_load=shed)
        self.frames_served += 1
        get_registry().counter(names.SERVING_FRAMES).inc()
        if thunk is not None:
            # Phase 2 inline: the record is complete when we answer.
            session.install_fidelity(thunk())
        frame = session.frames[-1]
        return {
            "id": session_id,
            "done": session.done,
            "stepped": True,
            "frame_index": frame.frame_index,
            "cell_id": frame.cell_id,
            "frame_ms": frame.frame_ms,
            "io_ms": frame.io_ms,
            "polygons": frame.polygons,
            "degraded": frame.degraded,
            "shed": shed,
        }

    def close_session(self, session_id: int) -> Dict[str, object]:
        session = self._get(session_id)
        del self.sessions[session_id]
        self.sessions_closed += 1
        report = session_report(session, include_frame_times=False)
        report["done"] = session.done
        return report

    def session_status(self, session_id: int) -> Dict[str, object]:
        session = self._get(session_id)
        return {"id": session_id, "path": session.path.name,
                "frames": len(session.frames),
                "total_frames": session.path.num_frames,
                "done": session.done}

    def _get(self, session_id: int) -> ServingSession:
        session = self.sessions.get(session_id)
        if session is None:
            raise WalkthroughError(f"no such session: {session_id}")
        return session

    # -- introspection -----------------------------------------------------

    def health(self) -> Dict[str, object]:
        """``ok`` until the degradation ladder has fired; then
        ``degraded`` — the service keeps answering either way (PR 3's
        promise: faults degrade fidelity, never availability)."""
        registry = get_registry()
        degraded_frames = int(_series_total(registry,
                                            names.FRAMES_DEGRADED))
        corrupt_pages = int(_series_total(registry, names.PAGES_CORRUPT))
        giveups = int(_series_total(registry, names.PAGEIO_GIVEUPS))
        degraded = bool(degraded_frames or corrupt_pages or giveups)
        return {
            "status": "degraded" if degraded else "ok",
            "active_sessions": len(self.sessions),
            "frames_degraded": degraded_frames,
            "pages_corrupt": corrupt_pages,
            "io_giveups": giveups,
        }

    def stats(self) -> Dict[str, object]:
        counts: Dict[str, object] = {
            "sessions_created": self.sessions_created,
            "sessions_shed": self.sessions_shed,
            "sessions_closed": self.sessions_closed,
            "sessions_active": len(self.sessions),
            "frames_served": self.frames_served,
        }
        if self.pool is not None:
            counts["pool"] = {
                "capacity": self.pool.capacity,
                "hits": self.pool.hits,
                "misses": self.pool.misses,
                "coalesced": self.pool.coalesced,
                "evictions": self.pool.evictions,
                "hit_rate": self.pool.hit_rate,
            }
        return counts


def _series_total(registry: MetricsRegistry, name: str) -> float:
    """Sum a counter/gauge over every label set (0.0 when unused)."""
    return sum(instrument.value  # type: ignore[attr-defined]
               for instrument in registry.series(name).values())


_SESSION_PATH = re.compile(r"^/sessions/(\d+)$")
_STEP_PATH = re.compile(r"^/sessions/(\d+)/step$")


class WalkthroughApp:
    """Async front: routing, serialization lock, timing middleware."""

    def __init__(self, service: WalkthroughService) -> None:
        # Imported here, not at module top: middleware imports the
        # request/response types from this module.
        from repro.serving.http.middleware import TimingMiddleware
        from repro.serving.http.stats import StatsCollector

        self.service = service
        self.collector = StatsCollector()
        self._middleware = TimingMiddleware(self._route, self.collector)
        self._lock = asyncio.Lock()

    async def dispatch(self, request: HttpRequest) -> HttpResponse:
        """The single entry point: middleware-wrapped routing."""
        return await self._middleware(request)

    # -- routing -----------------------------------------------------------

    async def _route(self, request: HttpRequest) \
            -> Tuple[str, HttpResponse]:
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            return "GET /healthz", HttpResponse(200, self.service.health())
        if path == "/stats" and method == "GET":
            body = dict(self.service.stats())
            body["http"] = {
                "requests": self.collector.request_counts(),
                "wall_latency_ms": self.collector.wall_latency(),
            }
            return "GET /stats", HttpResponse(200, body)
        if path == "/metrics" and method == "GET":
            return "GET /metrics", HttpResponse(
                200, {"metrics": get_registry().collect()})
        if path == "/sessions" and method == "GET":
            listing: List[Dict[str, object]] = [
                self.service.session_status(sid)
                for sid in sorted(self.service.sessions)]
            return "GET /sessions", HttpResponse(200, {"sessions": listing})
        if path == "/sessions" and method == "POST":
            return await self._create(request)
        step = _STEP_PATH.match(path)
        if step is not None and method == "POST":
            return await self._step(int(step.group(1)))
        single = _SESSION_PATH.match(path)
        if single is not None and method == "GET":
            route = "GET /sessions/{id}"
            return route, self._guard(
                lambda: self.service.session_status(int(single.group(1))))
        if single is not None and method == "DELETE":
            return await self._close(int(single.group(1)))
        return (f"{method} {path}",
                HttpResponse(404, {"error": f"no route: {method} {path}"}))

    async def _create(self, request: HttpRequest) \
            -> Tuple[str, HttpResponse]:
        route = "POST /sessions"
        body = request.body
        pattern = body.get("pattern", 1)
        frames = body.get("frames")
        if not isinstance(pattern, int) or isinstance(pattern, bool):
            return route, HttpResponse(
                400, {"error": f"pattern must be an integer, "
                               f"got {pattern!r}"})
        if frames is not None and (not isinstance(frames, int)
                                   or isinstance(frames, bool)):
            return route, HttpResponse(
                400, {"error": f"frames must be an integer, "
                               f"got {frames!r}"})
        async with self._lock:
            return route, self._guard(
                lambda: self.service.create_session(pattern,
                                                    frames=frames),
                created=True)

    async def _step(self, session_id: int) -> Tuple[str, HttpResponse]:
        async with self._lock:
            return "POST /sessions/{id}/step", self._guard(
                lambda: self.service.step_session(session_id))

    async def _close(self, session_id: int) -> Tuple[str, HttpResponse]:
        async with self._lock:
            return "DELETE /sessions/{id}", self._guard(
                lambda: self.service.close_session(session_id))

    def _guard(self, call, created: bool = False) -> HttpResponse:
        """Run a service call, mapping the error ladder to statuses."""
        try:
            body = call()
        except ServiceOverloadedError as exc:
            return HttpResponse(503, {"error": str(exc), "shed": True})
        except WalkthroughError as exc:
            status = 404 if "no such session" in str(exc) else 400
            return HttpResponse(status, {"error": str(exc)})
        except ReproError as exc:
            return HttpResponse(
                500, {"error": f"{type(exc).__name__}: {exc}"})
        return HttpResponse(201 if created else 200, body)


def build_service(*, scale: str = "small", eta: float = 0.001,
                  frames: Optional[int] = None,
                  scheme: Optional[str] = None,
                  pool_pages: int = 256,
                  max_active: Optional[int] = None,
                  frame_budget_ms: Optional[float] = None,
                  evaluate_fidelity: bool = False) -> WalkthroughService:
    """Build a fresh environment + pool and wrap them in a service.

    Build I/O is reset out of the serving ledger, exactly as
    ``run_serve`` does, so the first session's frames start from zero.
    """
    # Imported here: repro.experiments pulls in every experiment driver,
    # which the library layers must not depend on at import time.
    from repro.core.hdov_tree import build_environment
    from repro.experiments.config import get_scale
    from repro.scene.city import generate_city
    from repro.visibility.cells import CellGrid

    if pool_pages < 0:
        raise WalkthroughError(
            f"pool_pages must be >= 0, got {pool_pages}")
    experiment = get_scale(scale)
    scene = generate_city(experiment.city)
    grid = CellGrid.covering(scene.bounds(), experiment.cell_size)
    env = build_environment(scene, grid, experiment.hdov)
    env.reset_stats()
    pool = (BufferPool(pool_pages, name="http")
            if pool_pages > 0 else None)
    num_frames = (frames if frames is not None
                  else experiment.session_frames)
    return WalkthroughService(
        env, pool=pool, eta=eta, scheme=scheme, frames=num_frames,
        street_pitch=experiment.city.pitch, max_active=max_active,
        frame_budget_ms=frame_budget_ms,
        cache_budget_bytes=experiment.visual_cache_budget_bytes,
        evaluate_fidelity=evaluate_fidelity)
