"""Concurrent multi-session walkthrough serving (PR 5).

The ROADMAP north star is a production-scale service answering many
viewers' walkthroughs against one HDoV-tree.  This package provides the
first rung: N recorded sessions served through one shared, thread-safe
:class:`~repro.storage.buffer.BufferPool`, scheduled in deterministic
rounds with frame-budget admission control, and reported as a JSON
document that is a pure function of the configuration (so CI can diff
two runs byte-for-byte).
"""

from repro.serving.pooled import PooledNodeStore
from repro.serving.scheduler import SessionScheduler
from repro.serving.service import run_serve
from repro.serving.session import ServingSession

__all__ = [
    "PooledNodeStore",
    "ServingSession",
    "SessionScheduler",
    "run_serve",
]
