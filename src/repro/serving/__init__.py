"""Concurrent multi-session walkthrough serving (PRs 5-6).

The ROADMAP north star is a production-scale service answering many
viewers' walkthroughs against one HDoV-tree.  This package provides the
first rungs: N recorded sessions served through one shared, thread-safe
:class:`~repro.storage.buffer.BufferPool`, scheduled in deterministic
rounds with frame-budget admission control (PR 5), plus a network edge
(:mod:`repro.serving.http`) exposing session create/step/close over
HTTP and a Poisson traffic harness (:mod:`repro.serving.loadgen`)
driving it at configurable offered load (PR 6).  Both runners report
JSON whose machine-independent sections are pure functions of the
configuration, so CI can diff two runs byte-for-byte.
"""

from repro.serving.loadgen import run_traffic
from repro.serving.pooled import PooledNodeStore
from repro.serving.prefetch import ServingPrefetcher
from repro.serving.scheduler import SessionScheduler
from repro.serving.service import run_serve
from repro.serving.session import ServingSession

__all__ = [
    "PooledNodeStore",
    "ServingPrefetcher",
    "ServingSession",
    "SessionScheduler",
    "run_serve",
    "run_traffic",
]
