"""Node reads through the shared serving buffer pool.

The paper's single-viewer prototype caches no tree nodes ("None of the
two systems caches the tree nodes in the queries"), but a *service*
amortizes exactly that: many sessions traverse the same upper tree
levels, so the root and its children stay hot in the shared pool and
only one session ever pays each page's disk read (single-flight).

Misses are routed through the sanctioned ``repro.storage.pageio``
facade, so they are retried, attributed to the ``rtree`` component, and
charged to the simulated clock exactly like unpooled node reads.
"""

from __future__ import annotations

from repro.errors import RTreeError
from repro.rtree.persist import NodeStore, PersistedNode
from repro.storage import pageio
from repro.storage.buffer import BufferPool
from repro.storage.pagedfile import PagedFile
from repro.storage.serializer import decode_node


def _rtree_reader(pfile: PagedFile, page_id: int) -> bytes:
    """Buffer-pool miss reader: the sanctioned rtree-component read."""
    return pageio.read_page(pfile, page_id, component="rtree")


class PooledNodeStore(NodeStore):
    """A read view of a :class:`NodeStore` fronted by a shared pool.

    Shares the parent store's paged file and offset directory (the
    tree is immutable at serving time); only ``read_node`` changes —
    it consults the pool first, so a hit costs no disk charge and a
    miss is coalesced with any concurrent faults on the same page.
    """

    def __init__(self, store: NodeStore, pool: BufferPool) -> None:
        super().__init__(store.pfile)
        self.root_page = store.root_page
        self.num_nodes = store.num_nodes
        self.offset_to_page = store.offset_to_page
        self.pool = pool

    def read_node(self, node_offset: int) -> PersistedNode:
        """Fetch and decode a node, through the shared pool."""
        try:
            page_id = self.offset_to_page[node_offset]
        except KeyError:
            raise RTreeError(f"unknown node offset {node_offset}") from None
        data = self.pool.get(self.pfile, page_id, reader=_rtree_reader)
        kind, level, stored_offset, entries = decode_node(data)
        if stored_offset != node_offset:
            raise RTreeError(
                f"node offset mismatch: page says {stored_offset}, "
                f"asked for {node_offset}")
        return PersistedNode(page_id, kind, level, node_offset, entries)
