"""``repro serve`` — the multi-session walkthrough service runner.

Builds a fresh environment against a fresh metrics registry, creates N
sessions (motion patterns drawn from the seed), serves them through one
shared buffer pool under the round scheduler, and emits a JSON-ready
report: per-session frame times and I/O attribution, pool hit rates,
degraded-frame counts, and an exact reconciliation of per-session
accounting against the shared clock.

The report deliberately contains *no wall-clock measurements*:
everything in it is a pure function of (sessions, workers is excluded —
see below, seed, scale, eta, frames, plan), so two runs with the same
arguments must produce byte-identical JSON — the CI serving-stress job
diffs exactly that.  The worker count is echoed in the config block but
provably cannot change any other byte: phase 1 is serialized and phase
2 is order-independent (see ``scheduler.py``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

import numpy as np

from repro.core.hdov_tree import HDoVEnvironment, build_environment
from repro.errors import ReproError, WalkthroughError
from repro.obs import names
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.profile import _environment_files
from repro.scene.city import generate_city
from repro.serving.pooled import PooledNodeStore
from repro.serving.prefetch import ServingPrefetcher
from repro.serving.scheduler import SessionScheduler
from repro.serving.session import ServingSession
from repro.storage.buffer import BufferPool
from repro.storage.disk import IOStats
from repro.storage.faults import FaultInjector, named_plan
from repro.visibility.cells import CellGrid
from repro.walkthrough.metrics import frame_time_stats
from repro.walkthrough.session import make_session

#: Relative tolerance for simulated-ms reconciliation: per-session ms
#: are telescoping float differences of the shared clock, so their sum
#: can drift from the total by rounding ulps (the integer I/O counts
#: must balance exactly).
_MS_RTOL = 1e-9


def session_env(env: HDoVEnvironment,
                 pool: Optional[BufferPool]) -> HDoVEnvironment:
    """A per-session view: private flip state, shared storage.

    Files, stats ledgers, object store, ground truth and blob records
    are shared (by reference) with the parent environment; the scheme
    objects are cloned via ``session_view()`` so each session owns its
    current cell, and node reads go through the shared pool.
    """
    schemes = {}
    for scheme_name, scheme in env.schemes.items():
        view = scheme.session_view()
        view.page_cache = pool
        schemes[scheme_name] = view
    node_store = (PooledNodeStore(env.node_store, pool)
                  if pool is not None else env.node_store)
    return replace(env, schemes=schemes, node_store=node_store)


def _stats_dict(stats: IOStats) -> Dict[str, object]:
    return {
        "reads": stats.reads,
        "writes": stats.writes,
        "seeks": stats.seeks,
        "sequential_reads": stats.sequential_reads,
        "bytes_read": stats.bytes_read,
        "bytes_written": stats.bytes_written,
        "simulated_ms": stats.simulated_ms,
    }


def _ms_close(total: float, parts: float) -> bool:
    scale = max(abs(total), abs(parts), 1.0)
    return abs(total - parts) <= _MS_RTOL * scale


def run_serve(*, sessions: int = 8, workers: int = 4, seed: int = 7,
              scale: str = "small", eta: float = 0.001,
              frames: Optional[int] = None,
              scheme: Optional[str] = None,
              max_active: Optional[int] = None,
              frame_budget_ms: Optional[float] = None,
              pool_pages: int = 256,
              policy: Optional[str] = None,
              prefetch: Optional[bool] = None,
              prefetch_max_vpages: int = 8,
              plan: Optional[str] = None,
              fault_seed: int = 0,
              include_frame_times: bool = True) -> Dict[str, object]:
    """Serve ``sessions`` concurrent walkthroughs; returns the report.

    Parameters
    ----------
    sessions:
        Number of concurrent walkthrough sessions.
    workers:
        Fidelity-scoring worker threads (1 = the inline sequential
        path).  Changes wall-clock only, never a byte of the report.
    seed:
        Draws each session's motion pattern; same seed, same report.
    scale / eta / frames / scheme:
        As in ``repro run`` / ``repro chaos``.
    max_active:
        Admission-control slot count (default: no limit).
    frame_budget_ms:
        Simulated per-frame deadline; a session whose previous frame
        exceeded it degrades its next query to the root internal LoD.
    pool_pages:
        Shared buffer-pool capacity in pages; 0 serves unpooled (every
        session reads straight through ``pageio``, the sequential
        path's exact I/O behaviour).
    policy:
        Pool replacement policy (``"lru"``/``"2q"``); ``None`` takes
        the scale config's ``serving_policy`` (default ``"lru"``, the
        historical behavior, byte for byte).
    prefetch:
        Enable the cross-session predictive pool prefetcher; ``None``
        takes the scale config's ``serving_prefetch`` (default off).
        Requires a pool.
    prefetch_max_vpages:
        V-pages chased per predicted cell per round (see
        ``repro.serving.prefetch``).
    plan / fault_seed:
        Optional named fault plan installed beneath the storage layer,
        to prove the service degrades instead of deadlocking.
    include_frame_times:
        Emit the full per-session ``frame_ms`` series (the CI diff
        wants maximum surface; benchmarks may turn it off).
    """
    # Imported here: repro.experiments pulls in every experiment driver,
    # which the library layers must not depend on at import time.
    from repro.experiments.config import get_scale

    if sessions < 1:
        raise WalkthroughError(f"sessions must be >= 1, got {sessions}")
    if pool_pages < 0:
        raise WalkthroughError(
            f"pool_pages must be >= 0, got {pool_pages}")
    fault_plan = named_plan(plan) if plan is not None else None
    experiment = get_scale(scale)
    effective_policy = (policy if policy is not None
                        else experiment.serving_policy)
    effective_prefetch = (prefetch if prefetch is not None
                          else experiment.serving_prefetch)
    if pool_pages == 0:
        if policy is not None and policy != "lru":
            raise WalkthroughError(
                "replacement policy needs a pool (pool_pages > 0)")
        if effective_prefetch:
            raise WalkthroughError(
                "prefetch needs a pool (pool_pages > 0)")
    registry = MetricsRegistry()
    with use_registry(registry):
        scene = generate_city(experiment.city)
        grid = CellGrid.covering(scene.bounds(), experiment.cell_size)
        env = build_environment(scene, grid, experiment.hdov)
        num_frames = (frames if frames is not None
                      else experiment.session_frames)
        pool = (BufferPool(pool_pages, name="serving",
                           policy=effective_policy)
                if pool_pages > 0 else None)
        prefetcher = (ServingPrefetcher(pool, env,
                                        max_vpages=prefetch_max_vpages)
                      if effective_prefetch and pool is not None else None)

        # Motion patterns are drawn from the seed so a fleet of
        # sessions exercises all three of the paper's patterns.
        rng = np.random.default_rng(seed)
        m_sessions = registry.counter(names.SERVING_SESSIONS)
        served: List[ServingSession] = []
        for session_id in range(sessions):
            pattern = int(rng.integers(1, 4))
            path = make_session(pattern, scene.bounds(),
                                num_frames=num_frames,
                                street_pitch=experiment.city.pitch)
            view = session_env(env, pool)
            served.append(ServingSession(
                session_id, path, view, eta=eta, scheme=scheme,
                pool=pool, prefetcher=prefetcher,
                cache_budget_bytes=experiment.visual_cache_budget_bytes))
            m_sessions.inc()

        # Build I/O stays out of the serving ledger.
        env.reset_stats()

        files = _environment_files(env)
        injector: Optional[FaultInjector] = None
        if fault_plan is not None:
            injector = FaultInjector(fault_plan, seed=fault_seed)
            injector.install(*files)
        scheduler = SessionScheduler(served, workers=workers,
                                     max_active=max_active,
                                     frame_budget_ms=frame_budget_ms,
                                     prefetcher=prefetcher)
        error: Optional[str] = None
        try:
            scheduler.run()
        except ReproError as exc:
            # Only a fault the degradation ladder cannot absorb lands
            # here; the report says so instead of crashing.
            error = f"{type(exc).__name__}: {exc}"
        finally:
            if injector is not None:
                injector.uninstall()

        completed = error is None
        report: Dict[str, object] = {
            "serve": {
                "scale": scale,
                "sessions": sessions,
                "workers": workers,
                "seed": seed,
                "eta": eta,
                "scheme": served[0].delta.search.scheme.name,
                "frames": num_frames,
                "max_active": scheduler.max_active,
                "frame_budget_ms": frame_budget_ms,
                "pool_pages": pool_pages,
                "policy": (pool.policy.name if pool is not None else None),
                "prefetch": bool(prefetcher is not None),
                "plan": fault_plan.name if fault_plan is not None else None,
                "fault_seed": fault_seed if fault_plan is not None else None,
            },
            "outcome": {
                "completed": completed,
                "error": error,
                "rounds": scheduler.rounds,
                "frames_served": scheduler.frames_served,
            },
            "sessions": [session_report(s, include_frame_times)
                         for s in served],
            "pool": _pool_report(pool),
            "prefetch": (prefetcher.report()
                         if prefetcher is not None else None),
            "reconciliation": _reconcile(env, served, pool, prefetcher),
        }
        if injector is not None:
            report["faults"] = {
                "injected": dict(sorted(injector.injected.items())),
                "total_injected": injector.total_injected(),
                "frames_degraded_total":
                    registry.value(names.FRAMES_DEGRADED),
            }
        return report


def session_report(session: ServingSession,
                    include_frame_times: bool) -> Dict[str, object]:
    entry: Dict[str, object] = {
        "id": session.session_id,
        "path": session.path.name,
        "frames": len(session.frames),
        "queries": session.queries,
        "degraded_frames": session.degraded_frames(),
        "overload_degraded": session.overload_degraded,
        "admission_wait_rounds": session.admission_wait_rounds,
        "light": _stats_dict(session.light_total),
        "heavy": _stats_dict(session.heavy_total),
        "pool": {
            "hits": session.pool_hits,
            "misses": session.pool_misses,
            "coalesced": session.pool_coalesced,
        },
        "fidelity_mean": session.fidelity_mean(),
    }
    if session.frames:
        stats = frame_time_stats([f.frame_ms for f in session.frames])
        entry["frame_ms"] = {
            "mean": stats.mean_ms,
            "variance": stats.variance,
            "max": stats.maximum_ms,
        }
    if include_frame_times:
        entry["frame_times"] = [f.frame_ms for f in session.frames]
    return entry


def _pool_report(pool: Optional[BufferPool]) -> Optional[Dict[str, object]]:
    if pool is None:
        return None
    return {
        "capacity": pool.capacity,
        "policy": pool.policy.name,
        "policy_stats": pool.policy.stats(),
        "resident_pages": pool.resident_pages,
        "hits": pool.hits,
        "misses": pool.misses,
        "coalesced": pool.coalesced,
        "evictions": pool.evictions,
        "hit_rate": pool.hit_rate,
        "prefetch": pool.prefetch_stats(),
    }


def _reconcile(env: HDoVEnvironment, served: List[ServingSession],
               pool: Optional[BufferPool],
               prefetcher: Optional[ServingPrefetcher] = None,
               ) -> Dict[str, object]:
    """Per-session attribution must add up to the shared ledgers.

    Integer I/O counts balance exactly (phase 1 is serialized, so the
    snapshot/delta windows partition the shared counters); simulated ms
    balance within float-rounding tolerance.  With prefetch on, the
    speculative batches' charges live in the prefetcher's own ledger —
    never a session's — and are added back here, so the balance stays
    exact instead of leaking the speculation into session attribution.
    """
    sum_light = IOStats()
    sum_heavy = IOStats()
    parts_light = [session.light_total for session in served]
    parts_heavy = [session.heavy_total for session in served]
    if prefetcher is not None:
        parts_light.append(prefetcher.light_total)
        parts_heavy.append(prefetcher.heavy_total)
    for total, parts in ((sum_light, parts_light),
                         (sum_heavy, parts_heavy)):
        for part in parts:
            total.reads += part.reads
            total.writes += part.writes
            total.seeks += part.seeks
            total.sequential_reads += part.sequential_reads
            total.bytes_read += part.bytes_read
            total.bytes_written += part.bytes_written
            total.simulated_ms += part.simulated_ms
    light_ok = (sum_light.reads == env.light_stats.reads
                and sum_light.writes == env.light_stats.writes
                and sum_light.seeks == env.light_stats.seeks
                and sum_light.sequential_reads
                == env.light_stats.sequential_reads
                and sum_light.bytes_read == env.light_stats.bytes_read)
    heavy_ok = (sum_heavy.reads == env.heavy_stats.reads
                and sum_heavy.writes == env.heavy_stats.writes
                and sum_heavy.bytes_read == env.heavy_stats.bytes_read)
    ms_ok = (_ms_close(env.light_stats.simulated_ms,
                       sum_light.simulated_ms)
             and _ms_close(env.heavy_stats.simulated_ms,
                           sum_heavy.simulated_ms))
    result: Dict[str, object] = {
        "light_sessions": _stats_dict(sum_light),
        "light_environment": _stats_dict(env.light_stats),
        "heavy_sessions": _stats_dict(sum_heavy),
        "heavy_environment": _stats_dict(env.heavy_stats),
        "light_ios_balanced": light_ok,
        "heavy_ios_balanced": heavy_ok,
        "simulated_ms_balanced": ms_ok,
    }
    if prefetcher is not None:
        result["prefetch_light"] = _stats_dict(prefetcher.light_total)
        result["prefetch_heavy"] = _stats_dict(prefetcher.heavy_total)
    if pool is not None:
        result["pool_balanced"] = (
            sum(s.pool_hits for s in served) == pool.hits
            and sum(s.pool_misses for s in served) == pool.misses
            and sum(s.pool_coalesced for s in served) == pool.coalesced)
    return result
