"""Reproduction of "HDoV-tree: The Structure, The Storage, The Speed"
(Shou, Huang, Tan — ICDE 2003).

Public API overview
-------------------

Scene construction::

    from repro import CityParams, generate_city, CellGrid

Preprocessing (the paper's Section 5.1 pipeline)::

    from repro import HDoVConfig, build_environment

Queries (Figure 3's traversal, the delta search, baselines)::

    from repro import HDoVSearch, DeltaSearch
    from repro.baselines import NaiveCellList, ReviewSystem

Walkthroughs and metrics::

    from repro.walkthrough import (VisualSystem, ReviewWalkthrough,
                                   make_session, frame_time_stats)

Experiments (one driver per paper table/figure) live in
:mod:`repro.experiments`.
"""

from repro.constants import ETA_GRID, ETA_RANGE, MAXDOV
from repro.core import (DeltaSearch, HDoVConfig, HDoVEnvironment, HDoVSearch,
                        SearchResult, build_environment)
from repro.geometry import AABB, Camera, Frustum, TriangleMesh
from repro.scene import CityParams, Scene, SceneObject, generate_city
from repro.visibility import CellGrid, RayCastDoVEstimator, VisibilityTable

__version__ = "1.0.0"

__all__ = [
    "AABB",
    "Camera",
    "CellGrid",
    "CityParams",
    "DeltaSearch",
    "ETA_GRID",
    "ETA_RANGE",
    "Frustum",
    "HDoVConfig",
    "HDoVEnvironment",
    "HDoVSearch",
    "MAXDOV",
    "RayCastDoVEstimator",
    "Scene",
    "SceneObject",
    "SearchResult",
    "TriangleMesh",
    "VisibilityTable",
    "build_environment",
    "generate_city",
    "__version__",
]
