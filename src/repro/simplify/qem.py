"""Quadric-error-metric mesh simplification (Garland & Heckbert, 1997).

This is the library's faithful stand-in for the *qslim* tool the paper
uses to generate LoDs.  Each vertex accumulates the fundamental quadrics
of its incident planes; edges are contracted in order of minimum quadric
error, with the contraction target placed at the quadric's minimiser when
it is well-conditioned and at the best of {v1, v2, midpoint} otherwise.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.errors import GeometryError
from repro.geometry.mesh import TriangleMesh


def _face_quadric(p0: np.ndarray, p1: np.ndarray, p2: np.ndarray) -> np.ndarray:
    """Fundamental error quadric (4x4) of the plane through a triangle.

    Weighted by triangle area so large faces dominate, which keeps the
    simplified silhouette stable.
    """
    normal = np.cross(p1 - p0, p2 - p0)
    area2 = np.linalg.norm(normal)
    if area2 == 0.0:
        return np.zeros((4, 4))
    normal = normal / area2
    d = -float(np.dot(normal, p0))
    plane = np.append(normal, d)
    return (area2 / 2.0) * np.outer(plane, plane)


def _vertex_error(quadric: np.ndarray, pos: np.ndarray) -> float:
    hom = np.append(pos, 1.0)
    return float(hom @ quadric @ hom)


def _optimal_position(quadric: np.ndarray, v1: np.ndarray,
                      v2: np.ndarray) -> np.ndarray:
    """Position minimising the contraction error."""
    system = quadric.copy()
    system[3, :] = (0.0, 0.0, 0.0, 1.0)
    try:
        if abs(np.linalg.det(system)) > 1e-10:
            solution = np.linalg.solve(system, np.array([0.0, 0.0, 0.0, 1.0]))
            return solution[:3]
    # A singular quadric has no unique minimiser; falling through to the
    # endpoint candidates below IS the handling, not a dropped error.
    except np.linalg.LinAlgError:  # repro: ignore[RPR008]
        pass
    candidates = [v1, v2, (v1 + v2) / 2.0]
    errors = [_vertex_error(quadric, c) for c in candidates]
    return candidates[int(np.argmin(errors))]


def simplify_qem(mesh: TriangleMesh, target_faces: int) -> TriangleMesh:
    """Simplify ``mesh`` down to at most ``target_faces`` triangles.

    The result is compacted (no orphan vertices) and free of degenerate
    faces.  If the mesh already satisfies the target it is returned
    unchanged.
    """
    if target_faces < 1:
        raise GeometryError(f"target_faces must be >= 1, got {target_faces}")
    if mesh.num_faces <= target_faces:
        return mesh

    positions = [v.copy() for v in mesh.vertices]
    faces: List[Tuple[int, int, int]] = [tuple(f) for f in mesh.faces]
    alive_faces: Set[int] = set(range(len(faces)))
    vertex_faces: Dict[int, Set[int]] = {i: set() for i in range(len(positions))}
    for fi, (a, b, c) in enumerate(faces):
        vertex_faces[a].add(fi)
        vertex_faces[b].add(fi)
        vertex_faces[c].add(fi)

    quadrics = [np.zeros((4, 4)) for _ in positions]
    for a, b, c in faces:
        q = _face_quadric(positions[a], positions[b], positions[c])
        quadrics[a] += q
        quadrics[b] += q
        quadrics[c] += q

    # Union-find over vertices so stale heap entries can be detected.
    parent = list(range(len(positions)))

    def find(v: int) -> int:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    def edges_of(fi: int):
        a, b, c = faces[fi]
        yield (min(a, b), max(a, b))
        yield (min(b, c), max(b, c))
        yield (min(a, c), max(a, c))

    def push_edge(heap: list, u: int, w: int, version: Dict[int, int]) -> None:
        q = quadrics[u] + quadrics[w]
        pos = _optimal_position(q, positions[u], positions[w])
        err = _vertex_error(q, pos)
        heapq.heappush(heap, (err, u, w, version[u], version[w],
                              pos.tobytes()))

    version: Dict[int, int] = {i: 0 for i in range(len(positions))}
    heap: list = []
    seen_edges: Set[Tuple[int, int]] = set()
    for fi in alive_faces:
        for edge in edges_of(fi):
            if edge not in seen_edges:
                seen_edges.add(edge)
                push_edge(heap, edge[0], edge[1], version)

    num_alive = len(alive_faces)
    while num_alive > target_faces and heap:
        err, u, w, vu, vw, pos_bytes = heapq.heappop(heap)
        u, w = find(u), find(w)
        if u == w or version[u] != vu or version[w] != vw:
            continue
        new_pos = np.frombuffer(pos_bytes, dtype=np.float64).copy()

        # Contract w into u.
        positions[u] = new_pos
        quadrics[u] = quadrics[u] + quadrics[w]
        parent[w] = u
        version[u] += 1

        # Update incident faces: drop those containing both endpoints.
        moved = vertex_faces[w]
        for fi in list(moved):
            a, b, c = (find(x) for x in faces[fi])
            if len({a, b, c}) < 3:
                if fi in alive_faces:
                    alive_faces.discard(fi)
                    num_alive -= 1
                for vert in {a, b, c}:
                    vertex_faces[vert].discard(fi)
            else:
                vertex_faces[u].add(fi)
        vertex_faces[w] = set()

        # Re-queue the edges around the merged vertex.
        neighbor_set: Set[int] = set()
        for fi in vertex_faces[u]:
            if fi not in alive_faces:
                continue
            for x in faces[fi]:
                x = find(x)
                if x != u:
                    neighbor_set.add(x)
        for x in neighbor_set:
            push_edge(heap, u, x, version)

    # Materialise the surviving faces with contracted indices.
    final_faces = []
    for fi in alive_faces:
        a, b, c = (find(x) for x in faces[fi])
        if len({a, b, c}) == 3:
            final_faces.append((a, b, c))
    if not final_faces:
        # Everything collapsed — return a minimal proxy (one triangle of
        # the original AABB's largest face) rather than an empty mesh.
        box = mesh.aabb()
        lo, hi = box.lo, box.hi
        verts = np.array([lo, (hi[0], lo[1], lo[2]), (lo[0], hi[1], lo[2])])
        return TriangleMesh(verts, np.array([[0, 1, 2]], dtype=np.int64))
    result = TriangleMesh(np.array(positions), np.array(final_faces,
                                                        dtype=np.int64))
    return result.drop_degenerate_faces().compacted()
