"""Mesh simplification substrate.

Replaces the paper's use of the *qslim* binary [Garland & Heckbert 1997]
for LoD generation.  Two simplifiers are provided:

* :func:`repro.simplify.qem.simplify_qem` — quadric error metrics, the
  faithful counterpart of qslim; accurate but O(n log n) with Python
  overhead, used for object LoDs and for small internal LoDs.
* :func:`repro.simplify.clustering.simplify_clustering` — uniform vertex
  clustering; linear-time, used for large aggregated internal LoDs.
"""

from repro.simplify.qem import simplify_qem
from repro.simplify.clustering import simplify_clustering
from repro.simplify.lod_chain import LODChain, build_lod_chain

__all__ = ["simplify_qem", "simplify_clustering", "LODChain",
           "build_lod_chain"]
