"""LoD chains for objects.

Every object stores a chain of LoDs, finest first (paper: "each object
typically has multi-resolution representations called level-of-details").
The chain records both the simplified meshes and their modelled byte
sizes, so the storage layer can allocate blobs per level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.constants import DEFAULT_OBJECT_LOD_LEVELS
from repro.errors import GeometryError
from repro.geometry.mesh import TriangleMesh
from repro.simplify.clustering import simplify_clustering
from repro.simplify.qem import simplify_qem


@dataclass
class LODChain:
    """Multi-resolution representations of one mesh, finest first."""

    levels: List[TriangleMesh]

    def __post_init__(self) -> None:
        if not self.levels:
            raise GeometryError("LoD chain needs at least one level")
        for coarse, fine in zip(self.levels[1:], self.levels[:-1]):
            if coarse.num_faces > fine.num_faces:
                raise GeometryError(
                    "LoD chain must be ordered finest -> coarsest")

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def finest(self) -> TriangleMesh:
        return self.levels[0]

    @property
    def coarsest(self) -> TriangleMesh:
        return self.levels[-1]

    def polygons(self) -> List[int]:
        return [m.num_faces for m in self.levels]

    def byte_sizes(self) -> List[int]:
        return [m.byte_size for m in self.levels]

    def level_for_fraction(self, k: float) -> int:
        """Index of the level selected by blending factor ``k`` in [0, 1].

        ``k = 1`` selects the finest level, ``k = 0`` the coarsest —
        matching equations 5 and 6, which interpolate between
        ``LoD_highest`` and ``LoD_lowest``.
        """
        if not 0.0 <= k <= 1.0:
            raise GeometryError(f"blend factor out of [0, 1]: {k}")
        # Linear mapping onto level indices: k=1 -> 0 (finest),
        # k=0 -> num_levels-1 (coarsest).
        index = round((1.0 - k) * (self.num_levels - 1))
        return int(index)

    def interpolated_polygons(self, k: float) -> int:
        """Polygon count of the blended LoD of equations 5/6.

        The paper blends the highest and lowest LoDs linearly; the polygon
        load of the blend is the same linear combination of counts.
        """
        if not 0.0 <= k <= 1.0:
            raise GeometryError(f"blend factor out of [0, 1]: {k}")
        hi = self.finest.num_faces
        lo = self.coarsest.num_faces
        return int(round(k * hi + (1.0 - k) * lo))


def build_lod_chain(mesh: TriangleMesh,
                    num_levels: int = DEFAULT_OBJECT_LOD_LEVELS,
                    reduction: float = 0.25,
                    method: str = "clustering") -> LODChain:
    """Build a chain of ``num_levels`` LoDs, each ``reduction`` times the
    faces of the previous level (minimum 4 faces).

    ``method`` is ``"qem"`` (faithful, slower) or ``"clustering"`` (fast
    default for bulk scene construction).
    """
    if num_levels < 1:
        raise GeometryError(f"num_levels must be >= 1, got {num_levels}")
    if not 0.0 < reduction < 1.0:
        raise GeometryError(f"reduction must be in (0, 1), got {reduction}")
    simplify = {"qem": simplify_qem, "clustering": simplify_clustering}.get(method)
    if simplify is None:
        raise GeometryError(f"unknown simplification method {method!r}")

    levels = [mesh]
    current = mesh
    for _ in range(num_levels - 1):
        target = max(int(current.num_faces * reduction), 4)
        if target >= current.num_faces:
            levels.append(current)
            continue
        current = simplify(current, target)
        levels.append(current)
    return LODChain(levels)


def chain_from_meshes(meshes: Sequence[TriangleMesh]) -> LODChain:
    """Wrap pre-built meshes (finest first) into a chain."""
    return LODChain(list(meshes))
