"""Uniform vertex-clustering simplification.

Linear-time alternative to QEM: snap every vertex to the center of its
cell in a uniform grid over the mesh AABB, merge coincident vertices, drop
collapsed faces.  Used for the large aggregated meshes that become
internal LoDs — the paper only needs a coarse proxy occupying the same
space, and clustering delivers that at O(n).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GeometryError
from repro.geometry.mesh import TriangleMesh


def simplify_clustering(mesh: TriangleMesh, target_faces: int,
                        max_iterations: int = 8) -> TriangleMesh:
    """Cluster vertices until the face count is at most ``target_faces``.

    The grid resolution is searched geometrically: start from a resolution
    estimated from the face ratio and halve until the target is met.
    Always terminates (resolution 1 collapses the mesh to at most a few
    faces, and an ultimate single-triangle proxy is returned if needed).
    """
    if target_faces < 1:
        raise GeometryError(f"target_faces must be >= 1, got {target_faces}")
    if mesh.num_faces <= target_faces:
        return mesh

    box = mesh.aabb()
    # Faces scale ~ resolution^2 for surface meshes.
    ratio = target_faces / mesh.num_faces
    resolution = max(int(math.sqrt(ratio) * math.sqrt(mesh.num_faces)), 1)

    best = None
    for _ in range(max_iterations):
        candidate = _cluster_once(mesh, box, resolution)
        if candidate.num_faces <= target_faces and candidate.num_faces > 0:
            best = candidate
            break
        resolution = max(resolution // 2, 1)
        best = candidate
        if resolution == 1:
            best = _cluster_once(mesh, box, 1)
            break
    assert best is not None
    if best.num_faces > target_faces or best.num_faces == 0:
        return _triangle_proxy(mesh)
    return best


def _cluster_once(mesh: TriangleMesh, box, resolution: int) -> TriangleMesh:
    extent = np.maximum(box.extent, 1e-12)
    cell = extent / resolution
    idx = np.floor((mesh.vertices - box.lo) / cell).astype(np.int64)
    idx = np.clip(idx, 0, resolution - 1)
    keys = idx[:, 0] * resolution * resolution + idx[:, 1] * resolution + idx[:, 2]
    unique_keys, inverse = np.unique(keys, return_inverse=True)

    # Representative position: mean of the vertices in each cluster.
    sums = np.zeros((len(unique_keys), 3))
    counts = np.zeros(len(unique_keys))
    np.add.at(sums, inverse, mesh.vertices)
    np.add.at(counts, inverse, 1.0)
    new_verts = sums / counts[:, None]

    new_faces = inverse[mesh.faces]
    keep = ((new_faces[:, 0] != new_faces[:, 1])
            & (new_faces[:, 1] != new_faces[:, 2])
            & (new_faces[:, 0] != new_faces[:, 2]))
    new_faces = new_faces[keep]
    # Deduplicate faces that collapsed onto each other (ignore winding).
    if len(new_faces):
        sorted_faces = np.sort(new_faces, axis=1)
        _, first_idx = np.unique(sorted_faces, axis=0, return_index=True)
        new_faces = new_faces[np.sort(first_idx)]
    return TriangleMesh(new_verts, new_faces).compacted()


def _triangle_proxy(mesh: TriangleMesh) -> TriangleMesh:
    """Single-triangle proxy spanning the largest face of the mesh AABB."""
    box = mesh.aabb()
    lo, hi = box.lo, box.hi
    verts = np.array([lo,
                      (hi[0], lo[1], lo[2]),
                      (lo[0], hi[1], hi[2])])
    return TriangleMesh(verts, np.array([[0, 1, 2]], dtype=np.int64))
