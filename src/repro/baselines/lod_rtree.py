"""The LoD-R-tree baseline (Kofler, Gervautz, Gruber [8]).

Section 2 of the paper describes it: an R-tree combined with
multi-resolution data where "the search method converts the
viewing-frustum into a few rectangular query boxes (instead of one
single large query box that bounds the view frustum), and retrieves
only objects within these boxes.  Thus, the structure leads to high
frame rates as long as the user stays within the viewing-frustum.
However, its performance degenerates significantly as the user view
changes."

We reproduce that behaviour: the frustum is decomposed into depth slabs
whose bounding boxes shrink toward the near plane (tight fit, little
waste), objects are fetched at an LoD matched to their slab, and —
crucially — the cached result is keyed to the *view direction*: a turn
beyond ``requery_angle_deg`` invalidates everything, which is exactly
the degeneration the HDoV paper calls out (the turning session makes it
re-fetch constantly, where REVIEW's direction-free box does not).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.constants import BYTES_PER_POLYGON
from repro.core.hdov_tree import HDoVEnvironment
from repro.errors import WalkthroughError
from repro.geometry.aabb import AABB, union_aabbs
from repro.geometry.frustum import Camera
from repro.geometry.vec import as_vec3, normalize


@dataclass
class LodRTreeResult:
    """Answer set and accounting of one LoD-R-tree query."""

    boxes: List[AABB] = field(default_factory=list)
    object_ids: List[int] = field(default_factory=list)
    fetched_ids: List[int] = field(default_factory=list)
    nodes_read: int = 0
    total_polygons: int = 0
    total_model_bytes: int = 0

    @property
    def num_results(self) -> int:
        return len(self.object_ids)


class LodRTreeSystem:
    """Frustum-slab window queries over the shared environment's R-tree.

    Parameters
    ----------
    env:
        Shared environment.
    depth:
        Far limit of the query slabs (how far the system "sees").
    num_slabs:
        Frustum depth slabs; each gets its own query box and LoD: the
        nearest slab fetches the finest level, the farthest the
        coarsest.
    requery_angle_deg:
        View-direction change that invalidates the cached result (the
        view-variance weakness).
    """

    def __init__(self, env: HDoVEnvironment, *, depth: float = 500.0,
                 num_slabs: int = 3, fov_deg: float = 70.0,
                 requery_angle_deg: float = 15.0,
                 requery_distance: float = 25.0,
                 fetch_models: bool = True) -> None:
        if depth <= 0:
            raise WalkthroughError(f"depth must be positive: {depth}")
        if num_slabs < 1:
            raise WalkthroughError(f"num_slabs must be >= 1: {num_slabs}")
        self.env = env
        self.depth = depth
        self.num_slabs = num_slabs
        self.fov_deg = fov_deg
        self.requery_angle = math.radians(requery_angle_deg)
        self.requery_distance = requery_distance
        self.fetch_models = fetch_models
        self._cache: Dict[int, Tuple[float, int]] = {}
        self._last_position: Optional[np.ndarray] = None
        self._last_direction: Optional[np.ndarray] = None
        self._last_result: Optional[LodRTreeResult] = None
        self.queries_issued = 0
        self.cache_hits = 0

    # -- frustum decomposition ---------------------------------------------

    def query_boxes(self, position, direction) -> List[AABB]:
        """Depth-slab boxes covering the view frustum."""
        position = as_vec3(position)
        forward = normalize(direction)
        half_tan = math.tan(math.radians(self.fov_deg) / 2.0)
        boxes: List[AABB] = []
        edges = np.linspace(0.0, self.depth, self.num_slabs + 1)
        # Lateral directions spanning the frustum cross-section.
        up = np.array([0.0, 0.0, 1.0])
        if abs(float(np.dot(forward, up))) > 0.99:
            up = np.array([1.0, 0.0, 0.0])
        right = normalize(np.cross(forward, up))
        true_up = normalize(np.cross(right, forward))
        for near, far in zip(edges[:-1], edges[1:]):
            corners = []
            for dist in (near, far):
                half = half_tan * max(dist, 1e-6)
                center = position + forward * dist
                for su in (-1, 1):
                    for sv in (-1, 1):
                        corners.append(center + right * (su * half)
                                       + true_up * (sv * half))
            boxes.append(AABB.from_points(np.array(corners)))
        return boxes

    def _slab_fraction(self, slab_index: int) -> float:
        """LoD blend for a slab: nearest slab finest (1), farthest
        coarsest (0)."""
        if self.num_slabs == 1:
            return 1.0
        return 1.0 - slab_index / (self.num_slabs - 1)

    # -- queries --------------------------------------------------------------

    def needs_requery(self, position, direction) -> bool:
        if self._last_position is None or self._last_direction is None:
            return True
        moved = float(np.linalg.norm(as_vec3(position)
                                     - self._last_position))
        if moved > self.requery_distance:
            return True
        cos_angle = float(np.clip(np.dot(normalize(direction),
                                         self._last_direction), -1.0, 1.0))
        return math.acos(cos_angle) > self.requery_angle

    def frame(self, position, direction) -> Tuple[LodRTreeResult, bool]:
        """Per-frame entry point with the direction-keyed cache."""
        if self._last_result is not None and \
                not self.needs_requery(position, direction):
            return self._last_result, False
        result = self.query(position, direction)
        return result, True

    def query(self, position, direction) -> LodRTreeResult:
        """Issue the slab queries and fetch new objects."""
        position = as_vec3(position)
        forward = normalize(direction)
        result = LodRTreeResult(boxes=self.query_boxes(position, forward))
        self.queries_issued += 1
        self._last_position = position.copy()
        self._last_direction = forward.copy()

        def on_node(node) -> None:
            if node.node_offset is not None:
                self.env.node_store.read_node(node.node_offset)
            result.nodes_read += 1

        # Assign each object the finest slab that contains it.
        slab_of: Dict[int, int] = {}
        for index, box in enumerate(result.boxes):
            for oid in self.env.tree.window_query(box, on_node=on_node):
                if oid not in slab_of:
                    slab_of[oid] = index
        result.object_ids = sorted(slab_of)

        fetch_order = sorted(
            slab_of, key=lambda o: self.env.object_store
            .ref(self.env.objects[o].blob_id).first_page)
        current: Dict[int, Tuple[float, int]] = {}
        for oid in fetch_order:
            record = self.env.objects[oid]
            fraction = self._slab_fraction(slab_of[oid])
            polygons = record.chain.interpolated_polygons(fraction)
            nbytes = polygons * BYTES_PER_POLYGON
            result.total_polygons += polygons
            result.total_model_bytes += nbytes
            cached = self._cache.get(oid)
            if cached is not None and cached[0] >= fraction:
                self.cache_hits += 1
                current[oid] = cached
                continue
            if self.fetch_models:
                self.env.object_store.fetch_prefix(record.blob_id, nbytes)
            result.fetched_ids.append(oid)
            current[oid] = (fraction, nbytes)
        self._cache = current
        self._last_result = result
        return result

    # -- accounting ------------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        return sum(nbytes for _f, nbytes in self._cache.values())

    def clear_cache(self) -> None:
        self._cache.clear()
        self._last_position = None
        self._last_direction = None
        self._last_result = None

    def __repr__(self) -> str:
        return (f"LodRTreeSystem(depth={self.depth}, "
                f"slabs={self.num_slabs}, queries={self.queries_issued})")
