"""The naive (cell, list-of-objects) baseline (paper, Sections 1, 3, 5.3).

"In our implementation, this scheme accesses the V-pages of visible leaf
nodes only.  Moreover, all the models retrieved by the algorithm are from
the object LoDs."

Each cell therefore stores one page per *visible leaf node*, holding that
node's visible ``(object id, DoV)`` records; a query reads the cell's run
of leaf V-pages sequentially (no tree traversal, no internal nodes) and
fetches every listed object from the object LoDs at the eq.-6 blend —
exactly like the HDoV-tree's leaf retrieval, so the naive method
coincides with HDoV at ``eta = 0`` (the degeneration Figure 7 confirms),
while its light-weight I/O is the floor the HDoV-tree must beat in
Figure 8(b).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.constants import BYTES_PER_POLYGON
from repro.core.hdov_tree import HDoVEnvironment
from repro.errors import HDoVError
from repro.lod.selection import leaf_lod_fraction
from repro.storage import pageio
from repro.storage.pagedfile import PagedFile

#: Record layout: object id (u32) + DoV (f32).
_RECORD = struct.Struct("<If")
#: Page header: record count (u16).
_HEADER = struct.Struct("<H")


@dataclass
class NaiveResult:
    """Answer set and accounting of one naive query."""

    cell_id: int
    objects: List[Tuple[int, float]] = field(default_factory=list)
    #: Leaf V-pages read (the scheme's light-weight I/O).
    list_pages_read: int = 0
    total_polygons: int = 0
    total_model_bytes: int = 0

    @property
    def num_results(self) -> int:
        return len(self.objects)

    def object_ids(self) -> List[int]:
        return sorted(oid for oid, _ in self.objects)


class NaiveCellList:
    """Per-cell visible-leaf-V-page lists over the shared environment.

    Reuses the environment's visibility table, object records, object
    store and light/heavy stats, so naive and HDoV queries are charged by
    the same simulated disk.
    """

    def __init__(self, env: HDoVEnvironment, *,
                 fetch_models: bool = True) -> None:
        self.env = env
        self.fetch_models = fetch_models
        disk = env.config.disk()
        # The lists are light-weight data, like V-pages.
        self.list_file = PagedFile("naive-lists",
                                   page_size=env.config.page_size,
                                   disk=disk, stats=env.light_stats)
        #: cell id -> (first page, page count)
        self._directory: Dict[int, Tuple[int, int]] = {}
        self._build()

    def _build(self) -> None:
        # Visible objects grouped by their leaf node, in DFS (offset)
        # order — one page per visible leaf node, stored contiguously per
        # cell so a query is one sequential run.
        leaf_members: List[List[int]] = []
        for leaf in self.env.tree.iter_leaves():
            leaf_members.append([e.object_id for e in leaf.entries])
        for cell in self.env.visibility.cells():
            pages: List[bytes] = []
            for members in leaf_members:
                records = [(oid, cell.dov[oid]) for oid in members
                           if oid in cell.dov]
                if not records:
                    continue
                payload = _HEADER.pack(len(records)) + b"".join(
                    _RECORD.pack(oid, dov) for oid, dov in records)
                if len(payload) > self.list_file.page_size:
                    raise HDoVError("naive leaf page overflow")
                pages.append(payload)
            first = self.list_file.allocate_many(max(len(pages), 1))
            for i, payload in enumerate(pages):
                pageio.write_page(self.list_file, first + i, payload,
                                  component="baselines")
            self._directory[cell.cell_id] = (first, max(len(pages), 1)
                                             if pages else 1)
            if not pages:
                self._directory[cell.cell_id] = (first, 1)
        # Building is preprocessing; do not let it pollute measurements.
        self.env.reset_stats()

    # -- queries -----------------------------------------------------------

    def query_point(self, point) -> NaiveResult:
        return self.query_cell(self.env.grid.cell_of_point(point))

    def query_cell(self, cell_id: int) -> NaiveResult:
        entry = self._directory.get(cell_id)
        if entry is None:
            raise HDoVError(f"cell {cell_id} out of range")
        first, num_pages = entry
        data = pageio.read_run(self.list_file, first, num_pages,
                               component="baselines")
        result = NaiveResult(cell_id=cell_id, list_pages_read=num_pages)
        page_size = self.list_file.page_size
        for page_index in range(num_pages):
            base = page_index * page_size
            (count,) = _HEADER.unpack_from(data, base)
            offset = base + _HEADER.size
            for _ in range(count):
                oid, dov = _RECORD.unpack_from(data, offset)
                offset += _RECORD.size
                result.objects.append((oid, dov))
                record = self.env.objects[oid]
                k = leaf_lod_fraction(dov)
                polygons = record.chain.interpolated_polygons(k)
                nbytes = polygons * BYTES_PER_POLYGON
                result.total_polygons += polygons
                result.total_model_bytes += nbytes
                if self.fetch_models:
                    self.env.object_store.fetch_prefix(record.blob_id, nbytes)
        return result

    def reset_io_head(self) -> None:
        self.list_file.reset_head()
