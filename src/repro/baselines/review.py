"""The REVIEW baseline — R-tree window-query walkthrough (paper [12]).

REVIEW indexes objects with an R-tree and, per frame, issues a spatial
window query (a box of configurable side length around the viewpoint)
rather than a visibility query.  Its two problems, which the paper's
Section 2 and experiments call out, emerge naturally here:

* objects *outside* the query box are missed even when visible
  ("shortsightedness", Figure 11);
* objects *inside* the box are fetched even when completely hidden,
  wasting I/O and memory.

REVIEW's optimizations are reproduced: the *complement search* (only
newly-overlapping objects are fetched on viewpoint movement) and the
distance-based semantic cache replacement.  LoD selection is the static
distance policy the paper's introduction describes (nearer objects in
finer detail), since REVIEW has no DoV data to drive eq. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import BYTES_PER_POLYGON
from repro.core.hdov_tree import HDoVEnvironment
from repro.errors import WalkthroughError
from repro.geometry.aabb import AABB
from repro.geometry.vec import as_vec3


@dataclass(frozen=True)
class DistanceLODPolicy:
    """Static distance-based LoD selection.

    ``thresholds[i]`` is the maximum distance at which chain level ``i``
    (finest = 0) is used; beyond the last threshold the coarsest level is
    used.  This is the "ad-hoc and static" decision the paper's
    introduction criticises.
    """

    thresholds: Sequence[float] = (100.0, 250.0, 500.0)

    def fraction_for_distance(self, distance: float) -> float:
        """Blend fraction (1 = finest) for an object at ``distance``."""
        if distance < 0:
            raise WalkthroughError(f"negative distance: {distance}")
        num_levels = len(self.thresholds) + 1
        level = num_levels - 1
        for i, threshold in enumerate(self.thresholds):
            if distance <= threshold:
                level = i
                break
        if num_levels == 1:
            return 1.0
        return 1.0 - level / (num_levels - 1)


@dataclass
class ReviewResult:
    """Answer set and accounting of one REVIEW query."""

    query_box: AABB
    object_ids: List[int] = field(default_factory=list)
    #: ids fetched this query (not served from cache).
    fetched_ids: List[int] = field(default_factory=list)
    nodes_read: int = 0
    total_polygons: int = 0
    total_model_bytes: int = 0

    @property
    def num_results(self) -> int:
        return len(self.object_ids)


class ReviewSystem:
    """Window-query walkthrough over the shared environment's R-tree.

    Parameters
    ----------
    env:
        Shared environment (tree, node store, object store, stats).
    box_size:
        Side length of the cubic query box centered at the viewpoint
        (the paper evaluates 200 m and 400 m).
    cache_budget_bytes:
        Semantic cache capacity.  ``None`` means unbounded (the paper's
        runs keep everything until it leaves the box).
    """

    def __init__(self, env: HDoVEnvironment, *, box_size: float = 400.0,
                 lod_policy: Optional[DistanceLODPolicy] = None,
                 cache_budget_bytes: Optional[int] = None,
                 fetch_models: bool = True,
                 requery_fraction: float = 0.25) -> None:
        if box_size <= 0:
            raise WalkthroughError(f"box_size must be positive, got {box_size}")
        if not 0.0 <= requery_fraction <= 1.0:
            raise WalkthroughError(
                f"requery_fraction must be in [0, 1], got {requery_fraction}")
        self.env = env
        self.box_size = box_size
        self.lod_policy = lod_policy or DistanceLODPolicy()
        self.cache_budget_bytes = cache_budget_bytes
        self.fetch_models = fetch_models
        #: Fraction of the box half-size the viewpoint may drift from the
        #: last query center before a new window query is issued.  REVIEW
        #: oversizes its query boxes relative to the frustum exactly so
        #: that most frames need no database query — the occasional
        #: re-query is what produces the tall frame-time spikes of
        #: Figure 10(a).
        self.requery_fraction = requery_fraction
        #: object id -> (fraction, bytes) of the cached representation.
        self._cache: Dict[int, Tuple[float, int]] = {}
        self._last_query_center: Optional[np.ndarray] = None
        self._last_result: Optional["ReviewResult"] = None
        self.fetches = 0
        self.cache_hits = 0
        self.queries_issued = 0

    # -- queries ----------------------------------------------------------

    def query_box_at(self, viewpoint) -> AABB:
        p = as_vec3(viewpoint)
        half = self.box_size / 2.0
        return AABB(p - half, p + half)

    def needs_requery(self, viewpoint) -> bool:
        """True when the viewpoint has drifted far enough from the last
        query center that the cached result no longer covers the view."""
        if self._last_query_center is None:
            return True
        drift = float(np.linalg.norm(as_vec3(viewpoint)
                                     - self._last_query_center))
        return drift > self.requery_fraction * (self.box_size / 2.0)

    def frame(self, viewpoint) -> Tuple["ReviewResult", bool]:
        """Per-frame entry point: re-query only past the slack distance.

        Returns ``(result, queried)``; on non-query frames the cached
        result is returned and no I/O is charged.
        """
        viewpoint = as_vec3(viewpoint)
        if self._last_result is not None and not self.needs_requery(viewpoint):
            return self._last_result, False
        result = self.query(viewpoint)
        return result, True

    def query(self, viewpoint) -> ReviewResult:
        """One window query with complement search against the cache."""
        viewpoint = as_vec3(viewpoint)
        box = self.query_box_at(viewpoint)
        result = ReviewResult(query_box=box)
        self.queries_issued += 1
        self._last_query_center = viewpoint.copy()

        def on_node(node) -> None:
            # Charge the node page read through the persisted store.
            if node.node_offset is not None:
                self.env.node_store.read_node(node.node_offset)
            result.nodes_read += 1

        ids = self.env.tree.window_query(box, on_node=on_node)
        result.object_ids = sorted(ids)

        # Fetch in blob-layout order so REVIEW rides the disk read-ahead
        # exactly like VISUAL does (its own prefetch optimization [12]).
        fetch_order = sorted(
            ids, key=lambda o: self.env.object_store
            .ref(self.env.objects[o].blob_id).first_page)
        current: Dict[int, Tuple[float, int]] = {}
        for oid in fetch_order:
            record = self.env.objects[oid]
            distance = record.chain.finest.aabb().min_distance_to_point(
                viewpoint)
            fraction = self.lod_policy.fraction_for_distance(distance)
            polygons = record.chain.interpolated_polygons(fraction)
            nbytes = polygons * BYTES_PER_POLYGON
            result.total_polygons += polygons
            result.total_model_bytes += nbytes
            cached = self._cache.get(oid)
            if cached is not None and cached[0] >= fraction:
                # Complement search: retrieved before, skip the fetch.
                self.cache_hits += 1
                current[oid] = cached
                continue
            if self.fetch_models:
                self.env.object_store.fetch_prefix(record.blob_id, nbytes)
            self.fetches += 1
            result.fetched_ids.append(oid)
            current[oid] = (fraction, nbytes)

        self._cache = current
        self._apply_budget(viewpoint)
        self._last_result = result
        return result

    def _apply_budget(self, viewpoint) -> None:
        """Semantic replacement: evict the objects farthest from the
        viewer until the cache fits the budget."""
        if self.cache_budget_bytes is None:
            return
        total = self.resident_bytes
        if total <= self.cache_budget_bytes:
            return
        by_distance = sorted(
            self._cache.items(),
            key=lambda item: self.env.objects[item[0]].chain.finest.aabb()
            .min_distance_to_point(viewpoint),
            reverse=True)
        for oid, (_fraction, nbytes) in by_distance:
            if total <= self.cache_budget_bytes:
                break
            del self._cache[oid]
            total -= nbytes

    # -- accounting --------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        return sum(nbytes for _f, nbytes in self._cache.values())

    @property
    def resident_count(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        self._cache.clear()
        self._last_query_center = None
        self._last_result = None

    def __repr__(self) -> str:
        return (f"ReviewSystem(box={self.box_size}, "
                f"resident={self.resident_count}, fetches={self.fetches})")
