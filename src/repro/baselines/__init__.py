"""Comparator systems the paper evaluates against.

* :mod:`repro.baselines.naive` — the (cell, list-of-objects) method:
  per-cell visible-object lists, object LoDs only.
* :mod:`repro.baselines.review` — the REVIEW walkthrough system
  (VLDB'01): R-tree window queries with complement search and a
  distance-based cache.
* :mod:`repro.baselines.lod_rtree` — the LoD-R-tree [8]: frustum-slab
  query boxes with static per-slab LoDs; fast inside the frustum,
  degenerates on view changes.
"""

from repro.baselines.naive import NaiveCellList, NaiveResult
from repro.baselines.review import ReviewSystem, ReviewResult
from repro.baselines.lod_rtree import LodRTreeSystem, LodRTreeResult

__all__ = ["NaiveCellList", "NaiveResult", "ReviewSystem", "ReviewResult",
           "LodRTreeSystem", "LodRTreeResult"]
