"""V-page data model and bottom-up instantiation.

A V-page holds the view-variant data of one tree node in one cell: a
``(DoV, NVO)`` pair per node entry (paper, Section 4.1: "The V-page
contains V-entries, one for each entry in a tree node").

:func:`instantiate_cell` computes all V-pages of one cell from the
per-object DoVs, applying the aggregation rules of Section 3.2:

* a leaf entry's DoV is its object's DoV; NVO is 1 if visible else 0;
* an internal entry's DoV is the sum of the DoVs in the child node it
  points to (attribute 2), and its NVO is the count of visible leaf
  descendants;
* only *visible* nodes (some entry DoV > 0) get a V-page.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import HDoVError
from repro.rtree.node import Node
from repro.rtree.tree import RTree
from repro.visibility.dov import CellVisibility, aggregate_upward

#: One V-entry: (DoV, NVO).
VEntry = Tuple[float, int]


@dataclass
class CellVPages:
    """All V-pages of one cell, keyed by node offset.

    Nodes absent from ``pages`` are invisible in the cell.
    """

    cell_id: int
    pages: Dict[int, List[VEntry]]

    @property
    def num_visible_nodes(self) -> int:
        return len(self.pages)

    def ventries(self, node_offset: int) -> List[VEntry]:
        try:
            return self.pages[node_offset]
        except KeyError:
            raise HDoVError(
                f"node {node_offset} is not visible in cell {self.cell_id}"
            ) from None

    def is_visible(self, node_offset: int) -> bool:
        return node_offset in self.pages

    def visible_offsets_dfs(self) -> List[int]:
        """Visible node offsets in DFS order (offsets *are* DFS indices,
        so this is just the sorted key list) — the on-disk V-page order of
        the vertical schemes."""
        return sorted(self.pages)


def instantiate_cell(tree: RTree, visibility: CellVisibility) -> CellVPages:
    """Compute the cell's V-pages bottom-up over the in-memory tree."""
    pages: Dict[int, List[VEntry]] = {}
    _instantiate_node(tree.root, visibility, pages)
    return CellVPages(cell_id=visibility.cell_id, pages=pages)


def _instantiate_node(node: Node, visibility: CellVisibility,
                      pages: Dict[int, List[VEntry]]) -> Tuple[float, int]:
    """Recursive helper: returns (sum of entry DoVs, visible object count)
    of ``node`` and records its V-page if visible."""
    if node.node_offset is None:
        raise HDoVError("node offsets unassigned; persist the tree first")
    ventries: List[VEntry] = []
    if node.is_leaf:
        for entry in node.entries:
            dov = visibility.get(entry.object_id)  # type: ignore[arg-type]
            ventries.append((dov, 1 if dov > 0.0 else 0))
    else:
        for entry in node.entries:
            child_sum, child_nvo = _instantiate_node(
                entry.child, visibility, pages)  # type: ignore[arg-type]
            ventries.append((aggregate_upward([child_sum]), child_nvo))
    total_dov = min(sum(d for d, _ in ventries), 1.0)
    total_nvo = sum(n for _, n in ventries)
    if any(d > 0.0 for d, _ in ventries):
        pages[node.node_offset] = ventries
    return total_dov, total_nvo


def check_vpage_invariants(tree: RTree, cell: CellVPages) -> None:
    """Raise :class:`HDoVError` on a violation of Section 3.2's attributes.

    1. every DoV >= 0;
    2. an internal entry's DoV equals the (clamped) sum of the child
       node's entry DoVs;
    3. a visible node has at least one visible child/object.
    """
    for node in tree.iter_nodes_dfs():
        if node.node_offset is None or not cell.is_visible(node.node_offset):
            continue
        ventries = cell.ventries(node.node_offset)
        if len(ventries) != node.num_entries:
            raise HDoVError("V-page entry count mismatch")
        if not any(d > 0.0 for d, _ in ventries):
            raise HDoVError("visible node with no visible entry")
        for entry, (dov, nvo) in zip(node.entries, ventries):
            if dov < 0.0:
                raise HDoVError(f"negative DoV {dov}")
            if entry.child is not None and dov > 0.0:
                child_offset = entry.child.node_offset
                if child_offset is None or not cell.is_visible(child_offset):
                    raise HDoVError(
                        "visible internal entry points to invisible node")
                child_entries = cell.ventries(child_offset)
                child_sum = min(sum(d for d, _ in child_entries), 1.0)
                if abs(child_sum - dov) > 1e-9:
                    raise HDoVError(
                        f"DoV aggregation mismatch: entry={dov}, "
                        f"child sum={child_sum}")
                child_nvo = sum(n for _, n in child_entries)
                if child_nvo != nvo:
                    raise HDoVError(
                        f"NVO aggregation mismatch: entry={nvo}, "
                        f"child sum={child_nvo}")
