"""V-page file compaction.

Incremental updates (:mod:`repro.core.update`) append fresh segments
and V-pages, leaving the old ones as garbage.  Compaction rewrites the
indexed-vertical scheme's files with only the live data, restoring the
DFS-ordered per-cell layout the scheme's sequential-scan property
depends on.  The analogue of a database's vacuum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hdov_tree import HDoVEnvironment
from repro.core.schemes.indexed_vertical import IndexedVerticalScheme
from repro.errors import HDoVError
from repro.storage.pagedfile import PagedFile


@dataclass(frozen=True)
class CompactionReport:
    """Before/after byte sizes of one compaction run."""

    vpage_bytes_before: int
    vpage_bytes_after: int
    index_bytes_before: int
    index_bytes_after: int

    @property
    def reclaimed_bytes(self) -> int:
        return ((self.vpage_bytes_before - self.vpage_bytes_after)
                + (self.index_bytes_before - self.index_bytes_after))

    @property
    def garbage_fraction(self) -> float:
        before = self.vpage_bytes_before + self.index_bytes_before
        if before == 0:
            return 0.0
        return self.reclaimed_bytes / before


def compact_indexed_vertical(env: HDoVEnvironment, *,
                             scheme_name: str = "indexed-vertical"
                             ) -> CompactionReport:
    """Rewrite the scheme's files from the environment's live V-page
    data, replacing the scheme's backing files in place.

    The environment's ``cell_vpages`` are authoritative (the update path
    keeps them current), so compaction is a clean rebuild of the layout
    rather than a file-level garbage walk.
    """
    scheme = env.scheme(scheme_name)
    if not isinstance(scheme, IndexedVerticalScheme):
        raise HDoVError(
            f"compaction supports the indexed-vertical scheme, "
            f"got {scheme.name!r}")

    before_vpage = scheme.vpage_file.byte_size
    before_index = (scheme.index_file.byte_size
                    if scheme.index_file is not None else 0)

    disk = env.config.disk()
    new_scheme = IndexedVerticalScheme(
        PagedFile(f"vpages-{scheme_name}-compact",
                  page_size=env.config.page_size, disk=disk,
                  stats=env.light_stats),
        PagedFile(f"vindex-{scheme_name}-compact",
                  page_size=env.config.page_size, disk=disk,
                  stats=env.light_stats))
    new_scheme.build(env.node_store.num_nodes, env.cell_vpages)
    current = scheme.current_cell
    env.schemes[scheme_name] = new_scheme
    if current is not None:
        new_scheme.flip_to_cell(current)

    return CompactionReport(
        vpage_bytes_before=before_vpage,
        vpage_bytes_after=new_scheme.vpage_file.byte_size,
        index_bytes_before=before_index,
        index_bytes_after=new_scheme.index_file.byte_size,
    )
