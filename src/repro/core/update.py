"""Incremental updates to a built HDoV environment.

The paper's environments are static — visibility is precomputed once.
A dynamic virtual environment (objects removed at runtime: a demolished
building, a despawned model) needs the preprocessing to update
incrementally rather than rebuild.  This module implements object
removal over the indexed-vertical scheme:

1. the object's leaf entry is dropped from the in-memory tree and the
   affected node pages are rewritten;
2. every cell that could *see* the object gets its DoV recomputed (the
   removal can only reveal previously-occluded objects in those cells,
   so other cells are untouched — a conservative and exact bound,
   because a cell where the object was invisible has no ray whose
   nearest hit was the object);
3. the affected cells' V-pages are re-instantiated and appended to the
   V-page file, and the per-cell directory entries are repointed (the
   old pages become garbage, reclaimable by compaction).

The search layer needs no change: queries against updated cells read
the new segments transparently.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.hdov_tree import HDoVEnvironment
from repro.core.schemes.indexed_vertical import IndexedVerticalScheme
from repro.core.vpage import CellVPages, instantiate_cell
from repro.errors import HDoVError
from repro.rtree.delete import delete as rtree_delete
from repro.visibility.cells import CellGrid
from repro.visibility.dov import CellVisibility
from repro.visibility.raycast import RayCastDoVEstimator


def affected_cells(env: HDoVEnvironment, object_id: int) -> List[int]:
    """Cells whose visibility can change when ``object_id`` disappears:
    exactly those where it was visible (DoV > 0)."""
    return [cell_id for cell_id in env.grid.cell_ids()
            if env.visibility.cell(cell_id).get(object_id) > 0.0]


def remove_object(env: HDoVEnvironment, object_id: int, *,
                  scheme_name: str = "indexed-vertical",
                  estimator: Optional[RayCastDoVEstimator] = None
                  ) -> List[int]:
    """Remove an object from a built environment, updating the tree,
    the visibility table, and the storage scheme in place.

    Returns the list of cells whose visibility data was recomputed.
    Only the indexed-vertical scheme supports in-place updates (its
    per-cell segments are variable-length and directory-addressed);
    other schemes raise.
    """
    record = env.objects.get(object_id)
    if record is None:
        raise HDoVError(f"unknown object id {object_id}")
    scheme = env.scheme(scheme_name)
    if not isinstance(scheme, IndexedVerticalScheme):
        raise HDoVError(
            f"incremental updates need the indexed-vertical scheme, "
            f"got {scheme.name!r}")

    cells_to_update = affected_cells(env, object_id)

    # 1. Structural removal.
    mbr = record.chain.finest.aabb()
    if not rtree_delete(env.tree, mbr, object_id):
        # The MBR stored in the chain must match the inserted one.
        raise HDoVError(f"object {object_id} not found in the tree")
    _reassign_offsets_and_rewrite(env)
    del env.objects[object_id]
    remaining = [obj for obj in env.scene if obj.object_id != object_id]
    # Scene container is append-only; build a filtered view for the
    # estimator (env.scene itself stays authoritative for history).
    if estimator is None:
        import numpy as np
        from repro.geometry.aabb import pack_aabbs
        boxes = pack_aabbs([o.lods.finest.aabb() for o in remaining])
        estimator = RayCastDoVEstimator(
            boxes, object_ids=[o.object_id for o in remaining],
            resolution=env.config.dov_resolution)

    # 2. Recompute visibility for affected cells only.
    for cell_id in cells_to_update:
        viewpoints = env.grid.sample_viewpoints(
            cell_id, samples=env.config.samples_per_cell)
        dov = estimator.dov_from_region(viewpoints)
        cell = CellVisibility(cell_id)
        for oid, value in dov.items():
            cell.set(oid, value)
        env.visibility.put(cell)

    # 3. Re-instantiate V-pages for every cell (offsets changed tree-
    # wide after the rewrite) but only *write* the affected segments;
    # unaffected cells keep their old pages, which remain valid because
    # their visible sets are unchanged — their node offsets, however,
    # may have shifted, so all segments are rewritten when any node
    # offset moved.
    offsets_moved = True     # conservative: the DFS rewrite renumbers
    update_ids: Set[int] = (set(env.grid.cell_ids()) if offsets_moved
                            else set(cells_to_update))
    new_cell_vpages = []
    for cell_id in env.grid.cell_ids():
        cell_vp = instantiate_cell(env.tree, env.visibility.cell(cell_id))
        new_cell_vpages.append(cell_vp)
    env.cell_vpages = new_cell_vpages
    scheme.num_nodes = env.node_store.num_nodes
    for cell_id in sorted(update_ids):
        _rewrite_segment(scheme, new_cell_vpages[cell_id])
    if scheme.current_cell is not None:
        # Force a reload of the (possibly rewritten) current segment.
        reload_cell = scheme.current_cell
        scheme.current_cell = None
        scheme.drop_prefetches()
        scheme.flip_to_cell(reload_cell)

    # 4. Refresh derived metadata.
    from repro.core.hdov_tree import _collect_descendants
    env.descendants = _collect_descendants(env.tree)
    return cells_to_update


def _reassign_offsets_and_rewrite(env: HDoVEnvironment) -> None:
    """Re-persist the tree after a structural change.

    Node offsets are DFS indices; deletion changes the node set, so the
    whole tree file is rewritten (node counts are small — hundreds —
    next to the V-page data).  Internal-LoD records are remapped to the
    surviving nodes by identity where possible.
    """
    # Capture old offsets before renumbering to remap internal LoDs.
    old_offsets = {id(node): node.node_offset
                   for node in env.tree.iter_nodes_dfs()}
    from repro.rtree.persist import NodeStore
    from repro.storage.pagedfile import PagedFile
    tree_file = PagedFile("tree-updated", page_size=env.config.page_size,
                          disk=env.config.disk(), stats=env.light_stats)
    store = NodeStore(tree_file)
    lod_pointers = {oid: rec.blob_id for oid, rec in env.objects.items()}
    store.write_tree(env.tree, lod_pointers)
    remapped = {}
    for node in env.tree.iter_nodes_dfs():
        old = old_offsets.get(id(node))
        if old is not None and old in env.internals:
            record = env.internals[old]
            record.node_offset = node.node_offset
            remapped[node.node_offset] = record
    env.internals = remapped
    env.node_store = store


def _rewrite_segment(scheme: IndexedVerticalScheme,
                     cell_vp: CellVPages) -> None:
    """Append fresh V-pages + index segment for one cell and repoint
    the directory (old pages become garbage)."""
    import math

    from repro.storage import pageio
    from repro.storage.serializer import encode_index_pairs
    from repro.storage.vpagecodec import RawVPageCodec
    if not isinstance(scheme.codec, RawVPageCodec):
        # The packed stream is append-only per *build*; re-instantiated
        # cells would need a full stream re-encode (repro layout does
        # that), so incremental updates require the raw codec.
        raise HDoVError(
            f"incremental update needs the raw V-page codec, scheme "
            f"uses {type(scheme.codec).__name__}")
    pairs = []
    for offset in cell_vp.visible_offsets_dfs():
        payload = scheme.codec.encode_page(offset, cell_vp.ventries(offset),
                                           scheme.vpage_file.page_size)
        pointer = pageio.append_page(scheme.vpage_file, payload,
                                     component="core")
        pairs.append((offset, pointer))
    data = encode_index_pairs(pairs)
    page_size = scheme.index_file.page_size
    num_pages = max(int(math.ceil(len(data) / page_size)), 1)
    first = scheme.index_file.allocate_many(num_pages)
    for i in range(num_pages):
        pageio.write_page(
            scheme.index_file, first + i,
            data[i * page_size:(i + 1) * page_size], component="core")
    scheme._directory[cell_vp.cell_id] = (first, num_pages, len(pairs))
