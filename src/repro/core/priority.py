"""Frustum-prioritized traversal — the paper's future work, implemented.

Section 3.2 (third strength) and the conclusion sketch it: "the spatial
structure being used facilitates the design of a traversal algorithm
that prioritizes the nodes to be searched ... regions that are closer to
the current view frustum can be traversed first, while regions that are
outside the view frustum can be delayed.  This can further improve the
response time significantly.  ...  In our current work, we have not
exploited the MBR information in the HDoV-tree."

:class:`PrioritizedSearch` exploits exactly that MBR information: the
answer set is *identical* to :class:`~repro.core.search.HDoVSearch`'s
(same cell, same eta), but retrieval is split into two phases:

1. **in-frustum phase** — traverse only branches whose MBR intersects
   the camera frustum and fetch their models; once this phase is done
   the renderer already has everything on screen;
2. **out-of-frustum phase** — complete the remaining branches (the
   paper keeps them in the answer so a head turn needs no new query).

The measured benefit is *time-to-renderable*: the simulated cost of
phase 1 alone, which is what the user perceives as response time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.hdov_tree import HDoVEnvironment
from repro.core.search import HDoVSearch, SearchResult
from repro.errors import HDoVError
from repro.geometry.frustum import Camera, Frustum
from repro.rtree.node import Node


@dataclass
class PrioritizedResult:
    """A two-phase answer: the in-frustum part first."""

    in_frustum: SearchResult
    completed: SearchResult
    #: Simulated ms spent on phase 1 (the perceived response time).
    first_phase_ms: float
    #: Simulated ms for the whole query (both phases).
    total_ms: float

    @property
    def speedup(self) -> float:
        """Total time over time-to-renderable."""
        if self.first_phase_ms <= 0:
            return 1.0
        return self.total_ms / self.first_phase_ms


class PrioritizedSearch:
    """Two-phase, frustum-first HDoV traversal.

    Wraps two plain searchers that share the environment's scheme: one
    restricted to frustum-intersecting branches, one for the remainder.
    """

    def __init__(self, env: HDoVEnvironment,
                 scheme: Optional[str] = None, *,
                 fetch_models: bool = True) -> None:
        self.env = env
        self._search = HDoVSearch(env, scheme, fetch_models=fetch_models)

    def query(self, camera: Camera, eta: float) -> PrioritizedResult:
        """Visibility query at ``camera.position`` with frustum priority."""
        cell_id = self.env.grid.cell_of_point(camera.position)
        frustum = camera.frustum()

        start_snap = self.env.snapshot()
        in_view = self._restricted_query(cell_id, eta, frustum,
                                         inside=True)
        light, heavy = self.env.delta(start_snap)
        first_phase_ms = light.simulated_ms + heavy.simulated_ms

        outside = self._restricted_query(cell_id, eta, frustum,
                                         inside=False)
        light, heavy = self.env.delta(start_snap)
        total_ms = light.simulated_ms + heavy.simulated_ms

        completed = SearchResult(cell_id=cell_id, eta=eta)
        completed.objects = in_view.objects + outside.objects
        completed.internals = in_view.internals + outside.internals
        completed.nodes_read = in_view.nodes_read + outside.nodes_read
        completed.vpages_read = in_view.vpages_read + outside.vpages_read
        return PrioritizedResult(in_frustum=in_view, completed=completed,
                                 first_phase_ms=first_phase_ms,
                                 total_ms=total_ms)

    # -- internals -----------------------------------------------------------

    def _restricted_query(self, cell_id: int, eta: float,
                          frustum: Frustum, *, inside: bool) -> SearchResult:
        """One phase of the traversal.

        ``inside=True`` descends only branches intersecting the frustum;
        ``inside=False`` collects everything the first phase skipped.
        A branch fully outside the frustum is skipped *as a whole* in
        phase 1 and re-entered from the top in phase 2; branches that
        straddle the frustum are partially handled in each phase at
        entry granularity, so the union is exactly the full answer.
        """
        if eta < 0.0:
            raise HDoVError(f"eta must be >= 0, got {eta}")
        self._search.scheme.flip_to_cell(cell_id)
        result = SearchResult(cell_id=cell_id, eta=eta)
        root = self.env.node_store.read_node(0)
        result.nodes_read += 1
        self._walk(root, eta, frustum, inside, result)
        return result

    def _walk(self, node: Node, eta: float, frustum: Frustum, inside: bool,
              result: SearchResult) -> None:
        """One phase over one node.

        Partition rules (which make phase-1 ∪ phase-2 exactly the plain
        traversal's answer, with no duplicates):

        * phase 1 (``inside=True``): entries whose MBR misses the
          frustum are skipped entirely; the rest behave normally.
        * phase 2 (``inside=False``): entries whose MBR misses the
          frustum behave normally (they were skipped in phase 1).
          Frustum-intersecting entries were *started* in phase 1: their
          leaf retrievals and internal-LoD terminations already
          happened, so those are skipped — but recursive internal
          entries are descended again, because their subtrees may hold
          out-of-frustum children that phase 1 filtered out.
        """
        ventries = self._search.scheme.ventries(node.node_offset)
        if ventries is None:
            if node.node_offset == 0:
                return              # fully-hidden cell: empty answer,
                                    # and no V-page was actually read
            raise HDoVError(
                f"node {node.node_offset} has no V-page but was traversed")
        result.vpages_read += 1
        for (mbr, target, _lod_ptr), (dov, nvo) in zip(node.entries,
                                                       ventries):
            if dov == 0.0:
                continue
            in_view = frustum.intersects_aabb(mbr)
            if inside and not in_view:
                continue                      # phase 2's work
            terminates = (not node.is_leaf and dov <= eta
                          and self._search._should_terminate(target, nvo))
            if not inside and in_view:
                # Handled by phase 1 — except straddling subtrees, which
                # must be descended for their out-of-frustum children.
                if node.is_leaf or terminates:
                    continue
                child = self.env.node_store.read_node(target)
                result.nodes_read += 1
                self._walk(child, eta, frustum, inside, result)
                continue
            if node.is_leaf:
                self._search._retrieve_object(target, dov, result)
            elif terminates:
                self._search._retrieve_internal(target, dov, eta, result)
            else:
                child = self.env.node_store.read_node(target)
                result.nodes_read += 1
                self._walk(child, eta, frustum, inside, result)
