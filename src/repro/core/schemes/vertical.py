"""The vertical storage scheme (paper, Section 4.2).

Structures:

* **V-page-index file** — ``c`` fixed-size segments, each holding
  ``N_node`` V-page pointers (``NIL`` for invisible nodes).  Flipping to a
  cell reads the whole segment sequentially:
  ``size_pointer * N_node / size_page`` page accesses.
* **V-page file** — per cell, the V-pages of the cell's *visible* nodes
  stored contiguously "in the order of the tree nodes accessed in the
  depth-first traversal, so that all V-pages accessed during a visibility
  query can be retrieved in a sequential scan."

Runtime: the current segment is memory-resident, so finding a node's
V-page pointer is a memory access; only the V-page read costs I/O.

Storage cost: ``size_pointer * N_node * c + size_vpage * N_vnode * c``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.constants import SIZE_POINTER
from repro.core.schemes.base import (DEFAULT_WARM_CAPACITY,
                                     StorageBreakdown, StorageScheme)
from repro.core.vpage import CellVPages, VEntry
from repro.errors import SchemeError
from repro.storage import pageio
from repro.storage.pagedfile import PagedFile
from repro.storage.serializer import (NIL, decode_pointer_array,
                                      encode_pointer_array)
from repro.storage.vpagecodec import VPageCodec


class VerticalScheme(StorageScheme):

    name = "vertical"

    def __init__(self, vpage_file: PagedFile, index_file: PagedFile,
                 warm_capacity: int = DEFAULT_WARM_CAPACITY,
                 codec: Optional[VPageCodec] = None) -> None:
        super().__init__(vpage_file, index_file,
                         warm_capacity=warm_capacity, codec=codec)
        self.num_nodes = 0
        self.num_cells = 0
        self._segment_pages = 0
        self._index_first_page: Optional[int] = None
        self._current_segment: List[int] = []
        self._total_vpages = 0

    # -- build --------------------------------------------------------------

    def build(self, num_nodes: int, cells: List[CellVPages]) -> None:
        if self._index_first_page is not None:
            raise SchemeError("vertical scheme already built")
        if self.index_file is None:
            raise SchemeError("vertical scheme needs an index file")
        self.num_nodes = num_nodes
        self.num_cells = len(cells)
        if self.num_cells == 0:
            raise SchemeError("no cells to build")
        self._segment_pages = max(
            int(math.ceil(num_nodes * SIZE_POINTER
                          / self.index_file.page_size)), 1)
        self._index_first_page = self.index_file.allocate_many(
            self._segment_pages * self.num_cells)

        for cell in cells:
            pointers = [NIL] * num_nodes
            # DFS order == offset order; contiguous allocation per cell.
            self.codec.begin_cell(cell.cell_id)
            for offset in cell.visible_offsets_dfs():
                pointers[offset] = self.codec.append(
                    self.vpage_file, cell.cell_id, offset,
                    cell.ventries(offset))
                self._total_vpages += 1
            self._write_segment(cell.cell_id, pointers)
        self.codec.finish(self.vpage_file)

    def _write_segment(self, cell_id: int, pointers: List[int]) -> None:
        assert self.index_file is not None
        data = encode_pointer_array(pointers)
        first = self._segment_first_page(cell_id)
        page_size = self.index_file.page_size
        for i in range(self._segment_pages):
            chunk = data[i * page_size:(i + 1) * page_size]
            pageio.write_page(self.index_file, first + i, chunk,
                              component="schemes")

    def _segment_first_page(self, cell_id: int) -> int:
        assert self._index_first_page is not None
        return self._index_first_page + cell_id * self._segment_pages

    # -- runtime -------------------------------------------------------------

    def _load_cell(self, cell_id: int) -> None:
        """Flip: read the whole ``N_node``-pointer segment sequentially.

        Cost is ``O(N_node)`` pages — the scalability weakness the
        indexed-vertical scheme fixes.
        """
        if not 0 <= cell_id < self.num_cells:
            raise SchemeError(f"cell {cell_id} out of range")
        data = self._read_index_run(self._segment_first_page(cell_id),
                                    self._segment_pages)
        self._current_segment = decode_pointer_array(data, self.num_nodes)

    def prefetch_pages(self, cell_id: int) -> List[int]:
        if self._index_first_page is None or \
                not 0 <= cell_id < self.num_cells:
            return []
        first = self._segment_first_page(cell_id)
        return list(range(first, first + self._segment_pages))

    def decode_cell_pointers(self, cell_id: int, data: bytes) -> List[int]:
        if not 0 <= cell_id < self.num_cells:
            return []
        pointers = decode_pointer_array(data, self.num_nodes)
        return [pointer for pointer in pointers if pointer != NIL]

    def _reset_cell_state(self) -> None:
        self._current_segment = []

    def _capture_cell_state(self) -> Optional[List[int]]:
        return list(self._current_segment) if self._current_segment else None

    def _restore_cell_state(self, state: object) -> None:
        assert isinstance(state, list)
        self._current_segment = list(state)

    def _cell_state_bytes(self, state: Optional[object]) -> int:
        assert state is None or isinstance(state, list)
        return SIZE_POINTER * len(state) if state is not None else 0

    def ventries(self, node_offset: int) -> Optional[List[VEntry]]:
        self._require_cell()
        if not 0 <= node_offset < self.num_nodes:
            raise SchemeError(f"node offset {node_offset} out of range")
        if not self._current_segment:
            raise SchemeError("segment not loaded")
        pointer = self._current_segment[node_offset]
        if pointer == NIL:
            return None
        return self._decode_vpage_at(pointer, node_offset)

    # -- reporting ------------------------------------------------------------

    def storage_breakdown(self) -> StorageBreakdown:
        # size_pointer * N_node * c + size_vpage * N_vnode * c
        return StorageBreakdown(
            scheme=self.name,
            vpage_bytes=self.codec.storage_vpage_bytes(
                self.vpage_file.page_size, self._total_vpages),
            index_bytes=SIZE_POINTER * self.num_nodes * self.num_cells,
        )

    # -- layout ---------------------------------------------------------------

    def cell_pointers(self, cell_id: int) -> List[Tuple[int, int]]:
        """Non-NIL ``(node_offset, pointer)`` pairs of one cell's segment."""
        if not 0 <= cell_id < self.num_cells:
            raise SchemeError(f"cell {cell_id} out of range")
        data = self._read_index_run(self._segment_first_page(cell_id),
                                    self._segment_pages)
        pointers = decode_pointer_array(data, self.num_nodes)
        return [(offset, pointer) for offset, pointer in enumerate(pointers)
                if pointer != NIL]

    def apply_layout(self, remap: Dict[int, int]) -> None:
        """Rewrite every segment, mapping old V-page pointers to new ones."""
        for cell_id in range(self.num_cells):
            data = self._read_index_run(self._segment_first_page(cell_id),
                                        self._segment_pages)
            pointers = decode_pointer_array(data, self.num_nodes)
            remapped = [remap.get(p, p) if p != NIL else NIL
                        for p in pointers]
            self._write_segment(cell_id, remapped)
        self._current_segment = []
        self.current_cell = None

    def resident_bytes(self) -> int:
        return SIZE_POINTER * self.num_nodes + self.warm_bytes()
