"""Common interface of the V-page storage schemes.

A scheme stores, for every (cell, visible node) pair, the node's V-page,
and answers two runtime operations:

* ``flip_to_cell(cell)`` — make ``cell`` current, paying whatever I/O the
  scheme's per-cell structure requires ("flipping the V-page-index",
  Section 4.2–4.3);
* ``ventries(node_offset)`` — the current cell's V-page for a node, or
  ``None`` when the node is invisible, paying the V-page read.

Schemes also report their storage cost for Table 2.
"""

from __future__ import annotations

import abc
import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.vpage import CellVPages, VEntry
from repro.errors import SchemeError
from repro.obs import names
from repro.obs.metrics import get_registry
from repro.storage import pageio
from repro.storage.buffer import BufferPool
from repro.storage.pagedfile import PagedFile
from repro.storage.vpagecodec import RawVPageCodec, VPageCodec


@dataclass(frozen=True)
class StorageBreakdown:
    """Byte sizes of a scheme's on-disk structures (excluding the tree
    file, which is identical across schemes — the paper excludes it too)."""

    scheme: str
    vpage_bytes: int
    index_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.vpage_bytes + self.index_bytes

    @property
    def total_mb(self) -> float:
        return self.total_bytes / (1024.0 * 1024.0)


#: Read-through page cache capacity for packed V-page streams.  Small
#: and FIFO by insertion so replays are deterministic: consecutive
#: records on one page charge one page read, and a delta record whose
#: reference sits on the previous page does not thrash.  Irrelevant for
#: the raw codec, whose one-record-per-page reads are *deliberately*
#: uncached — the seed accounting (every ``ventries`` call pays its
#: page read) must stay byte-identical.
PACKED_READ_CACHE_PAGES = 4

#: Default cap on the warm prefetch buffer: one cell ahead plus one
#: stale entry about to be evicted.  A warm entry for a cell the viewer
#: never flips to must not be kept forever (the serving path never
#: calls ``drop_prefetches``), so the buffer keeps only the most
#: recently prefetched K cells.
DEFAULT_WARM_CAPACITY = 2


class StorageScheme(abc.ABC):
    """Abstract base of the three storage schemes."""

    name: str = "abstract"

    def __init__(self, vpage_file: PagedFile,
                 index_file: Optional[PagedFile] = None,
                 warm_capacity: int = DEFAULT_WARM_CAPACITY,
                 codec: Optional[VPageCodec] = None) -> None:
        if warm_capacity < 1:
            raise SchemeError(
                f"warm_capacity must be >= 1, got {warm_capacity}")
        self.vpage_file = vpage_file
        self.index_file = index_file
        #: The versioned V-page codec — the only reader/writer of V-page
        #: bytes (lint rule RPR014).  Defaults to the raw page-per-record
        #: codec, which reproduces the seed layout byte for byte.
        self.codec: VPageCodec = codec if codec is not None \
            else RawVPageCodec()
        #: Per-view read-through page cache for packed streams (see
        #: PACKED_READ_CACHE_PAGES); always empty under the raw codec.
        self._vpage_read_cache: Dict[int, bytes] = {}
        #: Optional shared page cache (set by the serving layer): when
        #: present, V-page and index reads go through it so concurrent
        #: sessions share hot pages.  ``None`` keeps the sequential
        #: direct-``pageio`` path byte-for-byte unchanged.
        self.page_cache: Optional[BufferPool] = None
        self.current_cell: Optional[int] = None
        self.flips = 0
        #: Prefetched per-cell state (double buffering): cell id ->
        #: captured segment state, installed for free at flip time.
        #: Bounded: insertion-ordered, the oldest entry is evicted once
        #: more than ``warm_capacity`` cells are warm.
        self._warm: Dict[int, object] = {}
        self.warm_capacity = warm_capacity
        self.prefetched_flips = 0
        registry = get_registry()
        self._m_flips = registry.counter(names.SCHEME_FLIPS,
                                         scheme=self.name)
        self._m_warm_flips = registry.counter(
            names.SCHEME_PREFETCHED_FLIPS, scheme=self.name)
        self._m_prefetches = registry.counter(names.SCHEME_PREFETCHES,
                                              scheme=self.name)

    # -- build -------------------------------------------------------------

    @abc.abstractmethod
    def build(self, num_nodes: int, cells: List[CellVPages]) -> None:
        """Lay out all cells' V-pages on disk.  ``num_nodes`` is the total
        node count (DFS offsets are < num_nodes)."""

    # -- runtime ------------------------------------------------------------

    def flip_to_cell(self, cell_id: int) -> None:
        """Make ``cell_id`` the current cell, paying the flip I/O —
        unless the cell was prefetched, in which case the warm state is
        installed for free.

        Exception safety: every scheme's ``_load_cell`` reads and
        decodes *before* assigning its segment state, and
        ``current_cell`` advances only after ``_load_cell`` returns.
        A flip that fails mid-read (e.g. an injected storage fault)
        therefore leaves the previous cell fully intact — the search
        layer relies on this to degrade the one query and retry the
        flip on the next frame.
        """
        if cell_id == self.current_cell:
            return
        warm = self._warm.pop(cell_id, None)
        if warm is not None:
            self._restore_cell_state(warm)
            self.prefetched_flips += 1
            self._m_warm_flips.inc()
        else:
            self._load_cell(cell_id)
        self.current_cell = cell_id
        self.flips += 1
        self._m_flips.inc()

    def prefetch_cell(self, cell_id: int) -> bool:
        """Read ``cell_id``'s per-cell structures *now* (charging the
        I/O on the current, presumably quiet, frame) and stash them so
        the eventual flip is free.  A later flip to a different cell
        simply leaves the warm entry unused (bounded by
        ``warm_capacity``: the oldest warm entry is evicted first).

        Returns whether a prefetch actually happened: ``False`` when the
        target is already current or already warm, so callers' counters
        stay in agreement with the ``scheme_prefetches_total`` metric,
        which only counts issued work.
        """
        if cell_id == self.current_cell or cell_id in self._warm:
            return False
        self._m_prefetches.inc()
        current_state = self._capture_cell_state()
        self._load_cell(cell_id)
        self._warm[cell_id] = self._capture_cell_state()
        # Restore the active cell's state without re-reading it.
        if self.current_cell is not None and current_state is not None:
            self._restore_cell_state(current_state)
        while len(self._warm) > self.warm_capacity:
            oldest = next(iter(self._warm))
            del self._warm[oldest]
            # Created lazily: runs that never overflow the warm buffer
            # register no eviction series.
            get_registry().counter(names.SCHEME_WARM_EVICTIONS,
                                   scheme=self.name).inc()
        return True

    def drop_prefetches(self) -> None:
        """Discard warm cells (e.g. the viewer changed direction)."""
        self._warm.clear()

    # -- serving support ------------------------------------------------------

    def session_view(self) -> "StorageScheme":
        """A lightweight per-session clone for concurrent serving.

        The clone shares the built on-disk structures (files,
        directory, page cache, metric handles) with its parent but
        owns private *flip state* — current cell, loaded segment,
        prefetch buffer — so two sessions standing in different cells
        do not clobber each other's V-page index.  Counters on the
        clone start at zero; the shared metric series keep aggregating
        across all views of the scheme.
        """
        clone = copy.copy(self)
        clone.current_cell = None
        clone.flips = 0
        clone.prefetched_flips = 0
        clone._warm = {}
        clone._vpage_read_cache = {}
        clone._reset_cell_state()
        return clone

    def _reset_cell_state(self) -> None:
        """Drop loaded per-cell state (hook for :meth:`session_view`).

        Deliberately a no-op (not abstract): stateless schemes, like
        the horizontal one, keep no per-cell state to drop.
        """
        return None

    def _read_vpage(self, pointer: int) -> bytes:
        """Read one V-page — through the shared page cache when serving.

        Both paths route the actual disk read through the
        ``repro.storage.pageio`` facade, so retry + component
        accounting are identical; the cache only decides whether the
        read happens at all.
        """
        if self.page_cache is not None:
            return self.page_cache.get(self.vpage_file, pointer,
                                       reader=_scheme_reader)
        return pageio.read_page(self.vpage_file, pointer,
                                component="schemes")

    def vpage_page(self, page_id: int) -> bytes:
        """Codec page source (:class:`~repro.storage.vpagecodec.PageReader`).

        Raw codec: a plain accounted read per call, preserving the seed
        behaviour where every ``ventries`` call pays its page read.
        Packed codec: a small FIFO read-through cache, so the records
        sharing one page cost one read and ``bytes_read`` reflects the
        compressed footprint instead of re-charging per record.
        """
        if not self.codec.packed:
            return self._read_vpage(page_id)
        cached = self._vpage_read_cache.get(page_id)
        if cached is not None:
            return cached
        data = self._read_vpage(page_id)
        self._vpage_read_cache[page_id] = data
        while len(self._vpage_read_cache) > PACKED_READ_CACHE_PAGES:
            oldest = next(iter(self._vpage_read_cache))
            del self._vpage_read_cache[oldest]
        return data

    def _decode_vpage_at(self, pointer: int,
                         node_offset: int) -> List[VEntry]:
        """Read and decode one V-page through the codec, checking that
        the stored node offset matches the requested one."""
        stored_offset, ventries = self.codec.read(pointer, self)
        if stored_offset != node_offset:
            raise SchemeError("V-page node-offset mismatch")
        return ventries

    def _read_index_run(self, first_page: int, count: int) -> bytes:
        """Read ``count`` consecutive index pages as one buffer.

        Without a page cache this is a single ``pageio.read_run``
        (retried as a unit).  With one, each page is fetched through
        the cache individually: hits are free, and misses — still in
        ascending page order, so the sequential-access accounting is
        preserved — are read and retried page-wise.
        """
        assert self.index_file is not None
        if self.page_cache is None:
            return pageio.read_run(self.index_file, first_page, count,
                                   component="schemes")
        cache = self.page_cache
        return b"".join(cache.get(self.index_file, first_page + i,
                                  reader=_scheme_reader)
                        for i in range(count))

    @abc.abstractmethod
    def _load_cell(self, cell_id: int) -> None:
        """Scheme-specific flip work (may be a no-op)."""

    # -- speculative prefetch (serving) ---------------------------------------

    def prefetch_pages(self, cell_id: int) -> List[int]:
        """Index pages a flip to ``cell_id`` would read, in read order.

        Pure addressing — no I/O.  The serving prefetcher feeds these to
        ``BufferPool.prefetch`` so the flip's demand reads hit.  Empty
        for schemes without a per-cell index (the horizontal scheme's
        flips are free).
        """
        return []

    def decode_cell_pointers(self, cell_id: int, data: bytes) -> List[int]:
        """V-page pointers of ``cell_id`` from its raw index bytes.

        ``data`` is the concatenation of the pages named by
        :meth:`prefetch_pages`; decoding is pure, so the prefetcher can
        chase index bytes it already holds into V-page prefetches
        without charging demand reads.  Empty when the scheme keeps no
        per-cell index.
        """
        return []

    def _capture_cell_state(self) -> Optional[object]:
        """Snapshot of the loaded per-cell state (``None`` when the
        scheme keeps none, like the horizontal scheme)."""
        return None

    def _restore_cell_state(self, state: object) -> None:
        """Install a snapshot captured by :meth:`_capture_cell_state`.

        Deliberately a no-op hook (not abstract): stateless schemes
        never capture anything, so there is nothing to restore.
        """
        return None

    def _cell_state_bytes(self, state: Optional[object]) -> int:
        """Resident size of one captured cell state (0 when stateless)."""
        return 0

    def warm_bytes(self) -> int:
        """Bytes held by the warm prefetch buffer — part of the scheme's
        runtime residency, so :meth:`resident_bytes` must include it."""
        return sum(self._cell_state_bytes(state)
                   for state in self._warm.values())

    @abc.abstractmethod
    def ventries(self, node_offset: int) -> Optional[List[VEntry]]:
        """Current cell's V-page of a node; ``None`` if invisible.
        Charges the V-page read through the backing file."""

    def _require_cell(self) -> int:
        if self.current_cell is None:
            raise SchemeError(f"{self.name}: no current cell; flip first")
        return self.current_cell

    # -- reporting ------------------------------------------------------------

    @abc.abstractmethod
    def storage_breakdown(self) -> StorageBreakdown:
        """Byte cost of the scheme's structures, for Table 2."""

    #: Approximate resident memory the scheme needs at runtime for the
    #: current cell (vertical keeps N_node pointers, indexed-vertical only
    #: N_vnode pairs, horizontal nothing).
    @abc.abstractmethod
    def resident_bytes(self) -> int:
        ...

    def reset_io_head(self) -> None:
        """Forget file positions so the next query pays cold seeks."""
        self.vpage_file.reset_head()
        if self.index_file is not None:
            self.index_file.reset_head()
        # The packed read cache is runtime state too: a cold query must
        # re-pay its page reads, and the layout replays rely on before/
        # after runs starting from the same empty cache.
        self._vpage_read_cache.clear()

    def reset_runtime_state(self) -> None:
        """Forget *all* runtime state — current cell, loaded segment,
        warm buffer, file heads, read cache — returning the scheme to
        its just-built condition.  The layout replays call this between
        runs so before/after measurements start from identical state."""
        self.current_cell = None
        self._reset_cell_state()
        self.drop_prefetches()
        self.reset_io_head()

    # -- layout rewriting ------------------------------------------------------

    def cell_pointers(self, cell_id: int) -> List[Tuple[int, int]]:
        """``(node offset, V-page pointer)`` pairs of one cell, in the
        cell's on-disk V-page order — the unit the layout rewriter
        reorders.  Reads the scheme's index structures (charged I/O;
        callers reset stats around rewrites)."""
        raise SchemeError(
            f"{self.name}: scheme does not expose cell pointers")

    def apply_layout(self, remap: Dict[int, int]) -> None:
        """Rewrite stored V-page pointers through ``remap`` (old -> new)
        after the V-page file has been physically reordered."""
        raise SchemeError(
            f"{self.name}: scheme does not support layout rewriting")

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(cell={self.current_cell}, "
                f"flips={self.flips})")


def _scheme_reader(pfile: PagedFile, page_id: int) -> bytes:
    """Buffer-pool miss reader: the sanctioned scheme-component read."""
    return pageio.read_page(pfile, page_id, component="schemes")


def vpages_needed(num_entries: int, page_size: int, header: int,
                  ventry_size: int) -> int:
    """Pages needed for one node's V-entries (always >= 1)."""
    payload = header + num_entries * ventry_size
    if payload > page_size:
        raise SchemeError(
            f"V-page overflow: {num_entries} entries need {payload} bytes")
    return 1
