"""The indexed-vertical storage scheme (paper, Section 4.3).

Like the vertical scheme, but the per-cell segment stores only the
*visible* nodes' ``(node offset, V-page pointer)`` pairs — segments are
variable-length, addressed through a one-to-one directory (cell id ->
first page, pair count).  Flipping costs ``O(N_vnode)`` I/Os instead of
``O(N_node)``.

Storage cost:
``(size_pointer + size_integer) * N_vnode * c + size_vpage * N_vnode * c``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.constants import SIZE_INTEGER, SIZE_POINTER
from repro.core.schemes.base import (DEFAULT_WARM_CAPACITY,
                                     StorageBreakdown, StorageScheme)
from repro.core.vpage import CellVPages, VEntry
from repro.errors import SchemeError
from repro.storage import pageio
from repro.storage.pagedfile import PagedFile
from repro.storage.serializer import decode_index_pairs, encode_index_pairs
from repro.storage.vpagecodec import VPageCodec


class IndexedVerticalScheme(StorageScheme):

    name = "indexed-vertical"

    def __init__(self, vpage_file: PagedFile, index_file: PagedFile,
                 warm_capacity: int = DEFAULT_WARM_CAPACITY,
                 codec: Optional[VPageCodec] = None) -> None:
        super().__init__(vpage_file, index_file,
                         warm_capacity=warm_capacity, codec=codec)
        self.num_nodes = 0
        self.num_cells = 0
        #: cell id -> (first index page, page count, pair count).
        self._directory: Dict[int, Tuple[int, int, int]] = {}
        self._current_pairs: Dict[int, int] = {}
        self._total_vpages = 0
        self._total_pairs = 0
        self._built = False

    # -- build ------------------------------------------------------------

    def build(self, num_nodes: int, cells: List[CellVPages]) -> None:
        if self._built:
            raise SchemeError("indexed-vertical scheme already built")
        if self.index_file is None:
            raise SchemeError("indexed-vertical scheme needs an index file")
        self.num_nodes = num_nodes
        self.num_cells = len(cells)
        if self.num_cells == 0:
            raise SchemeError("no cells to build")
        for cell in cells:
            pairs: List[Tuple[int, int]] = []
            self.codec.begin_cell(cell.cell_id)
            for offset in cell.visible_offsets_dfs():
                pointer = self.codec.append(
                    self.vpage_file, cell.cell_id, offset,
                    cell.ventries(offset))
                pairs.append((offset, pointer))
                self._total_vpages += 1
            self._total_pairs += len(pairs)
            self._write_pairs(cell.cell_id, pairs, allocate=True)
        self.codec.finish(self.vpage_file)
        self._built = True

    def _write_pairs(self, cell_id: int, pairs: List[Tuple[int, int]],
                     *, allocate: bool) -> None:
        """Write one cell's pair segment; allocates pages on first build,
        rewrites the already-allocated pages on layout updates."""
        assert self.index_file is not None
        data = encode_index_pairs(pairs)
        page_size = self.index_file.page_size
        num_pages = max(int(math.ceil(len(data) / page_size)), 1)
        if allocate:
            first = self.index_file.allocate_many(num_pages)
        else:
            first, old_pages, _count = self._directory[cell_id]
            assert old_pages == num_pages
        for i in range(num_pages):
            pageio.write_page(self.index_file, first + i,
                              data[i * page_size:(i + 1) * page_size],
                              component="schemes")
        self._directory[cell_id] = (first, num_pages, len(pairs))

    # -- runtime ------------------------------------------------------------

    def _load_cell(self, cell_id: int) -> None:
        """Flip: read only the visible nodes' pairs — ``O(N_vnode)`` I/O."""
        entry = self._directory.get(cell_id)
        if entry is None:
            raise SchemeError(f"cell {cell_id} out of range")
        first, num_pages, pair_count = entry
        data = self._read_index_run(first, num_pages)
        pairs = decode_index_pairs(data, pair_count)
        self._current_pairs = dict(pairs)

    def prefetch_pages(self, cell_id: int) -> List[int]:
        entry = self._directory.get(cell_id)
        if entry is None:
            return []
        first, num_pages, _pair_count = entry
        return list(range(first, first + num_pages))

    def decode_cell_pointers(self, cell_id: int, data: bytes) -> List[int]:
        entry = self._directory.get(cell_id)
        if entry is None:
            return []
        _first, _num_pages, pair_count = entry
        return [pointer for _offset, pointer
                in decode_index_pairs(data, pair_count)]

    def _reset_cell_state(self) -> None:
        self._current_pairs = {}

    def _capture_cell_state(self) -> Optional[Dict[int, int]]:
        return dict(self._current_pairs) if self._current_pairs else None

    def _restore_cell_state(self, state: object) -> None:
        assert isinstance(state, dict)
        self._current_pairs = dict(state)

    def _cell_state_bytes(self, state: Optional[object]) -> int:
        assert state is None or isinstance(state, dict)
        return ((SIZE_POINTER + SIZE_INTEGER) * len(state)
                if state is not None else 0)

    def ventries(self, node_offset: int) -> Optional[List[VEntry]]:
        self._require_cell()
        if not 0 <= node_offset < self.num_nodes:
            raise SchemeError(f"node offset {node_offset} out of range")
        pointer = self._current_pairs.get(node_offset)
        if pointer is None:
            return None
        return self._decode_vpage_at(pointer, node_offset)

    # -- reporting ------------------------------------------------------------

    def storage_breakdown(self) -> StorageBreakdown:
        # (size_pointer + size_integer) * N_vnode * c
        #   + size_vpage * N_vnode * c
        return StorageBreakdown(
            scheme=self.name,
            vpage_bytes=self.codec.storage_vpage_bytes(
                self.vpage_file.page_size, self._total_vpages),
            index_bytes=(SIZE_POINTER + SIZE_INTEGER) * self._total_pairs,
        )

    # -- layout ---------------------------------------------------------------

    def cell_pointers(self, cell_id: int) -> List[Tuple[int, int]]:
        """Non-NIL ``(node_offset, pointer)`` pairs from the cell's
        directory segment, in stored (DFS) order."""
        entry = self._directory.get(cell_id)
        if entry is None:
            raise SchemeError(f"cell {cell_id} out of range")
        first, num_pages, pair_count = entry
        data = self._read_index_run(first, num_pages)
        return decode_index_pairs(data, pair_count)

    def apply_layout(self, remap: Dict[int, int]) -> None:
        """Rewrite every pair segment in place with remapped pointers.

        Segment sizes are unchanged (same pair counts), so the
        directory keeps its page spans.
        """
        for cell_id in sorted(self._directory):
            first, num_pages, pair_count = self._directory[cell_id]
            data = self._read_index_run(first, num_pages)
            pairs = decode_index_pairs(data, pair_count)
            remapped = [(offset, remap.get(pointer, pointer))
                        for offset, pointer in pairs]
            self._write_pairs(cell_id, remapped, allocate=False)
        self._current_pairs = {}
        self.current_cell = None

    def resident_bytes(self) -> int:
        return ((SIZE_POINTER + SIZE_INTEGER) * len(self._current_pairs)
                + self.warm_bytes())

    @property
    def avg_visible_nodes(self) -> float:
        """Mean N_vnode over cells — eq. 7's bounded quantity."""
        if not self.num_cells:
            return 0.0
        return self._total_pairs / self.num_cells
