"""The three V-page storage schemes of Section 4."""

from repro.core.schemes.base import StorageScheme, StorageBreakdown
from repro.core.schemes.horizontal import HorizontalScheme
from repro.core.schemes.vertical import VerticalScheme
from repro.core.schemes.indexed_vertical import IndexedVerticalScheme

SCHEME_CLASSES = {
    "horizontal": HorizontalScheme,
    "vertical": VerticalScheme,
    "indexed-vertical": IndexedVerticalScheme,
}

__all__ = ["StorageScheme", "StorageBreakdown", "HorizontalScheme",
           "VerticalScheme", "IndexedVerticalScheme", "SCHEME_CLASSES"]
