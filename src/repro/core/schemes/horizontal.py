"""The horizontal storage scheme (paper, Section 4.1).

Every node owns a run of ``c`` V-pages, one per cell, indexed by cell id
— even for cells where the node is invisible (which is why the scheme's
storage cost is ``size_vpage * c * N_node``).  A V-page access is one
direct page read; there is no per-cell segment to flip.  Because the
V-pages touched by one query belong to many different nodes, consecutive
accesses land ``c`` pages apart and almost every access seeks — the
effect Figure 7 shows.

Invisibility is encoded *in* the page (all-zero DoVs), since the scheme
reserves space regardless.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.schemes.base import (DEFAULT_WARM_CAPACITY,
                                     StorageBreakdown, StorageScheme)
from repro.core.vpage import CellVPages, VEntry
from repro.errors import SchemeError
from repro.storage import pageio
from repro.storage.pagedfile import PagedFile
from repro.storage.vpagecodec import RawVPageCodec


class HorizontalScheme(StorageScheme):

    name = "horizontal"

    def __init__(self, vpage_file: PagedFile,
                 warm_capacity: int = DEFAULT_WARM_CAPACITY) -> None:
        # Always the raw codec: the scheme addresses V-pages by a
        # closed-form (offset, cell) -> page formula, which a packed
        # stream has no equivalent for.
        super().__init__(vpage_file, index_file=None,
                         warm_capacity=warm_capacity)
        self.num_nodes = 0
        self.num_cells = 0
        self._first_page: Optional[int] = None
        #: entry counts per node offset, to materialise all-zero pages.
        self._entry_counts: Dict[int, int] = {}
        #: Layout indirection: formula page id -> physical page id.
        #: Empty until ``apply_layout`` (identity mapping).
        self._remap: Dict[int, int] = {}

    @property
    def _raw_codec(self) -> RawVPageCodec:
        assert isinstance(self.codec, RawVPageCodec)
        return self.codec

    def build(self, num_nodes: int, cells: List[CellVPages]) -> None:
        if self._first_page is not None:
            raise SchemeError("horizontal scheme already built")
        self.num_nodes = num_nodes
        self.num_cells = len(cells)
        if self.num_cells == 0:
            raise SchemeError("no cells to build")
        # Entry counts: any cell where the node is visible tells us; nodes
        # never visible anywhere still get (empty) pages.
        for cell in cells:
            for offset, ventries in cell.pages.items():
                self._entry_counts[offset] = len(ventries)
        self._first_page = self.vpage_file.allocate_many(
            self.num_nodes * self.num_cells)
        for cell in cells:
            for offset in range(num_nodes):
                ventries = cell.pages.get(offset)
                if ventries is None:
                    count = self._entry_counts.get(offset, 0)
                    ventries = [(0.0, 0)] * count
                payload = self._raw_codec.encode_page(
                    offset, ventries, self.vpage_file.page_size)
                pageio.write_page(self.vpage_file,
                                  self._page_id(offset, cell.cell_id),
                                  payload, component="schemes")

    def _page_id(self, node_offset: int, cell_id: int) -> int:
        assert self._first_page is not None
        page = self._first_page + node_offset * self.num_cells + cell_id
        return self._remap.get(page, page)

    def _load_cell(self, cell_id: int) -> None:
        if not 0 <= cell_id < self.num_cells:
            raise SchemeError(f"cell {cell_id} out of range")
        # No per-cell structure: flipping is free.

    def ventries(self, node_offset: int) -> Optional[List[VEntry]]:
        cell_id = self._require_cell()
        if not 0 <= node_offset < self.num_nodes:
            raise SchemeError(f"node offset {node_offset} out of range")
        data = self._read_vpage(self._page_id(node_offset, cell_id))
        stored_offset, ventries = self._raw_codec.decode_page(data)
        if stored_offset != node_offset:
            raise SchemeError("V-page node-offset mismatch")
        if not any(d > 0.0 for d, _ in ventries):
            return None
        return ventries

    def storage_breakdown(self) -> StorageBreakdown:
        # size_vpage * c * N_node  (paper, Section 4.1)
        return StorageBreakdown(
            scheme=self.name,
            vpage_bytes=self.vpage_file.page_size * self.num_cells
            * self.num_nodes,
            index_bytes=0,
        )

    def resident_bytes(self) -> int:
        # Stateless: captured cell states are None, so this stays 0
        # even while cells are warm.  A layout remap adds two ints per
        # moved page, but only `repro layout` installs one.
        return self.warm_bytes()

    # -- layout ---------------------------------------------------------------

    def cell_pointers(self, cell_id: int) -> List[Tuple[int, int]]:
        """All ``(node_offset, page)`` pairs of one cell — every node
        owns a page here, visible or not, straight from the formula."""
        if not 0 <= cell_id < self.num_cells:
            raise SchemeError(f"cell {cell_id} out of range")
        return [(offset, self._page_id(offset, cell_id))
                for offset in range(self.num_nodes)]

    def apply_layout(self, remap: Dict[int, int]) -> None:
        """Install a page indirection: the formula keeps addressing the
        original ids, the remap redirects to the physical pages.  A
        second rewrite composes with the first."""
        if self._remap:
            composed = {page: remap.get(physical, physical)
                        for page, physical in self._remap.items()}
            for old, new in remap.items():
                composed.setdefault(old, new)
            remap = composed
        self._remap = {old: new for old, new in remap.items()
                       if old != new}
