"""Delta search — temporal coherence for walkthroughs (paper, Section 5.4).

"Two neighboring cells often share a number of visible objects.  For
VISUAL, the search algorithm can be improved to a 'delta' search
algorithm which does not retrieve objects that have been retrieved in
the previous queries.  As the models stored in the database are
heavy-weighted, delta search algorithm can reduce the I/O cost
significantly."

The delta layer wraps :class:`~repro.core.search.HDoVSearch`: it runs the
light-weight traversal every frame (nodes and V-pages are cheap) but
skips the heavy model fetch for any LoD already resident at sufficient
detail.  It also tracks the resident set's byte size, which is the
VISUAL system's memory footprint in Section 5.4's memory comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.core.search import HDoVSearch, SearchResult
from repro.errors import HDoVError
from repro.geometry.vec import PointLike


@dataclass
class _Resident:
    """One cached representation: its blend fraction and byte size."""

    fraction: float
    bytes: int


class DeltaSearch:
    """Stateful walkthrough search with a resident model set.

    Parameters
    ----------
    search:
        The underlying searcher.  It must have ``fetch_models=False``;
        the delta layer performs (and charges) the model fetches itself
        so it can skip the ones already resident.
    keep_offscreen:
        When True, representations that drop out of the answer set stay
        cached (more memory, fewer re-fetches when the viewer returns).
        The paper's VISUAL holds tens of MB of model data resident while
        *tree nodes* are uncached ("None of the two systems caches the
        tree nodes in the queries"), so model caching defaults to True;
        the light-weight traversal always re-runs.
    """

    def __init__(self, search: HDoVSearch, *,
                 keep_offscreen: bool = True,
                 cache_budget_bytes: Optional[int] = None) -> None:
        if search.fetch_models:
            raise HDoVError(
                "DeltaSearch needs a searcher with fetch_models=False")
        if cache_budget_bytes is not None and cache_budget_bytes < 0:
            raise HDoVError(
                f"negative cache budget: {cache_budget_bytes}")
        self.search = search
        self.keep_offscreen = keep_offscreen
        #: Optional cap on resident model bytes.  Off-screen entries are
        #: evicted least-recently-used first; entries in the current
        #: answer set are never evicted.  This is what keeps the paper's
        #: VISUAL at a bounded working set (28 MB on a 1.6 GB dataset).
        self.cache_budget_bytes = cache_budget_bytes
        self._objects: Dict[int, _Resident] = {}
        self._internals: Dict[int, _Resident] = {}
        self.fetches = 0
        self.skipped = 0
        self.evictions = 0

    # -- queries -------------------------------------------------------------

    def query_point(self, point: PointLike, eta: float) -> SearchResult:
        return self.query_cell(self.search.env.grid.cell_of_point(point), eta)

    def query_cell(self, cell_id: int, eta: float) -> SearchResult:
        """Run the traversal, fetching only non-resident model data."""
        return self._integrate(self.search.query_cell(cell_id, eta))

    def query_cell_degraded(self, cell_id: int, eta: float) -> SearchResult:
        """Overload path (PR 5): the root-LoD-only degraded query.

        Same residency logic as :meth:`query_cell` — if the root's
        internal LoD is already cached at full detail, shedding load
        costs no heavy I/O at all.
        """
        return self._integrate(
            self.search.query_cell_degraded(cell_id, eta))

    def _integrate(self, result: SearchResult) -> SearchResult:
        """Fetch the result's non-resident models and update the cache."""
        env = self.search.env

        new_objects: Dict[int, _Resident] = {}
        for obj in result.objects:
            resident = self._objects.get(obj.object_id)
            if resident is not None and resident.fraction >= obj.fraction:
                # Already resident at sufficient (or better) detail.
                self.skipped += 1
                new_objects[obj.object_id] = resident
                continue
            record = env.objects[obj.object_id]
            env.object_store.fetch_prefix(record.blob_id, obj.bytes)
            self.fetches += 1
            new_objects[obj.object_id] = _Resident(obj.fraction, obj.bytes)

        new_internals: Dict[int, _Resident] = {}
        for internal in result.internals:
            resident = self._internals.get(internal.node_offset)
            if resident is not None and resident.fraction >= internal.fraction:
                self.skipped += 1
                new_internals[internal.node_offset] = resident
                continue
            record = env.internals[internal.node_offset]
            env.object_store.fetch_prefix(record.blob_id, internal.bytes)
            self.fetches += 1
            new_internals[internal.node_offset] = _Resident(
                internal.fraction, internal.bytes)

        if self.keep_offscreen:
            # Merge, oldest entries first so dict order is LRU-ish:
            # off-screen survivors keep their old rank, entries in the
            # current result move to the back (most recent).
            merged_objects = {k: v for k, v in self._objects.items()
                              if k not in new_objects}
            merged_objects.update(new_objects)
            merged_internals = {k: v for k, v in self._internals.items()
                                if k not in new_internals}
            merged_internals.update(new_internals)
            self._objects = merged_objects
            self._internals = merged_internals
            self._apply_budget(set(new_objects), set(new_internals))
        else:
            self._objects = new_objects
            self._internals = new_internals
        return result

    def _apply_budget(self, live_objects: Set[int],
                      live_internals: Set[int]) -> None:
        """Evict least-recently-used off-screen entries over budget."""
        if self.cache_budget_bytes is None:
            return
        total = self.resident_bytes
        if total <= self.cache_budget_bytes:
            return
        for oid in list(self._objects):
            if total <= self.cache_budget_bytes:
                return
            if oid in live_objects:
                continue
            total -= self._objects.pop(oid).bytes
            self.evictions += 1
        for offset in list(self._internals):
            if total <= self.cache_budget_bytes:
                return
            if offset in live_internals:
                continue
            total -= self._internals.pop(offset).bytes
            self.evictions += 1

    # -- memory accounting -------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        """Bytes of model data currently held in memory."""
        return (sum(r.bytes for r in self._objects.values())
                + sum(r.bytes for r in self._internals.values()))

    @property
    def resident_count(self) -> int:
        return len(self._objects) + len(self._internals)

    def clear(self) -> None:
        self._objects.clear()
        self._internals.clear()

    def __repr__(self) -> str:
        return (f"DeltaSearch(resident={self.resident_count}, "
                f"bytes={self.resident_bytes}, fetches={self.fetches}, "
                f"skipped={self.skipped})")
