"""The paper's primary contribution: the HDoV-tree.

* :mod:`repro.core.vpage` — the V-page data model (per-cell, per-node
  ``(DoV, NVO)`` vectors) and its bottom-up instantiation from object
  DoVs.
* :mod:`repro.core.hdov_tree` — the build pipeline and the
  :class:`~repro.core.hdov_tree.HDoVEnvironment` bundle that experiments
  consume.
* :mod:`repro.core.schemes` — the three storage schemes of Section 4.
* :mod:`repro.core.search` — the threshold traversal of Figure 3.
* :mod:`repro.core.delta` — the delta search used in walkthroughs.
"""

from repro.core.hdov_tree import HDoVConfig, HDoVEnvironment, build_environment
from repro.core.search import HDoVSearch, SearchResult
from repro.core.delta import DeltaSearch

__all__ = ["HDoVConfig", "HDoVEnvironment", "build_environment",
           "HDoVSearch", "SearchResult", "DeltaSearch"]
