"""The HDoV-tree traversal algorithm (paper, Figure 3).

For each entry of each visited node:

* ``DoV == 0`` — prune the branch (line 3);
* leaf entry — retrieve the object LoD blended by eq. 6 (lines 4-5);
* internal entry with ``DoV <= eta`` *and* the polygon heuristic of
  eq. 4 satisfied — retrieve the node's internal LoD blended by eq. 5 and
  terminate the branch (lines 7-8);
* otherwise — recurse (line 10).

I/O is charged as the traversal goes: one page per node read, one per
V-page read (through the storage scheme), and the model-data pages for
every retrieved LoD (through the object store).

Degradation (PR 3): a V-page that is still unreadable after the pageio
retry budget — corrupt media or an exhausted transient fault — does not
abort the query.  The affected subtree falls back to its view-invariant
internal LoD at full detail (the HDoV-tree carries one for *every*
node, root included), which needs no V-page at all; the answer stays
complete, merely coarser.  Only the R-tree node file itself is beyond
rescue: without the node there is no entry list and no internal-LoD
pointer to fall back to, so node-store errors stay fatal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.hdov_tree import HDoVEnvironment
from repro.core.schemes.base import StorageScheme
from repro.errors import HDoVError, PageCorruptError, TransientIOError
from repro.geometry.vec import PointLike
from repro.lod.selection import internal_lod_fraction, leaf_lod_fraction
from repro.rtree.node import Node
from repro.obs import names
from repro.obs.metrics import get_registry
from repro.obs.trace import span

#: Storage failures the search survives by degrading to internal LoDs.
#: Anything else (PageNotFoundError, closed files, decode errors) is a
#: bug or unrecoverable state and propagates.
_DEGRADABLE = (PageCorruptError, TransientIOError)


@dataclass(frozen=True)
class RetrievedObject:
    """One object in the answer set, at its eq.-6 LoD."""

    object_id: int
    dov: float
    #: Blend factor k of eq. 6 (1 = finest).
    fraction: float
    polygons: int
    bytes: int


@dataclass(frozen=True)
class RetrievedInternal:
    """One internal LoD in the answer set, at its eq.-5 blend."""

    node_offset: int
    dov: float
    #: Blend fraction DoV/eta of eq. 5.
    fraction: float
    polygons: int
    bytes: int
    #: Leaf objects this internal LoD stands in for.
    covered_objects: Tuple[int, ...]


@dataclass
class SearchResult:
    """Answer set plus accounting of one visibility query."""

    cell_id: int
    eta: float
    objects: List[RetrievedObject] = field(default_factory=list)
    internals: List[RetrievedInternal] = field(default_factory=list)
    nodes_read: int = 0
    vpages_read: int = 0
    #: Figure-3 decision tally: entries pruned at DoV == 0 (line 3),
    #: branches terminated at an internal LoD (line 8), and branches
    #: recursed into (line 10).
    pruned: int = 0
    terminated: int = 0
    recursed: int = 0
    #: True when this query changed the current cell (paid a flip).
    flipped: bool = False
    #: Subtrees degraded to their internal LoD after a V-page read
    #: failed beyond recovery (see the module docstring).
    degraded: int = 0

    @property
    def total_polygons(self) -> int:
        return (sum(o.polygons for o in self.objects)
                + sum(i.polygons for i in self.internals))

    @property
    def total_model_bytes(self) -> int:
        return (sum(o.bytes for o in self.objects)
                + sum(i.bytes for i in self.internals))

    @property
    def num_results(self) -> int:
        return len(self.objects) + len(self.internals)

    def object_ids(self) -> List[int]:
        return sorted(o.object_id for o in self.objects)

    def covered_object_ids(self) -> List[int]:
        """All object ids represented in the answer — directly or through
        an internal LoD."""
        ids = {o.object_id for o in self.objects}
        for internal in self.internals:
            ids.update(internal.covered_objects)
        return sorted(ids)


class HDoVSearch:
    """Point-visibility queries over a built environment.

    Parameters
    ----------
    env:
        The built environment.
    scheme:
        Which storage scheme to search through (a name from
        ``env.schemes``); default resolves only when one scheme is built.
    fetch_models:
        When False the heavy-weight model fetches are skipped (the
        scalability experiment of Figure 9 "excludes the cost to retrieve
        the objects").
    """

    def __init__(self, env: HDoVEnvironment,
                 scheme: Optional[str] = None, *,
                 fetch_models: bool = True,
                 use_nvo_heuristic: bool = True) -> None:
        self.env = env
        self._scheme: StorageScheme = env.scheme(scheme)
        self.fetch_models = fetch_models
        #: The eq.-4 condition can be disabled for the ablation bench.
        self.use_nvo_heuristic = use_nvo_heuristic
        self._log_m = math.log(env.config.fanout)
        #: log_M(s) for the heuristic, from the configured ratio.
        self._log_m_s = math.log(env.config.ratio_s) / self._log_m
        #: node offset -> level, from the in-memory tree (view-invariant
        #: metadata, resident like the paper's NVO bookkeeping).
        self._levels = {n.node_offset: n.level
                        for n in env.tree.iter_nodes_dfs()}
        registry = get_registry()
        scheme_name = self._scheme.name
        self._m_queries = registry.counter(names.SEARCH_QUERIES,
                                           scheme=scheme_name)
        self._m_nodes = registry.counter(names.SEARCH_NODES_READ,
                                         scheme=scheme_name)
        self._m_vpages = registry.counter(names.SEARCH_VPAGES_READ,
                                          scheme=scheme_name)
        self._m_pruned = registry.counter(names.SEARCH_PRUNED,
                                          scheme=scheme_name)
        self._m_terminated = registry.counter(names.SEARCH_TERMINATED,
                                              scheme=scheme_name)
        self._m_recursed = registry.counter(names.SEARCH_RECURSED,
                                            scheme=scheme_name)
        self._m_results = registry.histogram(names.SEARCH_RESULTS,
                                             scheme=scheme_name)

    @property
    def scheme(self) -> StorageScheme:
        return self._scheme

    # -- public API -----------------------------------------------------------

    def query_point(self, point: PointLike, eta: float) -> SearchResult:
        """Visibility query at a viewpoint; resolves the cell and runs
        :meth:`query_cell`."""
        return self.query_cell(self.env.grid.cell_of_point(point), eta)

    def query_cell(self, cell_id: int, eta: float) -> SearchResult:
        """Visibility query for a cell id."""
        if eta < 0.0:
            raise HDoVError(f"eta must be >= 0, got {eta}")
        with span("search", cell=cell_id, eta=eta,
                  scheme=self._scheme.name) as sp:
            flipped = self._scheme.current_cell != cell_id
            result = SearchResult(cell_id=cell_id, eta=eta, flipped=flipped)
            try:
                with span("flip_to_cell", cell=cell_id):
                    self._scheme.flip_to_cell(cell_id)
            except _DEGRADABLE:
                # The cell's V-page index is unreadable: no per-node DoV
                # at all.  Degrade the *whole* query to the root's
                # internal LoD — complete, view-invariant, coarse.  The
                # scheme keeps its previous cell state, so the next
                # flip retries from scratch.
                self._degrade(0, result)
            else:
                root = self.env.node_store.read_node(0)
                result.nodes_read += 1
                self._search_node(root, eta, result)
            if sp is not None:
                sp.attrs.update(nodes_read=result.nodes_read,
                                vpages_read=result.vpages_read,
                                results=result.num_results)
        self._m_queries.inc()
        self._m_nodes.inc(result.nodes_read)
        self._m_vpages.inc(result.vpages_read)
        self._m_pruned.inc(result.pruned)
        self._m_terminated.inc(result.terminated)
        self._m_recursed.inc(result.recursed)
        self._m_results.observe(result.num_results)
        return result

    def query_cell_degraded(self, cell_id: int, eta: float) -> SearchResult:
        """Answer a query wholly from the root's internal LoD.

        The serving scheduler's overload path (PR 5): when a session
        misses its frame budget, the service sheds load by reusing the
        PR-3 degradation ladder *proactively* — no flip, no node reads,
        no V-page reads, just the view-invariant root LoD.  The answer
        is complete but coarse, and ``result.degraded`` records it so
        per-session reports can count overload-degraded frames.
        """
        if eta < 0.0:
            raise HDoVError(f"eta must be >= 0, got {eta}")
        result = SearchResult(cell_id=cell_id, eta=eta, flipped=False)
        self._degrade(0, result)
        self._m_queries.inc()
        self._m_results.observe(result.num_results)
        return result

    # -- figure 3 -------------------------------------------------------------

    def _search_node(self, node: Node, eta: float,
                     result: SearchResult) -> None:
        try:
            ventries = self._scheme.ventries(node.node_offset)
        except _DEGRADABLE:
            # This node's V-page is gone for good (retries exhausted or
            # CRC mismatch).  Its subtree degrades to the node's own
            # internal LoD; sibling branches continue unaffected.
            self._degrade(node.node_offset, result)
            return
        if ventries is None:
            # No page was read, so nothing is counted: a fully-hidden
            # cell must report vpages_read == 0, not one phantom read.
            if node.node_offset == 0:
                # A fully-hidden cell: even the root has no V-page, and
                # the answer set is empty.
                return
            # For any other node the parent saw DoV > 0, so its V-page
            # must exist; reaching here means corrupted data.
            raise HDoVError(
                f"node {node.node_offset} has no V-page but was traversed")
        result.vpages_read += 1
        if len(ventries) != len(node.entries):
            raise HDoVError("V-page does not match node entry count")
        for (mbr, target, lod_ptr), (dov, nvo) in zip(node.entries, ventries):
            if dov == 0.0:
                result.pruned += 1
                continue                                   # line 3: prune
            if node.is_leaf:
                self._retrieve_object(target, dov, result)  # lines 4-5
            elif dov <= eta and self._should_terminate(target, nvo):
                result.terminated += 1
                self._retrieve_internal(target, dov, eta, result)  # line 8
            else:
                result.recursed += 1
                child = self.env.node_store.read_node(target)      # line 10
                result.nodes_read += 1
                self._search_node(child, eta, result)

    def _should_terminate(self, child_offset: int, nvo: int) -> bool:
        """Equation 4: ``h (1 + log_M s) < log_M NVO``.

        ``h`` is the height of the subtree under the entry: the child's
        level plus one (a leaf child's subtree spans one level of
        objects).  When the heuristic is disabled, termination is allowed
        whenever ``DoV <= eta`` (the paper's first condition alone).
        """
        if not self.use_nvo_heuristic:
            return True
        if nvo <= 0:
            return True
        level = self._levels.get(child_offset)
        if level is None:
            raise HDoVError(f"unknown node offset {child_offset}")
        height = level + 1
        lhs = height * (1.0 + self._log_m_s)
        rhs = math.log(nvo) / self._log_m
        return lhs < rhs

    # -- retrieval ------------------------------------------------------------

    def _retrieve_object(self, object_id: int, dov: float,
                         result: SearchResult) -> None:
        record = self.env.objects.get(object_id)
        if record is None:
            raise HDoVError(f"no object record for id {object_id}")
        k = leaf_lod_fraction(dov)
        polygons = record.chain.interpolated_polygons(k)
        nbytes = record.bytes_for_fraction(k)
        if self.fetch_models:
            self.env.object_store.fetch_prefix(record.blob_id, nbytes)
        result.objects.append(RetrievedObject(
            object_id=object_id, dov=dov, fraction=k, polygons=polygons,
            bytes=nbytes))

    def _retrieve_internal(self, node_offset: int, dov: float, eta: float,
                           result: SearchResult) -> None:
        record = self.env.internals.get(node_offset)
        if record is None:
            raise HDoVError(f"no internal LoD for node {node_offset}")
        fraction = internal_lod_fraction(dov, eta)
        polygons = record.lod.chain.interpolated_polygons(fraction)
        nbytes = record.bytes_for_fraction(fraction)
        if self.fetch_models:
            self.env.object_store.fetch_prefix(record.blob_id, nbytes)
        covered = tuple(self.env.descendants.get(node_offset, ()))
        result.internals.append(RetrievedInternal(
            node_offset=node_offset, dov=dov, fraction=fraction,
            polygons=polygons, bytes=nbytes, covered_objects=covered))

    # -- degradation ----------------------------------------------------------

    def _degrade(self, node_offset: int, result: SearchResult) -> None:
        """Stand a node's full-detail internal LoD in for its subtree.

        Without the V-page there is no DoV to blend by, so the fallback
        is conservative: fraction 1.0 (the finest internal LoD) and a
        recorded DoV of 0.0 — visibly distinct from any genuine eq.-5
        retrieval, whose DoV is positive.
        """
        record = self.env.internals.get(node_offset)
        if record is None:
            raise HDoVError(
                f"no internal LoD to degrade to for node {node_offset}")
        polygons = record.lod.chain.interpolated_polygons(1.0)
        nbytes = record.bytes_for_fraction(1.0)
        if self.fetch_models:
            self.env.object_store.fetch_prefix(record.blob_id, nbytes)
        covered = tuple(self.env.descendants.get(node_offset, ()))
        result.degraded += 1
        result.internals.append(RetrievedInternal(
            node_offset=node_offset, dov=0.0, fraction=1.0,
            polygons=polygons, bytes=nbytes, covered_objects=covered))
