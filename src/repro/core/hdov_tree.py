"""HDoV-tree build pipeline and the environment bundle.

Mirrors the paper's preprocessing (Section 5.1):

1. build an R-tree over the object MBRs (linear splitting);
2. persist the tree to pages (assigning DFS node offsets);
3. generate internal LoDs bottom-up and store them (plus the object LoD
   chains) in the blob object store;
4. run the conservative visibility algorithm per cell and the DoV
   estimator on the visible sets;
5. instantiate per-cell V-pages and lay them out under one or more of
   the three storage schemes.

The result is an :class:`HDoVEnvironment`: everything a search algorithm,
baseline, or experiment needs, with I/O accounting split into
*light-weight* (tree nodes, V-pages, index segments) and *heavy-weight*
(model data) stats — the distinction Figure 8 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.constants import (BYTES_PER_POLYGON, DEFAULT_FANOUT,
                             DEFAULT_LOD_RATIO, DEFAULT_MIN_FILL, PAGE_SIZE)
from repro.core.schemes import SCHEME_CLASSES, StorageScheme
from repro.core.vpage import CellVPages, instantiate_cell
from repro.errors import HDoVError
from repro.lod.internal import InternalLOD, build_internal_lods
from repro.rtree.bulk import str_bulk_load
from repro.rtree.node import Node
from repro.rtree.persist import NodeStore
from repro.rtree.tree import RTree
from repro.scene.objects import Scene
from repro.simplify.lod_chain import LODChain
from repro.storage.disk import DiskModel, IOStats
from repro.storage.objectstore import ObjectStore
from repro.storage.pagedfile import PagedFile
from repro.storage.vpagecodec import PackedDeltaVPageCodec, VPageCodec
from repro.visibility.cells import CellGrid
from repro.visibility.dov import VisibilityTable
from repro.visibility.precompute import precompute_visibility


@dataclass(frozen=True)
class HDoVConfig:
    """Build-time parameters of an HDoV environment."""

    fanout: int = DEFAULT_FANOUT
    min_fill: float = DEFAULT_MIN_FILL
    split: str = "ang-tan"
    #: Use STR bulk loading (True, default) or one-at-a-time insertion.
    bulk_load: bool = True
    #: Ratio ``s`` targeted by internal LoD generation.
    ratio_s: float = DEFAULT_LOD_RATIO
    #: Levels per internal LoD chain (>= 2 for eq. 5 to interpolate).
    internal_lod_levels: int = 2
    #: Cube-map resolution of the DoV estimator.
    dov_resolution: int = 32
    #: Viewpoint samples per cell for the conservative region DoV.
    samples_per_cell: int = 1
    #: Physical payload scale of the blob store (see ObjectStore).
    store_scale: float = 1.0
    #: Disk model parameters.
    seek_ms: float = 8.0
    transfer_ms: float = 0.1
    page_size: int = PAGE_SIZE
    #: Storage schemes to build ("horizontal", "vertical",
    #: "indexed-vertical").
    schemes: Sequence[str] = ("indexed-vertical",)
    #: Store V-pages in the packed delta-compressed stream instead of
    #: one page per record.  Applies to the vertical and
    #: indexed-vertical schemes; the horizontal scheme's closed-form
    #: page addressing requires the raw layout and ignores the flag.
    compress_vpages: bool = False

    def disk(self) -> DiskModel:
        return DiskModel(seek_ms=self.seek_ms, transfer_ms=self.transfer_ms)


@dataclass
class ObjectRecord:
    """Storage bookkeeping for one object's LoD chain."""

    object_id: int
    blob_id: int
    chain: LODChain

    def bytes_for_fraction(self, k: float) -> int:
        """Bytes of the eq.-6 blended LoD (a prefix of the finest blob)."""
        return self.chain.interpolated_polygons(k) * BYTES_PER_POLYGON


@dataclass
class InternalRecord:
    """Storage bookkeeping for one node's internal LoD chain."""

    node_offset: int
    blob_id: int
    lod: InternalLOD

    def bytes_for_fraction(self, fraction: float) -> int:
        """Bytes of the eq.-5 blended internal LoD."""
        return (self.lod.chain.interpolated_polygons(fraction)
                * BYTES_PER_POLYGON)


@dataclass
class HDoVEnvironment:
    """Everything built by :func:`build_environment`."""

    scene: Scene
    grid: CellGrid
    config: HDoVConfig
    tree: RTree
    node_store: NodeStore
    object_store: ObjectStore
    objects: Dict[int, ObjectRecord]
    internals: Dict[int, InternalRecord]
    visibility: VisibilityTable
    cell_vpages: List[CellVPages]
    schemes: Dict[str, StorageScheme]
    #: Light-weight I/O: tree nodes, V-pages, index segments.
    light_stats: IOStats
    #: Heavy-weight I/O: model (LoD) data.
    heavy_stats: IOStats
    #: descendant object ids per node offset (fidelity accounting).
    descendants: Dict[int, List[int]] = field(default_factory=dict)

    def scheme(self, name: Optional[str] = None) -> StorageScheme:
        if name is None:
            if len(self.schemes) == 1:
                return next(iter(self.schemes.values()))
            # Several schemes built: default to the paper's pick ("for
            # the remaining experiments, we shall present the results
            # for the indexed-vertical scheme only").
            default = self.schemes.get("indexed-vertical")
            if default is not None:
                return default
            raise HDoVError(
                f"ambiguous scheme; choose from {sorted(self.schemes)}")
        try:
            return self.schemes[name]
        except KeyError:
            raise HDoVError(
                f"scheme {name!r} not built; have {sorted(self.schemes)}"
            ) from None

    def total_simulated_ms(self) -> float:
        return self.light_stats.simulated_ms + self.heavy_stats.simulated_ms

    def total_ios(self) -> int:
        return self.light_stats.total_ios + self.heavy_stats.total_ios

    def reset_stats(self) -> None:
        self.light_stats.reset()
        self.heavy_stats.reset()

    def snapshot(self) -> Tuple[IOStats, IOStats]:
        return (self.light_stats.snapshot(), self.heavy_stats.snapshot())

    def delta(self, snap: Tuple[IOStats, IOStats]) -> Tuple[IOStats, IOStats]:
        light, heavy = snap
        return (self.light_stats.delta(light), self.heavy_stats.delta(heavy))


def build_environment(scene: Scene, grid: CellGrid,
                      config: HDoVConfig = HDoVConfig(),
                      visibility: Optional[VisibilityTable] = None
                      ) -> HDoVEnvironment:
    """Run the full preprocessing pipeline; see the module docstring.

    ``visibility`` may be supplied to reuse an already-computed table
    (the experiments share one across eta sweeps).
    """
    if len(scene) == 0:
        raise HDoVError("cannot build an environment over an empty scene")
    disk = config.disk()
    light_stats = IOStats()
    heavy_stats = IOStats()

    # 1. Spatial backbone.
    items = [(obj.mbr, obj.object_id) for obj in scene]
    if config.bulk_load:
        tree = str_bulk_load(items, max_entries=config.fanout,
                             min_fill=config.min_fill, split=config.split)
    else:
        tree = RTree(max_entries=config.fanout, min_fill=config.min_fill,
                     split=config.split)
        for mbr, oid in items:
            tree.insert(mbr, oid)

    # 2. Persist nodes (assigns offsets).  Build I/O is not part of any
    # experiment measurement, so it runs against the shared stats and the
    # caller resets them afterwards.
    tree_file = PagedFile("tree", page_size=config.page_size, disk=disk,
                          stats=light_stats)
    node_store = NodeStore(tree_file)

    # 3. Object LoDs into the blob store, laid out in tree-DFS leaf order
    # so spatially adjacent models sit on adjacent pages — group fetches
    # during a traversal then ride the disk's read-ahead window.
    blob_file = PagedFile("models", page_size=config.page_size, disk=disk,
                          stats=heavy_stats)
    object_store = ObjectStore(blob_file, scale=config.store_scale)
    objects: Dict[int, ObjectRecord] = {}
    lod_pointers: Dict[int, int] = {}
    for leaf in tree.iter_leaves():
        for entry in leaf.entries:
            obj = scene.get(entry.object_id)  # type: ignore[arg-type]
            blob = object_store.put(obj.lods.finest.byte_size)
            objects[obj.object_id] = ObjectRecord(obj.object_id,
                                                  blob.blob_id, obj.lods)
            lod_pointers[obj.object_id] = blob.blob_id
    node_store.write_tree(tree, lod_pointers)

    # 4. Internal LoDs, bottom-up.
    internal_lods = build_internal_lods(tree, scene, ratio_s=config.ratio_s,
                                        levels=config.internal_lod_levels)
    internals: Dict[int, InternalRecord] = {}
    for offset, lod in internal_lods.items():
        blob = object_store.put(lod.chain.finest.byte_size)
        internals[offset] = InternalRecord(offset, blob.blob_id, lod)

    # 5. Visibility per cell.
    if visibility is None:
        visibility = precompute_visibility(
            scene, grid, resolution=config.dov_resolution,
            samples_per_cell=config.samples_per_cell)
    if visibility.num_cells != grid.num_cells:
        raise HDoVError("visibility table does not match the cell grid")

    # 6. V-pages + storage schemes.
    cell_vpages = [instantiate_cell(tree, visibility.cell(cid))
                   for cid in grid.cell_ids()]
    schemes: Dict[str, StorageScheme] = {}
    num_nodes = node_store.num_nodes
    for name in config.schemes:
        cls = SCHEME_CLASSES.get(name)
        if cls is None:
            raise HDoVError(f"unknown scheme {name!r}")
        vpage_file = PagedFile(f"vpages-{name}", page_size=config.page_size,
                               disk=disk, stats=light_stats)
        if name == "horizontal":
            scheme = cls(vpage_file)
        else:
            index_file = PagedFile(f"vindex-{name}",
                                   page_size=config.page_size, disk=disk,
                                   stats=light_stats)
            codec: Optional[VPageCodec] = None
            if config.compress_vpages:
                codec = PackedDeltaVPageCodec(
                    config.page_size,
                    {cid: grid.neighbors(cid) for cid in grid.cell_ids()},
                    scheme=name)
            scheme = cls(vpage_file, index_file, codec=codec)
        scheme.build(num_nodes, cell_vpages)
        schemes[name] = scheme

    descendants = _collect_descendants(tree)

    env = HDoVEnvironment(
        scene=scene, grid=grid, config=config, tree=tree,
        node_store=node_store, object_store=object_store, objects=objects,
        internals=internals, visibility=visibility, cell_vpages=cell_vpages,
        schemes=schemes, light_stats=light_stats, heavy_stats=heavy_stats,
        descendants=descendants,
    )
    # Build I/O is preprocessing, not measurement.
    env.reset_stats()
    return env


def _collect_descendants(tree: RTree) -> Dict[int, List[int]]:
    """Node offset -> sorted descendant object ids."""
    result: Dict[int, List[int]] = {}

    def visit(node: Node) -> List[int]:
        if node.is_leaf:
            ids = [e.object_id for e in node.entries]
        else:
            ids = []
            for child in node.children():
                ids.extend(visit(child))
        result[node.node_offset] = sorted(ids)
        return ids

    visit(tree.root)
    return result
