"""Three-way baseline comparison across motion patterns.

Extends Figure 12's two-system comparison with the LoD-R-tree [8] from
the paper's related work.  Section 2's claim to verify: the LoD-R-tree
"leads to high frame rates as long as the user stays within the
viewing-frustum.  However, its performance degenerates significantly as
the user view changes" — so it should look fine on session 1 (forward
walking) and suffer disproportionately on session 2 (turning), where
REVIEW's direction-free box and VISUAL's cell-keyed visibility barely
notice the head movement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.config import (ExperimentScale, MEDIUM,
                                      build_experiment_environment)
from repro.experiments.report import format_table
from repro.walkthrough.lodrtree_driver import LodRTreeWalkthrough
from repro.walkthrough.metrics import frame_time_stats
from repro.walkthrough.session import make_session
from repro.walkthrough.visual import ReviewWalkthrough, VisualSystem

SESSION_LABELS = {1: "session 1 (normal)", 2: "session 2 (turning)",
                  3: "session 3 (back/forward)"}


@dataclass
class BaselineComparisonResult:
    #: session -> system label -> (mean frame ms, fidelity).
    rows: Dict[int, Dict[str, List[float]]]

    def format_table(self) -> str:
        systems = list(next(iter(self.rows.values())))
        headers = ["session"]
        for system in systems:
            headers += [f"{system} ms", f"{system} fid"]
        table_rows = []
        for number in sorted(self.rows):
            row: List[object] = [SESSION_LABELS[number]]
            for system in systems:
                mean_ms, fidelity = self.rows[number][system]
                row += [round(mean_ms, 1), round(fidelity, 3)]
            table_rows.append(row)
        return format_table(
            "Baseline comparison: mean frame time / fidelity per session",
            headers, table_rows)

    def turning_penalty(self, system: str) -> float:
        """Frame-time ratio of session 2 over session 1 — the view-
        variance sensitivity."""
        return self.rows[2][system][0] / self.rows[1][system][0]


def run_baseline_comparison(scale: ExperimentScale = MEDIUM, *,
                            eta: float = 0.001
                            ) -> BaselineComparisonResult:
    env = build_experiment_environment(scale)
    rows: Dict[int, Dict[str, List[float]]] = {}
    for number in (1, 2, 3):
        session = make_session(number, env.scene.bounds(),
                               num_frames=scale.session_frames,
                               street_pitch=scale.city.pitch)
        per_system: Dict[str, List[float]] = {}

        visual = VisualSystem(
            env, eta=eta,
            cache_budget_bytes=scale.visual_cache_budget_bytes)
        report = visual.run(session)
        stats = frame_time_stats(report.frame_times())
        per_system["VISUAL"] = [stats.mean_ms, report.avg_fidelity()]

        review = ReviewWalkthrough(env,
                                   box_size=scale.review_box_comparable)
        report = review.run(session)
        stats = frame_time_stats(report.frame_times())
        per_system["REVIEW"] = [stats.mean_ms, report.avg_fidelity()]

        lod_rtree = LodRTreeWalkthrough(
            env, depth=scale.review_box_comparable)
        report = lod_rtree.run(session)
        stats = frame_time_stats(report.frame_times())
        per_system["LoD-R-tree"] = [stats.mean_ms, report.avg_fidelity()]

        rows[number] = per_system
    return BaselineComparisonResult(rows=rows)
