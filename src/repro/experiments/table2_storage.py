"""Table 2 — storage space required by the three schemes.

Paper result (default dataset): horizontal 4 GB, vertical 267 MB,
indexed-vertical 152.8 MB — "the space taken by the horizontal scheme is
very huge ... almost 20 times that of the other two schemes."

We build all three schemes over the same environment and report their
storage breakdowns (excluding the tree file, as the paper does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.schemes.base import StorageBreakdown
from repro.experiments.config import (ExperimentScale, MEDIUM,
                                      build_experiment_environment)
from repro.experiments.report import format_table

ALL_SCHEMES = ("horizontal", "vertical", "indexed-vertical")


@dataclass
class Table2Result:
    breakdowns: Dict[str, StorageBreakdown]
    num_nodes: int
    num_cells: int
    avg_visible_nodes: float

    @property
    def horizontal_over_indexed(self) -> float:
        return (self.breakdowns["horizontal"].total_bytes
                / self.breakdowns["indexed-vertical"].total_bytes)

    def format_table(self) -> str:
        rows: List[List[object]] = []
        for name in ALL_SCHEMES:
            b = self.breakdowns[name]
            rows.append([name, round(b.total_mb, 2),
                         round(b.vpage_bytes / 2 ** 20, 2),
                         round(b.index_bytes / 2 ** 20, 3)])
        table = format_table(
            "Table 2: storage space required by the schemes",
            ["scheme", "total MB", "V-pages MB", "index MB"], rows)
        note = (f"\nnodes={self.num_nodes} cells={self.num_cells} "
                f"avg N_vnode={self.avg_visible_nodes:.1f} "
                f"horizontal/indexed ratio={self.horizontal_over_indexed:.1f}x")
        return table + note


def run_table2(scale: ExperimentScale = MEDIUM) -> Table2Result:
    env = build_experiment_environment(scale, schemes=ALL_SCHEMES)
    breakdowns = {name: scheme.storage_breakdown()
                  for name, scheme in env.schemes.items()}
    indexed = env.schemes["indexed-vertical"]
    return Table2Result(
        breakdowns=breakdowns,
        num_nodes=env.node_store.num_nodes,
        num_cells=env.grid.num_cells,
        avg_visible_nodes=getattr(indexed, "avg_visible_nodes", 0.0),
    )
