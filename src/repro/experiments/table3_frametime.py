"""Table 3 — average frame time and variance vs eta, plus a REVIEW row.

Paper result: frame time falls from 15.92 ms (eta = 0) to ~12.7 ms
(eta >= 0.001) and the variance falls from 6.34 to ~4.2, while REVIEW
with comparable-fidelity 400 m boxes sits at 57.84 ms with variance
16.46.  The reproduction replays session 1 at every eta of the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.config import (ETA_SWEEP, ExperimentScale, MEDIUM,
                                      build_experiment_environment)
from repro.experiments.report import format_table
from repro.walkthrough.metrics import frame_time_stats
from repro.walkthrough.session import make_session
from repro.walkthrough.visual import ReviewWalkthrough, VisualSystem


@dataclass
class Table3Row:
    label: str
    mean_ms: float
    variance: float
    fidelity: float


@dataclass
class Table3Result:
    rows: List[Table3Row]
    num_frames: int

    def format_table(self) -> str:
        table_rows = [[r.label, round(r.mean_ms, 2), round(r.variance, 2),
                       round(r.fidelity, 3)] for r in self.rows]
        return format_table(
            f"Table 3: frame time on session 1 ({self.num_frames} frames)",
            ["eta / system", "avg frame ms", "variance", "fidelity"],
            table_rows)

    def visual_rows(self) -> List[Table3Row]:
        return [r for r in self.rows if not r.label.startswith("REVIEW")]

    def review_row(self) -> Optional[Table3Row]:
        for row in self.rows:
            if row.label.startswith("REVIEW"):
                return row
        return None


def run_table3(scale: ExperimentScale = MEDIUM,
               etas: Sequence[float] = ETA_SWEEP) -> Table3Result:
    env = build_experiment_environment(scale)
    session = make_session(1, env.scene.bounds(),
                           num_frames=scale.session_frames,
                           street_pitch=scale.city.pitch)
    rows: List[Table3Row] = []
    for eta in etas:
        system = VisualSystem(
            env, eta=eta,
            cache_budget_bytes=scale.visual_cache_budget_bytes)
        report = system.run(session)
        stats = frame_time_stats(report.frame_times())
        rows.append(Table3Row(label=f"{eta:g}", mean_ms=stats.mean_ms,
                              variance=stats.variance,
                              fidelity=report.avg_fidelity()))
    review = ReviewWalkthrough(env, box_size=scale.review_box_comparable)
    review_report = review.run(session)
    review_stats = frame_time_stats(review_report.frame_times())
    rows.append(Table3Row(
        label=f"REVIEW({scale.review_box_comparable:g}m)",
        mean_ms=review_stats.mean_ms, variance=review_stats.variance,
        fidelity=review_report.avg_fidelity()))
    return Table3Result(rows=rows, num_frames=session.num_frames)
