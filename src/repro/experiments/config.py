"""Shared experiment configuration and environment cache.

The paper's evaluation runs against one default dataset (plus a size
series for Figure 9).  We define three scales:

* ``SMALL``  — seconds to build; CI and unit-test sized.
* ``MEDIUM`` — the default for benchmarks (~30 s build on one core).
* ``LARGE``  — closer to the paper's proportions; minutes to build.

Environments are memoized per scale so a benchmark session builds each
one exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.core.hdov_tree import HDoVConfig, HDoVEnvironment, build_environment
from repro.errors import ExperimentError
from repro.scene.city import CityParams, generate_city
from repro.visibility.cells import CellGrid

#: The eta values the paper reports (Table 3 plus the Figure 7/8 sweep),
#: extended by two larger values: our city is ~25x smaller than the
#: paper's dataset, which shifts object DoVs upward, so the interesting
#: eta band extends slightly beyond the paper's 0.008.
ETA_SWEEP: Tuple[float, ...] = (0.0, 0.00005, 0.0001, 0.0002, 0.0003,
                                0.0005, 0.001, 0.002, 0.004, 0.008,
                                0.016, 0.032)


@dataclass(frozen=True)
class ExperimentScale:
    """One experiment configuration: city + grid + HDoV build options."""

    name: str
    city: CityParams
    cell_size: float
    hdov: HDoVConfig
    #: Random viewpoints for the visibility-query experiments.
    num_query_viewpoints: int = 40
    #: Frames per walkthrough session.
    session_frames: int = 150
    #: REVIEW query-box sizes (paper: 200 m and 400 m).
    review_boxes: Tuple[float, float] = (200.0, 400.0)
    #: The "comparable fidelity" REVIEW box for Table 3 / Figure 10(a).
    review_box_comparable: float = 400.0
    #: VISUAL's resident model-cache budget (the paper's VISUAL keeps a
    #: bounded working set: 28 MB against a 1.6 GB dataset).
    visual_cache_budget_bytes: int = 1_000_000
    #: Default buffer-pool replacement policy for ``repro serve``
    #: ("lru" keeps the historical reports byte-identical; "2q" adds
    #: scan resistance under pool pressure).
    serving_policy: str = "lru"
    #: Default for the serving prefetcher (off keeps reports identical).
    serving_prefetch: bool = False

    def with_schemes(self, schemes: Sequence[str]) -> "ExperimentScale":
        return replace(self, hdov=replace(self.hdov, schemes=tuple(schemes)))


def _scale(name: str, blocks: int, cell_size: float, resolution: int,
           viewpoints: int, frames: int,
           schemes: Sequence[str] = ("indexed-vertical",),
           bunnies: int = 6) -> ExperimentScale:
    return ExperimentScale(
        name=name,
        city=CityParams(blocks_x=blocks, blocks_y=blocks, seed=7,
                        bunnies_per_block=bunnies, building_fraction=0.4,
                        min_height=20.0, max_height=90.0),
        cell_size=cell_size,
        hdov=HDoVConfig(dov_resolution=resolution, schemes=tuple(schemes)),
        num_query_viewpoints=viewpoints,
        session_frames=frames,
    )


SMALL = _scale("small", blocks=6, cell_size=120.0, resolution=16,
               viewpoints=12, frames=40, bunnies=4)
MEDIUM = _scale("medium", blocks=14, cell_size=60.0, resolution=24,
                viewpoints=40, frames=150)
LARGE = _scale("large", blocks=18, cell_size=60.0, resolution=32,
               viewpoints=100, frames=300)

_SCALES: Dict[str, ExperimentScale] = {s.name: s
                                       for s in (SMALL, MEDIUM, LARGE)}
_ENV_CACHE: Dict[Tuple[str, Tuple[str, ...], bool], HDoVEnvironment] = {}


def get_scale(name: str) -> ExperimentScale:
    try:
        return _SCALES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scale {name!r}; choose from {sorted(_SCALES)}"
        ) from None


def build_experiment_environment(scale: ExperimentScale,
                                 schemes: Optional[Sequence[str]] = None,
                                 *, compress_vpages: bool = False,
                                 ) -> HDoVEnvironment:
    """Build (or fetch from cache) the environment for a scale.

    ``schemes`` overrides which storage schemes are laid out;
    ``compress_vpages`` opts into the packed delta V-page codec.  The
    cache key includes both so Table 2 (all three schemes) and the
    walkthroughs (one) — and compressed vs raw runs — do not collide.

    Note for the layout rewriter: cached environments are *shared*;
    ``repro layout`` builds fresh, uncached environments because a
    rewrite mutates the V-page files in place.
    """
    scheme_key = tuple(schemes) if schemes is not None else tuple(
        scale.hdov.schemes)
    key = (scale.name, scheme_key, compress_vpages)
    env = _ENV_CACHE.get(key)
    if env is None:
        effective = scale.with_schemes(scheme_key)
        if compress_vpages:
            effective = replace(
                effective,
                hdov=replace(effective.hdov, compress_vpages=True))
        scene = generate_city(effective.city)
        grid = CellGrid.covering(scene.bounds(), effective.cell_size)
        env = build_environment(scene, grid, effective.hdov)
        _ENV_CACHE[key] = env
    env.reset_stats()
    return env


def clear_environment_cache() -> None:
    """Drop memoized environments (tests use this to bound memory)."""
    _ENV_CACHE.clear()
