"""Figure 7 — search time with different eta values.

Paper setup: 10,000 visibility queries at random viewpoints from the
precomputed cells; series for the three HDoV storage schemes plus the
naive (cell, list-of-objects) method as a flat reference line.

Expected shape: all HDoV schemes fall as eta grows; eta = 0 close to the
naive line; horizontal worst (its V-pages for one cell are scattered c
pages apart, so nearly every access seeks); indexed-vertical at least as
good as vertical (cheaper cell flips).

Each query is run cold (current cell and file heads reset) so every
query pays its own flip, like the paper's random-viewpoint stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.baselines.naive import NaiveCellList
from repro.core.search import HDoVSearch
from repro.experiments.config import (ETA_SWEEP, ExperimentScale, MEDIUM,
                                      build_experiment_environment)
from repro.experiments.report import format_series
from repro.walkthrough.session import street_viewpoints

SCHEMES = ("horizontal", "vertical", "indexed-vertical")


@dataclass
class Figure7Result:
    etas: List[float]
    #: scheme name -> avg simulated search ms per query, per eta.
    search_ms: Dict[str, List[float]]
    naive_ms: float
    num_queries: int

    def format_table(self) -> str:
        series = [(name, self.search_ms[name]) for name in SCHEMES]
        series.append(("naive", [self.naive_ms] * len(self.etas)))
        return format_series(
            f"Figure 7: search time vs eta ({self.num_queries} queries, "
            "avg simulated ms/query)",
            "eta", self.etas, series)


def run_figure7(scale: ExperimentScale = MEDIUM,
                etas: Sequence[float] = ETA_SWEEP) -> Figure7Result:
    env = build_experiment_environment(scale, schemes=SCHEMES)
    viewpoints = street_viewpoints(env.scene.bounds(), scale.city.pitch,
                                   scale.num_query_viewpoints, seed=3)
    naive = NaiveCellList(env)

    env.reset_stats()
    for point in viewpoints:
        naive.reset_io_head()
        naive.query_point(point)
    naive_ms = env.total_simulated_ms() / len(viewpoints)

    search_ms: Dict[str, List[float]] = {name: [] for name in SCHEMES}
    for name in SCHEMES:
        search = HDoVSearch(env, name)
        for eta in etas:
            env.reset_stats()
            for point in viewpoints:
                search.scheme.current_cell = None   # cold query
                search.scheme.reset_io_head()
                search.query_point(point, eta)
            search_ms[name].append(env.total_simulated_ms()
                                   / len(viewpoints))
    return Figure7Result(etas=list(etas), search_ms=search_ms,
                         naive_ms=naive_ms, num_queries=len(viewpoints))
