"""Memory comparison — Section 5.4's closing measurement.

"The maximum memory used by the VISUAL system is 28MB, while the REVIEW
system with a query box size of 400 meters requires 62MB."  We reproduce
the comparison as peak resident model bytes over session 1, plus the
eta-dependence the paper notes ("If the threshold becomes larger ...
less memory is consumed" for freshly-fetched detail).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.config import (ExperimentScale, MEDIUM,
                                      build_experiment_environment)
from repro.experiments.report import format_table
from repro.walkthrough.memory import MemoryReport, memory_report
from repro.walkthrough.session import make_session
from repro.walkthrough.visual import ReviewWalkthrough, VisualSystem


@dataclass
class MemoryComparisonResult:
    reports: List[MemoryReport]

    def format_table(self) -> str:
        rows = [[r.system, round(r.peak_mb, 3), round(r.mean_mb, 3)]
                for r in self.reports]
        return format_table("Memory usage (session 1)",
                            ["system", "peak MB", "mean MB"], rows)

    def visual_peak(self) -> int:
        return self.reports[0].peak_bytes

    def review_peak(self) -> int:
        return self.reports[-1].peak_bytes


def run_memory_comparison(scale: ExperimentScale = MEDIUM, *,
                          etas=(0.001, 0.004),
                          review_box: float = 400.0
                          ) -> MemoryComparisonResult:
    env = build_experiment_environment(scale)
    session = make_session(1, env.scene.bounds(),
                           num_frames=scale.session_frames,
                           street_pitch=scale.city.pitch)
    reports: List[MemoryReport] = []
    for eta in etas:
        system = VisualSystem(
            env, eta=eta, evaluate_fidelity=False,
            cache_budget_bytes=scale.visual_cache_budget_bytes)
        run = system.run(session)
        reports.append(memory_report(f"VISUAL(eta={eta})", run.frames))
    review = ReviewWalkthrough(env, box_size=review_box,
                               evaluate_fidelity=False)
    run = review.run(session)
    reports.append(memory_report(f"REVIEW({review_box:g}m)", run.frames))
    return MemoryComparisonResult(reports=reports)
