"""Figure 11 — visual fidelity comparison, quantified.

The paper shows screenshots: (a) original models, (b) REVIEW with 200 m
query boxes losing far objects, (c) VISUAL at eta = 0.001 with fidelity
"very good".  We quantify the same comparison over a set of still
viewpoints: the DoV-weighted fidelity score (see
``repro.walkthrough.metrics``) and the count of visible objects missed
entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.baselines.review import ReviewSystem
from repro.core.search import HDoVSearch
from repro.experiments.config import (ExperimentScale, MEDIUM,
                                      build_experiment_environment)
from repro.experiments.report import format_table
from repro.walkthrough.metrics import FidelityMetric
from repro.walkthrough.session import street_viewpoints


@dataclass
class Figure11Row:
    system: str
    avg_fidelity: float
    avg_missed_objects: float
    avg_visible_objects: float


@dataclass
class Figure11Result:
    rows: List[Figure11Row]
    num_viewpoints: int

    def format_table(self) -> str:
        table_rows = [[r.system, round(r.avg_fidelity, 3),
                       round(r.avg_missed_objects, 1),
                       round(r.avg_visible_objects, 1)] for r in self.rows]
        return format_table(
            f"Figure 11: visual fidelity over {self.num_viewpoints} "
            "still viewpoints",
            ["system", "fidelity", "missed objects", "visible objects"],
            table_rows)


def run_figure11(scale: ExperimentScale = MEDIUM, *,
                 eta: float = 0.001,
                 review_box: float = 200.0) -> Figure11Result:
    env = build_experiment_environment(scale)
    metric = FidelityMetric(env)
    viewpoints = street_viewpoints(env.scene.bounds(), scale.city.pitch,
                                   scale.num_query_viewpoints, seed=11)

    # "Original models": every visible object at full detail — the
    # reference row, fidelity 1 by construction, zero missed.
    rows: Dict[str, List[float]] = {
        "original": [], "review": [], "visual": []}
    missed: Dict[str, List[float]] = {"original": [], "review": [],
                                      "visual": []}
    visible_counts: List[float] = []

    search = HDoVSearch(env, fetch_models=False)
    review = ReviewSystem(env, box_size=review_box, fetch_models=False)

    for point in viewpoints:
        cell_id = env.grid.cell_of_point(point)
        truth = metric.ground_truth(cell_id)
        visible_counts.append(float(len(truth)))

        rows["original"].append(1.0)
        missed["original"].append(0.0)

        review.clear_cache()
        review_result = review.query(point)
        rendered = {}
        for oid in review_result.object_ids:
            record = env.objects[oid]
            distance = record.chain.finest.aabb().min_distance_to_point(point)
            fraction = review.lod_policy.fraction_for_distance(distance)
            rendered[oid] = record.chain.interpolated_polygons(fraction)
        rows["review"].append(metric.score_rendered(cell_id, rendered))
        missed["review"].append(
            float(len(metric.missed_objects(cell_id,
                                            review_result.object_ids))))

        search.scheme.current_cell = None
        visual_result = search.query_cell(cell_id, eta)
        rows["visual"].append(metric.score_hdov(visual_result))
        missed["visual"].append(
            float(len(metric.missed_objects(
                cell_id, visual_result.covered_object_ids()))))

    def avg(values: List[float]) -> float:
        return sum(values) / len(values)

    result_rows = [
        Figure11Row("original models", avg(rows["original"]),
                    avg(missed["original"]), avg(visible_counts)),
        Figure11Row(f"REVIEW({review_box:g}m boxes)", avg(rows["review"]),
                    avg(missed["review"]), avg(visible_counts)),
        Figure11Row(f"VISUAL(eta={eta})", avg(rows["visual"]),
                    avg(missed["visual"]), avg(visible_counts)),
    ]
    return Figure11Result(rows=result_rows, num_viewpoints=len(viewpoints))
