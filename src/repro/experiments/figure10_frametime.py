"""Figure 10 — per-frame time series during a walkthrough session.

(a) VISUAL(eta=0.001) vs REVIEW with comparable-fidelity (400 m) query
    boxes: REVIEW is slower *and* choppier (tall spikes at its re-query
    frames).
(b) VISUAL at eta=0.001 vs eta=0.0003: the larger threshold is faster.

The result carries the full frame-time series (the paper plots them) and
summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.config import (ExperimentScale, MEDIUM,
                                      build_experiment_environment)
from repro.experiments.report import format_table
from repro.walkthrough.metrics import FrameTimeStats, frame_time_stats
from repro.walkthrough.session import make_session
from repro.walkthrough.visual import (ReviewWalkthrough, VisualSystem,
                                      WalkthroughReport)


@dataclass
class Figure10Series:
    label: str
    report: WalkthroughReport
    stats: FrameTimeStats


@dataclass
class Figure10Result:
    panel: str
    series: List[Figure10Series]

    def format_table(self) -> str:
        rows = [[s.label, round(s.stats.mean_ms, 2),
                 round(s.stats.variance, 2), round(s.stats.maximum_ms, 1),
                 round(s.report.avg_fidelity(), 3)]
                for s in self.series]
        return format_table(
            f"Figure 10({self.panel}): frame time over "
            f"{self.series[0].stats.num_frames} frames",
            ["system", "mean ms", "variance", "max ms", "fidelity"], rows)


def _series(label: str, report: WalkthroughReport) -> Figure10Series:
    return Figure10Series(label=label, report=report,
                          stats=frame_time_stats(report.frame_times()))


def run_figure10a(scale: ExperimentScale = MEDIUM, *,
                  eta: float = 0.001) -> Figure10Result:
    """VISUAL(eta) vs REVIEW(comparable boxes) on session 1."""
    env = build_experiment_environment(scale)
    session = make_session(1, env.scene.bounds(),
                           num_frames=scale.session_frames,
                           street_pitch=scale.city.pitch)
    visual = VisualSystem(
        env, eta=eta,
        cache_budget_bytes=scale.visual_cache_budget_bytes)
    visual_report = visual.run(session)
    review = ReviewWalkthrough(env, box_size=scale.review_box_comparable)
    review_report = review.run(session)
    return Figure10Result(panel="a", series=[
        _series(f"VISUAL(eta={eta})", visual_report),
        _series(f"REVIEW({scale.review_box_comparable:g}m)", review_report),
    ])


def run_figure10b(scale: ExperimentScale = MEDIUM, *,
                  eta_fast: float = 0.001,
                  eta_fine: float = 0.0003) -> Figure10Result:
    """VISUAL at two thresholds on session 1."""
    env = build_experiment_environment(scale)
    session = make_session(1, env.scene.bounds(),
                           num_frames=scale.session_frames,
                           street_pitch=scale.city.pitch)
    reports = []
    for eta in (eta_fast, eta_fine):
        system = VisualSystem(
            env, eta=eta,
            cache_budget_bytes=scale.visual_cache_budget_bytes)
        reports.append(_series(f"VISUAL(eta={eta})", system.run(session)))
    return Figure10Result(panel="b", series=reports)
