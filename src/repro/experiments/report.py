"""Plain-text table/series formatting shared by the experiment drivers.

Benchmarks print these so the regenerated numbers appear next to the
pytest-benchmark timings in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import List, Sequence


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table with a title rule."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title: str, x_label: str, xs: Sequence[float],
                  series: Sequence[tuple]) -> str:
    """Render one or more y-series against a shared x axis.

    ``series`` is a sequence of ``(label, values)`` pairs.
    """
    headers = [x_label] + [label for label, _values in series]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [values[i] for _label, values in series])
    return format_table(title, headers, rows)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.01:
            return f"{value:.5f}".rstrip("0").rstrip(".")
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def mb(num_bytes: float) -> float:
    return num_bytes / (1024.0 * 1024.0)
