"""Extension experiments — features the paper proposes but defers.

* **Frustum-prioritized traversal** (the paper's future work, §3.2 and
  the conclusion): time-to-renderable vs total query time.
* **Cell prefetching**: flip cost on crossing frames with and without
  predictive prefetch.
* **Node caching**: the paper deliberately caches no tree nodes; the
  buffer-pool sweep shows what each cache size would have saved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.priority import PrioritizedSearch
from repro.core.search import HDoVSearch
from repro.experiments.config import (ExperimentScale, MEDIUM,
                                      build_experiment_environment)
from repro.experiments.report import format_table
from repro.geometry.frustum import Camera
from repro.rtree.cached import CachedNodeStore
from repro.walkthrough.prefetch import CellPrefetcher
from repro.walkthrough.session import make_session, street_viewpoints


@dataclass
class PriorityResult:
    num_queries: int
    avg_first_phase_ms: float
    avg_total_ms: float
    avg_in_frustum_results: float
    avg_total_results: float

    @property
    def response_speedup(self) -> float:
        if self.avg_first_phase_ms <= 0:
            return 1.0
        return self.avg_total_ms / self.avg_first_phase_ms

    def format_table(self) -> str:
        rows = [
            ["time to renderable (phase 1)",
             round(self.avg_first_phase_ms, 1),
             round(self.avg_in_frustum_results, 1)],
            ["full answer (both phases)", round(self.avg_total_ms, 1),
             round(self.avg_total_results, 1)],
        ]
        table = format_table(
            "Extension: frustum-prioritized traversal "
            f"({self.num_queries} queries)",
            ["phase", "avg simulated ms", "avg results"], rows)
        return (table + f"\nresponse-time speedup: "
                        f"{self.response_speedup:.2f}x")


def run_priority_extension(scale: ExperimentScale = MEDIUM, *,
                           eta: float = 0.001,
                           fov_deg: float = 70.0) -> PriorityResult:
    env = build_experiment_environment(scale)
    search = PrioritizedSearch(env)
    viewpoints = street_viewpoints(env.scene.bounds(), scale.city.pitch,
                                   scale.num_query_viewpoints, seed=17)
    rng = np.random.default_rng(23)
    first_ms: List[float] = []
    total_ms: List[float] = []
    phase1_results: List[int] = []
    total_results: List[int] = []
    for point in viewpoints:
        angle = rng.uniform(0.0, 2 * np.pi)
        camera = Camera(position=point,
                        direction=(float(np.cos(angle)),
                                   float(np.sin(angle)), 0.0),
                        up=(0, 0, 1), fov_deg=fov_deg, far=5000.0)
        search._search.scheme.current_cell = None
        search._search.scheme.reset_io_head()
        env.reset_stats()
        result = search.query(camera, eta)
        first_ms.append(result.first_phase_ms)
        total_ms.append(result.total_ms)
        phase1_results.append(result.in_frustum.num_results)
        total_results.append(result.completed.num_results)
    n = len(viewpoints)
    return PriorityResult(
        num_queries=n,
        avg_first_phase_ms=sum(first_ms) / n,
        avg_total_ms=sum(total_ms) / n,
        avg_in_frustum_results=sum(phase1_results) / n,
        avg_total_results=sum(total_results) / n,
    )


@dataclass
class PrefetchResult:
    """Per-crossing flip costs, split by whether the flip was served
    from the warm (prefetched) buffer.

    The point of prefetching is moving the flip's work off the crossing
    frame: a warm-hit flip costs exactly zero on the frame the user
    perceives, with the work paid earlier on a quiet frame.
    """

    crossings: int
    hits: int
    prefetches: int
    avg_hit_flip_ms: float
    avg_miss_flip_ms: float

    @property
    def hit_rate(self) -> float:
        return self.hits / self.crossings if self.crossings else 0.0

    def format_table(self) -> str:
        rows = [
            ["warm hit (prefetched)", self.hits,
             round(self.avg_hit_flip_ms, 2)],
            ["miss (cold flip)", self.crossings - self.hits,
             round(self.avg_miss_flip_ms, 2)],
        ]
        table = format_table(
            f"Extension: cell prefetching ({self.crossings} crossings, "
            f"{self.prefetches} prefetches issued)",
            ["crossing kind", "count", "avg flip ms on crossing frame"],
            rows)
        return table + f"\nwarm hit rate: {self.hit_rate:.0%}"


def run_prefetch_extension(scale: ExperimentScale = MEDIUM
                           ) -> PrefetchResult:
    """Walk session 1 with the prefetcher and split crossing-frame flip
    costs by warm-hit vs miss."""
    env = build_experiment_environment(scale)
    scheme = env.scheme()
    session = make_session(1, env.scene.bounds(),
                           num_frames=scale.session_frames,
                           street_pitch=scale.city.pitch)

    scheme.current_cell = None
    scheme.drop_prefetches()
    prefetcher = CellPrefetcher(env, scheme, trigger_fraction=1.0)
    env.reset_stats()
    hit_costs: List[float] = []
    miss_costs: List[float] = []
    last_cell = None
    for waypoint in session:
        position = waypoint.position_array()
        prefetcher.observe(position)
        cell = env.grid.cell_of_point(position)
        if cell == last_cell:
            continue
        hits_before = scheme.prefetched_flips
        snap = env.snapshot()
        scheme.flip_to_cell(cell)
        light, heavy = env.delta(snap)
        cost = light.simulated_ms + heavy.simulated_ms
        if scheme.prefetched_flips > hits_before:
            hit_costs.append(cost)
        else:
            miss_costs.append(cost)
        last_cell = cell
    return PrefetchResult(
        crossings=len(hit_costs) + len(miss_costs),
        hits=len(hit_costs),
        prefetches=prefetcher.prefetches,
        avg_hit_flip_ms=(sum(hit_costs) / len(hit_costs)
                         if hit_costs else 0.0),
        avg_miss_flip_ms=(sum(miss_costs) / len(miss_costs)
                          if miss_costs else 0.0),
    )


@dataclass
class NodeCacheResult:
    capacities: List[int]
    node_ios_per_query: List[float]
    hit_rates: List[float]

    def format_table(self) -> str:
        rows = [[c, round(io, 1), round(h, 2)]
                for c, io, h in zip(self.capacities,
                                    self.node_ios_per_query,
                                    self.hit_rates)]
        return format_table(
            "Extension: tree-node cache sweep (paper runs uncached)",
            ["cache pages", "node I/Os per query", "hit rate"], rows)


def run_node_cache_sweep(scale: ExperimentScale = MEDIUM, *,
                         capacities=(1, 4, 16, 64, 256),
                         eta: float = 0.001) -> NodeCacheResult:
    env = build_experiment_environment(scale)
    viewpoints = street_viewpoints(env.scene.bounds(), scale.city.pitch,
                                   scale.num_query_viewpoints, seed=29)
    ios: List[float] = []
    hit_rates: List[float] = []
    original_store = env.node_store
    try:
        for capacity in capacities:
            cached = CachedNodeStore(original_store, capacity)
            env.node_store = cached       # type: ignore[assignment]
            search = HDoVSearch(env, fetch_models=False)
            env.reset_stats()
            for point in viewpoints:
                search.scheme.current_cell = None
                search.query_point(point, eta)
            # Light stats here include V-page reads; isolate node reads
            # via the pool's miss count.
            ios.append(cached.pool.misses / len(viewpoints))
            hit_rates.append(cached.hit_rate)
    finally:
        env.node_store = original_store
    return NodeCacheResult(capacities=list(capacities),
                           node_ios_per_query=ios, hit_rates=hit_rates)
