"""Exporting experiment results to CSV.

The drivers return typed result objects whose ``format_table()`` prints
human-readable tables; this module writes the same data as CSV files so
the series can be plotted (Figure 7/8/9 curves, Figure 10 frame-time
traces) with any external tool.
"""

from __future__ import annotations

import csv
import os
from typing import Iterable, List, Sequence

from repro.errors import ExperimentError
from repro.experiments.figure7_search_time import Figure7Result
from repro.experiments.figure8_io import Figure8Result
from repro.experiments.figure9_scalability import Figure9Result
from repro.experiments.table3_frametime import Table3Result
from repro.walkthrough.visual import WalkthroughReport


def write_csv(path: str, headers: Sequence[str],
              rows: Iterable[Sequence[object]]) -> int:
    """Write one CSV file; returns the number of data rows written."""
    directory = os.path.dirname(os.path.abspath(path))
    if directory and not os.path.isdir(directory):
        raise ExperimentError(f"no such directory: {directory}")
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
            count += 1
    return count


def export_figure7(result: Figure7Result, path: str) -> int:
    """One row per eta; one column per scheme plus the naive line."""
    headers = ["eta"] + sorted(result.search_ms) + ["naive"]
    rows: List[List[object]] = []
    for i, eta in enumerate(result.etas):
        row: List[object] = [eta]
        for name in sorted(result.search_ms):
            row.append(result.search_ms[name][i])
        row.append(result.naive_ms)
        rows.append(row)
    return write_csv(path, headers, rows)


def export_figure8(result: Figure8Result, path: str) -> int:
    headers = ["eta", "total_ios", "light_ios", "heavy_ios",
               "naive_total", "naive_light"]
    rows = [[eta, result.total_ios[i], result.light_ios[i],
             result.heavy_ios[i], result.naive_total, result.naive_light]
            for i, eta in enumerate(result.etas)]
    return write_csv(path, headers, rows)


def export_figure9(result: Figure9Result, path: str) -> int:
    headers = ["dataset_mb", "objects", "nodes", "search_ms", "ios"]
    rows = [[result.nominal_mb[i], result.num_objects[i],
             result.num_nodes[i], result.search_ms[i], result.ios[i]]
            for i in range(len(result.names))]
    return write_csv(path, headers, rows)


def export_table3(result: Table3Result, path: str) -> int:
    headers = ["eta_or_system", "mean_frame_ms", "variance", "fidelity"]
    rows = [[row.label, row.mean_ms, row.variance, row.fidelity]
            for row in result.rows]
    return write_csv(path, headers, rows)


def export_frame_trace(report: WalkthroughReport, path: str) -> int:
    """Per-frame trace (the raw series behind Figure 10's curves)."""
    headers = ["frame", "cell", "frame_ms", "search_ms", "light_ios",
               "heavy_ios", "polygons", "fidelity", "resident_bytes"]
    rows = [[f.frame_index, f.cell_id, f.frame_ms, f.search_ms,
             f.light_ios, f.heavy_ios, f.polygons, f.fidelity,
             f.resident_bytes] for f in report.frames]
    return write_csv(path, headers, rows)
