"""Ablation studies — design choices the paper fixes but never varies.

* **NVO heuristic on/off** (eq. 4): without it, any entry with
  ``DoV <= eta`` terminates, which can retrieve internal LoDs holding
  more polygons than the visible objects they replace.
* **Split algorithm**: the paper's Ang–Tan linear split vs Guttman's.
* **Scheme flip cost vs node count**: the vertical scheme flips in
  ``O(N_node)`` pages, the indexed-vertical in ``O(N_vnode)``; at small
  tree sizes both fit one page, so this micro-ablation scales synthetic
  node counts to expose the asymptotic difference (Section 4.3's
  argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.schemes.indexed_vertical import IndexedVerticalScheme
from repro.core.schemes.vertical import VerticalScheme
from repro.core.search import HDoVSearch
from repro.core.vpage import CellVPages
from repro.experiments.config import (ExperimentScale, MEDIUM,
                                      build_experiment_environment)
from repro.experiments.report import format_table
from repro.rtree.bulk import str_bulk_load
from repro.storage.disk import DiskModel, IOStats
from repro.storage.pagedfile import PagedFile
from repro.walkthrough.session import street_viewpoints


@dataclass
class NVOHeuristicResult:
    eta: float
    with_heuristic: Tuple[float, float]      # (ms/query, polygons/query)
    without_heuristic: Tuple[float, float]

    def format_table(self) -> str:
        rows = [
            ["eq.4 heuristic ON", round(self.with_heuristic[0], 1),
             round(self.with_heuristic[1], 0)],
            ["eq.4 heuristic OFF", round(self.without_heuristic[0], 1),
             round(self.without_heuristic[1], 0)],
        ]
        return format_table(
            f"Ablation: NVO termination heuristic (eta={self.eta})",
            ["variant", "ms/query", "polygons/query"], rows)


def run_nvo_ablation(scale: ExperimentScale = MEDIUM, *,
                     eta: float = 0.008) -> NVOHeuristicResult:
    env = build_experiment_environment(scale)
    viewpoints = street_viewpoints(env.scene.bounds(), scale.city.pitch,
                                   scale.num_query_viewpoints, seed=3)
    results = []
    for use_heuristic in (True, False):
        search = HDoVSearch(env, use_nvo_heuristic=use_heuristic)
        env.reset_stats()
        polygons = 0
        for point in viewpoints:
            search.scheme.current_cell = None
            search.scheme.reset_io_head()
            polygons += search.query_point(point, eta).total_polygons
        results.append((env.total_simulated_ms() / len(viewpoints),
                        polygons / len(viewpoints)))
    return NVOHeuristicResult(eta=eta, with_heuristic=results[0],
                              without_heuristic=results[1])


@dataclass
class SplitAblationResult:
    rows: List[List[object]]

    def format_table(self) -> str:
        return format_table(
            "Ablation: node-splitting algorithm (insertion build)",
            ["split", "nodes", "height", "avg leaf overlap volume"],
            self.rows)


def run_split_ablation(scale: ExperimentScale = MEDIUM) -> SplitAblationResult:
    """Build insertion-order trees under both splits and compare shape."""
    from repro.rtree.tree import RTree
    from repro.scene.city import generate_city
    scene = generate_city(scale.city)
    rows: List[List[object]] = []
    for split in ("ang-tan", "guttman"):
        tree = RTree(max_entries=scale.hdov.fanout, split=split)
        for obj in scene:
            tree.insert(obj.mbr, obj.object_id)
        tree.check_invariants()
        rows.append([split, tree.num_nodes, tree.height,
                     round(_avg_leaf_overlap(tree), 1)])
    return SplitAblationResult(rows=rows)


def _avg_leaf_overlap(tree) -> float:
    leaves = list(tree.iter_leaves())
    total = 0.0
    pairs = 0
    for i, a in enumerate(leaves):
        mbr_a = a.mbr()
        for b in leaves[i + 1:]:
            overlap = mbr_a.intersection(b.mbr())
            if overlap is not None:
                total += overlap.volume
            pairs += 1
    return total / pairs if pairs else 0.0


@dataclass
class FlipScalingResult:
    node_counts: List[int]
    vertical_flip_ios: List[int]
    indexed_flip_ios: List[int]

    def format_table(self) -> str:
        rows = [[n, v, i] for n, v, i in zip(
            self.node_counts, self.vertical_flip_ios,
            self.indexed_flip_ios)]
        return format_table(
            "Ablation: cell-flip I/O vs tree size (synthetic, "
            "N_vnode = 40 per cell)",
            ["N_node", "vertical flip I/Os", "indexed-vertical flip I/Os"],
            rows)


def run_flip_scaling(node_counts=(512, 2048, 8192, 32768), *,
                     visible_per_cell: int = 40,
                     num_cells: int = 4) -> FlipScalingResult:
    """Synthetic micro-ablation: grow N_node with N_vnode fixed.

    Shows the vertical scheme's O(N_node) flip against the
    indexed-vertical's O(N_vnode) — the scalability argument of
    Section 4.3 that a small city cannot exhibit (its whole V-page-index
    segment fits one page).
    """
    vertical_ios: List[int] = []
    indexed_ios: List[int] = []
    for num_nodes in node_counts:
        cells = []
        for cid in range(num_cells):
            stride = max(num_nodes // visible_per_cell, 1)
            pages = {offset: [(0.5, 1)]
                     for offset in range(0, num_nodes, stride)}
            cells.append(CellVPages(cell_id=cid, pages=pages))

        stats = IOStats()
        disk = DiskModel()
        vpf = PagedFile("v", disk=disk, stats=stats)
        idx = PagedFile("i", disk=disk, stats=stats)
        vertical = VerticalScheme(vpf, idx)
        vertical.build(num_nodes, cells)
        stats.reset()
        vertical.flip_to_cell(1)
        vertical_ios.append(stats.reads)

        stats2 = IOStats()
        vpf2 = PagedFile("v2", disk=disk, stats=stats2)
        idx2 = PagedFile("i2", disk=disk, stats=stats2)
        indexed = IndexedVerticalScheme(vpf2, idx2)
        indexed.build(num_nodes, cells)
        stats2.reset()
        indexed.flip_to_cell(1)
        indexed_ios.append(stats2.reads)
    return FlipScalingResult(node_counts=list(node_counts),
                             vertical_flip_ios=vertical_ios,
                             indexed_flip_ios=indexed_ios)
