"""Experiment drivers — one per table/figure of the paper's evaluation.

Every driver consumes a shared :class:`~repro.experiments.config
.ExperimentScale` environment, runs the paper's measurement, and returns
a typed result object whose ``format_table()`` prints the same rows or
series the paper reports.  Benchmarks under ``benchmarks/`` call these
drivers; they are also importable for interactive use.
"""

from repro.experiments.config import (ExperimentScale, SMALL, MEDIUM, LARGE,
                                      build_experiment_environment)
from repro.experiments.table2_storage import run_table2
from repro.experiments.figure7_search_time import run_figure7
from repro.experiments.figure8_io import run_figure8
from repro.experiments.figure9_scalability import run_figure9
from repro.experiments.figure10_frametime import run_figure10a, run_figure10b
from repro.experiments.figure11_fidelity import run_figure11
from repro.experiments.figure12_sessions import run_figure12
from repro.experiments.table3_frametime import run_table3
from repro.experiments.memory_usage import run_memory_comparison

__all__ = [
    "ExperimentScale", "SMALL", "MEDIUM", "LARGE",
    "build_experiment_environment",
    "run_table2", "run_figure7", "run_figure8", "run_figure9",
    "run_figure10a", "run_figure10b", "run_figure11", "run_figure12",
    "run_table3", "run_memory_comparison",
]
