"""Figure 9 — scalability of the visibility query over dataset sizes.

Paper setup: datasets from 400 MB to 1.6 GB; 1000 random viewpoints; the
reported cost is "only the cost to traverse the HDoV-tree, and excludes
the cost to retrieve the objects (since all visible objects must be
retrieved)".

(a) average search time per query vs dataset size — near-flat;
(b) average I/Os per query vs dataset size — grows only marginally.

Our datasets scale object counts 1x..4x with the nominal sizes (see
``repro.scene.datasets``); the cost drivers the figure measures (tree
height, visible-node counts) scale with object count, which is
preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

from repro.core.hdov_tree import HDoVConfig, build_environment
from repro.core.search import HDoVSearch
from repro.errors import ExperimentError
from repro.experiments.report import format_series
from repro.scene.city import CityParams, generate_city
from repro.scene.datasets import DATASET_SERIES, DatasetSpec
from repro.visibility.cells import CellGrid
from repro.walkthrough.session import street_viewpoints


@dataclass
class Figure9Result:
    names: List[str]
    nominal_mb: List[int]
    num_objects: List[int]
    num_nodes: List[int]
    search_ms: List[float]
    ios: List[float]
    eta: float
    num_queries: int

    def format_table(self) -> str:
        panel_a = format_series(
            f"Figure 9(a): avg traversal time vs dataset size "
            f"(eta={self.eta}, {self.num_queries} queries, model fetch "
            "excluded)",
            "dataset MB", [float(m) for m in self.nominal_mb],
            [("search ms", self.search_ms),
             ("objects", [float(n) for n in self.num_objects]),
             ("nodes", [float(n) for n in self.num_nodes])])
        panel_b = format_series(
            "Figure 9(b): avg I/Os vs dataset size",
            "dataset MB", [float(m) for m in self.nominal_mb],
            [("I/Os", self.ios)])
        return panel_a + "\n\n" + panel_b


def run_figure9(specs: Sequence[DatasetSpec] = DATASET_SERIES, *,
                eta: float = 0.001, num_queries: int = 40,
                cell_size: float = 90.0,
                dov_resolution: int = 16) -> Figure9Result:
    """Build each dataset of the series and measure traversal-only cost."""
    if not specs:
        raise ExperimentError("no dataset specs")
    names: List[str] = []
    nominal: List[int] = []
    objects: List[int] = []
    nodes: List[int] = []
    times: List[float] = []
    ios: List[float] = []
    for spec in specs:
        scene = spec.build()
        grid = CellGrid.covering(scene.bounds(), cell_size)
        env = build_environment(
            scene, grid, HDoVConfig(dov_resolution=dov_resolution))
        search = HDoVSearch(env, fetch_models=False)
        pitch = spec.params().pitch
        viewpoints = street_viewpoints(scene.bounds(), pitch, num_queries,
                                       seed=5)
        env.reset_stats()
        for point in viewpoints:
            search.scheme.current_cell = None
            search.scheme.reset_io_head()
            search.query_point(point, eta)
        names.append(spec.name)
        nominal.append(spec.nominal_mb)
        objects.append(len(scene))
        nodes.append(env.node_store.num_nodes)
        times.append(env.total_simulated_ms() / num_queries)
        ios.append(env.total_ios() / num_queries)
    return Figure9Result(names=names, nominal_mb=nominal,
                         num_objects=objects, num_nodes=nodes,
                         search_ms=times, ios=ios, eta=eta,
                         num_queries=num_queries)
