"""Figure 8 — disk I/O counts vs eta (indexed-vertical scheme).

(a) total disk I/Os per query, including the heavy-weight model data;
(b) light-weight I/Os only (tree nodes + V-pages + index segments),
    which for very small eta sit *above* the naive method (the extra
    internal nodes and V-pages) and fall as eta grows.

Both panels share one run; the naive method is the flat reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.baselines.naive import NaiveCellList
from repro.core.search import HDoVSearch
from repro.experiments.config import (ETA_SWEEP, ExperimentScale, MEDIUM,
                                      build_experiment_environment)
from repro.experiments.report import format_series


@dataclass
class Figure8Result:
    etas: List[float]
    total_ios: List[float]
    light_ios: List[float]
    heavy_ios: List[float]
    naive_total: float
    naive_light: float
    num_queries: int

    def format_table(self) -> str:
        panel_a = format_series(
            "Figure 8(a): total disk I/Os per query (incl. model data)",
            "eta", self.etas,
            [("hdov", self.total_ios),
             ("naive", [self.naive_total] * len(self.etas))])
        panel_b = format_series(
            "Figure 8(b): light-weight I/Os per query (nodes + V-pages)",
            "eta", self.etas,
            [("hdov", self.light_ios),
             ("naive", [self.naive_light] * len(self.etas))])
        return panel_a + "\n\n" + panel_b


def run_figure8(scale: ExperimentScale = MEDIUM,
                etas: Sequence[float] = ETA_SWEEP) -> Figure8Result:
    env = build_experiment_environment(scale)
    from repro.walkthrough.session import street_viewpoints
    viewpoints = street_viewpoints(env.scene.bounds(), scale.city.pitch,
                                   scale.num_query_viewpoints, seed=3)
    naive = NaiveCellList(env)
    env.reset_stats()
    for point in viewpoints:
        naive.reset_io_head()
        naive.query_point(point)
    n = len(viewpoints)
    naive_light = env.light_stats.total_ios / n
    naive_total = (env.light_stats.total_ios
                   + env.heavy_stats.total_ios) / n

    search = HDoVSearch(env)
    total_ios: List[float] = []
    light_ios: List[float] = []
    heavy_ios: List[float] = []
    for eta in etas:
        env.reset_stats()
        for point in viewpoints:
            search.scheme.current_cell = None
            search.scheme.reset_io_head()
            search.query_point(point, eta)
        light_ios.append(env.light_stats.total_ios / n)
        heavy_ios.append(env.heavy_stats.total_ios / n)
        total_ios.append(light_ios[-1] + heavy_ios[-1])
    return Figure8Result(etas=list(etas), total_ios=total_ios,
                         light_ios=light_ios, heavy_ios=heavy_ios,
                         naive_total=naive_total, naive_light=naive_light,
                         num_queries=n)
