"""Figure 12 — search performance across walkthrough motion patterns.

Paper setup: three recorded sessions (normal / turning / back-forward)
replayed on VISUAL and REVIEW.

(a) average search time per query; (b) average number of I/Os per query.
"Queries in the VISUAL walkthrough are much faster than the spatial
queries in the REVIEW system."

Averages are over *query-issuing* frames (frames that hit the database),
matching the paper's "search time in each query".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.config import (ExperimentScale, MEDIUM,
                                      build_experiment_environment)
from repro.experiments.report import format_table
from repro.walkthrough.session import make_session
from repro.walkthrough.visual import ReviewWalkthrough, VisualSystem

SESSION_NUMBERS = (1, 2, 3)
SESSION_LABELS = {1: "session 1 (normal)", 2: "session 2 (turning)",
                  3: "session 3 (back/forward)"}


@dataclass
class Figure12Result:
    eta: float
    review_box: float
    #: session number -> (visual_ms, review_ms)
    search_ms: Dict[int, List[float]]
    #: session number -> (visual_ios, review_ios)
    ios: Dict[int, List[float]]

    def format_table(self) -> str:
        rows_a = [[SESSION_LABELS[n], round(self.search_ms[n][0], 2),
                   round(self.search_ms[n][1], 2)]
                  for n in SESSION_NUMBERS]
        panel_a = format_table(
            f"Figure 12(a): avg search time per query (VISUAL eta="
            f"{self.eta} vs REVIEW {self.review_box:g}m)",
            ["session", "VISUAL ms", "REVIEW ms"], rows_a)
        rows_b = [[SESSION_LABELS[n], round(self.ios[n][0], 1),
                   round(self.ios[n][1], 1)] for n in SESSION_NUMBERS]
        panel_b = format_table(
            "Figure 12(b): avg I/Os per query",
            ["session", "VISUAL", "REVIEW"], rows_b)
        return panel_a + "\n\n" + panel_b


def run_figure12(scale: ExperimentScale = MEDIUM, *,
                 eta: float = 0.001,
                 review_box: float = 400.0) -> Figure12Result:
    env = build_experiment_environment(scale)
    search_ms: Dict[int, List[float]] = {}
    ios: Dict[int, List[float]] = {}
    for number in SESSION_NUMBERS:
        session = make_session(number, env.scene.bounds(),
                               num_frames=scale.session_frames,
                               street_pitch=scale.city.pitch)
        visual = VisualSystem(
            env, eta=eta, evaluate_fidelity=False,
            cache_budget_bytes=scale.visual_cache_budget_bytes)
        visual_report = visual.run(session)
        review = ReviewWalkthrough(env, box_size=review_box,
                                   evaluate_fidelity=False)
        review_report = review.run(session)
        search_ms[number] = [visual_report.avg_query_search_ms(),
                             review_report.avg_query_search_ms()]
        ios[number] = [visual_report.avg_query_ios(),
                       review_report.avg_query_ios()]
    return Figure12Result(eta=eta, review_box=review_box,
                          search_ms=search_ms, ios=ios)
