"""``repro crash`` — a deterministic crash-point matrix over the journal.

The crash-consistency claim (DESIGN.md §12) is only as good as its
worst I/O boundary, so this harness does not sample: it *enumerates*.
A probe run of a seeded write workload records every crash point the
storage layer passes through — each page write and read, each commit
marker append, each journal fsync, each checkpoint page copy, the data
fsync, the journal reset, and every boundary inside recovery itself.
The sweep then re-runs the workload once per boundary, kills it exactly
there (:class:`~repro.errors.SimulatedCrash` abandons all in-memory
state; :meth:`~repro.storage.pagedfile.PagedFile.crash` models the
power loss), recovers, and checks three invariants:

* **Atomicity** — every recovered page image equals some transaction
  snapshot ``S_j`` of the workload, with ``durable(c) <= j <=
  appended(c)``: at least every fsync'd commit survived, and nothing
  beyond the last commit marker that physically reached the journal
  was invented.
* **Idempotence** — recovering the recovered file is a no-op, byte for
  byte (data file and journal compared after a second open/close).
* **Recovery crashes safely** — the crashed state is re-recovered with
  a *nested* sweep that kills recovery at each of its own boundaries;
  after a final clean open the file is byte-identical to the
  reference recovery that was never interrupted.

The same sweep covers the :class:`~repro.visibility.cache
.PrecomputeCache` torn-tail contract: a fully written ``cells.jsonl``
is truncated at every line boundary (and a stride of interior points),
reopened, and the loaded cells plus
:func:`~repro.visibility.persist.visibility_digest` are checked against
the prefix a crash at that byte could legitimately leave behind.

The report is plain dict/list/scalar data, a pure function of the
keyword arguments: two calls with the same arguments must produce
byte-identical JSON, which the CI crash-matrix job diffs.  No paths,
timestamps or environment details appear in it.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulatedCrash
from repro.obs import names
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.storage import pageio
from repro.storage.faults import FaultInjector
from repro.storage.journal import journal_path
from repro.storage.pagedfile import PagedFile
from repro.visibility.cache import PrecomputeCache
from repro.visibility.dov import CellVisibility, VisibilityTable
from repro.visibility.persist import visibility_digest

#: Byte-determinism marker: opts this module into RPR013's hygiene
#: checks — the CI crash job diffs two runs of the report bytes.
DETERMINISTIC_REPORT = True

_DATA_FILE = "crash.pages"
_COMPONENT = "crash"
_CACHE_FINGERPRINT = "crash-harness"
_CELLS_NAME = "cells.jsonl"
_MANIFEST_NAME = "manifest.json"


# -- the seeded workload -----------------------------------------------------
#
# Pure functions of (seed, txn, write index, page id): the sweep re-runs
# the workload dozens of times and every run must be identical.  The
# payload is a mod-251 byte ramp — consecutive byte values, so it can
# never contain the journal's non-consecutive record magic b"RWAL" and
# recovery's torn-tail resync scan cannot false-positive inside a page.

def _page_for(txn: int, w: int, pages: int) -> int:
    return (7 * txn + 3 * w) % pages


def _payload(seed: int, txn: int, w: int, pid: int,
             page_size: int) -> bytes:
    base = seed + 31 * txn + 7 * w + 13 * pid
    return bytes((base + i) % 251 for i in range(page_size))


def _expected_states(*, seed: int, pages: int, page_size: int, txns: int,
                     writes_per_txn: int) -> List[Dict[int, bytes]]:
    """``S_0 .. S_txns``: page images after 0, 1, ... committed txns."""
    current = {pid: bytes(page_size) for pid in range(pages)}
    states = [dict(current)]
    for txn in range(txns):
        for w in range(writes_per_txn):
            pid = _page_for(txn, w, pages)
            current[pid] = _payload(seed, txn, w, pid, page_size)
        states.append(dict(current))
    return states


def _run_workload(datadir: str, *, seed: int, pages: int, page_size: int,
                  txns: int, writes_per_txn: int,
                  injector: Optional[FaultInjector],
                  holder: List[PagedFile]) -> None:
    """Run the seeded workload; ``holder`` receives the file as soon as
    it exists so a caller catching :class:`SimulatedCrash` can call
    :meth:`~PagedFile.crash` on it."""
    path = os.path.join(datadir, _DATA_FILE)
    pfile = PagedFile("crashdata", page_size=page_size, path=path,
                      journal=True, faults=injector)
    holder.append(pfile)
    if pfile.num_pages < pages:
        pfile.allocate_many(pages - pfile.num_pages)
    for txn in range(txns):
        for w in range(writes_per_txn):
            pid = _page_for(txn, w, pages)
            pageio.write_page(
                pfile, pid, _payload(seed, txn, w, pid, page_size),
                component=_COMPONENT)
        # A read inside the txn keeps read boundaries in the matrix
        # (and exercises the overlay-serving path under faults).
        pageio.read_page(pfile, _page_for(txn, 0, pages),
                         component=_COMPONENT)
        pfile.commit()
        if txn % 2 == 1:
            pfile.checkpoint()
    pfile.close()


def _probe_boundaries(workdir: str, **cfg: int) -> List[str]:
    """Run the workload once with an armed-but-unreachable crash counter
    to learn the full ordered list of crash-point labels."""
    datadir = os.path.join(workdir, "probe")
    os.makedirs(datadir)
    injector = FaultInjector(seed=int(cfg["seed"]))
    injector.crash_after_ops(10 ** 9)
    _run_workload(datadir, injector=injector, holder=[], **cfg)
    return list(injector.crash_trace)


def _read_file(path: str) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()


def _file_state(datadir: str) -> Tuple[bytes, bytes]:
    """(data bytes, journal bytes) — the unit of byte-identity checks."""
    path = os.path.join(datadir, _DATA_FILE)
    return _read_file(path), _read_file(journal_path(path))


def _restore(src: Tuple[bytes, bytes], datadir: str) -> str:
    os.makedirs(datadir)
    path = os.path.join(datadir, _DATA_FILE)
    with open(path, "wb") as fh:
        fh.write(src[0])
    with open(journal_path(path), "wb") as fh:
        fh.write(src[1])
    return path


def _observe_pages(datadir: str, *, pages: int,
                   page_size: int) -> Tuple[PagedFile, Dict[int, bytes]]:
    """Clean reopen (recovery runs) and read back every page."""
    pfile = PagedFile("crashdata", page_size=page_size,
                      path=os.path.join(datadir, _DATA_FILE), journal=True)
    observed = {pid: pageio.read_page(pfile, pid, component=_COMPONENT)
                for pid in range(min(pages, pfile.num_pages))}
    for pid in range(pfile.num_pages, pages):
        observed[pid] = bytes(page_size)   # extent lost with the crash
    return pfile, observed


def _recovery_crash_sweep(crashed: Tuple[bytes, bytes], workdir: str,
                          reference: Tuple[bytes, bytes], *, seed: int,
                          page_size: int,
                          violations: List[str],
                          point: int) -> Dict[str, object]:
    """Kill recovery of ``crashed`` at each of its own boundaries, then
    recover cleanly and demand byte-identity with ``reference``."""
    probe_dir = os.path.join(workdir, "rprobe")
    path = _restore(crashed, probe_dir)
    injector = FaultInjector(seed=seed)
    injector.crash_after_ops(10 ** 9)
    pfile = PagedFile("crashdata", page_size=page_size, path=path,
                      journal=True, faults=injector)
    pfile.close()
    boundaries = len(injector.crash_trace)
    ok = True
    for r in range(1, boundaries + 1):
        rdir = os.path.join(workdir, f"r{r:03d}")
        rpath = _restore(crashed, rdir)
        rinj = FaultInjector(seed=seed)
        rinj.crash_after_ops(r)
        crashed_as_armed = False
        try:
            PagedFile("crashdata", page_size=page_size, path=rpath,
                      journal=True, faults=rinj)
        except SimulatedCrash:
            crashed_as_armed = True
        if not crashed_as_armed:
            ok = False
            violations.append(
                f"point {point}: recovery boundary {r} did not crash")
            continue
        # Second-chance recovery must converge to the reference bytes.
        clean = PagedFile("crashdata", page_size=page_size, path=rpath,
                          journal=True)
        clean.close()
        if _file_state(rdir) != reference:
            ok = False
            violations.append(
                f"point {point}: crash at recovery boundary {r} "
                f"({injector.crash_trace[r - 1]}) diverged from the "
                f"uninterrupted recovery")
    return {"boundaries": boundaries, "converged": ok}


def _sweep_point(c: int, label: str, workdir: str,
                 states: List[Dict[int, bytes]], durable: int,
                 appended: int, violations: List[str],
                 **cfg: int) -> Dict[str, object]:
    """Crash the workload at boundary ``c``, recover, check invariants."""
    datadir = os.path.join(workdir, f"point-{c:03d}")
    os.makedirs(datadir)
    injector = FaultInjector(seed=int(cfg["seed"]))
    injector.crash_after_ops(c)
    holder: List[PagedFile] = []
    crashed_as_armed = False
    try:
        _run_workload(datadir, injector=injector, holder=holder, **cfg)
    except SimulatedCrash:
        crashed_as_armed = True
    if not crashed_as_armed:
        raise AssertionError(f"boundary {c} did not crash")
    if holder:
        holder[0].crash()
    crashed = _file_state(datadir)

    pages, page_size = int(cfg["pages"]), int(cfg["page_size"])
    pfile, observed = _observe_pages(datadir, pages=pages,
                                     page_size=page_size)
    recovery = pfile.last_recovery
    matches = [j for j, state in enumerate(states) if state == observed]
    recovered = max(matches) if matches else -1
    atomic = bool(matches) and durable <= recovered <= appended
    if not atomic:
        violations.append(
            f"point {c} ({label}): recovered state {recovered} outside "
            f"[{durable}, {appended}] "
            f"({'no snapshot matched' if not matches else 'commit bound'})")

    # Idempotence: close, reopen, and the second recovery must be a
    # no-op that leaves every byte alone.
    pfile.close()
    once = _file_state(datadir)
    again = PagedFile("crashdata", page_size=page_size,
                      path=os.path.join(datadir, _DATA_FILE), journal=True)
    rerun = again.last_recovery
    again.close()
    idempotent = (rerun is None or rerun.is_noop()) \
        and _file_state(datadir) == once
    if not idempotent:
        violations.append(
            f"point {c} ({label}): recovery was not idempotent")

    recovery_crash = _recovery_crash_sweep(
        crashed, datadir, once, seed=int(cfg["seed"]),
        page_size=page_size, violations=violations, point=c)
    return {
        "boundary": c,
        "label": label,
        "durable_commits": durable,
        "appended_commits": appended,
        "recovered_state": recovered,
        "pages_replayed": recovery.pages_replayed if recovery else 0,
        "tail_truncated_bytes":
            recovery.tail_truncated_bytes if recovery else 0,
        "atomic": atomic,
        "idempotent": idempotent,
        "recovery_crash": recovery_crash,
    }


# -- precompute-cache torn-tail sweep ---------------------------------------

def _cache_dov(cell: int, oid: int) -> float:
    return (1 + ((cell * 7 + oid) % 97)) / 100.0


def _cache_cells(cells: int) -> Dict[int, Dict[int, float]]:
    return {cell: {oid: _cache_dov(cell, oid)
                   for oid in range(1 + cell % 3)}
            for cell in range(cells)}


def _digest_of(loaded: Dict[int, Dict[int, float]], cells: int) -> str:
    table = VisibilityTable(cells)
    for cell_id in sorted(loaded):
        cv = CellVisibility(cell_id)
        for oid, dov in sorted(loaded[cell_id].items()):
            cv.set(oid, float(dov))
        table.put(cv)
    return visibility_digest(table)


def _cache_sweep(workdir: str, *, cells: int,
                 stride: int, violations: List[str]) -> Dict[str, object]:
    """Truncate ``cells.jsonl`` at every interesting byte and reopen.

    The contract under test (satellite of DESIGN.md §12): with the
    default ``always`` fsync policy a crash can tear at most the final
    record, and the loader drops exactly that — a final line missing
    only its newline still parses and **is** kept.
    """
    basedir = os.path.join(workdir, "cache-full")
    cache = PrecomputeCache.open(basedir, _CACHE_FINGERPRINT, cells,
                                 resume=False, fsync_policy="always")
    expected_full = _cache_cells(cells)
    for cell in range(cells):
        cache.record(cell, expected_full[cell])
    cache.close()
    raw = _read_file(os.path.join(basedir, _CELLS_NAME))
    manifest = _read_file(os.path.join(basedir, _MANIFEST_NAME))

    spans: List[Tuple[int, int]] = []
    start = 0
    while start < len(raw):
        end = raw.index(b"\n", start) + 1
        spans.append((start, end))
        start = end
    points = sorted({p for p in range(0, len(raw) + 1, max(stride, 1))}
                    | {end - 1 for _, end in spans} | {len(raw)})

    checked = torn_seen = 0
    ok = True
    for p in points:
        pdir = os.path.join(workdir, f"cache-{p:05d}")
        os.makedirs(pdir)
        with open(os.path.join(pdir, _MANIFEST_NAME), "wb") as fh:
            fh.write(manifest)
        with open(os.path.join(pdir, _CELLS_NAME), "wb") as fh:
            fh.write(raw[:p])
        expected = {cell: dov for cell, dov in expected_full.items()
                    if p >= spans[cell][1] or p == spans[cell][1] - 1}
        torn = any(s < p < e - 1 for s, e in spans)
        reopened = PrecomputeCache.open(pdir, _CACHE_FINGERPRINT, cells,
                                        resume=True)
        reopened.close()
        checked += 1
        torn_seen += reopened.torn_lines
        if reopened.loaded != expected or \
                reopened.torn_lines != (1 if torn else 0):
            ok = False
            violations.append(
                f"cache truncated at byte {p}: loaded "
                f"{sorted(reopened.loaded)} (torn={reopened.torn_lines}), "
                f"expected {sorted(expected)} (torn={int(torn)})")
        elif _digest_of(reopened.loaded, cells) != \
                _digest_of(expected, cells):
            ok = False
            violations.append(
                f"cache truncated at byte {p}: visibility digest mismatch")
    return {"cells": cells, "bytes": len(raw), "points": checked,
            "torn_tails": torn_seen, "ok": ok}


# -- the report --------------------------------------------------------------

def _metric_totals(registry: MetricsRegistry) -> Dict[str, float]:
    """Sum the crash-consistency counters across their file labels."""
    out: Dict[str, float] = {}
    for name in (names.JOURNAL_RECORDS, names.JOURNAL_COMMITS,
                 names.RECOVERY_PAGES_REPLAYED,
                 names.RECOVERY_TAIL_TRUNCATIONS, names.CRASHES_INJECTED):
        out[name] = sum(inst.value
                        for inst in registry.series(name).values())
    return out


def run_crash_sweep(*, seed: int = 0, pages: int = 8, page_size: int = 128,
                    txns: int = 5, writes_per_txn: int = 3,
                    cache_cells: int = 10, cache_stride: int = 7,
                    workdir: Optional[str] = None) -> Dict[str, object]:
    """Run the full crash matrix; returns the JSON-ready report.

    Parameters
    ----------
    seed:
        Seeds both the page payloads and the fault injectors.
    pages, page_size:
        Shape of the journaled file under test.
    txns, writes_per_txn:
        Workload size: each transaction writes, reads one page back,
        commits, and every second transaction checkpoints.
    cache_cells, cache_stride:
        Size of the precompute cache and the byte stride of interior
        truncation points in its torn-tail sweep.
    workdir:
        Scratch directory (a temp dir by default, removed afterwards).
        Never appears in the report.
    """
    cfg = {"seed": seed, "pages": pages, "page_size": page_size,
           "txns": txns, "writes_per_txn": writes_per_txn}
    cleanup = workdir is None
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro-crash-")
    registry = MetricsRegistry()
    try:
        with use_registry(registry):
            labels = _probe_boundaries(workdir, **cfg)
            states = _expected_states(**cfg)
            violations: List[str] = []
            sweep: List[Dict[str, object]] = []
            for c in range(1, len(labels) + 1):
                # Ticks 1..c-1 ran their operation; tick c did not —
                # so a commit is durable at c iff its journal fsync
                # tick is strictly below c, and a commit marker exists
                # iff its append tick is.
                executed = labels[:c - 1]
                durable = sum(
                    1 for lbl in executed if lbl.startswith("journal-sync:"))
                appended = sum(
                    1 for lbl in executed
                    if lbl.startswith("journal-commit:"))
                sweep.append(_sweep_point(
                    c, labels[c - 1], workdir, states, durable, appended,
                    violations, **cfg))
            cache = _cache_sweep(workdir, cells=cache_cells,
                                 stride=cache_stride,
                                 violations=violations)
            report: Dict[str, object] = {
                "crash": dict(cfg, cache_cells=cache_cells,
                              cache_stride=cache_stride,
                              boundaries=len(labels), labels=labels),
                "sweep": sweep,
                "cache": cache,
                "metrics": _metric_totals(registry),
                "violations": violations,
                "summary": {
                    "points": len(sweep),
                    "recovery_points": sum(
                        rc["boundaries"] for rc in
                        (entry["recovery_crash"] for entry in sweep)),
                    "cache_points": cache["points"],
                    "violations": len(violations),
                    "ok": not violations,
                },
            }
            return report
    finally:
        if cleanup:
            shutil.rmtree(workdir, ignore_errors=True)
