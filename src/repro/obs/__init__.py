"""Observability layer: metrics registry, span tracing, profile runner.

The library's storage, search and walkthrough layers are instrumented
against a process-wide :class:`MetricsRegistry` (cheap counters with
labels) and an optional :class:`TraceRecorder` (nested wall-clock spans,
disabled by default).  ``repro profile`` assembles both into a JSON
report whose per-file I/O counters reconcile exactly with the simulated
:class:`~repro.storage.disk.IOStats` clock.
"""

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               format_series, get_registry, set_registry,
                               use_registry)
from repro.obs.trace import (SpanRecord, TraceRecorder, get_tracer,
                             set_tracer, span, use_tracer)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "TraceRecorder",
    "format_series",
    "get_registry",
    "get_tracer",
    "set_registry",
    "set_tracer",
    "span",
    "use_registry",
    "use_tracer",
]
