"""Lightweight span recorder for nested timing breakdowns.

Where the metrics registry answers "how many", spans answer "where did
the time go": a :class:`TraceRecorder` captures a tree of named,
wall-clock-timed intervals — ``span("search")`` nested inside
``span("frame")`` inside ``span("walkthrough")`` — each carrying
arbitrary attributes (cell id, I/O counts, simulated ms).

The default recorder is *disabled*: library code calls
:func:`span` unconditionally and pays only an enabled-flag check, so
long benchmark sessions do not accumulate span records.  The ``repro
profile`` command (and tests) enable a recorder via :func:`use_tracer`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import ContextManager, Dict, Iterator, List, Optional

from repro.errors import ObservabilityError


@dataclass
class SpanRecord:
    """One completed (or in-flight) interval."""

    index: int
    parent: Optional[int]
    name: str
    depth: int
    #: Milliseconds since the recorder's epoch.
    start_ms: float
    duration_ms: float = 0.0
    #: Time spent in direct child spans (exclusive time = duration - child).
    child_ms: float = 0.0
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def self_ms(self) -> float:
        return self.duration_ms - self.child_ms

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "depth": self.depth,
            "parent": self.parent,
            "start_ms": round(self.start_ms, 3),
            "duration_ms": round(self.duration_ms, 3),
            "self_ms": round(self.self_ms, 3),
            "attrs": dict(self.attrs),
        }


class TraceRecorder:
    """Collects nested spans; disabled recorders cost one branch per span.

    Parameters
    ----------
    enabled:
        Whether :meth:`span` records anything.
    max_spans:
        Hard cap on stored records; spans beyond it still run (and still
        time their children correctly) but are not stored, and
        ``dropped`` counts them.
    """

    def __init__(self, *, enabled: bool = True,
                 max_spans: int = 1_000_000) -> None:
        if max_spans < 1:
            raise ObservabilityError(
                f"max_spans must be >= 1, got {max_spans}")
        self.enabled = enabled
        self.max_spans = max_spans
        self.records: List[SpanRecord] = []
        self.dropped = 0
        self._stack: List[int] = []
        self._epoch = time.perf_counter()

    def _now_ms(self) -> float:
        return (time.perf_counter() - self._epoch) * 1000.0

    @contextmanager
    def span(self, name: str,
             **attrs: object) -> Iterator[Optional[SpanRecord]]:
        """Record a named interval; yields the record (or ``None`` when
        disabled or over the cap) so callers can attach attributes."""
        if not self.enabled:
            yield None
            return
        if len(self.records) >= self.max_spans:
            self.dropped += 1
            start = self._now_ms()
            try:
                yield None
            finally:
                # Parents still owe their stack entry the elapsed time.
                if self._stack:
                    self.records[self._stack[-1]].child_ms += \
                        self._now_ms() - start
            return
        record = SpanRecord(
            index=len(self.records),
            parent=self._stack[-1] if self._stack else None,
            name=name,
            depth=len(self._stack),
            start_ms=self._now_ms(),
            attrs=dict(attrs),
        )
        self.records.append(record)
        self._stack.append(record.index)
        try:
            yield record
        finally:
            self._stack.pop()
            record.duration_ms = self._now_ms() - record.start_ms
            if record.parent is not None:
                self.records[record.parent].child_ms += record.duration_ms

    # -- reading -----------------------------------------------------------

    def by_name(self, name: str) -> List[SpanRecord]:
        return [r for r in self.records if r.name == name]

    def total_ms(self, name: str) -> float:
        return sum(r.duration_ms for r in self.by_name(name))

    def summarize(self) -> Dict[str, Dict[str, float]]:
        """Per-name aggregate: count, total/self wall ms, mean, max."""
        out: Dict[str, Dict[str, float]] = {}
        for record in self.records:
            agg = out.setdefault(record.name, {
                "count": 0, "total_ms": 0.0, "self_ms": 0.0, "max_ms": 0.0})
            agg["count"] += 1
            agg["total_ms"] += record.duration_ms
            agg["self_ms"] += record.self_ms
            agg["max_ms"] = max(agg["max_ms"], record.duration_ms)
        for agg in out.values():
            agg["mean_ms"] = agg["total_ms"] / agg["count"]
        return out

    def to_dicts(self) -> List[Dict[str, object]]:
        return [r.to_dict() for r in self.records]

    def clear(self) -> None:
        if self._stack:
            raise ObservabilityError("cannot clear: spans still open")
        self.records.clear()
        self.dropped = 0
        self._epoch = time.perf_counter()

    def __repr__(self) -> str:
        return (f"TraceRecorder(enabled={self.enabled}, "
                f"spans={len(self.records)}, dropped={self.dropped})")


_default_tracer = TraceRecorder(enabled=False)


def get_tracer() -> TraceRecorder:
    """The process-wide recorder library spans bind to (disabled unless
    a profiling run enabled one)."""
    return _default_tracer


def set_tracer(tracer: TraceRecorder) -> TraceRecorder:
    """Swap the default recorder; returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


def span(name: str,
         **attrs: object) -> ContextManager[Optional[SpanRecord]]:
    """Record a span on the default recorder (no-op when disabled)."""
    return _default_tracer.span(name, **attrs)


@contextmanager
def use_tracer(tracer: Optional[TraceRecorder] = None
               ) -> Iterator[TraceRecorder]:
    """Scoped :func:`set_tracer`; yields the active (enabled) recorder."""
    tracer = tracer if tracer is not None else TraceRecorder(enabled=True)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
