"""``repro chaos`` — a recorded walkthrough replayed under fault injection.

Builds a fresh environment against a fresh metrics registry, replays the
requested session twice — once clean (the fidelity baseline), once with
a named :class:`~repro.storage.faults.FaultPlan` installed beneath the
storage layer — and reports what the resilience stack did about it:
frames survived, subtrees degraded to internal LoDs, pageio retries and
give-ups, corrupt pages detected, and the fidelity cost of degrading.

The report is plain dict/list/scalar data, ready for ``json.dump``, and
deliberately contains *no wall-clock measurements*: everything in it is
a pure function of (scale, session, eta, scheme, plan, seed), so two
runs with the same arguments must produce byte-identical JSON — the CI
chaos job diffs exactly that.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.hdov_tree import build_environment
from repro.errors import ReproError
from repro.obs import names
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.profile import _environment_files
from repro.scene.city import generate_city
from repro.storage.faults import FaultInjector, named_plan
from repro.storage.pagedfile import PagedFile
from repro.visibility.cells import CellGrid
from repro.walkthrough.session import make_session
from repro.walkthrough.visual import VisualSystem, WalkthroughReport


def _per_file_values(files: List[PagedFile],
                     read: Callable[[str], float]) -> Dict[str, float]:
    """``{file name: counter value}``, omitting files that never fired.

    ``read`` looks one file's counter up by name — a callable rather
    than a metric-name string so the name constant stays visible at the
    ``registry.value()`` call site (RPR002).
    """
    out: Dict[str, float] = {}
    for pfile in files:
        value = read(pfile.name)
        if value:
            out[pfile.name] = value
    return out


def run_chaos(*, scale: str = "small", session: int = 1,
              eta: float = 0.001, frames: Optional[int] = None,
              scheme: Optional[str] = None, plan: str = "aggressive",
              seed: int = 0, compress: bool = False) -> Dict[str, object]:
    """Replay one session under ``plan``; returns the JSON-ready report.

    Parameters
    ----------
    scale:
        Experiment scale name (``small`` / ``medium`` / ``large``).
    session:
        Motion pattern 1, 2, 3 or 4 (Section 5.4's recorded sessions
        plus the loop circuit).
    eta:
        DoV threshold for the VISUAL system.
    frames:
        Frame count override (defaults to the scale's session length).
    scheme:
        Storage scheme to walk (defaults to the scale's only scheme).
    plan:
        Name of a built-in fault plan (see
        :func:`repro.storage.faults.plan_names`).
    seed:
        Seed for the fault injector's RNG; same seed, same report.
    compress:
        Build with the packed delta V-page codec, so injected bit flips
        and torn writes land on compressed records (which must degrade,
        never decode garbage).
    """
    # Imported here: repro.experiments pulls in every experiment driver,
    # which the library layers must not depend on at import time.
    from dataclasses import replace

    from repro.experiments.config import get_scale

    fault_plan = named_plan(plan)
    experiment = get_scale(scale)
    hdov = experiment.hdov
    if compress:
        hdov = replace(hdov, compress_vpages=True)
    registry = MetricsRegistry()
    with use_registry(registry):
        scene = generate_city(experiment.city)
        grid = CellGrid.covering(scene.bounds(), experiment.cell_size)
        env = build_environment(scene, grid, hdov)
        num_frames = frames if frames is not None \
            else experiment.session_frames
        path = make_session(session, scene.bounds(), num_frames=num_frames,
                            street_pitch=experiment.city.pitch)

        # Clean replay first: the fidelity baseline, and — because it
        # runs before the injector exists — it cannot consume injector
        # randomness, so the fault sequence depends only on the seed
        # and the (deterministic) faulted workload.
        clean_system = VisualSystem(
            env, eta=eta, scheme=scheme,
            cache_budget_bytes=experiment.visual_cache_budget_bytes)
        clean = clean_system.run(path)

        # The faulted replay starts from the same cold state.
        active = clean_system.delta.search.scheme
        active.reset_runtime_state()
        env.reset_stats()

        files = _environment_files(env)
        injector = FaultInjector(fault_plan, seed=seed)
        injector.install(*files)
        error: Optional[str] = None
        faulted: Optional[WalkthroughReport] = None
        try:
            faulted_system = VisualSystem(
                env, eta=eta, scheme=scheme,
                cache_budget_bytes=experiment.visual_cache_budget_bytes)
            faulted = faulted_system.run(path)
        except ReproError as exc:
            # Only a fault the degradation ladder cannot absorb (an
            # unreadable R-tree node, a give-up outside a V-page read)
            # lands here; the report says so instead of crashing.
            error = f"{type(exc).__name__}: {exc}"
        finally:
            injector.uninstall()

        completed = faulted is not None
        frames_survived = len(faulted.frames) if faulted is not None else 0
        clean_fidelity = clean.avg_fidelity()
        faulted_fidelity = (faulted.avg_fidelity()
                            if faulted is not None else float("nan"))

        report: Dict[str, object] = {
            "chaos": {
                "scale": scale,
                "session": path.name,
                "eta": eta,
                "scheme": active.name,
                "frames": num_frames,
                "plan": fault_plan.name,
                "seed": seed,
                "compress": compress,
            },
            "outcome": {
                "completed": completed,
                "error": error,
                "frames_total": num_frames,
                "frames_survived": frames_survived,
            },
            "faults": {
                "injected": dict(sorted(injector.injected.items())),
                "total_injected": injector.total_injected(),
            },
            "resilience": {
                "degraded_frames": (faulted.degraded_frames()
                                    if faulted is not None else 0),
                "total_degradations": (faulted.total_degradations()
                                       if faulted is not None else 0),
                "frames_degraded_total":
                    registry.value(names.FRAMES_DEGRADED),
                "retries": _per_file_values(
                    files, lambda f: registry.value(
                        names.PAGEIO_RETRIES, file=f)),
                "giveups": _per_file_values(
                    files, lambda f: registry.value(
                        names.PAGEIO_GIVEUPS, file=f)),
                "pages_corrupt": _per_file_values(
                    files, lambda f: registry.value(
                        names.PAGES_CORRUPT, file=f)),
            },
            "fidelity": {
                "clean": clean_fidelity,
                "faulted": faulted_fidelity,
                "delta": faulted_fidelity - clean_fidelity,
            },
        }
        # Invariants the CLI turns into an exit code: the walkthrough
        # must survive the plan, and degradation can only *cost*
        # fidelity — a faulted replay beating the clean baseline means
        # the resilience accounting is lying (the epsilon absorbs
        # float summation order, nothing else).
        fidelity_not_improved = (not completed) or \
            faulted_fidelity <= clean_fidelity + 1e-9
        report["invariants"] = {
            "completed": completed,
            "fidelity_not_improved": fidelity_not_improved,
            "ok": completed and fidelity_not_improved,
        }
        return report
